//! The representativeness scoring function of §3.2.
//!
//! This module implements the paper's formulas *directly* (no incremental
//! state): topic-specific semantic scores `R_i`, topic-specific time-critical
//! influence scores `I_{i,t}`, the per-topic combination `f_i`, and the
//! query-weighted score `f(S, x)`.  Query processing uses the incremental
//! [`crate::evaluator`] on top of the same primitives; the direct
//! implementation here is the reference that tests (including the paper's
//! worked examples) and the brute-force optimum check verify against.

use std::collections::HashMap;

use ksir_stream::ActiveWindow;
use ksir_types::{
    Document, ElementId, QueryVector, TopicId, TopicVector, TopicWordDistribution, WordId,
};

use crate::config::ScoringConfig;

/// The entropy weight `h(p) = -p·ln p`, with `h(0) = 0`.
///
/// This is the information-entropy contribution of observing a word whose
/// generation probability is `p`; the paper (following Tam et al. and Zhuang
/// et al.) uses it to weight words so that moderately rare, topic-bearing
/// words count more than both ubiquitous and vanishingly rare ones.
#[inline]
pub fn entropy_weight(p: f64) -> f64 {
    if p <= 0.0 {
        0.0
    } else {
        -p * p.ln()
    }
}

/// The word weight `σ_i(w, e) = γ(w,e) · h(p_i(w)·p_i(e))`.
#[inline]
pub fn word_weight(frequency: u32, p_word: f64, p_elem: f64) -> f64 {
    frequency as f64 * entropy_weight(p_word * p_elem)
}

/// The influence-propagation probability `p_i(e' ⤳ e) = p_i(e')·p_i(e)`.
#[inline]
pub fn propagation_prob(p_parent: f64, p_child: f64) -> f64 {
    p_parent * p_child
}

/// Reference implementation of the representativeness score over the current
/// active window.
///
/// The scorer borrows the engine state it needs: the topic-word distribution
/// `p_i(w)`, the per-element topic vectors `p_i(e)`, the active window (for
/// documents and the reverse-reference sets `I_t(e)`), and the scoring
/// configuration `(λ, η)`.
#[derive(Debug)]
pub struct Scorer<'a, D> {
    phi: &'a D,
    config: ScoringConfig,
    window: &'a ActiveWindow,
    topic_vectors: &'a HashMap<ElementId, TopicVector>,
}

// Manual impls: the scorer only holds shared references, so it is copyable
// regardless of whether `D` itself is (the derive would wrongly require
// `D: Copy`).
impl<D> Clone for Scorer<'_, D> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<D> Copy for Scorer<'_, D> {}

impl<'a, D: TopicWordDistribution> Scorer<'a, D> {
    /// Creates a scorer over the given state.
    pub fn new(
        phi: &'a D,
        config: ScoringConfig,
        window: &'a ActiveWindow,
        topic_vectors: &'a HashMap<ElementId, TopicVector>,
    ) -> Self {
        Scorer {
            phi,
            config,
            window,
            topic_vectors,
        }
    }

    /// The scoring configuration in use.
    pub fn config(&self) -> ScoringConfig {
        self.config
    }

    /// The topic-word distribution `p_i(w)` the scorer reads from.
    pub fn phi(&self) -> &'a D {
        self.phi
    }

    /// `p_i(e)` for an active element (0 for unknown elements or topics).
    pub fn element_topic_prob(&self, id: ElementId, topic: TopicId) -> f64 {
        self.topic_vectors
            .get(&id)
            .and_then(|tv| tv.get(topic))
            .unwrap_or(0.0)
    }

    /// `σ_i(w, e)` for a word of an active element.
    pub fn word_weight_of(&self, topic: TopicId, id: ElementId, word: WordId) -> f64 {
        let Some(element) = self.window.get(id) else {
            return 0.0;
        };
        word_weight(
            element.doc.frequency(word),
            self.phi.word_prob(topic, word),
            self.element_topic_prob(id, topic),
        )
    }

    /// The semantic score `R_i(e)` of a single element: the sum of the weights
    /// of its distinct words on topic `θ_i`.
    pub fn semantic_element(&self, topic: TopicId, id: ElementId) -> f64 {
        let Some(element) = self.window.get(id) else {
            return 0.0;
        };
        self.semantic_of_doc(topic, &element.doc, self.element_topic_prob(id, topic))
    }

    /// `R_i` of an explicit document / element-probability pair (used by the
    /// engine before an element has been registered as active).
    pub fn semantic_of_doc(&self, topic: TopicId, doc: &Document, p_elem: f64) -> f64 {
        if p_elem <= 0.0 {
            return 0.0;
        }
        doc.iter()
            .map(|(w, freq)| word_weight(freq, self.phi.word_prob(topic, w), p_elem))
            .sum()
    }

    /// The semantic score `R_i(S)` of a set (Equation 3): each distinct word of
    /// the set contributes the *maximum* of its weights across the members.
    pub fn semantic_set(&self, topic: TopicId, ids: &[ElementId]) -> f64 {
        let mut best: HashMap<WordId, f64> = HashMap::new();
        for &id in ids {
            let Some(element) = self.window.get(id) else {
                continue;
            };
            let p_elem = self.element_topic_prob(id, topic);
            for (w, freq) in element.doc.iter() {
                let weight = word_weight(freq, self.phi.word_prob(topic, w), p_elem);
                let entry = best.entry(w).or_insert(0.0);
                if weight > *entry {
                    *entry = weight;
                }
            }
        }
        best.values().sum()
    }

    /// The influence score `I_{i,t}(e)` of a single element: the expected
    /// number of window elements it influences on topic `θ_i`.
    pub fn influence_element(&self, topic: TopicId, id: ElementId) -> f64 {
        let p_parent = self.element_topic_prob(id, topic);
        if p_parent <= 0.0 {
            return 0.0;
        }
        self.window
            .influenced_by(id)
            .into_iter()
            .map(|child| propagation_prob(p_parent, self.element_topic_prob(child, topic)))
            .sum()
    }

    /// The influence score `I_{i,t}(S)` of a set (Equation 4): probabilistic
    /// coverage of the window elements influenced by at least one member.
    pub fn influence_set(&self, topic: TopicId, ids: &[ElementId]) -> f64 {
        // For each influenced element e, the survival probability
        // Π_{e' ∈ S ∩ e.ref} (1 - p_i(e' ⤳ e)); the coverage is 1 - survival.
        let mut survival: HashMap<ElementId, f64> = HashMap::new();
        for &id in ids {
            let p_parent = self.element_topic_prob(id, topic);
            for child in self.window.influenced_by(id) {
                let p = propagation_prob(p_parent, self.element_topic_prob(child, topic));
                let s = survival.entry(child).or_insert(1.0);
                *s *= 1.0 - p;
            }
        }
        survival.values().map(|s| 1.0 - s).sum()
    }

    /// The per-topic score `f_i({e})` of a single element — the ranked-list
    /// tuple score `δ_i(e)` of Algorithm 1.
    pub fn topicwise_element(&self, topic: TopicId, id: ElementId) -> f64 {
        self.config.combine(
            self.semantic_element(topic, id),
            self.influence_element(topic, id),
        )
    }

    /// The per-topic score `f_i(S)` of a set (Equation 2).
    pub fn topicwise_set(&self, topic: TopicId, ids: &[ElementId]) -> f64 {
        self.config.combine(
            self.semantic_set(topic, ids),
            self.influence_set(topic, ids),
        )
    }

    /// The singleton score `δ(e, x) = f({e}, x)` w.r.t. a query vector.
    pub fn delta(&self, query: &QueryVector, id: ElementId) -> f64 {
        query
            .support()
            .into_iter()
            .map(|(topic, weight)| weight * self.topicwise_element(topic, id))
            .sum()
    }

    /// The full representativeness score `f(S, x)` (Equation 1).
    pub fn set_score(&self, query: &QueryVector, ids: &[ElementId]) -> f64 {
        query
            .support()
            .into_iter()
            .map(|(topic, weight)| weight * self.topicwise_set(topic, ids))
            .sum()
    }

    /// The marginal gain `Δ(e | S) = f(S ∪ {e}, x) − f(S, x)`, computed from
    /// scratch.  Query processing uses the incremental
    /// [`crate::evaluator::CandidateState`] instead; this method exists for
    /// verification and tests.
    pub fn marginal_gain(&self, query: &QueryVector, set: &[ElementId], id: ElementId) -> f64 {
        if set.contains(&id) {
            return 0.0;
        }
        let mut extended = Vec::with_capacity(set.len() + 1);
        extended.extend_from_slice(set);
        extended.push(id);
        self.set_score(query, &extended) - self.set_score(query, set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entropy_weight_shape() {
        assert_eq!(entropy_weight(0.0), 0.0);
        assert_eq!(entropy_weight(1.0), 0.0);
        assert!(entropy_weight(0.5) > 0.0);
        // maximum of -p ln p is at p = 1/e
        let peak = entropy_weight(1.0 / std::f64::consts::E);
        assert!(peak > entropy_weight(0.1));
        assert!(peak > entropy_weight(0.9));
        // negative inputs are clamped to zero contribution
        assert_eq!(entropy_weight(-0.3), 0.0);
    }

    #[test]
    fn word_weight_scales_with_frequency() {
        let single = word_weight(1, 0.1, 0.5);
        let triple = word_weight(3, 0.1, 0.5);
        assert!((triple - 3.0 * single).abs() < 1e-12);
        assert_eq!(word_weight(2, 0.0, 0.5), 0.0);
        assert_eq!(word_weight(2, 0.1, 0.0), 0.0);
    }

    #[test]
    fn propagation_prob_is_product() {
        assert!((propagation_prob(0.74, 0.67) - 0.4958).abs() < 1e-12);
        assert_eq!(propagation_prob(0.0, 1.0), 0.0);
    }
}
