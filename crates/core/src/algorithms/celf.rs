//! CELF — lazy greedy submodular maximisation (batch baseline).
//!
//! The classic Leskovec et al. accelerated greedy: marginal gains computed in
//! earlier iterations are upper bounds on current gains (by submodularity), so
//! elements are kept in a max-heap keyed by their last-known gain and only
//! re-evaluated when they reach the top.  CELF is `(1 − 1/e)`-approximate —
//! the best possible ratio for this problem — but it must evaluate the
//! singleton score of *every* active element for every query, which is what
//! makes it too slow for real-time k-SIR processing.

use std::collections::BinaryHeap;

use ksir_stream::ActiveWindow;
use ksir_types::{ElementId, TopicWordDistribution};

use crate::evaluator::QueryEvaluator;
use crate::query::{Algorithm, KsirQuery, QueryResult};

#[derive(Debug, Clone, Copy, PartialEq)]
struct Entry {
    gain: f64,
    id: ElementId,
    /// Size of the candidate set the gain was computed against.
    round: usize,
}

impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.gain
            .total_cmp(&other.gain)
            .then_with(|| other.id.cmp(&self.id))
    }
}

pub(crate) fn run<D: TopicWordDistribution>(
    window: &ActiveWindow,
    evaluator: &QueryEvaluator<'_, D>,
    query: &KsirQuery,
) -> QueryResult {
    let mut ids: Vec<ElementId> = window.ids().collect();
    ids.sort_unstable();
    let evaluated = ids.len();

    let mut heap: BinaryHeap<Entry> = BinaryHeap::new();
    for id in ids {
        let gain = evaluator.delta(id);
        if gain > 0.0 {
            heap.push(Entry { gain, id, round: 0 });
        }
    }

    let mut state = evaluator.new_candidate();
    while state.len() < query.k() {
        let Some(top) = heap.pop() else {
            break;
        };
        if top.round == state.len() {
            if top.gain <= 0.0 {
                break;
            }
            evaluator.insert(&mut state, top.id);
        } else {
            let gain = evaluator.marginal_gain(&state, top.id);
            if gain > 0.0 {
                heap.push(Entry {
                    gain,
                    id: top.id,
                    round: state.len(),
                });
            }
        }
    }

    if state.is_empty() {
        return QueryResult::empty(Algorithm::Celf);
    }
    QueryResult {
        elements: state.members().to_vec(),
        score: state.score(),
        evaluated_elements: evaluated,
        gain_evaluations: evaluator.gain_evaluations(),
        algorithm: Algorithm::Celf,
        frontier: None,
    }
}
