//! Effectiveness experiments: the k-SIR query against the four search /
//! summarisation baselines (Tables 5 and 6 of the paper).

use ksir_baselines::{
    result_ids, DivSearcher, RelSearcher, SearchPool, SumblrSummarizer, TfIdfSearcher,
};
use ksir_core::{Algorithm, KsirQuery};
use ksir_datagen::{GeneratedStream, QueryWorkloadGenerator};
use ksir_eval::{
    coverage_score, normalized_influence_score, pool_from_engine, StudyQuery, UserStudy,
    UserStudyOutcome,
};
use ksir_types::{ElementId, QueryVector, Result, Timestamp};

use crate::scenario::{build_engine, ProcessingConfig};

/// The five effectiveness methods, in the order the paper's tables list them.
pub const METHODS: [&str; 5] = ["TF-IDF", "DIV", "Sumblr", "REL", "k-SIR"];

/// Parameters of an effectiveness experiment.
#[derive(Debug, Clone)]
pub struct EffectivenessConfig {
    /// Engine and workload parameters (k, window, scoring, seed, …).
    pub processing: ProcessingConfig,
    /// Number of judges in the proxy user study.
    pub judges: usize,
}

impl Default for EffectivenessConfig {
    fn default() -> Self {
        EffectivenessConfig {
            processing: ProcessingConfig {
                k: 5,
                num_queries: 20,
                ..ProcessingConfig::default()
            },
            judges: 3,
        }
    }
}

/// Aggregated effectiveness results for one dataset.
#[derive(Debug, Clone)]
pub struct EffectivenessReport {
    /// Method names (same order as the metric vectors).
    pub methods: Vec<String>,
    /// Mean coverage score per method (Table 6, "Coverage" rows).
    pub coverage: Vec<f64>,
    /// Mean normalised influence per method (Table 6, "Influence" rows).
    pub influence: Vec<f64>,
    /// Proxy user study outcome (Table 5).
    pub user_study: UserStudyOutcome,
    /// Number of queries evaluated.
    pub queries_run: usize,
}

/// Runs the five methods over the same workload and scores them.
pub fn run_effectiveness(
    stream: &GeneratedStream,
    config: &EffectivenessConfig,
) -> Result<EffectivenessReport> {
    let processing = &config.processing;
    let mut engine = build_engine(stream, processing)?;

    let workload = QueryWorkloadGenerator::new(&stream.planted, processing.seed)
        .generate(processing.num_queries, stream.end_time().max(Timestamp(1)))?;
    let mut queries = workload;
    queries.sort_by_key(|q| q.timestamp);

    let k = processing.k;
    let tfidf = TfIdfSearcher::new();
    let div = DivSearcher::new();
    let sumblr = SumblrSummarizer::new();
    let rel = RelSearcher::new();

    // Collected per query: the pool snapshot, the query vector, and the five
    // result sets (owned, so the user study can borrow them afterwards).
    let mut judged: Vec<(SearchPool, QueryVector, Vec<Vec<ElementId>>)> = Vec::new();
    let mut coverage_totals = vec![0.0; METHODS.len()];
    let mut influence_totals = vec![0.0; METHODS.len()];

    let bucket_len = processing.bucket_len.min(processing.window_len).max(1);
    let mut bucket_end = bucket_len;
    let mut pending = Vec::new();
    let mut next_query = 0usize;

    let evaluate_due = |engine: &ksir_core::KsirEngine<ksir_types::DenseTopicWordTable>,
                        next_query: &mut usize,
                        judged: &mut Vec<(SearchPool, QueryVector, Vec<Vec<ElementId>>)>,
                        coverage_totals: &mut Vec<f64>,
                        influence_totals: &mut Vec<f64>|
     -> Result<()> {
        while *next_query < queries.len() && queries[*next_query].timestamp <= engine.now() {
            let generated = &queries[*next_query];
            let pool = pool_from_engine(engine);
            let ksir_query =
                KsirQuery::new(k, generated.vector.clone())?.with_epsilon(processing.epsilon)?;
            let results: Vec<Vec<ElementId>> = vec![
                result_ids(&tfidf.search(&generated.keywords, &pool, k)),
                result_ids(&div.search(&generated.keywords, &pool, k)),
                result_ids(&sumblr.search(&generated.keywords, &pool, k)),
                result_ids(&rel.search(&generated.vector, &pool, k)),
                engine.query(&ksir_query, Algorithm::Mttd)?.elements,
            ];
            for (m, result) in results.iter().enumerate() {
                coverage_totals[m] += coverage_score(&pool, &generated.vector, result);
                influence_totals[m] += normalized_influence_score(&pool, result);
            }
            judged.push((pool, generated.vector.clone(), results));
            *next_query += 1;
        }
        Ok(())
    };

    for (element, tv) in stream.iter_pairs() {
        while element.ts.raw() > bucket_end {
            engine.ingest_bucket(std::mem::take(&mut pending), Timestamp(bucket_end))?;
            evaluate_due(
                &engine,
                &mut next_query,
                &mut judged,
                &mut coverage_totals,
                &mut influence_totals,
            )?;
            bucket_end += bucket_len;
        }
        pending.push((element, tv));
    }
    engine.ingest_bucket(pending, Timestamp(bucket_end))?;
    evaluate_due(
        &engine,
        &mut next_query,
        &mut judged,
        &mut coverage_totals,
        &mut influence_totals,
    )?;
    // Every query timestamp lies in [1, t_n] and the final bucket end is at
    // least t_n, so by now the whole workload has been evaluated.
    debug_assert_eq!(next_query, queries.len());

    let queries_run = judged.len().max(1);
    let study = UserStudy::new(METHODS.to_vec(), processing.seed).with_judges(config.judges);
    let study_queries: Vec<StudyQuery<'_>> = judged
        .iter()
        .map(|(pool, vector, results)| StudyQuery {
            pool,
            query: vector.clone(),
            results: results.clone(),
        })
        .collect();
    let user_study = study.run(&study_queries);

    Ok(EffectivenessReport {
        methods: METHODS.iter().map(|s| s.to_string()).collect(),
        coverage: coverage_totals
            .into_iter()
            .map(|t| t / queries_run as f64)
            .collect(),
        influence: influence_totals
            .into_iter()
            .map(|t| t / queries_run as f64)
            .collect(),
        user_study,
        queries_run: judged.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksir_datagen::{DatasetProfile, StreamGenerator};

    #[test]
    fn ksir_wins_on_coverage_and_influence() {
        let profile = DatasetProfile::twitter().scaled(0.05).with_topics(10);
        let stream = StreamGenerator::new(profile, 11)
            .unwrap()
            .generate()
            .unwrap();
        let config = EffectivenessConfig {
            processing: ProcessingConfig {
                k: 5,
                num_queries: 8,
                bucket_len: 60,
                ..ProcessingConfig::default()
            },
            judges: 3,
        };
        let report = run_effectiveness(&stream, &config).unwrap();
        assert_eq!(report.methods.len(), 5);
        assert_eq!(report.queries_run, 8);
        let ksir = report.methods.iter().position(|m| m == "k-SIR").unwrap();
        // k-SIR should at least match every baseline on coverage and influence
        // (Table 6's qualitative claim).
        for m in 0..report.methods.len() {
            assert!(
                report.coverage[ksir] + 1e-9 >= report.coverage[m],
                "coverage: k-SIR {} < {} {}",
                report.coverage[ksir],
                report.methods[m],
                report.coverage[m]
            );
            assert!(
                report.influence[ksir] + 1e-9 >= report.influence[m],
                "influence: k-SIR {} < {} {}",
                report.influence[ksir],
                report.methods[m],
                report.influence[m]
            );
        }
        // User-study ratings live on the 1–5 scale and k-SIR leads there too.
        let ratings = &report.user_study.representativeness;
        assert!(ratings.iter().all(|r| (1.0..=5.0).contains(r)));
        assert!(ratings[ksir] >= ratings[0]);
    }
}
