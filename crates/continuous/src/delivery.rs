//! Per-subscriber delivery queues for the asynchronous pipeline.
//!
//! Refresh workers *produce* [`ResultDelta`]s; subscribers *consume* them at
//! their own pace through a bounded queue.  The bound plus an explicit
//! [`OverflowPolicy`] is what guarantees a slow consumer back-pressures only
//! itself: with the default [`OverflowPolicy::DropOldest`], a full queue
//! sheds its oldest delta (counted in [`DeliveryReceiver::dropped`]) instead
//! of blocking the shard's refresh worker, so ingestion latency stays
//! independent of how fast — or whether — any subscriber drains.
//!
//! A queue is attached to a live subscription with
//! [`SubscriptionManager::attach_delivery`](crate::SubscriptionManager::attach_delivery)
//! and hands back a [`DeliveryReceiver`] — a `Receiver`-style handle that can
//! be moved to any consumer thread.  Every delta the subscription's refreshes
//! produce from then on (through either the synchronous or the asynchronous
//! ingestion API) is enqueued, stamped with the slide number it belongs to,
//! until the subscription is removed or the queue detached.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use ksir_telemetry::{Counter, Histogram, Telemetry, TraceEventKind};

use crate::subscription::ResultDelta;

/// What a producer does when a subscriber's queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverflowPolicy {
    /// Drop the **oldest** queued delta to make room (the default).  The
    /// subscriber keeps seeing the freshest changes and the producer never
    /// blocks; [`DeliveryReceiver::dropped`] counts the shed deltas so a
    /// consumer can detect the gap and force a full refresh if it cares.
    #[default]
    DropOldest,
    /// Drop the **incoming** delta instead, preserving the queued prefix.
    /// Useful when a consumer replays deltas in order and would rather lose
    /// the tail than the head of the sequence.
    DropNewest,
    /// Block the producing worker until the consumer makes room.  This
    /// back-pressures the whole shard (and, through the epoch barrier, the
    /// next index update) — only for callers that prefer losing throughput
    /// over losing deltas.
    Block,
}

/// One delta as delivered to a subscriber, stamped with the slide (1-based
/// ingestion epoch) that produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct Delivery {
    /// The slide this delta belongs to (`ManagerStats::slides` at the time
    /// the bucket was ingested).
    pub slide: u64,
    /// The result change itself.
    pub delta: ResultDelta,
}

/// Queue configuration fixed at attach time.
///
/// # Example
///
/// ```
/// use ksir_continuous::{DeliveryConfig, OverflowPolicy, SubscriptionManager};
/// use ksir_core::{fixtures::paper_example, Algorithm, KsirQuery};
/// use ksir_types::QueryVector;
///
/// let example = paper_example();
/// let mut manager = SubscriptionManager::new(example.empty_engine());
/// let query = KsirQuery::new(2, QueryVector::new(vec![0.5, 0.5])?)?;
/// let sub = manager.subscribe(query, Algorithm::Mtts)?;
///
/// // A small queue that keeps the *head* of the delta sequence on overflow.
/// let config = DeliveryConfig::default()
///     .with_capacity(8)
///     .with_policy(OverflowPolicy::DropNewest);
/// let receiver = manager.attach_delivery(sub, config).unwrap();
///
/// for (element, tv) in example.stream() {
///     let ts = element.ts;
///     manager.ingest_bucket(vec![(element, tv)], ts)?;
/// }
/// // Every delta is stamped with the 1-based slide that produced it.
/// let deliveries = receiver.drain();
/// assert!(!deliveries.is_empty());
/// assert!(deliveries.windows(2).all(|w| w[0].slide <= w[1].slide));
/// assert_eq!(receiver.dropped(), 0);
/// # Ok::<(), ksir_types::KsirError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeliveryConfig {
    /// Maximum queued deliveries before the overflow policy applies.
    pub capacity: usize,
    /// What to do when the queue is full.
    pub policy: OverflowPolicy,
}

impl Default for DeliveryConfig {
    fn default() -> Self {
        DeliveryConfig {
            capacity: 1024,
            policy: OverflowPolicy::DropOldest,
        }
    }
}

impl DeliveryConfig {
    /// Overrides the capacity.
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity.max(1);
        self
    }

    /// Overrides the overflow policy.
    pub fn with_policy(mut self, policy: OverflowPolicy) -> Self {
        self.policy = policy;
        self
    }
}

#[derive(Debug, Default)]
struct QueueState {
    items: VecDeque<Delivery>,
    dropped: u64,
    /// Producer side gone: the subscription was removed or detached.
    closed: bool,
    /// Consumer side gone: the receiver was dropped.
    receiver_alive: bool,
}

#[derive(Debug)]
struct Channel {
    state: Mutex<QueueState>,
    /// Signalled when an item is popped (for [`OverflowPolicy::Block`]
    /// producers) or when the channel closes.
    space: Condvar,
}

/// The queue layer's handle into the manager's [`Telemetry`] bundle:
/// pre-resolved `delivery.*` counters plus the shared trace.
///
/// Accounting convention: `delivery.enqueued` counts deltas **accepted into
/// a queue**, `delivery.dropped` counts deltas **shed by an overflow
/// policy** — so `enqueued - dropped` under [`OverflowPolicy::DropOldest`]
/// (where a delta can be accepted and later shed) and `enqueued` under the
/// other policies both equal what a draining consumer receives.  Sends to a
/// closed queue or one whose receiver is gone are not counted at all,
/// matching [`DeliveryReceiver::dropped`].
#[derive(Debug, Clone)]
pub(crate) struct DeliveryTelemetry {
    bundle: Arc<Telemetry>,
    enqueued: Arc<Counter>,
    dropped: Arc<Counter>,
    /// Ingest-to-acceptance freshness of every delta a queue **accepted** —
    /// recorded at enqueue, so its count equals `delivery.enqueued` exactly
    /// (the slide-for-slide e2e oracle the chaos harness asserts).
    e2e: Arc<Histogram>,
    /// Ingest-to-shed age of every delta an overflow policy (or a counted
    /// fault shed) dropped — the per-outcome twin of `delivery.e2e`.
    e2e_dropped: Arc<Histogram>,
}

impl DeliveryTelemetry {
    pub(crate) fn new(bundle: Arc<Telemetry>) -> Self {
        let registry = bundle.registry();
        DeliveryTelemetry {
            enqueued: registry.counter("delivery.enqueued"),
            dropped: registry.counter("delivery.dropped"),
            e2e: registry.histogram("delivery.e2e"),
            e2e_dropped: registry.histogram("delivery.e2e.dropped"),
            bundle,
        }
    }

    /// Records one end-to-end freshness sample for `slide` on `histogram`:
    /// the delta's age measured from the instant its bucket hit the index
    /// (the [`FreshnessClock`](ksir_telemetry::FreshnessClock) stamp).  A
    /// slide whose stamp was capacity-pruned contributes no sample — old
    /// epochs fall out of the clock and the histogram together.
    fn observe_e2e(&self, histogram: &Histogram, slide: u64) {
        if let Some(stamp) = self.bundle.freshness().stamp_of(slide) {
            let age = self.bundle.now_nanos().saturating_sub(stamp);
            histogram.record(Duration::from_nanos(age));
        }
    }
}

/// Producer half, held by the manager's delivery registry and used by refresh
/// workers.  Crate-internal: subscribers only ever see the receiver.
#[derive(Debug, Clone)]
pub(crate) struct DeliverySender {
    channel: Arc<Channel>,
    config: DeliveryConfig,
    telemetry: Option<DeliveryTelemetry>,
}

impl DeliverySender {
    /// Enqueues one delta under the configured overflow policy.
    pub(crate) fn send(&self, slide: u64, delta: ResultDelta) {
        let subscription = delta.subscription.raw();
        let mut state = self.channel.state.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if !state.receiver_alive || state.closed {
                // No consumer, or the queue was closed (unsubscribe/detach):
                // deliveries are shed.  Checking `closed` inside the loop is
                // what lets a close() unwedge a Block-policy producer whose
                // consumer stopped draining.
                return;
            }
            if state.items.len() < self.config.capacity {
                state.items.push_back(Delivery { slide, delta });
                if let Some(telemetry) = &self.telemetry {
                    telemetry.enqueued.inc();
                    telemetry.observe_e2e(&telemetry.e2e, slide);
                    telemetry.bundle.record(
                        slide,
                        None,
                        TraceEventKind::DeltaDelivered { subscription },
                    );
                }
                return;
            }
            match self.config.policy {
                OverflowPolicy::DropOldest => {
                    let shed = state.items.pop_front();
                    state.dropped += 1;
                    if let (Some(telemetry), Some(shed)) = (&self.telemetry, shed) {
                        telemetry.dropped.inc();
                        telemetry.observe_e2e(&telemetry.e2e_dropped, shed.slide);
                        telemetry.bundle.record(
                            shed.slide,
                            None,
                            TraceEventKind::DeltaDropped {
                                subscription: shed.delta.subscription.raw(),
                            },
                        );
                    }
                }
                OverflowPolicy::DropNewest => {
                    state.dropped += 1;
                    if let Some(telemetry) = &self.telemetry {
                        telemetry.dropped.inc();
                        telemetry.observe_e2e(&telemetry.e2e_dropped, slide);
                        telemetry.bundle.record(
                            slide,
                            None,
                            TraceEventKind::DeltaDropped { subscription },
                        );
                    }
                    return;
                }
                OverflowPolicy::Block => {
                    state = self
                        .channel
                        .space
                        .wait(state)
                        .unwrap_or_else(|p| p.into_inner());
                }
            }
        }
    }

    /// Accounts a delta lost to a send-path fault as a **counted** shed on
    /// this queue, without enqueueing anything: the queue's `dropped` tally,
    /// the `delivery.dropped` counter, and a
    /// [`TraceEventKind::DeltaDropped`] event are all charged, exactly as if
    /// an overflow policy had shed the delta.  Called by the worker's
    /// delivery seam after it catches a poisoned (panicking) send, keeping
    /// `delivered + dropped == result_changes` reconciled through the fault.
    /// No-op once the consumer is gone or the queue closed — matching
    /// [`DeliverySender::send`], which doesn't count those sheds either.
    pub(crate) fn shed(&self, slide: u64, subscription: crate::subscription::SubscriptionId) {
        let mut state = self.channel.state.lock().unwrap_or_else(|p| p.into_inner());
        if !state.receiver_alive || state.closed {
            return;
        }
        state.dropped += 1;
        if let Some(telemetry) = &self.telemetry {
            telemetry.dropped.inc();
            telemetry.observe_e2e(&telemetry.e2e_dropped, slide);
            telemetry.bundle.record(
                slide,
                None,
                TraceEventKind::DeltaDropped {
                    subscription: subscription.raw(),
                },
            );
        }
    }

    /// Deliveries currently queued (the producer-side view the manager sums
    /// into the `delivery.queue_depth` gauge).
    pub(crate) fn len(&self) -> usize {
        self.channel
            .state
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .items
            .len()
    }

    /// Marks the producer side closed (subscription removed / detached).
    pub(crate) fn close(&self) {
        let mut state = self.channel.state.lock().unwrap_or_else(|p| p.into_inner());
        state.closed = true;
        self.channel.space.notify_all();
    }
}

/// Consumer half of a subscription's delivery queue.
///
/// `Receiver`-style: poll with [`DeliveryReceiver::try_recv`] or take
/// everything queued with [`DeliveryReceiver::drain`].  Dropping the receiver
/// detaches the consumer; producers then shed this subscription's deltas
/// without blocking.
#[derive(Debug)]
pub struct DeliveryReceiver {
    channel: Arc<Channel>,
}

impl DeliveryReceiver {
    /// Pops the oldest queued delivery, if any.
    pub fn try_recv(&self) -> Option<Delivery> {
        let mut state = self.channel.state.lock().unwrap_or_else(|p| p.into_inner());
        let item = state.items.pop_front();
        if item.is_some() {
            self.channel.space.notify_one();
        }
        item
    }

    /// Takes every queued delivery at once, oldest first.
    pub fn drain(&self) -> Vec<Delivery> {
        let mut state = self.channel.state.lock().unwrap_or_else(|p| p.into_inner());
        let items: Vec<Delivery> = state.items.drain(..).collect();
        if !items.is_empty() {
            self.channel.space.notify_all();
        }
        items
    }

    /// Number of deliveries currently queued.
    pub fn len(&self) -> usize {
        self.channel
            .state
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .items
            .len()
    }

    /// Returns `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Deltas shed by the overflow policy since attach.
    pub fn dropped(&self) -> u64 {
        self.channel
            .state
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .dropped
    }

    /// Returns `true` once the producer side is gone (the subscription was
    /// removed or the queue detached) — no further deliveries will arrive.
    pub fn is_closed(&self) -> bool {
        self.channel
            .state
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .closed
    }
}

impl Drop for DeliveryReceiver {
    fn drop(&mut self) {
        let mut state = self.channel.state.lock().unwrap_or_else(|p| p.into_inner());
        state.receiver_alive = false;
        state.items.clear();
        self.channel.space.notify_all();
    }
}

/// Creates a connected sender/receiver pair.  `telemetry` (the manager's
/// handles) makes the producer count and trace enqueues/sheds; `None` keeps
/// the queue silent (standalone/unit use).
pub(crate) fn delivery_queue(
    config: DeliveryConfig,
    telemetry: Option<DeliveryTelemetry>,
) -> (DeliverySender, DeliveryReceiver) {
    let channel = Arc::new(Channel {
        state: Mutex::new(QueueState {
            receiver_alive: true,
            ..QueueState::default()
        }),
        space: Condvar::new(),
    });
    (
        DeliverySender {
            channel: Arc::clone(&channel),
            config,
            telemetry,
        },
        DeliveryReceiver { channel },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subscription::{RefreshReason, SubscriptionId};

    fn delta(n: u64) -> ResultDelta {
        ResultDelta {
            subscription: SubscriptionId(n),
            reason: RefreshReason::TopicDisturbed,
            added: Vec::new(),
            removed: Vec::new(),
            score_before: 0.0,
            score_after: n as f64 + 1.0,
        }
    }

    #[test]
    fn fifo_order_and_drain() {
        let (tx, rx) = delivery_queue(DeliveryConfig::default(), None);
        for i in 0..3 {
            tx.send(i + 1, delta(i));
        }
        assert_eq!(rx.len(), 3);
        assert_eq!(rx.try_recv().unwrap().slide, 1);
        let rest = rx.drain();
        assert_eq!(rest.len(), 2);
        assert_eq!(rest[0].slide, 2);
        assert!(rx.is_empty());
        assert_eq!(rx.dropped(), 0);
    }

    #[test]
    fn drop_oldest_sheds_the_head() {
        let (tx, rx) = delivery_queue(DeliveryConfig::default().with_capacity(2), None);
        for i in 0..4 {
            tx.send(i + 1, delta(i));
        }
        assert_eq!(rx.dropped(), 2);
        let items = rx.drain();
        assert_eq!(
            items.iter().map(|d| d.slide).collect::<Vec<_>>(),
            vec![3, 4],
            "the freshest deltas survive"
        );
    }

    #[test]
    fn drop_newest_sheds_the_incoming() {
        let (tx, rx) = delivery_queue(
            DeliveryConfig::default()
                .with_capacity(2)
                .with_policy(OverflowPolicy::DropNewest),
            None,
        );
        for i in 0..4 {
            tx.send(i + 1, delta(i));
        }
        assert_eq!(rx.dropped(), 2);
        let items = rx.drain();
        assert_eq!(
            items.iter().map(|d| d.slide).collect::<Vec<_>>(),
            vec![1, 2],
            "the queued prefix survives"
        );
    }

    #[test]
    fn block_policy_waits_for_the_consumer() {
        let (tx, rx) = delivery_queue(
            DeliveryConfig::default()
                .with_capacity(1)
                .with_policy(OverflowPolicy::Block),
            None,
        );
        tx.send(1, delta(0));
        let producer = std::thread::spawn(move || {
            tx.send(2, delta(1)); // blocks until the consumer pops
            tx.send(3, delta(2));
        });
        // Drain until the producer has pushed all three.
        let mut seen = Vec::new();
        while seen.len() < 3 {
            match rx.try_recv() {
                Some(d) => seen.push(d.slide),
                None => std::thread::yield_now(),
            }
        }
        producer.join().unwrap();
        assert_eq!(seen, vec![1, 2, 3]);
        assert_eq!(rx.dropped(), 0);
    }

    #[test]
    fn dropped_receiver_unblocks_and_discards() {
        let (tx, rx) = delivery_queue(
            DeliveryConfig::default()
                .with_capacity(1)
                .with_policy(OverflowPolicy::Block),
            None,
        );
        tx.send(1, delta(0));
        let producer = {
            let tx = tx.clone();
            std::thread::spawn(move || tx.send(2, delta(1)))
        };
        drop(rx);
        // The producer must return (receiver gone ⇒ deltas shed, not queued).
        producer.join().unwrap();
        tx.close();
    }

    #[test]
    fn close_unblocks_a_stalled_block_producer() {
        let (tx, rx) = delivery_queue(
            DeliveryConfig::default()
                .with_capacity(1)
                .with_policy(OverflowPolicy::Block),
            None,
        );
        tx.send(1, delta(0));
        let producer = {
            let tx = tx.clone();
            std::thread::spawn(move || tx.send(2, delta(1))) // full queue: blocks
        };
        // Give the producer a moment to park, then close: it must return
        // (shedding the delta) even though the consumer never drained.
        std::thread::sleep(std::time::Duration::from_millis(10));
        tx.close();
        producer.join().unwrap();
        assert_eq!(rx.len(), 1, "only the first delta was queued");
    }

    #[test]
    fn e2e_histograms_mirror_the_accept_and_shed_counters() {
        let bundle = Arc::new(Telemetry::default());
        for slide in 1..=3 {
            bundle.freshness().stamp(slide, 0);
        }
        let (tx, rx) = delivery_queue(
            DeliveryConfig::default().with_capacity(2),
            Some(DeliveryTelemetry::new(Arc::clone(&bundle))),
        );
        for i in 0..3 {
            tx.send(i + 1, delta(i));
        }
        let registry = bundle.registry();
        // Accept-time recording: e2e count == enqueued, per-outcome twin ==
        // dropped (slide 1 was accepted, then shed by DropOldest).
        assert_eq!(registry.counter("delivery.enqueued").get(), 3);
        assert_eq!(registry.histogram("delivery.e2e").count(), 3);
        assert_eq!(registry.counter("delivery.dropped").get(), 1);
        assert_eq!(registry.histogram("delivery.e2e.dropped").count(), 1);
        assert_eq!(tx.len(), 2, "sender sees the queue depth");
        // A slide with no retained stamp contributes no sample but still
        // counts as enqueued.
        rx.try_recv();
        tx.send(99, delta(9));
        assert_eq!(registry.counter("delivery.enqueued").get(), 4);
        assert_eq!(registry.histogram("delivery.e2e").count(), 3);
        drop(rx);
    }

    #[test]
    fn close_is_visible_to_the_receiver() {
        let (tx, rx) = delivery_queue(DeliveryConfig::default(), None);
        assert!(!rx.is_closed());
        tx.close();
        assert!(rx.is_closed());
    }
}
