//! Epoch and shard snapshot types.

use std::collections::HashMap;
use std::sync::Arc;

use ksir_core::{
    prime_singleton_cache, run_query, run_query_cached, Algorithm, KsirEngine, KsirQuery,
    QueryResult, QuerySource, RankedView, ScoringConfig, SingletonCache, StoredScore,
};
use ksir_stream::{ActiveWindow, RankedListCursor, RankedListHandle, RankedPrefix, WindowDelta};
use ksir_types::{ElementId, Result, Timestamp, TopicId, TopicVector, TopicWordDistribution};

use crate::stats::SnapshotCounters;
use crate::SnapshotPolicy;

/// A frozen image of everything a k-SIR query evaluation reads, captured at
/// one epoch boundary (immediately after an index update).
///
/// Capture is `O(z)` `Arc` clones — no tuple, element, or topic vector is
/// copied.  The engine's subsequent mutations copy-on-write around the image,
/// so it keeps answering queries exactly as the engine would have at the
/// capture epoch, from any thread, for as long as it is alive.
#[derive(Debug)]
pub struct EngineSnapshot<D> {
    epoch: u64,
    /// One slot per topic; `None` = outside the watched set of a bounded
    /// capture (reads as an empty list, and the writer never pays
    /// copy-on-write for it).
    lists: Vec<Option<RankedListHandle>>,
    window: Arc<ActiveWindow>,
    topic_vectors: Arc<HashMap<ElementId, TopicVector>>,
    phi: Arc<D>,
    scoring: ScoringConfig,
    counters: SnapshotCounters,
}

impl<D: TopicWordDistribution> EngineSnapshot<D> {
    /// Captures the engine's current state as epoch `epoch`, all topics
    /// included.
    pub fn capture(engine: &KsirEngine<D>, epoch: u64, counters: &SnapshotCounters) -> Self {
        counters.count_epoch();
        EngineSnapshot {
            epoch,
            lists: engine
                .ranked_lists()
                .share_all()
                .into_iter()
                .map(Some)
                .collect(),
            window: engine.shared_window(),
            topic_vectors: engine.shared_topic_vectors(),
            phi: engine.shared_phi(),
            scoring: engine.config().scoring,
            counters: counters.clone(),
        }
    }

    /// Captures only the given topics' ranked lists (plus the full window
    /// image).  Unwatched lists read as empty **and** cost the writer no
    /// copy-on-write when it mutates them — the right capture when the set
    /// of topics any standing query can traverse is known, as it is for the
    /// subscription manager (the union of resident support topics).
    pub fn capture_watched<I>(
        engine: &KsirEngine<D>,
        epoch: u64,
        counters: &SnapshotCounters,
        watched: I,
    ) -> Self
    where
        I: IntoIterator<Item = TopicId>,
    {
        counters.count_epoch();
        let ranked = engine.ranked_lists();
        let mut lists: Vec<Option<RankedListHandle>> = Vec::new();
        lists.resize_with(ranked.num_topics(), || None);
        for topic in watched {
            if let Some(slot) = lists.get_mut(topic.index()) {
                *slot = Some(ranked.list(topic).share());
            }
        }
        EngineSnapshot {
            epoch,
            lists,
            window: engine.shared_window(),
            topic_vectors: engine.shared_topic_vectors(),
            phi: engine.shared_phi(),
            scoring: engine.config().scoring,
            counters: counters.clone(),
        }
    }

    /// The epoch (1-based slide number) this image belongs to.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The frozen active window.
    pub fn window(&self) -> &ActiveWindow {
        self.window.as_ref()
    }

    /// Number of active elements in the image.
    pub fn active_count(&self) -> usize {
        self.window.len()
    }
}

impl<D> RankedView for EngineSnapshot<D> {
    fn num_topics(&self) -> usize {
        self.lists.len()
    }

    fn cursor(&self, topic: TopicId) -> RankedListCursor<'_> {
        match &self.lists[topic.index()] {
            Some(list) => list.cursor(),
            // Outside a bounded capture's watched set: reads as empty.
            None => RankedListCursor::over(std::iter::empty()),
        }
    }

    fn suffix_cursor(&self, topic: TopicId, high: f64) -> RankedListCursor<'_> {
        match &self.lists[topic.index()] {
            Some(list) => list.suffix_cursor(high),
            None => RankedListCursor::over(std::iter::empty()),
        }
    }

    fn stored_score(&self, topic: TopicId, id: ElementId) -> StoredScore {
        match &self.lists[topic.index()] {
            Some(list) => match list.get(id) {
                Some((score, _)) => StoredScore::Score(score),
                None => StoredScore::Absent,
            },
            // An unwatched slot reads as empty for traversal, but the scorer
            // would still credit the topic — a tuple lookup here must not
            // masquerade as "score zero".
            None => StoredScore::Unsupported,
        }
    }
}

impl<D: TopicWordDistribution> QuerySource for EngineSnapshot<D> {
    fn num_topics(&self) -> usize {
        self.phi.num_topics()
    }

    fn query(&self, query: &KsirQuery, algorithm: Algorithm) -> Result<QueryResult> {
        run_query(
            self,
            self.window.as_ref(),
            self.topic_vectors.as_ref(),
            self.phi.as_ref(),
            self.scoring,
            query,
            algorithm,
        )
    }

    fn query_delta(
        &self,
        query: &KsirQuery,
        algorithm: Algorithm,
        delta: &WindowDelta,
        cache: &mut SingletonCache,
    ) -> Result<QueryResult> {
        prime_singleton_cache(self, query, delta, cache);
        run_query_cached(
            self,
            self.window.as_ref(),
            self.topic_vectors.as_ref(),
            self.phi.as_ref(),
            self.scoring,
            query,
            algorithm,
            Some(cache),
        )
    }
}

/// The ranked-list view one shard's refresh needs, as floors: per watched
/// topic, the truncation floor ([`None`] = serve the whole list).  Derived
/// from the shard's [`FloorAggregate`](ksir_core::FloorAggregate) — the
/// loosest traversal floor across residents — by the subscription manager.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PrefixSpec {
    /// `(topic, truncation floor)` per topic any resident's traversal can
    /// open a cursor on.
    pub floors: Vec<(TopicId, Option<f64>)>,
}

impl PrefixSpec {
    /// A spec serving `topics` whole (no truncation).
    pub fn whole_lists<I: IntoIterator<Item = TopicId>>(topics: I) -> Self {
        PrefixSpec {
            floors: topics.into_iter().map(|t| (t, None)).collect(),
        }
    }
}

/// A bounded, per-shard view of one [`EngineSnapshot`]: the ranked lists the
/// shard's residents traverse — truncated at the shard's floors under
/// [`SnapshotPolicy::TruncateAtFloors`] — plus the shared window image every
/// evaluation needs.
///
/// Topics outside the spec fall back to the shared epoch image, so a query
/// can never observe missing lists — truncation is a memory optimisation,
/// never a correctness cliff for scheduling.
#[derive(Debug)]
pub struct ShardSnapshot<D> {
    engine: Arc<EngineSnapshot<D>>,
    /// Materialised floor-truncated prefixes (only under `TruncateAtFloors`,
    /// and only for topics with a finite floor).
    prefixes: HashMap<TopicId, RankedPrefix>,
}

impl<D: TopicWordDistribution> ShardSnapshot<D> {
    /// Builds the shard view over a captured epoch image.
    pub fn new(engine: Arc<EngineSnapshot<D>>, spec: &PrefixSpec, policy: SnapshotPolicy) -> Self {
        let counters = engine.counters.clone();
        counters.count_shard_snapshot();
        let mut prefixes = HashMap::new();
        for &(topic, floor) in &spec.floors {
            let list = match engine.lists.get(topic.index()) {
                Some(Some(list)) => list,
                // Out of range or outside the watched set (reads as empty):
                // nothing to materialise.
                _ => continue,
            };
            match (policy, floor) {
                (SnapshotPolicy::TruncateAtFloors, Some(floor)) => {
                    let prefix = list.prefix(Some(floor));
                    counters.count_truncated_prefix(prefix.len(), prefix.truncated());
                    prefixes.insert(topic, prefix);
                }
                _ => counters.count_shared_prefix(),
            }
        }
        ShardSnapshot { engine, prefixes }
    }

    /// The epoch this view belongs to.
    pub fn epoch(&self) -> u64 {
        self.engine.epoch()
    }

    /// Number of topics served as materialised truncated prefixes.
    pub fn truncated_topics(&self) -> usize {
        self.prefixes.len()
    }
}

/// Iterator over a truncated prefix that reports a shortfall the first time
/// a traversal exhausts it while tuples were dropped below the floor.
struct ShortfallIter<I> {
    inner: I,
    truncated: bool,
    counters: SnapshotCounters,
    reported: bool,
}

impl<I: Iterator<Item = (ElementId, f64, Timestamp)>> Iterator for ShortfallIter<I> {
    type Item = (ElementId, f64, Timestamp);

    fn next(&mut self) -> Option<Self::Item> {
        let next = self.inner.next();
        if next.is_none() && self.truncated && !self.reported {
            self.reported = true;
            self.counters.count_shortfall();
        }
        next
    }
}

impl<D> RankedView for ShardSnapshot<D> {
    fn num_topics(&self) -> usize {
        self.engine.lists.len()
    }

    fn cursor(&self, topic: TopicId) -> RankedListCursor<'_> {
        match self.prefixes.get(&topic) {
            Some(prefix) => RankedListCursor::over(ShortfallIter {
                inner: prefix.iter(),
                truncated: prefix.is_truncated(),
                counters: self.engine.counters.clone(),
                reported: false,
            }),
            None => self.engine.cursor(topic),
        }
    }

    fn suffix_cursor(&self, topic: TopicId, high: f64) -> RankedListCursor<'_> {
        match self.prefixes.get(&topic) {
            Some(prefix) => RankedListCursor::over(ShortfallIter {
                inner: prefix.suffix_iter(high),
                truncated: prefix.is_truncated(),
                counters: self.engine.counters.clone(),
                reported: false,
            }),
            None => self.engine.suffix_cursor(topic, high),
        }
    }

    fn stored_score(&self, topic: TopicId, id: ElementId) -> StoredScore {
        if self.prefixes.contains_key(&topic) {
            // A truncated prefix has no id-indexed storage and may have
            // dropped the tuple below its floor: point lookups fall back to
            // a scoring pass.
            StoredScore::Unsupported
        } else {
            self.engine.stored_score(topic, id)
        }
    }
}

impl<D: TopicWordDistribution> QuerySource for ShardSnapshot<D> {
    fn num_topics(&self) -> usize {
        self.engine.phi.num_topics()
    }

    fn query(&self, query: &KsirQuery, algorithm: Algorithm) -> Result<QueryResult> {
        run_query(
            self,
            self.engine.window.as_ref(),
            self.engine.topic_vectors.as_ref(),
            self.engine.phi.as_ref(),
            self.engine.scoring,
            query,
            algorithm,
        )
    }

    fn query_delta(
        &self,
        query: &KsirQuery,
        algorithm: Algorithm,
        delta: &WindowDelta,
        cache: &mut SingletonCache,
    ) -> Result<QueryResult> {
        prime_singleton_cache(self, query, delta, cache);
        run_query_cached(
            self,
            self.engine.window.as_ref(),
            self.engine.topic_vectors.as_ref(),
            self.engine.phi.as_ref(),
            self.engine.scoring,
            query,
            algorithm,
            Some(cache),
        )
    }
}

/// Object-safe handle to a captured epoch, so pipelined consumers can carry
/// snapshots through non-generic plumbing (channels, shard queues) without
/// naming the topic-model type `D`.
pub trait SnapshotSource: Send + Sync {
    /// The epoch this image belongs to.
    fn epoch(&self) -> u64;

    /// Builds the bounded per-shard query source over this image.
    fn shard_source(
        self: Arc<Self>,
        spec: &PrefixSpec,
        policy: SnapshotPolicy,
    ) -> Arc<dyn QuerySource + Send + Sync>;

    /// Serves the whole image as a query source — the [`SnapshotPolicy::Exact`]
    /// fast path, which needs neither a spec nor a [`ShardSnapshot`]
    /// allocation (the image's lists are already the exact view).  Counted
    /// as a shard snapshot, since it serves the same per-shard handoff.
    fn as_query_source(self: Arc<Self>) -> Arc<dyn QuerySource + Send + Sync>;
}

impl<D: TopicWordDistribution + Send + Sync + 'static> SnapshotSource for EngineSnapshot<D> {
    fn epoch(&self) -> u64 {
        self.epoch
    }

    fn shard_source(
        self: Arc<Self>,
        spec: &PrefixSpec,
        policy: SnapshotPolicy,
    ) -> Arc<dyn QuerySource + Send + Sync> {
        Arc::new(ShardSnapshot::new(self, spec, policy))
    }

    fn as_query_source(self: Arc<Self>) -> Arc<dyn QuerySource + Send + Sync> {
        self.counters.count_shard_snapshot();
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksir_core::fixtures::paper_example;
    use ksir_types::QueryVector;

    fn query(k: usize, weights: &[f64]) -> KsirQuery {
        KsirQuery::new(k, QueryVector::new(weights.to_vec()).unwrap()).unwrap()
    }

    /// A snapshot keeps answering with the capture-epoch state while the
    /// engine slides on underneath — the pipelining invariant.
    #[test]
    fn snapshot_stays_frozen_while_the_engine_advances() {
        let ex = paper_example();
        let mut engine = ex.empty_engine();
        let q = query(2, &[0.5, 0.5]);
        // Ingest the first half of the stream, then capture.
        let stream = ex.stream();
        let half = stream.len() / 2;
        for (element, tv) in stream.iter().take(half).cloned() {
            let end = element.ts;
            engine.ingest_bucket(vec![(element, tv)], end).unwrap();
        }
        let counters = SnapshotCounters::new();
        let snap = EngineSnapshot::capture(&engine, half as u64, &counters);
        assert_eq!(snap.epoch(), half as u64);
        assert_eq!(snap.active_count(), engine.active_count());
        let frozen: Vec<_> = Algorithm::ALL
            .iter()
            .map(|&alg| engine.query(&q, alg).unwrap())
            .collect();
        // Slide the engine to the end; the window and lists change.
        for (element, tv) in stream.into_iter().skip(half) {
            let end = element.ts;
            engine.ingest_bucket(vec![(element, tv)], end).unwrap();
        }
        let stats = engine.stats();
        assert!(
            stats.window_cow_clones >= 1 && stats.ranked_cow_clones >= 1,
            "writer paid copy-on-write for the live snapshot: {stats:?}"
        );
        // Snapshot answers are bit-for-bit the capture-epoch answers, for
        // every algorithm (index-based and window-scanning alike).
        for (&alg, expected) in Algorithm::ALL.iter().zip(&frozen) {
            let got = snap.query(&q, alg).unwrap();
            assert_eq!(&got, expected, "{alg} drifted off the capture epoch");
        }
        // The live engine has genuinely moved on.
        assert_ne!(
            engine.query(&q, Algorithm::Mttd).unwrap().score,
            frozen[1].score
        );
        assert_eq!(counters.stats().epochs_captured, 1);
    }

    /// Exact shard views are score-identical to the epoch image; truncated
    /// views reproduce the result when the floors come from the queries'
    /// own frontiers (same state ⇒ same traversal depth).
    #[test]
    fn shard_views_reproduce_epoch_answers() {
        let ex = paper_example();
        let engine = ex.build_engine();
        let counters = SnapshotCounters::new();
        let snap = Arc::new(EngineSnapshot::capture(&engine, 8, &counters));
        for alg in [
            Algorithm::Mtts,
            Algorithm::Mttd,
            Algorithm::TopkRepresentative,
        ] {
            let q = query(2, &[0.5, 0.5]);
            let reference = engine.query(&q, alg).unwrap();
            let frontier = reference.frontier.clone().expect("index-based algorithm");
            // Exact policy, whole lists.
            let exact = ShardSnapshot::new(
                Arc::clone(&snap),
                &PrefixSpec::whole_lists([TopicId(0), TopicId(1)]),
                SnapshotPolicy::Exact,
            );
            assert_eq!(exact.truncated_topics(), 0);
            assert_eq!(exact.query(&q, alg).unwrap(), reference);
            // Truncated policy at the traversal's own floors.
            let spec = PrefixSpec {
                floors: frontier.floors.clone(),
            };
            let truncated =
                ShardSnapshot::new(Arc::clone(&snap), &spec, SnapshotPolicy::TruncateAtFloors);
            let got = truncated.query(&q, alg).unwrap();
            assert_eq!(got.sorted_elements(), reference.sorted_elements());
            assert!((got.score - reference.score).abs() < 1e-12);
        }
        let stats = counters.stats();
        assert_eq!(stats.shard_snapshots, 6);
        assert!(stats.prefixes_shared >= 2);
    }

    /// Exhausting a truncated prefix is counted as a shortfall; out-of-range
    /// topics in a spec are ignored.
    #[test]
    fn truncation_shortfalls_are_counted() {
        let ex = paper_example();
        let engine = ex.build_engine();
        let counters = SnapshotCounters::new();
        let snap = Arc::new(EngineSnapshot::capture(&engine, 8, &counters));
        // An absurdly high floor keeps (almost) nothing: the traversal must
        // exhaust the truncated prefix.
        let spec = PrefixSpec {
            floors: vec![
                (TopicId(0), Some(1e9)),
                (TopicId(1), Some(1e9)),
                (TopicId(7), None),
            ],
        };
        let view = ShardSnapshot::new(Arc::clone(&snap), &spec, SnapshotPolicy::TruncateAtFloors);
        assert_eq!(view.truncated_topics(), 2);
        let q = query(2, &[0.5, 0.5]);
        let got = view.query(&q, Algorithm::Mtts).unwrap();
        assert!(got.is_empty(), "nothing above the floor to retrieve");
        let stats = counters.stats();
        assert!(stats.truncation_shortfalls >= 1);
        assert!(stats.entries_truncated > 0);
        assert_eq!(stats.entries_copied, 0);
    }

    /// The type-erased handle round-trips through `Arc<dyn …>` plumbing.
    #[test]
    fn snapshot_source_is_object_safe() {
        let ex = paper_example();
        let engine = ex.build_engine();
        let counters = SnapshotCounters::new();
        let snap: Arc<dyn SnapshotSource> =
            Arc::new(EngineSnapshot::capture(&engine, 3, &counters));
        assert_eq!(snap.epoch(), 3);
        let source = Arc::clone(&snap).shard_source(
            &PrefixSpec::whole_lists([TopicId(0), TopicId(1)]),
            SnapshotPolicy::Exact,
        );
        assert_eq!(source.num_topics(), 2);
        let q = query(2, &[0.5, 0.5]);
        assert_eq!(
            source.query(&q, Algorithm::Mttd).unwrap(),
            engine.query(&q, Algorithm::Mttd).unwrap()
        );
    }
}
