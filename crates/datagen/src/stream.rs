//! Synthetic social-stream generation.

use rand::rngs::StdRng;
use rand::Rng;

use ksir_types::rng::{derive_seed, seeded_rng};
use ksir_types::{ElementId, Result, SocialElement, Timestamp, TopicVector};

use crate::planted::PlantedTopicModel;
use crate::profile::DatasetProfile;

/// A generated stream: timestamp-ordered elements with their ground-truth
/// topic distributions, plus the planted topic model that produced them.
#[derive(Debug, Clone)]
pub struct GeneratedStream {
    /// The profile the stream was generated from.
    pub profile: DatasetProfile,
    /// The planted ground-truth topic model.
    pub planted: PlantedTopicModel,
    /// Elements in timestamp order (ids are `1..=n` in arrival order).
    pub elements: Vec<SocialElement>,
    /// Ground-truth topic distribution of each element (parallel to
    /// `elements`).
    pub topic_vectors: Vec<TopicVector>,
}

impl GeneratedStream {
    /// Number of elements.
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// Returns `true` if the stream has no elements.
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// Timestamp of the last element (`t_n`).
    pub fn end_time(&self) -> Timestamp {
        self.elements
            .last()
            .map(|e| e.ts)
            .unwrap_or(Timestamp::ZERO)
    }

    /// Iterates over `(element, topic vector)` pairs by value, ready to feed
    /// into `KsirEngine::ingest_stream`.
    pub fn iter_pairs(&self) -> impl Iterator<Item = (SocialElement, TopicVector)> + '_ {
        self.elements
            .iter()
            .cloned()
            .zip(self.topic_vectors.iter().cloned())
    }

    /// Average document length in tokens (calibration check for Table 3).
    pub fn average_doc_len(&self) -> f64 {
        if self.elements.is_empty() {
            return 0.0;
        }
        self.elements
            .iter()
            .map(|e| e.doc.len() as f64)
            .sum::<f64>()
            / self.elements.len() as f64
    }

    /// Average number of references per element (calibration check).
    pub fn average_refs(&self) -> f64 {
        if self.elements.is_empty() {
            return 0.0;
        }
        self.elements
            .iter()
            .map(|e| e.refs.len() as f64)
            .sum::<f64>()
            / self.elements.len() as f64
    }

    /// Average number of topics per element with non-zero probability (the
    /// sparsity statistic §4 of the paper quotes as "less than 2").
    pub fn average_topics_per_element(&self) -> f64 {
        if self.topic_vectors.is_empty() {
            return 0.0;
        }
        self.topic_vectors
            .iter()
            .map(|tv| tv.support_size() as f64)
            .sum::<f64>()
            / self.topic_vectors.len() as f64
    }
}

/// Generates streams from a [`DatasetProfile`].
#[derive(Debug, Clone)]
pub struct StreamGenerator {
    profile: DatasetProfile,
    seed: u64,
}

impl StreamGenerator {
    /// Creates a generator (the profile is validated).
    pub fn new(profile: DatasetProfile, seed: u64) -> Result<Self> {
        profile.validate()?;
        Ok(StreamGenerator { profile, seed })
    }

    /// The profile in use.
    pub fn profile(&self) -> &DatasetProfile {
        &self.profile
    }

    /// Generates the stream.  The same generator always produces the same
    /// stream.
    pub fn generate(&self) -> Result<GeneratedStream> {
        let p = &self.profile;
        let planted = PlantedTopicModel::new(p.num_topics, p.vocab_size, p.zipf_exponent)?;
        let mut rng = seeded_rng(derive_seed(self.seed, "stream"));

        let n = p.num_elements;
        let mut elements = Vec::with_capacity(n);
        let mut topic_vectors = Vec::with_capacity(n);
        // In-degree of each element so far (for preferential attachment).
        let mut indegree = vec![0u32; n + 1];

        let mut last_ts = 0u64;
        for i in 0..n {
            let id = ElementId((i + 1) as u64);
            // Evenly spaced arrivals with ±1-tick jitter, clamped to be
            // non-decreasing and at least 1.
            let nominal = ((i + 1) as f64 * p.time_span as f64 / n as f64).round() as u64;
            let jitter = rng.gen_range(0..=1);
            let ts = nominal.saturating_add(jitter).max(last_ts).max(1);
            last_ts = ts;

            // Topic mixture and document.
            let mixture = planted.sample_mixture(&mut rng, p.single_topic_prob);
            let len = sample_length(&mut rng, p.avg_doc_len);
            let doc = planted.sample_document(&mut rng, &mixture, len);

            // References: preferential attachment among recent elements with a
            // topical-affinity bias.
            let num_refs = sample_poisson(&mut rng, p.avg_refs);
            let refs = self.sample_references(
                &mut rng,
                &elements,
                &topic_vectors,
                &indegree,
                &mixture,
                ts,
                num_refs,
            );
            for &r in &refs {
                indegree[r.raw() as usize] += 1;
            }

            elements.push(SocialElement::new(id, Timestamp(ts), doc, refs));
            topic_vectors.push(mixture);
        }

        Ok(GeneratedStream {
            profile: p.clone(),
            planted,
            elements,
            topic_vectors,
        })
    }

    /// Samples up to `count` distinct reference targets among the elements
    /// posted within the reference horizon, weighted by popularity
    /// (in-degree) and topical affinity.
    #[allow(clippy::too_many_arguments)]
    fn sample_references(
        &self,
        rng: &mut StdRng,
        elements: &[SocialElement],
        topic_vectors: &[TopicVector],
        indegree: &[u32],
        mixture: &TopicVector,
        ts: u64,
        count: usize,
    ) -> Vec<ElementId> {
        if count == 0 || elements.is_empty() {
            return Vec::new();
        }
        let horizon_start = ts.saturating_sub(self.profile.reference_horizon);
        // Candidate indices inside the horizon (elements are timestamp-ordered,
        // so scan back from the end).
        let mut candidates: Vec<usize> = Vec::new();
        for idx in (0..elements.len()).rev() {
            if elements[idx].ts.raw() < horizon_start {
                break;
            }
            candidates.push(idx);
        }
        if candidates.is_empty() {
            return Vec::new();
        }
        let weights: Vec<f64> = candidates
            .iter()
            .map(|&idx| {
                let popularity = 1.0 + indegree[elements[idx].id.raw() as usize] as f64;
                let affinity = mixture.cosine(&topic_vectors[idx]).unwrap_or(0.0);
                popularity * (0.2 + affinity)
            })
            .collect();
        let mut chosen = Vec::new();
        let mut total: f64 = weights.iter().sum();
        let mut available: Vec<(usize, f64)> = candidates.iter().copied().zip(weights).collect();
        for _ in 0..count.min(available.len()) {
            if total <= 0.0 {
                break;
            }
            let mut target = rng.gen::<f64>() * total;
            let mut pick = available.len() - 1;
            for (pos, (_, w)) in available.iter().enumerate() {
                if target < *w {
                    pick = pos;
                    break;
                }
                target -= *w;
            }
            let (idx, w) = available.swap_remove(pick);
            total -= w;
            chosen.push(elements[idx].id);
        }
        chosen
    }
}

/// Samples a document length with the given mean (shifted geometric-like
/// distribution, always at least 1 token).
fn sample_length(rng: &mut StdRng, mean: f64) -> usize {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    let len = (-(mean - 0.5) * (1.0 - u).ln()).round();
    (len as usize).max(1)
}

/// Knuth's Poisson sampler (fine for the small means used here).
fn sample_poisson(rng: &mut StdRng, lambda: f64) -> usize {
    if lambda <= 0.0 {
        return 0;
    }
    let l = (-lambda).exp();
    let mut k = 0usize;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
        if k > 10_000 {
            return k; // numerical safety net, unreachable for sane λ
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_profile() -> DatasetProfile {
        DatasetProfile::reddit().scaled(0.1).with_topics(10)
    }

    #[test]
    fn generation_is_deterministic() {
        let g = StreamGenerator::new(small_profile(), 42).unwrap();
        let a = g.generate().unwrap();
        let b = g.generate().unwrap();
        assert_eq!(a.elements, b.elements);
        assert_eq!(a.topic_vectors, b.topic_vectors);
        let c = StreamGenerator::new(small_profile(), 43)
            .unwrap()
            .generate()
            .unwrap();
        assert_ne!(a.elements, c.elements);
    }

    #[test]
    fn timestamps_are_nondecreasing_and_within_span() {
        let g = StreamGenerator::new(small_profile(), 1).unwrap();
        let s = g.generate().unwrap();
        assert_eq!(s.len(), small_profile().num_elements);
        let mut prev = 0;
        for e in &s.elements {
            assert!(e.ts.raw() >= prev);
            prev = e.ts.raw();
        }
        assert!(s.end_time().raw() <= small_profile().time_span + 2);
    }

    #[test]
    fn references_point_backwards_within_the_horizon() {
        let profile = DatasetProfile::aminer().scaled(0.05).with_topics(10);
        let g = StreamGenerator::new(profile.clone(), 7).unwrap();
        let s = g.generate().unwrap();
        let ts_of = |id: ElementId| s.elements[(id.raw() - 1) as usize].ts.raw();
        for e in &s.elements {
            for &r in &e.refs {
                assert!(r < e.id, "references must point to earlier elements");
                assert!(ts_of(r) <= e.ts.raw());
                assert!(e.ts.raw() - ts_of(r) <= profile.reference_horizon + 1);
            }
        }
    }

    #[test]
    fn calibration_matches_profile_shape() {
        for profile in [
            DatasetProfile::aminer().scaled(0.25).with_topics(10),
            DatasetProfile::reddit().scaled(0.25).with_topics(10),
            DatasetProfile::twitter().scaled(0.25).with_topics(10),
        ] {
            let g = StreamGenerator::new(profile.clone(), 123).unwrap();
            let s = g.generate().unwrap();
            let len_err = (s.average_doc_len() - profile.avg_doc_len).abs() / profile.avg_doc_len;
            assert!(
                len_err < 0.15,
                "{}: avg len {} vs target {}",
                profile.name,
                s.average_doc_len(),
                profile.avg_doc_len
            );
            let ref_err = (s.average_refs() - profile.avg_refs).abs() / profile.avg_refs.max(0.1);
            assert!(
                ref_err < 0.25,
                "{}: avg refs {} vs target {}",
                profile.name,
                s.average_refs(),
                profile.avg_refs
            );
            // Topic sparsity: fewer than 2 topics per element on average, as
            // the paper observes on the real datasets.
            assert!(s.average_topics_per_element() < 2.0);
            assert!(s.average_topics_per_element() >= 1.0);
        }
    }

    #[test]
    fn popular_elements_attract_more_references() {
        // With preferential attachment, the in-degree distribution should be
        // skewed: the most-referenced element collects several references.
        let profile = DatasetProfile::aminer().scaled(0.2).with_topics(5);
        let g = StreamGenerator::new(profile, 5).unwrap();
        let s = g.generate().unwrap();
        let mut indegree = std::collections::HashMap::new();
        for e in &s.elements {
            for r in &e.refs {
                *indegree.entry(*r).or_insert(0usize) += 1;
            }
        }
        let max_in = indegree.values().copied().max().unwrap_or(0);
        let avg_in = s.average_refs();
        assert!(
            max_in as f64 > 3.0 * avg_in,
            "expected a skewed in-degree distribution (max {max_in}, avg {avg_in})"
        );
    }

    #[test]
    fn invalid_profile_is_rejected() {
        let mut p = small_profile();
        p.num_elements = 0;
        assert!(StreamGenerator::new(p, 1).is_err());
    }
}
