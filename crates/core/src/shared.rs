//! Shared ownership of a [`KsirEngine`] across threads.
//!
//! The engine has a natural read/write split: `ingest_bucket` is the only
//! mutating operation, while query processing — including every standing-query
//! refresh in `ksir-continuous` — needs nothing but `&KsirEngine`.
//! [`SharedEngine`] packages that split as a cloneable handle over an
//! `Arc<RwLock<…>>`, so long-lived refresh workers can hold their own handle
//! and take cheap read guards per work item while the ingestion path takes
//! the write guard only for the index update itself.
//!
//! The lock is *not* what serialises ingestion against refresh in the
//! asynchronous pipeline — the pipeline quiesces outstanding refresh work
//! before every index update so that refreshes always observe the slide they
//! were scheduled for.  The lock is what makes that protocol expressible in
//! safe Rust, and what keeps ad-hoc readers (dashboards, ad-hoc queries on
//! other threads) safe without any protocol at all.

use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

use crate::engine::KsirEngine;

/// A cloneable, thread-safe handle to a [`KsirEngine`].
///
/// Cloning is `Arc`-cheap; all clones refer to the same engine.  Readers and
/// the writer synchronise through an [`RwLock`]: any number of concurrent
/// [`SharedEngine::read`] guards, or one [`SharedEngine::write`] guard.
#[derive(Debug)]
pub struct SharedEngine<D> {
    inner: Arc<RwLock<KsirEngine<D>>>,
}

impl<D> Clone for SharedEngine<D> {
    fn clone(&self) -> Self {
        SharedEngine {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<D> SharedEngine<D> {
    /// Wraps an engine for shared access.
    pub fn new(engine: KsirEngine<D>) -> Self {
        SharedEngine {
            inner: Arc::new(RwLock::new(engine)),
        }
    }

    /// Takes a shared read guard.  Any number of readers may hold one
    /// concurrently; a reader blocks only while a writer is inside
    /// [`SharedEngine::write`].
    ///
    /// The guard derefs to [`KsirEngine`], so call sites read naturally:
    /// `shared.read().query(&q, algorithm)`.
    pub fn read(&self) -> RwLockReadGuard<'_, KsirEngine<D>> {
        self.inner
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Takes the exclusive write guard (index updates).
    pub fn write(&self) -> RwLockWriteGuard<'_, KsirEngine<D>> {
        self.inner
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Unwraps the engine.
    ///
    /// # Panics
    ///
    /// Panics if other handles to the same engine are still alive (e.g. a
    /// worker pool that has not been shut down).
    pub fn into_inner(self) -> KsirEngine<D> {
        match Arc::try_unwrap(self.inner) {
            Ok(lock) => lock.into_inner().unwrap_or_else(|p| p.into_inner()),
            Err(_) => panic!("SharedEngine::into_inner: other handles still alive"),
        }
    }

    /// Number of live handles to the engine (diagnostic).
    pub fn handle_count(&self) -> usize {
        Arc::strong_count(&self.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::paper_example;
    use crate::{Algorithm, KsirQuery};
    use ksir_types::QueryVector;

    #[test]
    fn concurrent_readers_see_the_same_engine() {
        let ex = paper_example();
        let shared = SharedEngine::new(ex.build_engine());
        let query = KsirQuery::new(2, QueryVector::new(vec![0.5, 0.5]).unwrap()).unwrap();
        let baseline = shared.read().query(&query, Algorithm::Mttd).unwrap();

        let handles: Vec<_> = (0..4)
            .map(|_| {
                let shared = shared.clone();
                let query = query.clone();
                std::thread::spawn(move || shared.read().query(&query, Algorithm::Mttd).unwrap())
            })
            .collect();
        for handle in handles {
            let result = handle.join().unwrap();
            assert_eq!(result.sorted_elements(), baseline.sorted_elements());
        }
        assert_eq!(shared.handle_count(), 1);
    }

    #[test]
    fn write_guard_mutates_for_all_handles() {
        let ex = paper_example();
        let shared = SharedEngine::new(ex.empty_engine());
        let other = shared.clone();
        for (element, tv) in ex.stream() {
            let end = element.ts;
            shared
                .write()
                .ingest_bucket(vec![(element, tv)], end)
                .unwrap();
        }
        assert_eq!(other.read().active_count(), shared.read().active_count());
        assert!(other.read().active_count() > 0);
        drop(other);
        let engine = shared.into_inner();
        assert!(engine.active_count() > 0);
    }

    #[test]
    #[should_panic(expected = "other handles still alive")]
    fn into_inner_panics_with_live_handles() {
        let ex = paper_example();
        let shared = SharedEngine::new(ex.empty_engine());
        let _other = shared.clone();
        let _ = shared.into_inner();
    }
}
