//! Tokenisation tuned for social text.
//!
//! Rules (mirroring the preprocessing described in §5.1 of the paper):
//!
//! * input is lower-cased,
//! * `#hashtags` and `@mentions` are kept as single tokens (their leading
//!   sigil is preserved so "pl" the word and "#pl" the hashtag stay distinct),
//! * URLs (`http://…`, `https://…`, `www.…`) are dropped entirely,
//! * remaining text is split on any character that is not alphanumeric,
//! * purely numeric tokens and single characters are dropped as noise.

/// Splits raw text into normalised tokens.
pub fn tokenize(text: &str) -> Vec<String> {
    let lower = text.to_lowercase();
    let mut tokens = Vec::new();
    for raw in lower.split_whitespace() {
        if is_url(raw) {
            continue;
        }
        if let Some(tok) = sigil_token(raw) {
            tokens.push(tok);
            continue;
        }
        let mut current = String::new();
        for ch in raw.chars() {
            if ch.is_alphanumeric() {
                current.push(ch);
            } else if !current.is_empty() {
                push_if_valid(&mut tokens, std::mem::take(&mut current));
            }
        }
        if !current.is_empty() {
            push_if_valid(&mut tokens, current);
        }
    }
    tokens
}

/// Returns `true` for tokens that look like URLs.
fn is_url(tok: &str) -> bool {
    tok.starts_with("http://") || tok.starts_with("https://") || tok.starts_with("www.")
}

/// Extracts a hashtag or mention token (`#ucl`, `@lfc`) if `raw` is one.
fn sigil_token(raw: &str) -> Option<String> {
    let sigil = raw.chars().next()?;
    if sigil != '#' && sigil != '@' {
        return None;
    }
    let body: String = raw
        .chars()
        .skip(1)
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if body.is_empty() {
        None
    } else {
        Some(format!("{sigil}{body}"))
    }
}

/// Drops noise tokens: single characters and pure numbers.
fn push_if_valid(tokens: &mut Vec<String>, tok: String) {
    if tok.chars().count() <= 1 {
        return;
    }
    if tok.chars().all(|c| c.is_ascii_digit()) {
        return;
    }
    tokens.push(tok);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_splitting_and_lowercasing() {
        assert_eq!(
            tokenize("LeBron is GREAT, truly great!"),
            vec!["lebron", "is", "great", "truly", "great"]
        );
    }

    #[test]
    fn hashtags_and_mentions_are_preserved() {
        let toks = tokenize("@asroma win but it's @LFC joining @realmadrid in the #UCL final");
        assert!(toks.contains(&"@asroma".to_string()));
        assert!(toks.contains(&"@lfc".to_string()));
        assert!(toks.contains(&"#ucl".to_string()));
        assert!(toks.contains(&"final".to_string()));
    }

    #[test]
    fn urls_are_dropped() {
        let toks = tokenize("read this https://example.com/a?b=1 and www.foo.bar now");
        assert_eq!(toks, vec!["read", "this", "and", "now"]);
    }

    #[test]
    fn numbers_and_single_chars_are_noise() {
        let toks = tokenize("defeats 128-110 and leads the series 2-0 in a game");
        assert!(!toks.contains(&"128".to_string()));
        assert!(!toks.contains(&"a".to_string()));
        assert!(toks.contains(&"defeats".to_string()));
    }

    #[test]
    fn alphanumeric_tokens_survive() {
        let toks = tokenize("the 2018-19 season of #NBAPlayoffs");
        assert!(!toks.contains(&"2018".to_string()));
        assert!(toks.contains(&"#nbaplayoffs".to_string()));
        assert!(toks.contains(&"season".to_string()));
    }

    #[test]
    fn punctuation_inside_words_splits() {
        assert_eq!(
            tokenize("state-of-the-art"),
            vec!["state", "of", "the", "art"]
        );
    }

    #[test]
    fn empty_and_whitespace_input() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("   \t\n ").is_empty());
        assert!(tokenize("# @ !!!").is_empty());
    }

    #[test]
    fn unicode_text_is_handled() {
        let toks = tokenize("café München naïve");
        assert_eq!(toks, vec!["café", "münchen", "naïve"]);
    }
}
