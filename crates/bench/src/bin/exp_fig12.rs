//! Figure 12 — effect of the number of topics z on query time, for
//! z ∈ {50, 100, 150, 200, 250}.
//!
//! Changing z changes the topic model, so (as in the paper, where a new model
//! is trained per z) a new stream is generated against a planted model with
//! that many topics.
//!
//! Run with `cargo run --release -p ksir-bench --bin exp_fig12 [--scale 1.0]`.

use ksir_bench::{replay_with_queries, scale_from_args, ProcessingConfig, Table};
use ksir_core::Algorithm;
use ksir_datagen::{DatasetProfile, StreamGenerator};

fn main() {
    let scale = scale_from_args();
    let zs = [50usize, 100, 150, 200, 250];

    for profile in DatasetProfile::all() {
        let mut table = Table::new(
            format!("Figure 12 ({}) — query time (ms) vs z", profile.name),
            &["z", "CELF", "MTTD", "MTTS", "Top-k Rep", "SieveStreaming"],
        );
        for &z in &zs {
            let profile = profile.clone().scaled(scale).with_topics(z);
            let stream = StreamGenerator::new(profile, 31)
                .expect("profile is valid")
                .generate()
                .expect("stream generation succeeds");
            let config = ProcessingConfig {
                num_queries: 10,
                ..ProcessingConfig::for_stream(&stream)
            };
            let report = replay_with_queries(&stream, &config).expect("replay succeeds");
            table.add_row(vec![
                z.to_string(),
                format!("{:.3}", report.mean_query_millis(Algorithm::Celf)),
                format!("{:.3}", report.mean_query_millis(Algorithm::Mttd)),
                format!("{:.3}", report.mean_query_millis(Algorithm::Mtts)),
                format!(
                    "{:.3}",
                    report.mean_query_millis(Algorithm::TopkRepresentative)
                ),
                format!("{:.3}", report.mean_query_millis(Algorithm::SieveStreaming)),
            ]);
        }
        table.print();
    }
    println!(
        "Paper's shape: MTTS/MTTD query time decreases as z grows (fewer elements \
         per topic list), while the evaluate-everything baselines stay roughly flat."
    );
}
