//! Multi-Topic ThresholdStream (Algorithm 2).
//!
//! MTTS combines the SieveStreaming thresholding idea with the ranked-list
//! traversal: a geometric grid of guesses `Φ = {(1+ε)^j}` for the optimal
//! score is maintained, each guess `ϕ` owns an independent candidate set with
//! admission threshold `ϕ / 2k`, and elements are fed to the candidates in
//! decreasing order of their upper-bound score.  The traversal terminates as
//! soon as the upper bound `UB(x)` of any unretrieved element drops below the
//! smallest admission threshold `TH` of an unfilled candidate, which in
//! practice prunes the vast majority of active elements.  The returned
//! candidate is a `(1/2 − ε)`-approximation (Theorem 4.2).

use std::collections::BTreeMap;

use ksir_types::TopicWordDistribution;

use crate::algorithms::{singleton_score, SupportCursors};
use crate::evaluator::{CandidateState, QueryEvaluator, SingletonCache};
use crate::query::{Algorithm, KsirQuery, QueryResult};
use crate::view::RankedView;

pub(crate) fn run<D: TopicWordDistribution, V: RankedView + ?Sized>(
    view: &V,
    evaluator: &QueryEvaluator<'_, D>,
    query: &KsirQuery,
    mut cache: Option<&mut SingletonCache>,
) -> QueryResult {
    let k = query.k() as f64;
    let base = 1.0 + query.epsilon();
    let mut cursors = SupportCursors::new(view, evaluator.support());
    let mut candidates: BTreeMap<i64, CandidateState> = BTreeMap::new();
    let mut delta_max = 0.0_f64;
    let mut evaluated = 0_usize;

    loop {
        let ub = cursors.upper_bound();
        if !candidates.is_empty() {
            // TH: smallest admission threshold among unfilled candidates; if
            // every candidate is full no element can be admitted anywhere.
            let th = candidates
                .iter()
                .filter(|(_, state)| state.len() < query.k())
                .map(|(&j, _)| base.powf(j as f64) / (2.0 * k))
                .fold(f64::INFINITY, f64::min);
            if ub < th {
                break;
            }
        }
        let Some(id) = cursors.pop_next() else {
            break;
        };
        let delta = singleton_score(evaluator, &mut cache, id);
        evaluated += 1;
        if delta <= 0.0 {
            continue;
        }
        if delta > delta_max {
            delta_max = delta;
            // Refresh the estimate grid Φ = {(1+ε)^j : δmax ≤ (1+ε)^j ≤ 2k·δmax}.
            let lo = (delta_max.ln() / base.ln()).ceil() as i64;
            let hi = ((2.0 * k * delta_max).ln() / base.ln()).floor() as i64;
            candidates.retain(|&j, _| j >= lo && j <= hi);
            for j in lo..=hi {
                candidates
                    .entry(j)
                    .or_insert_with(|| evaluator.new_candidate());
            }
        }
        for (&j, state) in candidates.iter_mut() {
            let threshold = base.powf(j as f64) / (2.0 * k);
            if delta >= threshold && state.len() < query.k() {
                let gain = evaluator.marginal_gain(state, id);
                if gain >= threshold {
                    evaluator.insert(state, id);
                }
            }
        }
    }

    // Admission bar: the final TH — the smallest threshold at which an
    // unfilled candidate would still have admitted an element.  When every
    // candidate filled, fall back to the smallest grid threshold: an element
    // below it is rejected by every candidate regardless of fill.
    let bar = {
        let unfilled = candidates
            .iter()
            .filter(|(_, state)| state.len() < query.k())
            .map(|(&j, _)| base.powf(j as f64) / (2.0 * k))
            .fold(f64::INFINITY, f64::min);
        if unfilled.is_finite() {
            Some(unfilled)
        } else {
            candidates
                .keys()
                .next()
                .map(|&j| base.powf(j as f64) / (2.0 * k))
        }
    };
    let mut frontier = cursors.frontier();
    frontier.bar = bar;
    let best = candidates
        .into_values()
        .max_by(|a, b| a.score().total_cmp(&b.score()));
    match best {
        Some(state) if !state.is_empty() => QueryResult {
            elements: state.members().to_vec(),
            score: state.score(),
            evaluated_elements: evaluated,
            gain_evaluations: evaluator.gain_evaluations(),
            algorithm: Algorithm::Mtts,
            frontier: Some(frontier),
        },
        _ => QueryResult {
            frontier: Some(frontier),
            ..QueryResult::empty(Algorithm::Mtts)
        },
    }
}
