//! Latent Dirichlet Allocation trained by collapsed Gibbs sampling.
//!
//! This is the classic Griffiths & Steyvers sampler: each token `w` in each
//! document `d` carries a topic assignment `z`; one sweep resamples every
//! assignment from
//!
//! ```text
//! p(z = k | rest) ∝ (n_dk + α) · (n_kw + β) / (n_k + m·β)
//! ```
//!
//! where `n_dk` counts tokens of `d` assigned to `k`, `n_kw` counts
//! assignments of word `w` to `k` across the corpus, and `n_k` is the total
//! number of tokens assigned to `k`.  After burn-in the topic-word counts are
//! converted into the `φ` table of a [`TopicModel`].
//!
//! The paper trains with PLDA (a parallel LDA implementation) and priors
//! `α = 50/z`, `β = 0.01`; those are the defaults here too.

use ksir_types::rng::seeded_rng;
use ksir_types::{DenseTopicWordTable, Document, KsirError, Result, TopicId, WordId};
use rand::Rng;

use crate::model::TopicModel;

/// Configuration and entry point for LDA training.
#[derive(Debug, Clone)]
pub struct LdaTrainer {
    num_topics: usize,
    alpha: f64,
    beta: f64,
    iterations: usize,
    seed: u64,
}

impl LdaTrainer {
    /// Creates a trainer with the paper's default priors (`α = 50/z`,
    /// `β = 0.01`) and 200 Gibbs sweeps.
    pub fn new(num_topics: usize) -> Result<Self> {
        if num_topics == 0 {
            return Err(KsirError::invalid_parameter(
                "num_topics",
                "must be at least 1",
            ));
        }
        Ok(LdaTrainer {
            num_topics,
            alpha: 50.0 / num_topics as f64,
            beta: 0.01,
            iterations: 200,
            seed: 42,
        })
    }

    /// Overrides the document-topic prior `α`.
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }

    /// Overrides the topic-word prior `β`.
    pub fn with_beta(mut self, beta: f64) -> Self {
        self.beta = beta;
        self
    }

    /// Overrides the number of Gibbs sweeps.
    pub fn with_iterations(mut self, iterations: usize) -> Self {
        self.iterations = iterations.max(1);
        self
    }

    /// Sets the RNG seed (training is deterministic given the seed).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Number of topics this trainer will produce.
    pub fn num_topics(&self) -> usize {
        self.num_topics
    }

    /// Trains a topic model on a corpus.
    ///
    /// `vocab_size` must be at least `max word id + 1` over the corpus.
    /// Returns an error for an empty corpus or when a document references a
    /// word outside the declared vocabulary.
    pub fn train(&self, corpus: &[Document], vocab_size: usize) -> Result<TopicModel> {
        if corpus.is_empty() {
            return Err(KsirError::invalid_parameter(
                "corpus",
                "cannot train a topic model on an empty corpus",
            ));
        }
        for doc in corpus {
            if let Some(w) = doc.words().find(|w| w.index() >= vocab_size) {
                return Err(KsirError::UnknownWord(w));
            }
        }

        let z = self.num_topics;
        let m = vocab_size;
        let mut rng = seeded_rng(self.seed);

        // Token lists per document and their topic assignments.
        let tokens: Vec<Vec<WordId>> = corpus.iter().map(|d| d.tokens()).collect();
        let mut assignments: Vec<Vec<usize>> = tokens
            .iter()
            .map(|toks| toks.iter().map(|_| rng.gen_range(0..z)).collect())
            .collect();

        // Count matrices.
        let mut n_dk = vec![vec![0u32; z]; corpus.len()];
        let mut n_kw = vec![vec![0u32; m]; z];
        let mut n_k = vec![0u32; z];
        for (d, toks) in tokens.iter().enumerate() {
            for (i, &w) in toks.iter().enumerate() {
                let k = assignments[d][i];
                n_dk[d][k] += 1;
                n_kw[k][w.index()] += 1;
                n_k[k] += 1;
            }
        }

        let mut weights = vec![0.0f64; z];
        for _sweep in 0..self.iterations {
            for (d, toks) in tokens.iter().enumerate() {
                for (i, &w) in toks.iter().enumerate() {
                    let old = assignments[d][i];
                    n_dk[d][old] -= 1;
                    n_kw[old][w.index()] -= 1;
                    n_k[old] -= 1;

                    let mut total = 0.0;
                    for (k, wt) in weights.iter_mut().enumerate() {
                        let topic_word = (n_kw[k][w.index()] as f64 + self.beta)
                            / (n_k[k] as f64 + m as f64 * self.beta);
                        let doc_topic = n_dk[d][k] as f64 + self.alpha;
                        *wt = topic_word * doc_topic;
                        total += *wt;
                    }
                    let mut target = rng.gen::<f64>() * total;
                    let mut new = z - 1;
                    for (k, &wt) in weights.iter().enumerate() {
                        if target < wt {
                            new = k;
                            break;
                        }
                        target -= wt;
                    }

                    assignments[d][i] = new;
                    n_dk[d][new] += 1;
                    n_kw[new][w.index()] += 1;
                    n_k[new] += 1;
                }
            }
        }

        // φ_k(w) = (n_kw + β) / (n_k + m·β)
        let mut rows = Vec::with_capacity(z);
        for k in 0..z {
            let denom = n_k[k] as f64 + m as f64 * self.beta;
            let row: Vec<f64> = (0..m)
                .map(|w| (n_kw[k][w] as f64 + self.beta) / denom)
                .collect();
            rows.push(row);
        }
        let phi = DenseTopicWordTable::from_rows(rows)?;
        TopicModel::new(phi, self.alpha)
    }
}

/// Computes the per-topic "top words" — handy for inspecting trained models in
/// examples and experiment logs.
pub fn top_words(model: &TopicModel, topic: TopicId, n: usize) -> Vec<(WordId, f64)> {
    let mut pairs: Vec<(WordId, f64)> = (0..model.vocab_size())
        .map(|w| (WordId(w as u32), model.word_prob(topic, WordId(w as u32))))
        .collect();
    pairs.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    pairs.truncate(n);
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksir_types::TopicVector;

    fn doc(words: &[u32]) -> Document {
        Document::from_tokens(words.iter().map(|&w| WordId(w)))
    }

    /// A corpus with two obvious word communities: {0..4} and {5..9}.
    fn synthetic_corpus() -> Vec<Document> {
        let mut corpus = Vec::new();
        for i in 0..30u32 {
            let base = if i % 2 == 0 { 0 } else { 5 };
            corpus.push(doc(&[
                base,
                base + 1,
                base + 2,
                base + 3,
                base + 4,
                base + (i % 5),
            ]));
        }
        corpus
    }

    #[test]
    fn new_rejects_zero_topics() {
        assert!(LdaTrainer::new(0).is_err());
    }

    #[test]
    fn default_alpha_follows_paper() {
        let t = LdaTrainer::new(50).unwrap();
        assert!((t.num_topics()) == 50);
        // α = 50/z = 1.0 for z = 50
        let model = t
            .with_iterations(1)
            .train(&[doc(&[0])], 1)
            .expect("tiny training run");
        assert_eq!(model.num_topics(), 50);
    }

    #[test]
    fn train_rejects_empty_corpus_and_oov_words() {
        let t = LdaTrainer::new(2).unwrap();
        assert!(t.train(&[], 10).is_err());
        assert!(matches!(
            t.train(&[doc(&[11])], 10),
            Err(KsirError::UnknownWord(_))
        ));
    }

    #[test]
    fn training_separates_word_communities() {
        let corpus = synthetic_corpus();
        let model = LdaTrainer::new(2)
            .unwrap()
            // The paper's default α = 50/z is meant for z ≥ 50; with only two
            // topics it over-smooths, so use a smaller prior for this check.
            .with_alpha(1.0)
            .with_iterations(150)
            .with_seed(42)
            .train(&corpus, 10)
            .unwrap();
        // Each topic should concentrate on one community: the probability mass
        // of words 0..5 under one topic should dominate, and of words 5..10
        // under the other.
        let mass = |t: u32, lo: u32, hi: u32| -> f64 {
            (lo..hi)
                .map(|w| model.word_prob(TopicId(t), WordId(w)))
                .sum()
        };
        let t0_low = mass(0, 0, 5);
        let t0_high = mass(0, 5, 10);
        let t1_low = mass(1, 0, 5);
        let t1_high = mass(1, 5, 10);
        let separated = (t0_low > 0.8 && t1_high > 0.8) || (t0_high > 0.8 && t1_low > 0.8);
        assert!(
            separated,
            "topics failed to separate: {t0_low:.2}/{t0_high:.2} vs {t1_low:.2}/{t1_high:.2}"
        );
    }

    #[test]
    fn phi_rows_are_distributions() {
        let corpus = synthetic_corpus();
        let model = LdaTrainer::new(3)
            .unwrap()
            .with_iterations(20)
            .train(&corpus, 10)
            .unwrap();
        for t in 0..3u32 {
            let sum: f64 = (0..10)
                .map(|w| model.word_prob(TopicId(t), WordId(w)))
                .sum();
            assert!((sum - 1.0).abs() < 1e-9, "topic {t} sums to {sum}");
        }
    }

    #[test]
    fn training_is_deterministic_for_a_seed() {
        let corpus = synthetic_corpus();
        let m1 = LdaTrainer::new(2)
            .unwrap()
            .with_iterations(30)
            .with_seed(11)
            .train(&corpus, 10)
            .unwrap();
        let m2 = LdaTrainer::new(2)
            .unwrap()
            .with_iterations(30)
            .with_seed(11)
            .train(&corpus, 10)
            .unwrap();
        for t in 0..2u32 {
            for w in 0..10u32 {
                assert_eq!(
                    m1.word_prob(TopicId(t), WordId(w)),
                    m2.word_prob(TopicId(t), WordId(w))
                );
            }
        }
    }

    #[test]
    fn trained_model_infers_training_like_documents() {
        let corpus = synthetic_corpus();
        let model = LdaTrainer::new(2)
            .unwrap()
            // As in `training_separates_word_communities`: α = 50/z
            // over-smooths at z = 2, so use a flat prior for this check.
            .with_alpha(1.0)
            .with_iterations(150)
            .with_seed(3)
            .train(&corpus, 10)
            .unwrap();
        let a: TopicVector = model.infer_document(&doc(&[0, 1, 2]));
        let b: TopicVector = model.infer_document(&doc(&[5, 6, 7]));
        assert_ne!(a.dominant_topic(), b.dominant_topic());
    }

    #[test]
    fn top_words_are_sorted_and_truncated() {
        let corpus = synthetic_corpus();
        let model = LdaTrainer::new(2)
            .unwrap()
            .with_iterations(50)
            .train(&corpus, 10)
            .unwrap();
        let tw = top_words(&model, TopicId(0), 3);
        assert_eq!(tw.len(), 3);
        assert!(tw[0].1 >= tw[1].1 && tw[1].1 >= tw[2].1);
    }
}
