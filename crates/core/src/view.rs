//! Index views: the read seam between the query algorithms and whatever
//! holds the ranked lists.
//!
//! The index-based algorithms (MTTS, MTTD, Top-k Representative) consume the
//! per-topic ranked lists exclusively through ordered cursors.  [`RankedView`]
//! abstracts that access so the same algorithm code runs against
//!
//! * the **live** [`RankedLists`] inside a [`KsirEngine`] (the ad-hoc query
//!   path), and
//! * an **immutable snapshot** of those lists captured at an epoch boundary
//!   (`ksir-snapshot`'s `EngineSnapshot` / `ShardSnapshot`), which is what
//!   lets standing-query refreshes evaluate *behind* the writer while the
//!   next epoch's index update proceeds.
//!
//! [`run_query`] is the algorithm dispatcher over an arbitrary view plus the
//! window-side state a query additionally needs; [`KsirEngine::query`]
//! delegates to it with the live view.  [`QuerySource`] packages the whole
//! thing as an object-safe "something you can run a k-SIR query against",
//! implemented by both the engine and the snapshot types, so consumers like
//! `ksir-continuous` can refresh a subscription without caring which side of
//! the epoch boundary they are reading.

use std::collections::HashMap;

use ksir_stream::{ActiveWindow, RankedListCursor, RankedLists};
use ksir_types::{ElementId, KsirError, Result, TopicId, TopicVector, TopicWordDistribution};

use crate::algorithms;
use crate::config::ScoringConfig;
use crate::evaluator::QueryEvaluator;
use crate::query::{Algorithm, KsirQuery, QueryResult};
use crate::scorer::Scorer;

/// Ordered read access to per-topic ranked lists — implemented by the live
/// [`RankedLists`] and by epoch snapshots (`ksir-snapshot`).
pub trait RankedView {
    /// Number of topics the view covers.
    fn num_topics(&self) -> usize;

    /// An ordered traversal cursor over one topic's list.  Callers only ask
    /// for topics with `topic.index() < num_topics()`.
    fn cursor(&self, topic: TopicId) -> RankedListCursor<'_>;
}

impl RankedView for RankedLists {
    fn num_topics(&self) -> usize {
        RankedLists::num_topics(self)
    }

    fn cursor(&self, topic: TopicId) -> RankedListCursor<'_> {
        self.list(topic).cursor()
    }
}

/// Anything a k-SIR query can be processed against: the live engine or an
/// immutable epoch snapshot.  Object-safe, so pipelined consumers can hold
/// `Arc<dyn QuerySource>` without dragging the topic-model type through
/// their own signatures.
pub trait QuerySource {
    /// Number of topics of the underlying topic model.
    fn num_topics(&self) -> usize;

    /// Processes a k-SIR query with the chosen algorithm.
    fn query(&self, query: &KsirQuery, algorithm: Algorithm) -> Result<QueryResult>;
}

/// Processes one k-SIR query against an arbitrary index view plus the
/// window-side state the evaluator needs.  This is the algorithm dispatcher
/// behind both [`KsirEngine::query`] and the snapshot-backed refresh path.
///
/// [`KsirEngine::query`]: crate::KsirEngine::query
pub fn run_query<V, D>(
    view: &V,
    window: &ActiveWindow,
    topic_vectors: &HashMap<ElementId, TopicVector>,
    phi: &D,
    scoring: ScoringConfig,
    query: &KsirQuery,
    algorithm: Algorithm,
) -> Result<QueryResult>
where
    V: RankedView + ?Sized,
    D: TopicWordDistribution,
{
    if query.vector().num_topics() != phi.num_topics() {
        return Err(KsirError::DimensionMismatch {
            expected: phi.num_topics(),
            actual: query.vector().num_topics(),
        });
    }
    let scorer = Scorer::new(phi, scoring, window, topic_vectors);
    let evaluator = QueryEvaluator::new(scorer, window, topic_vectors, query.vector());
    Ok(match algorithm {
        Algorithm::Mtts => algorithms::mtts::run(view, &evaluator, query),
        Algorithm::Mttd => algorithms::mttd::run(view, &evaluator, query),
        Algorithm::Celf => algorithms::celf::run(window, &evaluator, query),
        Algorithm::SieveStreaming => algorithms::sieve::run(window, &evaluator, query),
        Algorithm::TopkRepresentative => algorithms::topk::run(view, &evaluator, query),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::paper_example;
    use ksir_types::QueryVector;

    /// The generic dispatcher over the live view must agree with the
    /// engine's own query path for every algorithm.
    #[test]
    fn run_query_over_live_view_matches_engine_query() {
        let ex = paper_example();
        let engine = ex.build_engine();
        let query = KsirQuery::new(2, QueryVector::new(vec![0.5, 0.5]).unwrap()).unwrap();
        for algorithm in Algorithm::ALL {
            let via_engine = engine.query(&query, algorithm).unwrap();
            let via_view = run_query(
                engine.ranked_lists(),
                engine.window(),
                engine.topic_vectors(),
                engine.phi(),
                engine.config().scoring,
                &query,
                algorithm,
            )
            .unwrap();
            assert_eq!(via_engine, via_view, "{algorithm} diverged");
        }
    }

    #[test]
    fn run_query_rejects_dimension_mismatch() {
        let ex = paper_example();
        let engine = ex.build_engine();
        let query = KsirQuery::new(2, QueryVector::new(vec![1.0, 1.0, 1.0]).unwrap()).unwrap();
        assert!(matches!(
            run_query(
                engine.ranked_lists(),
                engine.window(),
                engine.topic_vectors(),
                engine.phi(),
                engine.config().scoring,
                &query,
                Algorithm::Mtts,
            ),
            Err(KsirError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn engine_implements_query_source() {
        let ex = paper_example();
        let engine = ex.build_engine();
        let source: &dyn QuerySource = &engine;
        assert_eq!(source.num_topics(), 2);
        let query = KsirQuery::new(2, QueryVector::new(vec![0.5, 0.5]).unwrap()).unwrap();
        let via_source = source.query(&query, Algorithm::Mttd).unwrap();
        let direct = engine.query(&query, Algorithm::Mttd).unwrap();
        assert_eq!(via_source, direct);
    }
}
