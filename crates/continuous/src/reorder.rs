//! Bounded, watermark-driven re-sequencing of out-of-order bucket arrival.
//!
//! The engine's ingestion API is strict about time: a bucket whose end
//! precedes the window's `now` is a
//! [`TimestampRegression`](ksir_types::KsirError::TimestampRegression).  A
//! hostile stream — replicated collectors, partitioned transports, replayed
//! backlogs — delivers buckets *out of order* anyway.  The crate-private
//! `ReorderBuffer`
//! sits in front of
//! [`SubscriptionManager::ingest_bucket_reordered`](crate::SubscriptionManager::ingest_bucket_reordered)
//! and re-sequences arrivals within a bounded **horizon** before they reach
//! the engine:
//!
//! * Each offered bucket is keyed by its end timestamp; buckets sharing an
//!   end merge.  Whenever more than `horizon` distinct
//!   bucket ends are buffered, the **earliest** is released.  A bucket that
//!   arrives at most `horizon` positions after its in-order slot therefore
//!   always leaves the buffer in sorted position — released output is
//!   non-decreasing in bucket end (the classic size-`h+1` buffer argument:
//!   when the minimum is released, every bucket that belongs before it has
//!   already arrived and been released).  This is the **reorder-buffer
//!   invariant** the property tests pin: any arrival permutation with
//!   displacement ≤ horizon yields an ingest sequence — and therefore
//!   refresh decisions — bit-identical to in-order replay.
//! * A bucket whose end is at or before the release watermark
//!   (`released_through`) arrived **too late** to
//!   re-sequence.  The explicit [`LatePolicy`] decides: shed the bucket
//!   whole ([`LatePolicy::DropLate`], the default — counted, never silently
//!   lost) or stash its elements and fold them into the next released
//!   bucket ([`LatePolicy::ForceReplay`] — nothing is lost, but replayed
//!   elements are charged to a later slide than their timestamps, so
//!   decision-identity with an in-order oracle is deliberately given up).
//!
//! The buffer is a pure data structure; the manager owns the accounting
//! (`ManagerStats::reordered` / `ManagerStats::late_dropped`, the
//! `ingest.reordered` / `ingest.late_dropped` registry counters, and the
//! `late_bucket_dropped` / `late_bucket_replayed` trace events).

use std::collections::BTreeMap;

use ksir_types::{SocialElement, Timestamp, TopicVector};

/// One bucket as the reorder layer moves it around: its elements and its
/// end timestamp.
pub(crate) type Bucket = (Vec<(SocialElement, TopicVector)>, Timestamp);

/// What to do with a bucket that arrives beyond the reorder horizon (its end
/// is at or before the release watermark, so re-sequencing it is no longer
/// possible).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LatePolicy {
    /// Shed the whole bucket (the default).  The shed is counted in
    /// `ManagerStats::late_dropped` and the `ingest.late_dropped` registry
    /// counter, so a beyond-horizon arrival is visible, never silent.
    #[default]
    DropLate,
    /// Keep the elements: they are folded into the next bucket the buffer
    /// releases (or a final flush bucket at the watermark).  The engine
    /// accepts them — element timestamps never exceed the adoptive bucket's
    /// end — but they are charged to a later slide than their timestamps,
    /// so results may differ from an in-order replay.  Counted in
    /// `ManagerStats::reordered` via the `ingest.late_replayed` counter.
    ForceReplay,
}

/// Outcome of offering one bucket to the buffer: zero or more released
/// (in-order) buckets plus the accounting of what happened to the arrival.
#[derive(Debug, Default)]
pub(crate) struct OfferOutcome {
    /// Buckets released in ingest order (non-decreasing ends).
    pub(crate) released: Vec<Bucket>,
    /// `true` when the offered bucket arrived out of order but within the
    /// horizon (it was buffered behind a later-ended bucket already seen).
    pub(crate) reordered: bool,
    /// Elements of a beyond-horizon bucket shed under
    /// [`LatePolicy::DropLate`] (`None` when the bucket was not late).
    pub(crate) dropped: Option<usize>,
    /// Elements of a beyond-horizon bucket stashed for replay under
    /// [`LatePolicy::ForceReplay`] (`None` when the bucket was not late).
    pub(crate) replayed: Option<usize>,
}

/// The bounded re-sequencing buffer.  See the module docs for the invariant.
#[derive(Debug)]
pub(crate) struct ReorderBuffer {
    horizon: usize,
    policy: LatePolicy,
    /// Buffered buckets, keyed (and merged) by end timestamp.
    pending: BTreeMap<Timestamp, Vec<(SocialElement, TopicVector)>>,
    /// End timestamp of the last released bucket — the release watermark.
    /// Arrivals at or before it are late.
    released_through: Option<Timestamp>,
    /// Elements of late buckets awaiting adoption under
    /// [`LatePolicy::ForceReplay`]; prepended to the next release.
    replay: Vec<(SocialElement, TopicVector)>,
    /// Highest bucket end ever offered; an in-horizon arrival below it is a
    /// reorder.
    highest_offered: Option<Timestamp>,
}

impl ReorderBuffer {
    pub(crate) fn new(horizon: usize, policy: LatePolicy) -> Self {
        ReorderBuffer {
            horizon,
            policy,
            pending: BTreeMap::new(),
            released_through: None,
            replay: Vec::new(),
            highest_offered: None,
        }
    }

    /// The release watermark: arrivals whose end is `≤` this are late.
    pub(crate) fn released_through(&self) -> Option<Timestamp> {
        self.released_through
    }

    /// Distinct bucket ends currently buffered.
    pub(crate) fn buffered(&self) -> usize {
        self.pending.len()
    }

    /// Offers one arrival.  Releases the earliest buffered buckets until at
    /// most `horizon` remain; a horizon of 0 is a pass-through that still
    /// sheds (or replays) regressions instead of letting them reach the
    /// engine as errors.
    pub(crate) fn offer(
        &mut self,
        bucket: Vec<(SocialElement, TopicVector)>,
        bucket_end: Timestamp,
    ) -> OfferOutcome {
        let mut outcome = OfferOutcome::default();
        if self
            .released_through
            .is_some_and(|through| bucket_end <= through)
        {
            match self.policy {
                LatePolicy::DropLate => outcome.dropped = Some(bucket.len()),
                LatePolicy::ForceReplay => {
                    outcome.replayed = Some(bucket.len());
                    self.replay.extend(bucket);
                }
            }
            return outcome;
        }
        outcome.reordered = self
            .highest_offered
            .is_some_and(|highest| bucket_end < highest);
        if self.highest_offered.is_none_or(|h| bucket_end > h) {
            self.highest_offered = Some(bucket_end);
        }
        self.pending.entry(bucket_end).or_default().extend(bucket);
        while self.pending.len() > self.horizon {
            let (end, elements) = self
                .pending
                .pop_first()
                .expect("len > horizon ≥ 0 ⇒ non-empty");
            outcome.released.push(self.release(elements, end));
        }
        outcome
    }

    /// Releases everything still buffered, in order.  Replay leftovers with
    /// no bucket to adopt them are emitted as a final bucket at the release
    /// watermark (the engine accepts `bucket_end == now`).
    pub(crate) fn flush(&mut self) -> Vec<Bucket> {
        let mut released = Vec::new();
        while let Some((end, elements)) = self.pending.pop_first() {
            released.push(self.release(elements, end));
        }
        if !self.replay.is_empty() {
            // Only reachable under ForceReplay with an empty buffer: adopt
            // the stragglers into a zero-progress bucket at the watermark.
            let end = self
                .released_through
                .expect("late elements imply a prior release");
            released.push((std::mem::take(&mut self.replay), end));
        }
        released
    }

    fn release(&mut self, elements: Vec<(SocialElement, TopicVector)>, end: Timestamp) -> Bucket {
        self.released_through = Some(end);
        if self.replay.is_empty() {
            (elements, end)
        } else {
            // Adopted replay elements go first: their timestamps are the
            // oldest, and every one of them is ≤ the old watermark < `end`.
            let mut adopted = std::mem::take(&mut self.replay);
            adopted.extend(elements);
            (adopted, end)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksir_types::{Document, ElementId};

    fn bucket(end: u64, n: usize) -> (Vec<(SocialElement, TopicVector)>, Timestamp) {
        let elements = (0..n)
            .map(|i| {
                (
                    SocialElement::original(
                        ElementId(end * 100 + i as u64),
                        Timestamp(end),
                        Document::new(),
                    ),
                    TopicVector::from_values(vec![1.0]).unwrap(),
                )
            })
            .collect();
        (elements, Timestamp(end))
    }

    fn ends(released: &[Bucket]) -> Vec<u64> {
        released.iter().map(|(_, end)| end.0).collect()
    }

    #[test]
    fn in_order_stream_passes_through_in_order() {
        let mut buf = ReorderBuffer::new(2, LatePolicy::DropLate);
        let mut out = Vec::new();
        for end in 1..=5 {
            let (elements, end) = bucket(end, 1);
            let outcome = buf.offer(elements, end);
            assert!(!outcome.reordered);
            assert!(outcome.dropped.is_none());
            out.extend(outcome.released);
        }
        out.extend(buf.flush());
        assert_eq!(ends(&out), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn bounded_displacement_is_fully_resequenced() {
        // Displacement ≤ 2 everywhere: a horizon-2 buffer must emit sorted.
        let arrival = [2u64, 1, 4, 3, 6, 5, 7];
        let mut buf = ReorderBuffer::new(2, LatePolicy::DropLate);
        let mut out = Vec::new();
        let mut reorders = 0;
        for end in arrival {
            let (elements, end) = bucket(end, 1);
            let outcome = buf.offer(elements, end);
            reorders += outcome.reordered as usize;
            assert!(outcome.dropped.is_none(), "nothing is late at horizon 2");
            out.extend(outcome.released);
        }
        out.extend(buf.flush());
        assert_eq!(ends(&out), vec![1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(reorders, 3, "1, 3 and 5 each arrived behind a later end");
    }

    #[test]
    fn beyond_horizon_arrival_is_dropped_and_counted() {
        let mut buf = ReorderBuffer::new(1, LatePolicy::DropLate);
        let mut out = Vec::new();
        for end in [1u64, 2, 3] {
            let (elements, end) = bucket(end, 1);
            out.extend(buf.offer(elements, end).released);
        }
        // Ends 1 and 2 have been released (horizon 1 keeps only one pending);
        // an arrival at 1 is now beyond the horizon.
        assert_eq!(buf.released_through(), Some(Timestamp(2)));
        let (elements, end) = bucket(1, 3);
        let outcome = buf.offer(elements, end);
        assert_eq!(outcome.dropped, Some(3));
        assert!(outcome.released.is_empty());
        out.extend(buf.flush());
        assert_eq!(ends(&out), vec![1, 2, 3]);
    }

    #[test]
    fn force_replay_folds_late_elements_into_the_next_release() {
        let mut buf = ReorderBuffer::new(1, LatePolicy::ForceReplay);
        let mut out = Vec::new();
        for end in [1u64, 2, 3] {
            let (elements, end) = bucket(end, 1);
            out.extend(buf.offer(elements, end).released);
        }
        let (elements, end) = bucket(1, 2);
        let outcome = buf.offer(elements, end);
        assert_eq!(outcome.replayed, Some(2));
        // The stragglers ride along with the next released bucket (end 3),
        // ahead of its own elements.
        let released = buf.flush();
        assert_eq!(ends(&released), vec![3]);
        let (elements, _) = &released[0];
        assert_eq!(elements.len(), 3);
        assert!(elements.iter().all(|(e, _)| e.ts <= Timestamp(3)));
        assert_eq!(elements[0].0.ts, Timestamp(1), "replayed elements lead");
    }

    #[test]
    fn force_replay_flush_emits_stragglers_at_the_watermark() {
        let mut buf = ReorderBuffer::new(0, LatePolicy::ForceReplay);
        let (elements, end) = bucket(5, 1);
        let released = buf.offer(elements, end).released;
        assert_eq!(ends(&released), vec![5], "horizon 0 passes through");
        let (elements, end) = bucket(4, 2);
        assert_eq!(buf.offer(elements, end).replayed, Some(2));
        // No further bucket arrives: flush must still surface the elements,
        // at the watermark (the engine accepts bucket_end == now).
        let released = buf.flush();
        assert_eq!(ends(&released), vec![5]);
        assert_eq!(released[0].0.len(), 2);
    }

    #[test]
    fn duplicate_ends_merge_into_one_bucket() {
        let mut buf = ReorderBuffer::new(2, LatePolicy::DropLate);
        let (a, end) = bucket(1, 1);
        buf.offer(a, end);
        let (b, end) = bucket(1, 2);
        let outcome = buf.offer(b, end);
        assert!(!outcome.reordered, "same end is not a reorder");
        assert_eq!(buf.buffered(), 1);
        let released = buf.flush();
        assert_eq!(ends(&released), vec![1]);
        assert_eq!(released[0].0.len(), 3);
    }
}
