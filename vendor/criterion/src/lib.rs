//! Offline drop-in subset of the [`criterion`](https://crates.io/crates/criterion)
//! benchmarking API.
//!
//! The build environment has no crates.io access, so this stub implements the
//! surface the workspace's benches use — `criterion_group!` / `criterion_main!`,
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkId`], [`Throughput`] and [`Bencher::iter`] — with a simple
//! wall-clock measurement loop (median-free mean over an adaptive number of
//! iterations) instead of criterion's full statistical machinery.  Output is
//! one line per benchmark: `name … time: <mean> per iter (<iters> iters)`.
//!
//! Like real criterion, passing `--test` on the bench binary's command line
//! (`cargo bench --bench <name> -- --test`) switches to **smoke mode**: each
//! routine runs exactly once with no measurement loop, so CI can prove bench
//! code still compiles and runs without paying for stable timings.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] for call sites that import it from
/// criterion.
pub use std::hint::black_box;

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Creates an id of the form `function_name/parameter`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// Creates an id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Throughput hint attached to a benchmark group (recorded, echoed in output).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing harness handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    test_mode: bool,
    measured: Option<(Duration, u64)>,
}

impl Bencher {
    /// Calls `routine` repeatedly and records the mean wall-clock time.  In
    /// smoke mode (`-- --test`) the routine runs exactly once instead.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.test_mode {
            let start = Instant::now();
            black_box(routine());
            self.measured = Some((start.elapsed(), 1));
            return;
        }
        // Warm-up and calibration: run once to size the measurement loop so
        // cheap routines get enough iterations for a stable mean while slow
        // ones stay within a bounded budget.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let budget = Duration::from_millis(200);
        let iters =
            (budget.as_nanos() / once.as_nanos()).clamp(1, self.sample_size as u128 * 10) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.measured = Some((start.elapsed(), iters));
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", d.as_secs_f64() * 1e3)
    } else if nanos >= 1_000 {
        format!("{:.3} µs", d.as_secs_f64() * 1e6)
    } else {
        format!("{nanos} ns")
    }
}

fn run_one(label: &str, sample_size: usize, test_mode: bool, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        sample_size,
        test_mode,
        measured: None,
    };
    f(&mut b);
    match b.measured {
        Some((total, iters)) if test_mode => {
            let _ = iters;
            println!(
                "{label:<60} smoke: {:>12} (1 iter, --test)",
                format_duration(total)
            );
        }
        Some((total, iters)) if iters > 0 => {
            let per_iter = total / iters as u32;
            println!(
                "{label:<60} time: {:>12} per iter ({iters} iters)",
                format_duration(per_iter)
            );
        }
        _ => println!("{label:<60} time: (not measured)"),
    }
}

/// Top-level benchmark registry (stub of criterion's `Criterion`).
#[derive(Debug)]
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    /// Reads the bench binary's command line: `--test` selects smoke mode,
    /// mirroring `cargo bench -- --test` on real criterion.
    fn default() -> Self {
        Criterion {
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Runs one free-standing benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into().label, 10, self.test_mode, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let test_mode = self.test_mode;
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 10,
            test_mode,
            throughput: None,
        }
    }
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    test_mode: bool,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples (used here to bound the iteration count).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Attaches a throughput hint to subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_one(&label, self.sample_size, self.test_mode, &mut f);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_prints() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("group");
        group.sample_size(5).throughput(Throughput::Elements(3));
        group.bench_function(BenchmarkId::new("f", 3), |b| b.iter(|| 2 * 2));
        group.finish();
    }

    #[test]
    fn test_mode_runs_each_routine_exactly_once() {
        let mut c = Criterion { test_mode: true };
        let mut calls = 0u32;
        c.bench_function("counted", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 1, "smoke mode must not loop the routine");
        let mut group_calls = 0u32;
        let mut group = c.benchmark_group("group");
        group.bench_function("counted", |b| b.iter(|| group_calls += 1));
        group.finish();
        assert_eq!(group_calls, 1);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 10).label, "f/10");
        assert_eq!(BenchmarkId::from_parameter(7).label, "7");
        assert_eq!(BenchmarkId::from("x").label, "x");
    }
}
