//! # ksir-continuous
//!
//! Standing k-SIR queries with **incremental, delta-driven result
//! maintenance**.
//!
//! The paper answers ad-hoc k-SIR queries in real time; a production system
//! serving many users instead holds **subscriptions** — standing queries
//! whose results must be kept current as the sliding window advances.  The
//! naive approach re-runs every subscription's query after every ingested
//! bucket.  This crate's [`SubscriptionManager`] does better by consuming the
//! [`WindowDelta`](ksir_stream::WindowDelta) that
//! [`KsirEngine::ingest_bucket`](ksir_core::KsirEngine::ingest_bucket) now
//! reports and refreshing only the subscriptions a slide could actually have
//! affected.
//!
//! ## Delta-refresh rules
//!
//! After each slide, a subscription is **refreshed** (its query re-run
//! against the index) when any of the following holds, and **skipped** (its
//! previous result carried over) otherwise:
//!
//! 1. **No result yet** — the subscription was registered since the last
//!    slide and has never been evaluated.
//! 2. **Member expired** — an element of its current result set expired out
//!    of the active window.  The stored result would reference a dead
//!    element, so the query is recomputed from scratch against the full
//!    index.
//! 3. **Support topic disturbed** — a ranked list of one of the query
//!    vector's support topics was touched *at or above* the score floor the
//!    subscription's last traversal descended to (its
//!    [`QueryFrontier`](ksir_core::QueryFrontier)).  Touches strictly below
//!    every floor are invisible: the traversal would read the exact same
//!    prefix of every list and terminate at the same point, so the stored
//!    result is provably identical to what a fresh run would return.
//!    Subscriptions using algorithms that scan the whole window (CELF,
//!    SieveStreaming) carry no frontier and are refreshed whenever *any*
//!    support topic is touched at all.
//!
//! Rule 3 is what makes standing queries cheap: a slide that only perturbs
//! topics outside a subscription's support — or deep below the scores its
//! traversal ever reached — costs that subscription nothing.  Rule 2 is
//! implied by rule 3 for the index-based algorithms (removing a selected
//! element touches its list at a score the traversal read), but it is kept
//! as an explicit, belt-and-suspenders guard so that correctness never
//! hinges on the frontier bookkeeping, and so that frontier-less algorithms
//! still recompute after expiry.
//!
//! ## Sharded refresh
//!
//! Subscriptions are partitioned into **topic-keyed shards** (see
//! [`shard`]): each standing query lives in the shard of its dominant
//! support topic, and queries broader than
//! [`ShardConfig::overflow_support_threshold`] rendezvous in a dedicated
//! overflow shard.  After every slide the [`WindowDelta`] is projected onto
//! per-shard *touch filters* — the loosest traversal floor per watched topic
//! (a [`FloorAggregate`](ksir_core::FloorAggregate)), the union of resident
//! result members, and a pending-first-evaluation count — so that whole
//! shards are proven undisturbed without classifying a single resident.
//! Scheduled shards refresh concurrently on the long-lived worker pool;
//! within a shard the rules above run unchanged, so the per-subscription
//! refresh/skip decisions — and the work counters, which still reconcile to
//! `slides × subscriptions` — are identical to a serial walk.
//! [`SubscriptionManager::shard_stats`] exposes per-shard [`ShardStats`]
//! for dashboards and benches.
//!
//! ## Shared evaluation plans
//!
//! Inside each shard, subscriptions whose queries are **plan-compatible** —
//! identical query vector (bitwise), identical `ε`, same algorithm, so they
//! differ at most in `k` — are grouped into *plan clusters* ([`cluster`]).
//! A scheduled shard evaluates each disturbed cluster once per distinct
//! member `k` (largest first: the **covering** run, see
//! [`KsirQuery::covering`](ksir_core::KsirQuery::covering)) against a shared
//! singleton memo; same-`k` members share the run's result outright and
//! smaller-`k` members re-run only their admission logic over the covering
//! run's scored candidates.  Per-member classify decisions, results, stats
//! and delivered deltas are pinned identical to the per-subscription walk
//! (the `shared_plans` property tests); only evaluation *cost* drops — the
//! `refresh.cluster.*` counters and
//! [`ShardStats::covering_evaluations`]/[`ShardStats::shared_refreshes`]
//! expose by how much.  [`ShardConfig::shared_plans`] (default `true`)
//! selects the path.
//!
//! [`WindowDelta`]: ksir_stream::WindowDelta
//!
//! ## Asynchronous ingestion, pipelined epochs
//!
//! The sharded refresh of PR 2 still joined on the slowest shard before
//! `ingest_bucket` could return.  The pipeline decouples the two halves:
//! [`SubscriptionManager::ingest_bucket_async`] updates the index, hands the
//! affected shards their epoch, and returns a [`SlideTicket`] immediately.
//! Each worker streams the [`ResultDelta`]s it produces into bounded
//! **per-subscriber delivery queues** ([`delivery`]) that consumers drain
//! through a [`DeliveryReceiver`] at their own pace; under the default
//! [`OverflowPolicy::DropOldest`] a slow consumer sheds its own oldest deltas
//! instead of back-pressuring the workers, so ingestion latency is
//! independent of subscriber count and drain speed.
//!
//! Refresh *compute* no longer gates ingestion either: each asynchronously
//! ingested slide (an **epoch**) captures an immutable
//! [`EngineSnapshot`](ksir_snapshot::EngineSnapshot) right after its index
//! write — `O(topics)` `Arc` clones; the writer copy-on-writes around live
//! snapshots — and refresh workers evaluate against the snapshot instead of
//! an engine read guard.  Epoch `N+1`'s index write therefore proceeds while
//! epoch `N`'s refreshes drain, up to [`ShardConfig::pipeline_depth`] epochs
//! deep (`1` restores the old quiesce-before-write behaviour).  Ordering is
//! per shard: every shard processes its pending epochs strictly in order
//! through its *lane*, so the filters feeding each schedule/skip decision
//! are exactly the serial walk's, and the frozen snapshot *is* that epoch's
//! engine state — which keeps the pipelined path **decision-identical** to
//! the synchronous [`SubscriptionManager::ingest_bucket`] API, which remains
//! available and returns the complete [`SlideOutcome`] per slide.
//! [`SubscriptionManager::sync`] awaits all outstanding epochs;
//! [`SubscriptionManager::completed_epoch`] exposes the completion
//! watermark; [`SubscriptionManager::snapshot_stats`] the capture costs.
//! Per-shard snapshots are bounded to the topics the shard's residents
//! traverse, optionally truncated at the shard's floors
//! ([`ksir_snapshot::SnapshotPolicy`] — the default `Exact` policy is
//! score-identical, truncation trades exactness on floor-crossing re-runs
//! for bounded memory).
//!
//! ## Hostile streams: reordering, fault isolation, overload
//!
//! Real feeds are not clean: buckets arrive out of order, a worker can
//! panic mid-refresh, and load can outrun the pipeline.  Three layers keep
//! the engine available — and its decisions pinned — under all three:
//!
//! * **Reorder buffer** ([`reorder`]): a bounded, watermark-driven buffer in
//!   front of the pipelined path
//!   ([`SubscriptionManager::ingest_bucket_reordered`]).  Any bucket
//!   displaced by at most [`ShardConfig::reorder_horizon`] positions is
//!   re-sequenced exactly (decisions bit-identical to in-order replay — the
//!   reorder property test); beyond the horizon, [`LatePolicy`] decides
//!   between counted shedding (`ingest.late_dropped`) and forced replay.
//! * **Fault isolation** ([`fault`]): every worker refresh attempt runs
//!   inside `catch_unwind`.  A panic never publishes a partial
//!   [`ResultDelta`] (the shard lock poisons no state — injected faults
//!   fire pre-mutation, real ones trigger a memo-dropping recovery) and
//!   never stalls the watermark (epoch registrations complete on drop).
//!   Panicking attempts retry with bounded backoff; a shard that exhausts
//!   its budget is **quarantined** (skipped with counted sheds, visible on
//!   `shard.quarantined`) instead of wedging the pipeline, and dead worker
//!   threads are respawned within a bounded budget (`worker.restarts`).
//!   Deterministic [`FaultPlan`]s inject panics, snapshot delays, poisoned
//!   delivery sends, and worker kills at exact epoch/shard coordinates for
//!   the chaos harness.
//! * **Graceful overload degradation** ([`overload`]): when enabled, the
//!   admission-wait pressure walks a reversible load-shed ladder — shared
//!   plans off → delta refresh off → floor-truncated snapshots — one rung
//!   at a time with hysteresis and cooldown, exported on `overload.level`.
//!
//! Because every refresh re-runs the subscription's own algorithm against
//! the same index an ad-hoc query would use, maintained results are
//! **score-equivalent to from-scratch queries at every slide** — the
//! integration tests assert exactly that on the paper's Table 1 example and
//! on randomly planted streams, and additionally that the deltas drained
//! from the delivery queues equal the synchronous outcomes slide for slide.
//!
//! ## Example
//!
//! ```
//! use ksir_continuous::SubscriptionManager;
//! use ksir_core::{fixtures::paper_example, Algorithm, KsirQuery};
//! use ksir_types::QueryVector;
//!
//! let example = paper_example();
//! let mut manager = SubscriptionManager::new(example.empty_engine());
//!
//! // A standing query: "2 representatives, equal interest in both topics".
//! let query = KsirQuery::new(2, QueryVector::new(vec![0.5, 0.5])?)?;
//! let sub = manager.subscribe(query, Algorithm::Mttd)?;
//!
//! // Stream the example's 8 tweets; each slide reports the subscriptions
//! // whose results changed.
//! for (element, tv) in example.stream() {
//!     let ts = element.ts;
//!     let outcome = manager.ingest_bucket(vec![(element, tv)], ts)?;
//!     for update in &outcome.updates {
//!         println!("t={ts}: +{:?} -{:?}", update.added, update.removed);
//!     }
//! }
//! // The maintained result is what an ad-hoc query would return at t = 8.
//! assert_eq!(manager.result(sub).unwrap().len(), 2);
//! # Ok::<(), ksir_types::KsirError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cluster;
pub mod delivery;
pub mod fault;
pub mod manager;
pub mod overload;
pub mod reorder;
pub mod shard;
pub mod subscription;
mod worker;

pub use delivery::{Delivery, DeliveryConfig, DeliveryReceiver, OverflowPolicy};
pub use fault::{Fault, FaultKind, FaultPlan};
pub use manager::{ManagerStats, RetiredStats, SlideOutcome, SlideTicket, SubscriptionManager};
pub use overload::{OverloadConfig, OverloadLevel};
pub use reorder::LatePolicy;
pub use shard::{ShardConfig, ShardKey, ShardStats};
pub use subscription::{RefreshReason, ResultDelta, SubscriptionId, SubscriptionStats};

// The snapshot knobs a pipelined deployment tunes, re-exported so most users
// never import `ksir-snapshot` directly.
pub use ksir_snapshot::{SnapshotPolicy, SnapshotStats};

// The observability surface ([`SubscriptionManager::telemetry`]), re-exported
// so dashboards and exporters never import `ksir-telemetry` directly.
pub use ksir_telemetry::{
    EpochRecord, EpochTimeline, FlightRecord, FlightRecorder, FlightTrigger, FreshnessClock,
    MetricsRegistry, ShardLabel, Telemetry, TelemetryConfig, TraceEvent, TraceEventKind, TraceLog,
};
