//! Vocabulary: the bidirectional mapping between word strings and [`WordId`]s.

use std::collections::HashMap;

use crate::{KsirError, Result, WordId};

/// The vocabulary `V` of a corpus, indexed by `{0, …, m-1}`.
///
/// Interning word strings once keeps [`crate::Document`]s compact (plain
/// integer ids) and makes every per-word lookup in the scoring hot path an
/// array index instead of a string hash.
#[derive(Debug, Clone, Default)]
pub struct Vocabulary {
    words: Vec<String>,
    index: HashMap<String, WordId>,
}

impl Vocabulary {
    /// Creates an empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `word`, returning its id.  Existing words keep their id.
    pub fn intern(&mut self, word: &str) -> WordId {
        if let Some(&id) = self.index.get(word) {
            return id;
        }
        let id = WordId(self.words.len() as u32);
        self.words.push(word.to_string());
        self.index.insert(word.to_string(), id);
        id
    }

    /// Looks up an existing word without interning.
    pub fn id_of(&self, word: &str) -> Option<WordId> {
        self.index.get(word).copied()
    }

    /// Returns the string for a word id.
    pub fn word(&self, id: WordId) -> Result<&str> {
        self.words
            .get(id.index())
            .map(|s| s.as_str())
            .ok_or(KsirError::UnknownWord(id))
    }

    /// Number of distinct words (`m = |V|`).
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Returns `true` if no words have been interned.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Returns `true` if `id` is a valid word id in this vocabulary.
    pub fn contains_id(&self, id: WordId) -> bool {
        id.index() < self.words.len()
    }

    /// Iterates over `(id, word)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (WordId, &str)> + '_ {
        self.words
            .iter()
            .enumerate()
            .map(|(i, w)| (WordId(i as u32), w.as_str()))
    }

    /// Builds a vocabulary from an iterator of words (convenience for tests).
    pub fn from_words<'a, I: IntoIterator<Item = &'a str>>(words: I) -> Self {
        let mut v = Vocabulary::new();
        for w in words {
            v.intern(w);
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut v = Vocabulary::new();
        let a = v.intern("soccer");
        let b = v.intern("nba");
        let a2 = v.intern("soccer");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn lookup_roundtrip() {
        let mut v = Vocabulary::new();
        let id = v.intern("champion");
        assert_eq!(v.id_of("champion"), Some(id));
        assert_eq!(v.id_of("missing"), None);
        assert_eq!(v.word(id).unwrap(), "champion");
        assert!(v.word(WordId(99)).is_err());
    }

    #[test]
    fn iteration_order_follows_ids() {
        let v = Vocabulary::from_words(["a", "b", "c"]);
        let collected: Vec<_> = v.iter().map(|(id, w)| (id.raw(), w.to_string())).collect();
        assert_eq!(
            collected,
            vec![(0, "a".into()), (1, "b".into()), (2, "c".into())]
        );
        assert!(v.contains_id(WordId(2)));
        assert!(!v.contains_id(WordId(3)));
    }

    #[test]
    fn empty_vocab() {
        let v = Vocabulary::new();
        assert!(v.is_empty());
        assert_eq!(v.len(), 0);
    }
}
