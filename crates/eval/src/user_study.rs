//! A programmatic proxy for the paper's user study (Table 5).
//!
//! The paper recruits 30 volunteers; for every query, three of them rank the
//! result sets of the five compared methods on two aspects —
//! *representativeness* (relevance to the query topic plus information
//! coverage) and *impact* (citations / comments / retweets of the selected
//! elements) — and the ranks are mapped to a 1–5 scale.
//!
//! A human study cannot be re-run in software, so this module substitutes
//! seeded "judges": each judge scores a result set with the same two criteria
//! the paper gave to its evaluators (a relevance+coverage blend for
//! representativeness, reference counts for impact), perturbed by
//! judge-specific multiplicative noise, and then ranks the methods per query.
//! The outcome preserves the quantity the paper's Table 5 is about — the
//! *ordering* of the methods — and reports Cohen's weighted kappa between the
//! judges, like the paper does.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ksir_baselines::SearchPool;
use ksir_types::{ElementId, QueryVector};

use crate::kappa::average_pairwise_kappa;
use crate::metrics::{coverage_score, normalized_influence_score};

/// One query to be judged: the candidate pool at query time, the query
/// vector, and each method's result set.
#[derive(Debug, Clone)]
pub struct StudyQuery<'a> {
    /// Candidate pool (the active window at query time).
    pub pool: &'a SearchPool,
    /// The query vector.
    pub query: QueryVector,
    /// Per-method result sets, in a fixed method order.
    pub results: Vec<Vec<ElementId>>,
}

/// Aggregated outcome of the proxy user study.
#[derive(Debug, Clone)]
pub struct UserStudyOutcome {
    /// Method names, in the order the ratings are reported.
    pub methods: Vec<String>,
    /// Average representativeness rating (1–5) per method.
    pub representativeness: Vec<f64>,
    /// Average impact rating (1–5) per method.
    pub impact: Vec<f64>,
    /// Average pairwise inter-judge kappa on representativeness.
    pub kappa_representativeness: f64,
    /// Average pairwise inter-judge kappa on impact.
    pub kappa_impact: f64,
}

/// The proxy user study.
#[derive(Debug, Clone)]
pub struct UserStudy {
    methods: Vec<String>,
    num_judges: usize,
    noise: f64,
    seed: u64,
}

impl UserStudy {
    /// Creates a study over the given methods with 3 judges per query (as in
    /// the paper) and 10% judge noise.
    pub fn new<S: Into<String>>(methods: Vec<S>, seed: u64) -> Self {
        UserStudy {
            methods: methods.into_iter().map(Into::into).collect(),
            num_judges: 3,
            noise: 0.1,
            seed,
        }
    }

    /// Overrides the number of judges per query (at least 2).
    pub fn with_judges(mut self, judges: usize) -> Self {
        self.num_judges = judges.max(2);
        self
    }

    /// Overrides the multiplicative judge noise (clamped to `[0, 1]`).
    pub fn with_noise(mut self, noise: f64) -> Self {
        self.noise = noise.clamp(0.0, 1.0);
        self
    }

    /// Method names in reporting order.
    pub fn methods(&self) -> &[String] {
        &self.methods
    }

    /// Runs the study over a set of judged queries.
    ///
    /// Panics if a query does not provide exactly one result set per method
    /// (that is a harness bug, not a data condition).
    pub fn run(&self, queries: &[StudyQuery<'_>]) -> UserStudyOutcome {
        let m = self.methods.len();
        assert!(m >= 2, "a study needs at least two methods to rank");
        for q in queries {
            assert_eq!(
                q.results.len(),
                m,
                "every query must provide one result set per method"
            );
        }

        let mut rep_totals = vec![0.0; m];
        let mut imp_totals = vec![0.0; m];
        // Per-judge flattened ratings (one entry per query × method) for kappa.
        let mut rep_ratings: Vec<Vec<usize>> = vec![Vec::new(); self.num_judges];
        let mut imp_ratings: Vec<Vec<usize>> = vec![Vec::new(); self.num_judges];

        for (qi, query) in queries.iter().enumerate() {
            let rep_quality = self.representativeness_qualities(query);
            let imp_quality: Vec<f64> = query
                .results
                .iter()
                .map(|r| normalized_influence_score(query.pool, r))
                .collect();

            for judge in 0..self.num_judges {
                let mut rng = StdRng::seed_from_u64(
                    self.seed
                        ^ (judge as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
                        ^ (qi as u64) << 17,
                );
                let rep_ranks = self.rank_with_noise(&rep_quality, &mut rng);
                let imp_ranks = self.rank_with_noise(&imp_quality, &mut rng);
                for method in 0..m {
                    rep_totals[method] += rep_ranks[method] as f64;
                    imp_totals[method] += imp_ranks[method] as f64;
                    rep_ratings[judge].push(rep_ranks[method] - 1);
                    imp_ratings[judge].push(imp_ranks[method] - 1);
                }
            }
        }

        let denom = (queries.len() * self.num_judges).max(1) as f64;
        UserStudyOutcome {
            methods: self.methods.clone(),
            representativeness: rep_totals.iter().map(|t| t / denom).collect(),
            impact: imp_totals.iter().map(|t| t / denom).collect(),
            kappa_representativeness: average_pairwise_kappa(&rep_ratings, m).unwrap_or(0.0),
            kappa_impact: average_pairwise_kappa(&imp_ratings, m).unwrap_or(0.0),
        }
    }

    /// The representativeness criterion handed to the judges: an equal blend
    /// of relevance to the query topic and information coverage.
    ///
    /// Relevance and coverage live on very different scales (coverage is
    /// averaged over the whole candidate pool), so each component is first
    /// normalised by the best value any method achieved *for this query* —
    /// the judges compare the methods against each other, exactly as the
    /// paper's evaluators ranked result sets side by side.
    fn representativeness_qualities(&self, query: &StudyQuery<'_>) -> Vec<f64> {
        let relevance: Vec<f64> = query
            .results
            .iter()
            .map(|result| {
                let members: Vec<_> = result.iter().filter_map(|id| query.pool.get(*id)).collect();
                if members.is_empty() {
                    return 0.0;
                }
                members
                    .iter()
                    .map(|m| query.query.cosine(&m.topic_vector).unwrap_or(0.0))
                    .sum::<f64>()
                    / members.len() as f64
            })
            .collect();
        let coverage: Vec<f64> = query
            .results
            .iter()
            .map(|result| coverage_score(query.pool, &query.query, result))
            .collect();
        let normalize = |values: &[f64]| -> Vec<f64> {
            let max = values.iter().copied().fold(0.0_f64, f64::max);
            if max <= 0.0 {
                vec![0.0; values.len()]
            } else {
                values.iter().map(|v| v / max).collect()
            }
        };
        let relevance = normalize(&relevance);
        let coverage = normalize(&coverage);
        relevance
            .iter()
            .zip(coverage.iter())
            .map(|(r, c)| 0.5 * r + 0.5 * c)
            .collect()
    }

    /// Ranks methods by noisy quality: the best method gets rating
    /// `num_methods`, the worst gets 1 (the paper's 1–5 mapping for five
    /// methods).
    fn rank_with_noise(&self, quality: &[f64], rng: &mut StdRng) -> Vec<usize> {
        let noisy: Vec<f64> = quality
            .iter()
            .map(|q| q * (1.0 + self.noise * (rng.gen::<f64>() * 2.0 - 1.0)))
            .collect();
        let mut order: Vec<usize> = (0..noisy.len()).collect();
        order.sort_by(|&a, &b| noisy[a].total_cmp(&noisy[b]).then_with(|| b.cmp(&a)));
        let mut ranks = vec![0usize; noisy.len()];
        for (position, &method) in order.iter().enumerate() {
            ranks[method] = position + 1;
        }
        ranks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksir_baselines::SearchItem;
    use ksir_types::{Document, TopicVector, WordId};

    fn item(id: u64, tv: Vec<f64>, refs: &[u64], referenced_by: usize) -> SearchItem {
        SearchItem {
            id: ElementId(id),
            doc: Document::from_tokens([WordId(id as u32 % 7)]),
            topic_vector: TopicVector::from_values(tv).unwrap(),
            refs: refs.iter().map(|&r| ElementId(r)).collect(),
            referenced_by,
        }
    }

    fn pool() -> SearchPool {
        SearchPool::from_items(vec![
            item(1, vec![1.0, 0.0], &[], 3),
            item(2, vec![0.9, 0.1], &[1], 0),
            item(3, vec![0.8, 0.2], &[1], 0),
            item(4, vec![0.1, 0.9], &[], 0),
            item(5, vec![0.0, 1.0], &[1], 0),
        ])
    }

    fn study() -> UserStudy {
        UserStudy::new(vec!["good", "bad"], 7)
    }

    #[test]
    fn better_results_get_higher_ratings() {
        let pool = pool();
        let query = QueryVector::new(vec![1.0, 0.0]).unwrap();
        // "good" returns the relevant, heavily referenced element; "bad"
        // returns the off-topic, unreferenced one.
        let queries = vec![StudyQuery {
            pool: &pool,
            query,
            results: vec![vec![ElementId(1)], vec![ElementId(4)]],
        }];
        let outcome = study().run(&queries);
        assert_eq!(outcome.methods, vec!["good".to_string(), "bad".to_string()]);
        assert!(outcome.representativeness[0] > outcome.representativeness[1]);
        assert!(outcome.impact[0] > outcome.impact[1]);
        // Ratings live on the 1..=num_methods scale.
        for r in outcome
            .representativeness
            .iter()
            .chain(outcome.impact.iter())
        {
            assert!(*r >= 1.0 && *r <= 2.0);
        }
    }

    #[test]
    fn judges_agree_when_the_gap_is_clear() {
        let pool = pool();
        let query = QueryVector::new(vec![1.0, 0.0]).unwrap();
        let queries: Vec<StudyQuery<'_>> = (0..6)
            .map(|_| StudyQuery {
                pool: &pool,
                query: query.clone(),
                results: vec![vec![ElementId(1), ElementId(2)], vec![ElementId(4)]],
            })
            .collect();
        let outcome = study().with_judges(3).run(&queries);
        assert!(outcome.kappa_representativeness > 0.5);
        assert!(outcome.kappa_impact > 0.5);
    }

    #[test]
    fn outcome_is_deterministic_for_a_seed() {
        let pool = pool();
        let query = QueryVector::new(vec![0.5, 0.5]).unwrap();
        let queries = vec![StudyQuery {
            pool: &pool,
            query,
            results: vec![vec![ElementId(1)], vec![ElementId(5)]],
        }];
        let a = study().run(&queries);
        let b = study().run(&queries);
        assert_eq!(a.representativeness, b.representativeness);
        assert_eq!(a.impact, b.impact);
    }

    #[test]
    #[should_panic(expected = "one result set per method")]
    fn mismatched_result_count_panics() {
        let pool = pool();
        let query = QueryVector::new(vec![1.0, 0.0]).unwrap();
        let queries = vec![StudyQuery {
            pool: &pool,
            query,
            results: vec![vec![ElementId(1)]],
        }];
        study().run(&queries);
    }

    #[test]
    fn empty_result_sets_score_lowest() {
        let pool = pool();
        let query = QueryVector::new(vec![1.0, 0.0]).unwrap();
        let queries = vec![StudyQuery {
            pool: &pool,
            query,
            results: vec![vec![ElementId(1)], vec![]],
        }];
        let outcome = study().with_noise(0.0).run(&queries);
        assert!(outcome.representativeness[0] > outcome.representativeness[1]);
    }
}
