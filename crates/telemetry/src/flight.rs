//! The flight recorder: event-triggered postmortem snapshots.
//!
//! The trace ring is bounded, so by the time a human looks at a failure the
//! events that explain it have usually been shed.  The flight recorder fixes
//! that: when a trigger event fires — a shard quarantine, an overload ladder
//! step, a late-drop burst, a worker respawn, or an injected fault — the
//! owning [`Telemetry`](crate::Telemetry) bundle atomically captures the
//! **current** trace ring, the full metrics surface, and the trigger's
//! metadata into one JSON [`FlightRecord`], kept in a bounded ring of its
//! own.  Records survive until capacity-shed (oldest first, counted), are
//! served over `/flight` by `ksir-obs`, and are dumped to disk by the chaos
//! harness as CI artifacts.

use std::collections::VecDeque;
use std::sync::Mutex;

use crate::trace::{ShardLabel, TraceEvent};

/// What tripped the flight recorder.  Every variant carries the epoch it
/// fired in (0 for events outside any slide).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightTrigger {
    /// A shard exhausted its refresh retry budget and was quarantined.
    ShardQuarantined {
        /// The epoch the quarantining refresh belonged to.
        epoch: u64,
        /// The quarantined shard.
        shard: ShardLabel,
    },
    /// The overload controller moved the load-shed ladder.
    OverloadStep {
        /// The epoch (slide count at the step).
        epoch: u64,
        /// The rung stepped to (0 = normal).
        level: u64,
    },
    /// A single arrival shed at least the configured burst threshold of
    /// late elements (see `TelemetryConfig::late_drop_burst`).
    LateDropBurst {
        /// The epoch (slide count) at the shed.
        epoch: u64,
        /// Elements the shed bucket carried.
        dropped: u64,
    },
    /// A dead worker thread was detected and respawned.
    WorkerRespawned {
        /// The epoch at detection (0: detection happens at dispatch).
        epoch: u64,
    },
    /// A scheduled fault fired at one of the injection seams; chaos runs
    /// assert exactly one record per injected fault.
    FaultInjected {
        /// The epoch the fault was armed for.
        epoch: u64,
        /// Stable name of the fault kind (e.g. `panic_in_refresh`).
        kind: &'static str,
    },
}

impl FlightTrigger {
    /// Stable lowercase trigger name, used in record JSON and by the chaos
    /// per-fault oracle.
    pub fn name(&self) -> &'static str {
        match self {
            FlightTrigger::ShardQuarantined { .. } => "shard_quarantined",
            FlightTrigger::OverloadStep { .. } => "overload_step",
            FlightTrigger::LateDropBurst { .. } => "late_drop_burst",
            FlightTrigger::WorkerRespawned { .. } => "worker_respawned",
            FlightTrigger::FaultInjected { .. } => "fault_injected",
        }
    }

    /// The epoch the trigger fired in.
    pub fn epoch(&self) -> u64 {
        match *self {
            FlightTrigger::ShardQuarantined { epoch, .. }
            | FlightTrigger::OverloadStep { epoch, .. }
            | FlightTrigger::LateDropBurst { epoch, .. }
            | FlightTrigger::WorkerRespawned { epoch }
            | FlightTrigger::FaultInjected { epoch, .. } => epoch,
        }
    }

    fn meta_json(&self) -> String {
        match *self {
            FlightTrigger::ShardQuarantined { epoch, shard } => {
                format!("{{ \"epoch\": {epoch}, \"shard\": \"{shard}\" }}")
            }
            FlightTrigger::OverloadStep { epoch, level } => {
                format!("{{ \"epoch\": {epoch}, \"level\": {level} }}")
            }
            FlightTrigger::LateDropBurst { epoch, dropped } => {
                format!("{{ \"epoch\": {epoch}, \"dropped\": {dropped} }}")
            }
            FlightTrigger::WorkerRespawned { epoch } => {
                format!("{{ \"epoch\": {epoch} }}")
            }
            FlightTrigger::FaultInjected { epoch, kind } => {
                format!("{{ \"epoch\": {epoch}, \"kind\": \"{kind}\" }}")
            }
        }
    }
}

fn trace_json(events: &[TraceEvent]) -> String {
    let mut out = String::from("[");
    for (i, event) in events.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!(
            "{{ \"at_ns\": {}, \"epoch\": {}, \"shard\": {}, \"kind\": \"{}\" }}",
            event.at_nanos,
            event.epoch,
            match event.shard {
                Some(label) => format!("\"{label}\""),
                None => "null".to_string(),
            },
            event.kind.name(),
        ));
    }
    out.push(']');
    out
}

/// One postmortem snapshot: the trigger, plus the metrics surface and trace
/// ring exactly as they stood when it fired.
#[derive(Debug, Clone)]
pub struct FlightRecord {
    /// Monotonically increasing capture number (never reused, so a consumer
    /// can detect records shed between polls).
    pub seq: u64,
    /// Monotonic nanoseconds (bundle clock) at capture.
    pub at_nanos: u64,
    /// What fired.
    pub trigger: FlightTrigger,
    /// Trace events shed from the trace ring *before* this capture — a
    /// non-zero value means `trace` covers a suffix of the stream only.
    pub trace_events_dropped: u64,
    /// The full metrics surface at capture, as the registry's JSON
    /// rendering.
    pub metrics_json: String,
    /// The trace ring at capture, rendered as a JSON array of events.
    pub trace_json: String,
}

impl FlightRecord {
    /// The record as one JSON object (`metrics` and `trace` embedded as
    /// structured JSON, not strings).
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"seq\": {},\n  \"at_ns\": {},\n  \"trigger\": \"{}\",\n  \
             \"meta\": {},\n  \"trace_events_dropped\": {},\n  \"metrics\": {},\n  \
             \"trace\": {}\n}}",
            self.seq,
            self.at_nanos,
            self.trigger.name(),
            self.trigger.meta_json(),
            self.trace_events_dropped,
            self.metrics_json.trim_end(),
            self.trace_json,
        )
    }
}

#[derive(Debug, Default)]
struct Ring {
    records: VecDeque<FlightRecord>,
    next_seq: u64,
    dropped: u64,
}

/// The bounded ring of flight records.  `capacity == 0` disables capture
/// entirely (triggers become no-ops).
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    ring: Mutex<Ring>,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new(32)
    }
}

impl FlightRecorder {
    /// A recorder bounded to `capacity` records (0 = disabled).
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            capacity,
            ring: Mutex::new(Ring::default()),
        }
    }

    /// The ring's bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether triggers capture anything.
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Appends one record, shedding the oldest when full.  Returns `false`
    /// while disabled.  Prefer
    /// [`Telemetry::trigger_flight`](crate::Telemetry::trigger_flight),
    /// which fills in the snapshot fields and bumps the `flight.*` counters.
    pub fn capture(
        &self,
        at_nanos: u64,
        trigger: FlightTrigger,
        trace_events_dropped: u64,
        metrics_json: String,
        trace: &[TraceEvent],
    ) -> bool {
        if !self.is_enabled() {
            return false;
        }
        let mut ring = self.ring.lock().unwrap_or_else(|p| p.into_inner());
        if ring.records.len() >= self.capacity {
            ring.records.pop_front();
            ring.dropped += 1;
        }
        let seq = ring.next_seq;
        ring.next_seq += 1;
        ring.records.push_back(FlightRecord {
            seq,
            at_nanos,
            trigger,
            trace_events_dropped,
            metrics_json,
            trace_json: trace_json(trace),
        });
        true
    }

    /// Records currently retained, oldest first.
    pub fn records(&self) -> Vec<FlightRecord> {
        self.ring
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .records
            .iter()
            .cloned()
            .collect()
    }

    /// Number of records currently retained.
    pub fn len(&self) -> usize {
        self.ring
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .records
            .len()
    }

    /// Returns `true` when no records are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records shed because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.ring.lock().unwrap_or_else(|p| p.into_inner()).dropped
    }

    /// The whole ring as one JSON object:
    /// `{"capacity": c, "dropped": d, "records": [...]}`.
    pub fn to_json(&self) -> String {
        let records = self.records();
        let mut out = format!(
            "{{\n\"capacity\": {},\n\"dropped\": {},\n\"records\": [",
            self.capacity,
            self.dropped()
        );
        for (i, record) in records.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('\n');
            out.push_str(&record.to_json());
        }
        out.push_str("\n]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceEventKind;

    fn trigger(epoch: u64) -> FlightTrigger {
        FlightTrigger::OverloadStep { epoch, level: 1 }
    }

    #[test]
    fn ring_sheds_oldest_and_seq_never_reuses() {
        let recorder = FlightRecorder::new(2);
        for epoch in 1..=4 {
            assert!(recorder.capture(epoch * 10, trigger(epoch), 0, "{}".into(), &[]));
        }
        assert_eq!(recorder.len(), 2);
        assert_eq!(recorder.dropped(), 2);
        let seqs: Vec<u64> = recorder.records().iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![2, 3], "freshest records survive, seq is global");
    }

    #[test]
    fn zero_capacity_disables_capture() {
        let recorder = FlightRecorder::new(0);
        assert!(!recorder.is_enabled());
        assert!(!recorder.capture(1, trigger(1), 0, "{}".into(), &[]));
        assert!(recorder.is_empty());
    }

    #[test]
    fn record_json_embeds_trigger_metrics_and_trace() {
        let recorder = FlightRecorder::new(4);
        let events = [TraceEvent {
            at_nanos: 5,
            epoch: 2,
            shard: Some(ShardLabel::Overflow),
            kind: TraceEventKind::WorkerPanicked,
        }];
        recorder.capture(
            99,
            FlightTrigger::FaultInjected {
                epoch: 2,
                kind: "panic_in_refresh",
            },
            1,
            "{ \"counters\": { } }".into(),
            &events,
        );
        let json = recorder.to_json();
        assert!(json.contains("\"trigger\": \"fault_injected\""));
        assert!(json.contains("\"kind\": \"panic_in_refresh\""));
        assert!(json.contains("\"trace_events_dropped\": 1"));
        assert!(json.contains("\"shard\": \"shard[overflow]\""));
        assert!(json.contains("\"kind\": \"worker_panicked\""));
        assert!(json.contains("\"counters\""));
        // Trigger accessors used by the chaos oracle.
        let records = recorder.records();
        assert_eq!(records[0].trigger.name(), "fault_injected");
        assert_eq!(records[0].trigger.epoch(), 2);
    }
}
