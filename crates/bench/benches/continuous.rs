//! Standing-query maintenance: delta-driven refresh vs recompute-per-slide.
//!
//! The workload the `ksir-continuous` subsystem exists for: a 10k-element
//! Twitter-shaped stream replayed bucket by bucket while 16 standing queries
//! must be kept current (the shared [`MaintenanceScenario`]).
//! `delta_refresh` maintains them through the `SubscriptionManager` in its
//! PR-1 serial configuration (skipping subscriptions whose support topics
//! were not disturbed above their traversal floors); `recompute_per_slide`
//! is the naive baseline that re-runs every query after every bucket.  Both
//! replay the same pre-generated stream from a fresh engine, so the measured
//! gap is exactly the maintenance saving.  The sharded configurations are
//! measured separately in `continuous_sharded.rs`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ksir_bench::MaintenanceScenario;
use ksir_continuous::ShardConfig;

fn bench_standing_queries(c: &mut Criterion) {
    let scenario = MaintenanceScenario::standard();
    let mut group = c.benchmark_group("continuous");
    group.sample_size(10);

    group.bench_function(
        BenchmarkId::new("delta_refresh", scenario.stream.len()),
        |b| b.iter(|| scenario.run_managed(ShardConfig::unsharded()).stats),
    );

    group.bench_function(
        BenchmarkId::new("recompute_per_slide", scenario.stream.len()),
        |b| b.iter(|| scenario.run_recompute().stats),
    );

    group.finish();
}

/// One-shot report of how much work the delta rules skip on this workload
/// (printed alongside the timings so the bench output is self-explaining).
fn report_skip_rate(c: &mut Criterion) {
    let scenario = MaintenanceScenario::standard();
    let run = scenario.run_managed(ShardConfig::unsharded());
    let potential = run.stats.slides * scenario.queries.len();
    println!(
        "continuous/skip_rate: {} slides x {} subscriptions = {} evaluations; \
         {} refreshes, {} skips ({:.1}% saved)",
        run.stats.slides,
        scenario.queries.len(),
        potential,
        run.stats.refreshes,
        run.stats.skips,
        100.0 * run.skip_ratio(),
    );
    let _ = c;
}

criterion_group!(benches, bench_standing_queries, report_skip_rate);
criterion_main!(benches);
