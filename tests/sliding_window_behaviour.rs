//! Integration tests of the time-critical behaviour the paper emphasises:
//! results follow the sliding window, influence is restricted to the window,
//! and expired-but-referenced elements stay retrievable.

use ksir::{
    Algorithm, ElementId, EngineConfig, KsirEngine, KsirQuery, QueryVector, ScoringConfig,
    SocialElementBuilder, Timestamp, TopicVector, WindowConfig,
};

fn engine(window: u64) -> KsirEngine<ksir::types::DenseTopicWordTable> {
    let phi = ksir::types::DenseTopicWordTable::from_rows(vec![
        vec![0.5, 0.3, 0.2, 0.0, 0.0],
        vec![0.0, 0.0, 0.2, 0.3, 0.5],
    ])
    .unwrap();
    let config = EngineConfig::new(
        WindowConfig::new(window, 1).unwrap(),
        ScoringConfig::new(0.5, 2.0).unwrap(),
    )
    .with_max_topics_per_element(None);
    KsirEngine::new(phi, config).unwrap()
}

fn tv(a: f64, b: f64) -> TopicVector {
    TopicVector::from_values(vec![a, b]).unwrap()
}

#[test]
fn query_results_track_the_sliding_window() {
    let mut engine = engine(3);
    // One early burst about topic 0, one later burst about topic 0 with
    // different words; with a 3-tick window only the recent burst is active.
    for (id, ts, words) in [
        (1u64, 1u64, [0u32, 1]),
        (2, 2, [0, 2]),
        (3, 6, [1, 2]),
        (4, 7, [0, 1]),
    ] {
        let e = SocialElementBuilder::new(id).at(ts).words(words).build();
        engine
            .ingest_bucket(vec![(e, tv(1.0, 0.0))], Timestamp(ts))
            .unwrap();
    }
    let query = KsirQuery::new(2, QueryVector::single_topic(2, ksir::TopicId(0)).unwrap()).unwrap();
    let result = engine.query(&query, Algorithm::Mttd).unwrap();
    assert!(result.contains(ElementId(3)) || result.contains(ElementId(4)));
    assert!(
        !result.contains(ElementId(1)),
        "expired elements must not be returned"
    );
    assert!(!result.contains(ElementId(2)));
}

#[test]
fn influence_fades_as_referencing_elements_expire() {
    let mut engine = engine(3);
    // e1 is retweeted twice right away; later the retweets fall out of the
    // window, so e1's influence-driven score must drop.
    let e1 = SocialElementBuilder::new(1).at(1).words([0, 1]).build();
    engine
        .ingest_bucket(vec![(e1, tv(1.0, 0.0))], Timestamp(1))
        .unwrap();
    for (id, ts) in [(2u64, 2u64), (3, 3)] {
        let e = SocialElementBuilder::new(id)
            .at(ts)
            .words([2])
            .referencing(1)
            .build();
        engine
            .ingest_bucket(vec![(e, tv(1.0, 0.0))], Timestamp(ts))
            .unwrap();
    }
    let early = engine
        .ranked_lists()
        .list(ksir::TopicId(0))
        .get(ElementId(1))
        .unwrap()
        .0;
    // Keep e1 alive with one fresh retweet at t = 6, by which time both early
    // retweets (t = 2, 3) have slid out of the 3-tick window.
    let e4 = SocialElementBuilder::new(4)
        .at(6)
        .words([2])
        .referencing(1)
        .build();
    engine
        .ingest_bucket(vec![(e4, tv(1.0, 0.0))], Timestamp(6))
        .unwrap();
    let late = engine
        .ranked_lists()
        .list(ksir::TopicId(0))
        .get(ElementId(1))
        .unwrap()
        .0;
    assert!(
        late < early,
        "influence must be time-critical: δ went from {early} to {late}"
    );
}

#[test]
fn referenced_parents_remain_selectable_after_expiring() {
    let mut engine = engine(3);
    let e1 = SocialElementBuilder::new(1).at(1).words([0, 1, 2]).build();
    engine
        .ingest_bucket(vec![(e1, tv(1.0, 0.0))], Timestamp(1))
        .unwrap();
    // Nothing happens for a while: e1 expires.
    engine.ingest_bucket(vec![], Timestamp(5)).unwrap();
    assert!(!engine.is_active(ElementId(1)));
    // A new element cites e1, pulling it back into the active set (A_t
    // includes referenced parents), so a query can return it again.
    let e2 = SocialElementBuilder::new(2)
        .at(6)
        .words([3])
        .referencing(1)
        .build();
    engine
        .ingest_bucket(vec![(e2, tv(0.0, 1.0))], Timestamp(6))
        .unwrap();
    assert!(engine.is_active(ElementId(1)));
    let query = KsirQuery::new(1, QueryVector::single_topic(2, ksir::TopicId(0)).unwrap()).unwrap();
    let result = engine.query(&query, Algorithm::Celf).unwrap();
    assert_eq!(result.elements, vec![ElementId(1)]);
}
