//! # ksir-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! paper's evaluation (§5) on synthetic streams, plus shared scaffolding for
//! the Criterion micro-benchmarks.
//!
//! * [`scenario`] — builds engines from generated streams and replays them
//!   with interleaved query workloads, measuring per-query latency, result
//!   quality, evaluated-element ratios and ranked-list update times
//!   (Figures 7–14).
//! * [`effectiveness`] — runs the k-SIR query and the four effectiveness
//!   baselines over the same workloads and scores them with the coverage /
//!   influence metrics and the proxy user study (Tables 5 and 6).
//! * [`maintenance`] — the standing-query maintenance scenario shared by the
//!   `continuous*` benches and the CI perf gate: recompute-per-slide vs
//!   serial delta refresh vs sharded multi-core refresh over one stream.
//! * [`table`] — plain-text table rendering so each `exp_*` binary prints
//!   rows in the same layout as the paper.
//!
//! Every experiment binary accepts a `--scale <factor>` argument (default
//! 0.25) that multiplies the stream sizes, so the full sweep can be run
//! quickly for a smoke test or at larger scale for more stable numbers.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod effectiveness;
pub mod maintenance;
pub mod scenario;
pub mod table;

pub use effectiveness::{run_effectiveness, EffectivenessConfig, EffectivenessReport};
pub use maintenance::{
    AsyncMaintenanceRun, MaintenanceRun, MaintenanceScenario, RefreshProbe, SharedPlansRun,
};
pub use scenario::{
    build_engine, replay_with_queries, ProcessingConfig, ProcessingReport, QueryMeasurement,
};
pub use table::Table;

/// Parses the `--scale <factor>` command-line argument used by all the
/// experiment binaries (defaults to 0.25 — a quick laptop run).
pub fn scale_from_args() -> f64 {
    let args: Vec<String> = std::env::args().collect();
    for i in 0..args.len() {
        if args[i] == "--scale" {
            if let Some(v) = args.get(i + 1).and_then(|s| s.parse::<f64>().ok()) {
                return v.max(0.01);
            }
        }
        if let Some(rest) = args[i].strip_prefix("--scale=") {
            if let Ok(v) = rest.parse::<f64>() {
                return v.max(0.01);
            }
        }
    }
    0.25
}

#[cfg(test)]
mod tests {
    #[test]
    fn default_scale_is_returned_without_args() {
        assert_eq!(super::scale_from_args(), 0.25);
    }
}
