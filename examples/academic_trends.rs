//! Academic-trends digest: train a topic model with LDA, then ask for the
//! representative papers of a research area.
//!
//! The AMiner scenario of the paper: elements are papers, references are
//! citations, and a query like "social media analysis" should return a small
//! set of papers that both cover the area's vocabulary and are heavily cited
//! within the recent window.  Unlike the other examples this one does not use
//! the planted ground-truth model: it trains LDA from scratch on the
//! generated corpus, infers every paper's topic distribution with the trained
//! model, and builds keyword queries through the same model — the full
//! pipeline of Figure 4.
//!
//! Run with `cargo run --release --example academic_trends`.

use ksir::datagen::{DatasetProfile, StreamGenerator};
use ksir::topics::lda::top_words;
use ksir::{
    Algorithm, EngineConfig, KsirEngine, KsirQuery, LdaTrainer, ScoringConfig, TopicId,
    WindowConfig,
};

fn main() -> Result<(), ksir::KsirError> {
    // A small AMiner-shaped corpus: long documents, many citations.
    let profile = DatasetProfile::aminer().scaled(0.08).with_topics(8);
    let stream = StreamGenerator::new(profile, 7)?.generate()?;
    println!(
        "Corpus: {} papers, avg {:.0} words, avg {:.1} citations per paper.",
        stream.len(),
        stream.average_doc_len(),
        stream.average_refs()
    );

    // Train LDA on the corpus (the paper uses PLDA offline; we train in-process).
    let vocab_size = stream.planted.vocab_size();
    let corpus: Vec<_> = stream.elements.iter().map(|e| e.doc.clone()).collect();
    let model = LdaTrainer::new(8)?
        // α = 50/z is tuned for z ≥ 50 topics; with 8 topics it over-smooths.
        .with_alpha(1.0)
        .with_iterations(120)
        .with_seed(11)
        .train(&corpus, vocab_size)?;
    println!("Trained an 8-topic LDA model over {vocab_size} words.\n");

    for topic in 0..3u32 {
        let words: Vec<String> = top_words(&model, TopicId(topic), 5)
            .into_iter()
            .map(|(w, _)| format!("w{}", w.raw()))
            .collect();
        println!("  topic {topic}: top words {words:?}");
    }
    println!();

    // Index the stream with topic vectors inferred by the *trained* model.
    let config = EngineConfig::new(
        WindowConfig::new(3 * 24 * 60, 60)?,
        ScoringConfig::new(0.5, 1.0)?,
    );
    let mut engine = KsirEngine::new(model.topic_word_table().clone(), config)?;
    engine.ingest_stream(
        stream
            .elements
            .iter()
            .map(|e| (e.clone(), model.infer_document(&e.doc))),
    )?;
    println!(
        "Indexed the stream: {} papers are active in the final 3-day window.\n",
        engine.active_count()
    );

    // Build a keyword query from the most prominent words of topic 0 — the
    // query-by-keyword paradigm with the trained model as the oracle.
    let keywords: ksir::Document = top_words(&model, TopicId(0), 3)
        .into_iter()
        .flat_map(|(w, _)| std::iter::repeat_n(w, 3))
        .collect();
    let vector = model.infer_query(&keywords)?;
    println!(
        "Query: the top-3 words of topic 0, inferred preference = {:?}",
        vector
            .support()
            .iter()
            .map(|(t, w)| format!("θ{}:{w:.2}", t.raw()))
            .collect::<Vec<_>>()
    );

    let query = KsirQuery::new(5, vector)?;
    let digest = engine.query(&query, Algorithm::Mttd)?;
    println!("\n== Representative papers (k = 5) ==");
    for id in &digest.elements {
        let paper = engine.element(*id).expect("active");
        println!(
            "  {id}: {} distinct terms, cited {} times in the window",
            paper.doc.distinct_words(),
            engine.window().influence_count(*id)
        );
    }
    println!(
        "\nRepresentativeness f(S, x) = {:.3}; evaluated {} of {} active papers.",
        digest.score,
        digest.evaluated_elements,
        engine.active_count()
    );
    Ok(())
}
