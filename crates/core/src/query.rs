//! Query and result types for k-SIR processing.

use ksir_stream::RankedDelta;
use ksir_types::{ElementId, KsirError, QueryVector, Result, TopicId};

/// A k-SIR query `q_t(k, x)`: retrieve at most `k` active elements maximising
/// the representativeness score w.r.t. the query vector `x`.
///
/// The `ε` parameter controls the approximation/efficiency trade-off of the
/// MTTS and MTTD algorithms (and of the SieveStreaming baseline); it is
/// ignored by CELF and Top-k Representative.
#[derive(Debug, Clone, PartialEq)]
pub struct KsirQuery {
    k: usize,
    vector: QueryVector,
    epsilon: f64,
}

impl KsirQuery {
    /// Default `ε` used when none is given (the paper's default setting).
    pub const DEFAULT_EPSILON: f64 = 0.1;

    /// Creates a query with the default `ε = 0.1`.
    pub fn new(k: usize, vector: QueryVector) -> Result<Self> {
        if k == 0 {
            return Err(KsirError::invalid_parameter(
                "k",
                "a k-SIR query must request at least one element",
            ));
        }
        Ok(KsirQuery {
            k,
            vector,
            epsilon: Self::DEFAULT_EPSILON,
        })
    }

    /// Overrides the approximation parameter `ε ∈ (0, 1)`.
    pub fn with_epsilon(mut self, epsilon: f64) -> Result<Self> {
        if !epsilon.is_finite() || epsilon <= 0.0 || epsilon >= 1.0 {
            return Err(KsirError::invalid_parameter(
                "epsilon",
                format!("must be in the open interval (0, 1), got {epsilon}"),
            ));
        }
        self.epsilon = epsilon;
        Ok(self)
    }

    /// The result-size bound `k`.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// The query vector `x`.
    #[inline]
    pub fn vector(&self) -> &QueryVector {
        &self.vector
    }

    /// The approximation parameter `ε`.
    #[inline]
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }
}

/// The algorithm used to process a k-SIR query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Multi-Topic ThresholdStream (Algorithm 2): `(1/2 − ε)`-approximate,
    /// evaluates each active element at most once.
    Mtts,
    /// Multi-Topic ThresholdDescend (Algorithm 3): `(1 − 1/e − ε)`-approximate,
    /// may re-evaluate buffered elements across rounds.
    Mttd,
    /// CELF lazy greedy (batch baseline): `(1 − 1/e)`-approximate but
    /// evaluates every active element.
    Celf,
    /// SieveStreaming (streaming baseline): `(1/2 − ε)`-approximate,
    /// evaluates every active element.
    SieveStreaming,
    /// Top-k elements by singleton representativeness score (index baseline):
    /// only `1/k`-approximate because word/influence overlaps are ignored.
    TopkRepresentative,
}

impl Algorithm {
    /// All algorithms, in the order used by the experiment harness.
    pub const ALL: [Algorithm; 5] = [
        Algorithm::Celf,
        Algorithm::Mttd,
        Algorithm::Mtts,
        Algorithm::TopkRepresentative,
        Algorithm::SieveStreaming,
    ];

    /// Short display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Mtts => "MTTS",
            Algorithm::Mttd => "MTTD",
            Algorithm::Celf => "CELF",
            Algorithm::SieveStreaming => "SieveStreaming",
            Algorithm::TopkRepresentative => "Top-k Representative",
        }
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// How deep into each support topic's ranked list a query traversal reached.
///
/// For every topic in the query support this records the score of the first
/// tuple the traversal did **not** read — `None` when the list was exhausted.
/// The traversal's behaviour depends only on the tuples at or above these
/// floors: a later index mutation whose touch score (see
/// [`ksir_stream::delta`]) stays strictly below every floor cannot change
/// what the same query would retrieve, evaluate, or return.  This is the
/// invariant the `ksir-continuous` subscription manager uses to skip
/// refreshing standing queries.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryFrontier {
    /// `(topic, first-unread score)` per support topic; `None` = exhausted.
    pub floors: Vec<(TopicId, Option<f64>)>,
}

impl QueryFrontier {
    /// Returns `true` if the given slide delta could have changed the result
    /// of the traversal that produced this frontier: some support topic was
    /// touched at or above its floor (an exhausted list is "touched" by any
    /// mutation at all).
    pub fn disturbed_by(&self, delta: &RankedDelta) -> bool {
        self.floors
            .iter()
            .any(|&(topic, floor)| match (delta.touch(topic), floor) {
                (None, _) => false,
                (Some(_), None) => true,
                (Some(touch), Some(floor)) => touch.high >= floor - 1e-12,
            })
    }
}

/// The result of processing one k-SIR query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// Selected elements, in the order they were added to the result set.
    pub elements: Vec<ElementId>,
    /// Representativeness score `f(S, x)` of the result set.
    pub score: f64,
    /// Number of *distinct* active elements whose score or marginal gain was
    /// evaluated (the quantity behind Figure 10 of the paper).
    pub evaluated_elements: usize,
    /// Total number of marginal-gain / singleton-score evaluations of the
    /// submodular function (an element may be evaluated several times).
    pub gain_evaluations: usize,
    /// Algorithm that produced the result.
    pub algorithm: Algorithm,
    /// Ranked-list traversal floors, for the index-based algorithms (MTTS,
    /// MTTD, Top-k Representative); `None` for the exhaustive baselines,
    /// whose results can be invalidated by any index change.
    pub frontier: Option<QueryFrontier>,
}

impl QueryResult {
    /// An empty result (used when no active element is relevant to the query).
    pub fn empty(algorithm: Algorithm) -> Self {
        QueryResult {
            elements: Vec::new(),
            score: 0.0,
            evaluated_elements: 0,
            gain_evaluations: 0,
            algorithm,
            frontier: None,
        }
    }

    /// Number of selected elements.
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// Returns `true` if no element was selected.
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// Returns `true` if the result contains `id`.
    pub fn contains(&self, id: ElementId) -> bool {
        self.elements.contains(&id)
    }

    /// The selected elements as a sorted vector (convenient for comparisons in
    /// tests, where selection order is irrelevant).
    pub fn sorted_elements(&self) -> Vec<ElementId> {
        let mut v = self.elements.clone();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn query_vector() -> QueryVector {
        QueryVector::new(vec![0.5, 0.5]).unwrap()
    }

    #[test]
    fn query_validation() {
        assert!(KsirQuery::new(0, query_vector()).is_err());
        let q = KsirQuery::new(5, query_vector()).unwrap();
        assert_eq!(q.k(), 5);
        assert_eq!(q.epsilon(), KsirQuery::DEFAULT_EPSILON);
        assert!(q.clone().with_epsilon(0.0).is_err());
        assert!(q.clone().with_epsilon(1.0).is_err());
        assert!(q.clone().with_epsilon(f64::NAN).is_err());
        let q = q.with_epsilon(0.3).unwrap();
        assert_eq!(q.epsilon(), 0.3);
    }

    #[test]
    fn algorithm_names_and_display() {
        assert_eq!(Algorithm::Mtts.name(), "MTTS");
        assert_eq!(Algorithm::Mttd.to_string(), "MTTD");
        assert_eq!(Algorithm::ALL.len(), 5);
    }

    #[test]
    fn frontier_disturbance_rules() {
        let frontier = QueryFrontier {
            floors: vec![(TopicId(0), Some(0.5)), (TopicId(1), None)],
        };
        // Untouched index: undisturbed.
        let clean = RankedDelta::new(3);
        assert!(!frontier.disturbed_by(&clean));
        // Touch strictly below the floor of a non-exhausted list: invisible.
        let mut below = RankedDelta::new(3);
        below.record(TopicId(0), 0.3);
        assert!(!frontier.disturbed_by(&below));
        // Touch at/above the floor: disturbed.
        let mut at = RankedDelta::new(3);
        at.record(TopicId(0), 0.5);
        assert!(frontier.disturbed_by(&at));
        // Any touch on an exhausted list: disturbed.
        let mut exhausted = RankedDelta::new(3);
        exhausted.record(TopicId(1), 1e-9);
        assert!(frontier.disturbed_by(&exhausted));
        // Touches outside the support are ignored.
        let mut outside = RankedDelta::new(3);
        outside.record(TopicId(2), 10.0);
        assert!(!frontier.disturbed_by(&outside));
    }

    #[test]
    fn result_helpers() {
        let r = QueryResult {
            elements: vec![ElementId(3), ElementId(1)],
            score: 0.65,
            evaluated_elements: 4,
            gain_evaluations: 9,
            algorithm: Algorithm::Mtts,
            frontier: None,
        };
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
        assert!(r.contains(ElementId(1)));
        assert!(!r.contains(ElementId(2)));
        assert_eq!(r.sorted_elements(), vec![ElementId(1), ElementId(3)]);
        let e = QueryResult::empty(Algorithm::Celf);
        assert!(e.is_empty());
        assert_eq!(e.score, 0.0);
    }
}
