//! Log-normalised TF-IDF vectors and sparse cosine similarity.
//!
//! These power the keyword-based effectiveness baselines of §5.2: the TF-IDF
//! top-k query and the diversity-aware DIV query both vectorise elements and
//! queries with the log-normalised TF-IDF weight and compare them by cosine
//! similarity.

use std::collections::BTreeMap;

use ksir_types::{Document, WordId};

use crate::corpus::CorpusStats;

/// A sparse TF-IDF vector (word → weight), L2-normalisable.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TfIdfVector {
    weights: BTreeMap<WordId, f64>,
}

impl TfIdfVector {
    /// Builds an empty vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of non-zero entries.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Returns `true` if the vector has no entries.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Weight of a word (0 if absent).
    pub fn weight(&self, word: WordId) -> f64 {
        self.weights.get(&word).copied().unwrap_or(0.0)
    }

    /// Iterates over `(word, weight)` pairs in ascending word order.
    pub fn iter(&self) -> impl Iterator<Item = (WordId, f64)> + '_ {
        self.weights.iter().map(|(&w, &v)| (w, v))
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f64 {
        self.weights.values().map(|v| v * v).sum::<f64>().sqrt()
    }

    fn insert(&mut self, word: WordId, weight: f64) {
        if weight > 0.0 {
            self.weights.insert(word, weight);
        }
    }
}

/// Cosine similarity between two sparse vectors (0 if either is empty).
pub fn cosine_sparse(a: &TfIdfVector, b: &TfIdfVector) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    // Merge-join over the sorted maps; iterate the smaller one.
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let dot: f64 = small.iter().map(|(w, v)| v * large.weight(w)).sum();
    let denom = a.norm() * b.norm();
    if denom == 0.0 {
        0.0
    } else {
        dot / denom
    }
}

/// A TF-IDF weighting model over a fixed corpus snapshot.
///
/// The weight of word `w` in document `d` is
/// `(1 + ln tf(w, d)) · idf(w)` — the "log-normalised TF-IDF" used by the
/// paper's keyword baselines.
#[derive(Debug, Clone)]
pub struct TfIdfModel {
    stats: CorpusStats,
}

impl TfIdfModel {
    /// Builds the model from corpus statistics.
    pub fn new(stats: CorpusStats) -> Self {
        TfIdfModel { stats }
    }

    /// Builds the model directly from documents.
    pub fn from_documents<'a, I: IntoIterator<Item = &'a Document>>(docs: I) -> Self {
        TfIdfModel::new(CorpusStats::from_documents(docs))
    }

    /// The underlying corpus statistics.
    pub fn stats(&self) -> &CorpusStats {
        &self.stats
    }

    /// Vectorises a document.
    pub fn vectorize(&self, doc: &Document) -> TfIdfVector {
        let mut v = TfIdfVector::new();
        for (w, tf) in doc.iter() {
            let weight = (1.0 + (tf as f64).ln()) * self.stats.idf(w);
            v.insert(w, weight);
        }
        v
    }

    /// Relevance of a document to a query document: cosine similarity of
    /// their TF-IDF vectors.
    pub fn relevance(&self, query: &Document, doc: &Document) -> f64 {
        cosine_sparse(&self.vectorize(query), &self.vectorize(doc))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksir_types::Document;

    fn doc(words: &[u32]) -> Document {
        Document::from_tokens(words.iter().map(|&w| WordId(w)))
    }

    fn corpus() -> Vec<Document> {
        vec![doc(&[1, 2, 3]), doc(&[1, 4]), doc(&[1, 5, 5]), doc(&[6, 7])]
    }

    #[test]
    fn vectorize_weights_rare_words_higher() {
        let docs = corpus();
        let model = TfIdfModel::from_documents(&docs);
        let v = model.vectorize(&doc(&[1, 2]));
        // word 1 appears in 3 of 4 docs, word 2 in 1 of 4 → word 2 has higher idf
        assert!(v.weight(WordId(2)) > v.weight(WordId(1)));
        assert_eq!(v.weight(WordId(9)), 0.0);
    }

    #[test]
    fn repeated_words_grow_logarithmically() {
        let docs = corpus();
        let model = TfIdfModel::from_documents(&docs);
        let single = model.vectorize(&doc(&[5]));
        let triple = model.vectorize(&doc(&[5, 5, 5]));
        assert!(triple.weight(WordId(5)) > single.weight(WordId(5)));
        // log-normalised: tripling the count far less than triples the weight
        assert!(triple.weight(WordId(5)) < 3.0 * single.weight(WordId(5)));
    }

    #[test]
    fn cosine_self_similarity_is_one() {
        let docs = corpus();
        let model = TfIdfModel::from_documents(&docs);
        let v = model.vectorize(&docs[0]);
        assert!((cosine_sparse(&v, &v) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_disjoint_is_zero() {
        let docs = corpus();
        let model = TfIdfModel::from_documents(&docs);
        let a = model.vectorize(&doc(&[2, 3]));
        let b = model.vectorize(&doc(&[6, 7]));
        assert_eq!(cosine_sparse(&a, &b), 0.0);
    }

    #[test]
    fn cosine_empty_vector_is_zero() {
        let docs = corpus();
        let model = TfIdfModel::from_documents(&docs);
        let a = model.vectorize(&doc(&[]));
        let b = model.vectorize(&doc(&[1]));
        assert_eq!(cosine_sparse(&a, &b), 0.0);
    }

    #[test]
    fn relevance_ranks_overlapping_docs_higher() {
        let docs = corpus();
        let model = TfIdfModel::from_documents(&docs);
        let query = doc(&[2, 3]);
        let rel_same = model.relevance(&query, &doc(&[1, 2, 3]));
        let rel_none = model.relevance(&query, &doc(&[6, 7]));
        assert!(rel_same > rel_none);
    }

    #[test]
    fn vector_iteration_is_sorted() {
        let docs = corpus();
        let model = TfIdfModel::from_documents(&docs);
        let v = model.vectorize(&doc(&[5, 1, 3]));
        let ids: Vec<u32> = v.iter().map(|(w, _)| w.raw()).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted);
    }
}
