//! Top-k relevance query in the topic space (the "REL" baseline of §5.2).

use ksir_types::QueryVector;

use crate::pool::{RankedResult, SearchPool};

/// Topic-space relevance search: elements are ranked by the cosine similarity
/// between their topic distribution and the query vector (Zhang et al., TOIS
/// 2017 style).  Unlike keyword search this captures semantic relevance, but
/// like keyword search it ignores coverage and influence — which is exactly
/// the gap the k-SIR query fills.
#[derive(Debug, Clone, Default)]
pub struct RelSearcher;

impl RelSearcher {
    /// Creates a searcher.
    pub fn new() -> Self {
        RelSearcher
    }

    /// Returns the `k` elements with the highest cosine similarity to the
    /// query vector, in decreasing order.
    pub fn search(&self, query: &QueryVector, pool: &SearchPool, k: usize) -> Vec<RankedResult> {
        let mut scored: Vec<RankedResult> = pool
            .iter()
            .map(|item| RankedResult {
                id: item.id,
                score: query.cosine(&item.topic_vector).unwrap_or(0.0),
            })
            .filter(|r| r.score > 0.0)
            .collect();
        scored.sort_by(|a, b| b.score.total_cmp(&a.score).then_with(|| a.id.cmp(&b.id)));
        scored.truncate(k);
        scored
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::SearchItem;
    use ksir_types::{Document, ElementId, TopicVector, WordId};

    fn pool() -> SearchPool {
        let vectors = vec![
            (1, vec![0.9, 0.1]),
            (2, vec![0.5, 0.5]),
            (3, vec![0.1, 0.9]),
            (4, vec![0.0, 1.0]),
        ];
        vectors
            .into_iter()
            .map(|(id, v)| SearchItem {
                id: ElementId(id),
                doc: Document::from_tokens([WordId(0)]),
                topic_vector: TopicVector::from_values(v).unwrap(),
                refs: Vec::new(),
                referenced_by: 0,
            })
            .collect()
    }

    #[test]
    fn ranks_by_cosine_similarity() {
        let searcher = RelSearcher::new();
        let query = QueryVector::new(vec![0.0, 1.0]).unwrap();
        let results = searcher.search(&query, &pool(), 2);
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].id, ElementId(4));
        assert_eq!(results[1].id, ElementId(3));
    }

    #[test]
    fn semantically_relevant_elements_found_without_keyword_overlap() {
        // The REL baseline fixes the "soccer vs #ucl" vocabulary mismatch: a
        // query on topic 0 finds element 1 even though no words are shared.
        let searcher = RelSearcher::new();
        let query = QueryVector::new(vec![1.0, 0.0]).unwrap();
        let results = searcher.search(&query, &pool(), 1);
        assert_eq!(results[0].id, ElementId(1));
    }

    #[test]
    fn empty_pool_returns_nothing() {
        let searcher = RelSearcher::new();
        let query = QueryVector::new(vec![1.0, 0.0]).unwrap();
        assert!(searcher.search(&query, &SearchPool::new(), 3).is_empty());
    }

    #[test]
    fn orthogonal_elements_are_dropped() {
        let searcher = RelSearcher::new();
        let query = QueryVector::new(vec![1.0, 0.0]).unwrap();
        let results = searcher.search(&query, &pool(), 10);
        // element 4 has zero probability on topic 0 → cosine 0 → excluded
        assert!(results.iter().all(|r| r.id != ElementId(4)));
    }
}
