//! Per-slide change summaries for incremental (standing-query) consumers.
//!
//! Re-running MTTS/MTTD for every standing query on every window slide wastes
//! work whenever the slide did not disturb the part of the index the query
//! actually traversed.  To decide that cheaply, the ranked lists record, per
//! topic, *how high* in the list the slide reached: every insert, score
//! adjustment or removal is logged as a **touch** at the score of the affected
//! tuple (for adjustments, the higher of the old and new scores — a tuple
//! moving in either direction can only influence traversals that reach the
//! higher of the two positions).
//!
//! A consumer that remembers the score floor its last traversal descended to
//! on each list can then skip refreshing whenever every touch in its support
//! topics happened **strictly below** that floor: the traversal would read the
//! exact same prefix of every list and terminate at the same point, so its
//! result is unchanged.  `ksir-continuous` builds its subscription refresh
//! policy on exactly this invariant — and its shard scheduler projects the
//! compact [`RankedDelta::touches`] slice onto per-shard topic floors to
//! decide which shards a slide can disturb at all.
//!
//! The log is stored sparsely: one [`Touch`] entry per touched topic, in
//! first-touch order, plus a lazily built dense topic index for `O(1)`
//! recording.  Quiet slides therefore allocate nothing, clearing the log
//! between slides reuses the buffers (see [`RankedDelta::clear`]), and
//! iterating the touches is `O(touched topics)` rather than `O(z)`.
//!
//! [`WindowDelta`] bundles the ranked-list touches with the element-level
//! churn (activated / expired / resurrected / refreshed ids) of one bucket
//! ingestion, and is surfaced by `ksir-core`'s `IngestReport`.

use ksir_types::{ElementId, Timestamp, TopicId};

/// Sentinel marking an unused slot of the dense topic index.
const UNTOUCHED: u32 = u32::MAX;

/// Comparison slack for "touch at or above a score floor" checks.
///
/// Every consumer of the touch log must use the same slack — the frontier /
/// floor-aggregate disturbance checks in `ksir-core` (`touch.high >= floor -
/// FLOOR_SLACK`) and the floor-truncated prefix capture in
/// [`crate::ranked_list`] (keep tuples with `score >= floor - FLOOR_SLACK`)
/// — or a truncated prefix could drop a tuple whose touch still schedules a
/// refresh.  Exported so the invariant lives in one place.
pub const FLOOR_SLACK: f64 = 1e-12;

/// Touch summary of one topic's ranked list over one window slide.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TopicTouch {
    /// Number of tuple operations (inserts, adjustments, removals).
    pub count: usize,
    /// Highest score involved in any touch: the list is guaranteed unchanged
    /// at ranks whose scores are strictly greater than this.
    pub high: f64,
}

/// One touched topic together with its touch summary — the sparse entry type
/// behind [`RankedDelta::touches`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Touch {
    /// The topic whose ranked list was modified.
    pub topic: TopicId,
    /// Number of tuple operations (inserts, adjustments, removals).
    pub count: usize,
    /// Highest score involved in any touch of this topic's list.
    pub high: f64,
}

impl Touch {
    /// The topic-less summary of this touch.
    pub fn summary(&self) -> TopicTouch {
        TopicTouch {
            count: self.count,
            high: self.high,
        }
    }
}

/// Per-topic ranked-list touches accumulated over one window slide.
///
/// Stored sparsely: [`RankedDelta::touches`] returns one entry per touched
/// topic in first-touch order.  A dense `topic → entry` index is built lazily
/// on the recording side so the hot ingestion path stays `O(1)` per touch;
/// consumers that only read a drained delta fall back to a linear scan over
/// the (typically short) entry list.
#[derive(Debug, Clone, Default)]
pub struct RankedDelta {
    num_topics: usize,
    entries: Vec<Touch>,
    /// Dense `topic.index() → entries index` map ([`UNTOUCHED`] = absent).
    /// Empty when the index has not been (re)built for `num_topics` yet.
    index: Vec<u32>,
}

impl RankedDelta {
    /// An empty delta for `num_topics` lists.  Allocation is deferred until
    /// the first touch is recorded.
    pub fn new(num_topics: usize) -> Self {
        RankedDelta {
            num_topics,
            entries: Vec::new(),
            index: Vec::new(),
        }
    }

    /// Number of topics covered.
    pub fn num_topics(&self) -> usize {
        self.num_topics
    }

    /// Position of `topic`'s entry, via the dense index when it is built and
    /// by linear scan otherwise.
    fn position(&self, topic: TopicId) -> Option<usize> {
        if topic.index() >= self.num_topics {
            return None;
        }
        if self.index.len() == self.num_topics {
            match self.index[topic.index()] {
                UNTOUCHED => None,
                i => Some(i as usize),
            }
        } else {
            self.entries.iter().position(|t| t.topic == topic)
        }
    }

    /// (Re)builds the dense index so that recording is `O(1)`.
    fn ensure_index(&mut self) {
        if self.index.len() != self.num_topics {
            self.index.clear();
            self.index.resize(self.num_topics, UNTOUCHED);
            for (i, t) in self.entries.iter().enumerate() {
                self.index[t.topic.index()] = i as u32;
            }
        }
    }

    /// Records one touch of `topic`'s list at `score`.
    pub fn record(&mut self, topic: TopicId, score: f64) {
        if topic.index() >= self.num_topics {
            return;
        }
        self.ensure_index();
        match self.index[topic.index()] {
            UNTOUCHED => {
                self.index[topic.index()] = self.entries.len() as u32;
                self.entries.push(Touch {
                    topic,
                    count: 1,
                    high: score,
                });
            }
            i => {
                let touch = &mut self.entries[i as usize];
                touch.count += 1;
                if score > touch.high {
                    touch.high = score;
                }
            }
        }
    }

    /// The touched topics in first-touch order, as a borrowed slice — the
    /// projection surface shard schedulers and other incremental consumers
    /// iterate instead of scanning all `z` topics.
    pub fn touches(&self) -> &[Touch] {
        &self.entries
    }

    /// The touch summary of one topic, if it was touched at all.
    pub fn touch(&self, topic: TopicId) -> Option<TopicTouch> {
        self.position(topic).map(|i| self.entries[i].summary())
    }

    /// Returns `true` if `topic`'s list was modified during the slide.
    pub fn touched(&self, topic: TopicId) -> bool {
        self.position(topic).is_some()
    }

    /// Iterates over the touched topics and their summaries, in first-touch
    /// order.
    pub fn iter_touched(&self) -> impl Iterator<Item = (TopicId, TopicTouch)> + '_ {
        self.entries.iter().map(|t| (t.topic, t.summary()))
    }

    /// Number of touched topics.
    pub fn touched_topics(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no list was modified.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Clears the log in place, retaining both buffers so the next slide
    /// records without allocating.  `O(touched topics)`.
    pub fn clear(&mut self) {
        if self.index.len() == self.num_topics {
            for t in &self.entries {
                self.index[t.topic.index()] = UNTOUCHED;
            }
        }
        self.entries.clear();
    }

    /// Moves the accumulated touches into a new owned delta, leaving `self`
    /// empty but with its dense index buffer intact for the next slide.
    pub fn drain(&mut self) -> RankedDelta {
        let entries = std::mem::take(&mut self.entries);
        if self.index.len() == self.num_topics {
            for t in &entries {
                self.index[t.topic.index()] = UNTOUCHED;
            }
        }
        RankedDelta {
            num_topics: self.num_topics,
            entries,
            index: Vec::new(),
        }
    }

    /// Folds another delta into this one (used when aggregating several
    /// slides, e.g. across the buckets of one `ingest_stream` call).
    pub fn merge(&mut self, other: &RankedDelta) {
        if self.num_topics < other.num_topics {
            self.num_topics = other.num_topics;
            self.index.clear(); // stale size; rebuilt on demand
        }
        for t in &other.entries {
            self.ensure_index();
            match self.index[t.topic.index()] {
                UNTOUCHED => {
                    self.index[t.topic.index()] = self.entries.len() as u32;
                    self.entries.push(*t);
                }
                i => {
                    let existing = &mut self.entries[i as usize];
                    existing.count += t.count;
                    if t.high > existing.high {
                        existing.high = t.high;
                    }
                }
            }
        }
    }
}

impl PartialEq for RankedDelta {
    /// Semantic equality: same dimensionality and the same per-topic touch
    /// summaries, irrespective of recording order or index state.
    fn eq(&self, other: &Self) -> bool {
        self.num_topics == other.num_topics
            && self.entries.len() == other.entries.len()
            && self
                .entries
                .iter()
                .all(|t| other.touch(t.topic) == Some(t.summary()))
    }
}

/// Everything that changed during one window slide (one ingested bucket).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WindowDelta {
    /// Logical time before the slide.
    pub from: Timestamp,
    /// Logical time after the slide (the bucket end).
    pub to: Timestamp,
    /// Ids of elements inserted from the bucket, in insertion order.
    pub activated: Vec<ElementId>,
    /// Ids of elements that expired out of the active window, sorted.
    pub expired: Vec<ElementId>,
    /// Previously expired elements brought back by a fresh reference.
    pub resurrected: Vec<ElementId>,
    /// Pre-existing elements whose ranked-list tuples were recomputed
    /// (referenced parents and elements whose influence sets shrank).
    pub refreshed: Vec<ElementId>,
    /// Per-topic ranked-list touch summary.
    pub ranked: RankedDelta,
}

impl WindowDelta {
    /// Returns `true` if the slide changed nothing observable.
    pub fn is_empty(&self) -> bool {
        self.activated.is_empty()
            && self.expired.is_empty()
            && self.resurrected.is_empty()
            && self.refreshed.is_empty()
            && self.ranked.is_empty()
    }

    /// Returns `true` if `id` expired during this slide.
    pub fn lost(&self, id: ElementId) -> bool {
        self.expired.binary_search(&id).is_ok()
    }

    /// Returns `true` if any of `ids` expired during this slide — the
    /// membership projection shard schedulers run against their resident
    /// result sets.
    pub fn lost_any<I>(&self, ids: I) -> bool
    where
        I: IntoIterator<Item = ElementId>,
    {
        !self.expired.is_empty() && ids.into_iter().any(|id| self.lost(id))
    }

    /// The slide's ranked-list touches as a borrowed slice, in first-touch
    /// order (see [`RankedDelta::touches`]).
    pub fn touches(&self) -> &[Touch] {
        self.ranked.touches()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_tracks_count_and_high_water_mark() {
        let mut d = RankedDelta::new(3);
        assert!(d.is_empty());
        assert!(!d.touched(TopicId(1)));
        d.record(TopicId(1), 0.4);
        d.record(TopicId(1), 0.9);
        d.record(TopicId(1), 0.2);
        let t = d.touch(TopicId(1)).unwrap();
        assert_eq!(t.count, 3);
        assert_eq!(t.high, 0.9);
        assert!(d.touched(TopicId(1)));
        assert!(!d.touched(TopicId(0)));
        assert_eq!(d.touched_topics(), 1);
        assert!(!d.is_empty());
    }

    #[test]
    fn out_of_range_topics_are_ignored() {
        let mut d = RankedDelta::new(2);
        d.record(TopicId(7), 1.0);
        assert!(d.is_empty());
        assert_eq!(d.touch(TopicId(7)), None);
        // Lookups past the dimensionality stay safe once the dense index is
        // built, and on the zero-topic default.
        d.record(TopicId(1), 0.5);
        assert_eq!(d.touch(TopicId(7)), None);
        assert!(!d.touched(TopicId(2)));
        assert!(!RankedDelta::default().touched(TopicId(0)));
        assert_eq!(RankedDelta::default().touch(TopicId(3)), None);
    }

    #[test]
    fn iter_touched_yields_only_touched_topics() {
        let mut d = RankedDelta::new(4);
        d.record(TopicId(0), 0.1);
        d.record(TopicId(3), 0.5);
        let touched: Vec<(TopicId, TopicTouch)> = d.iter_touched().collect();
        assert_eq!(touched.len(), 2);
        assert_eq!(touched[0].0, TopicId(0));
        assert_eq!(touched[1].0, TopicId(3));
        // The borrowed slice exposes the same entries.
        let slice = d.touches();
        assert_eq!(slice.len(), 2);
        assert_eq!(slice[1].topic, TopicId(3));
        assert_eq!(slice[1].high, 0.5);
    }

    #[test]
    fn clear_retains_buffers_and_resets_state() {
        let mut d = RankedDelta::new(4);
        d.record(TopicId(2), 0.7);
        d.record(TopicId(0), 0.2);
        assert_eq!(d.touched_topics(), 2);
        d.clear();
        assert!(d.is_empty());
        assert!(!d.touched(TopicId(2)));
        // Recording after a clear starts a fresh log.
        d.record(TopicId(2), 0.1);
        let t = d.touch(TopicId(2)).unwrap();
        assert_eq!(t.count, 1);
        assert_eq!(t.high, 0.1);
    }

    #[test]
    fn drain_moves_touches_and_leaves_an_empty_log() {
        let mut d = RankedDelta::new(3);
        d.record(TopicId(1), 0.6);
        let drained = d.drain();
        assert!(d.is_empty());
        assert_eq!(d.num_topics(), 3);
        assert_eq!(drained.touch(TopicId(1)).unwrap().high, 0.6);
        // The drained copy answers lookups without a dense index.
        assert!(drained.touched(TopicId(1)));
        assert!(!drained.touched(TopicId(0)));
        // The source keeps recording correctly after the drain.
        d.record(TopicId(2), 0.9);
        assert_eq!(d.touch(TopicId(2)).unwrap().high, 0.9);
        assert!(!d.touched(TopicId(1)));
    }

    #[test]
    fn merge_combines_counts_and_maxima() {
        let mut a = RankedDelta::new(2);
        a.record(TopicId(0), 0.3);
        let mut b = RankedDelta::new(2);
        b.record(TopicId(0), 0.8);
        b.record(TopicId(1), 0.1);
        a.merge(&b);
        assert_eq!(
            a.touch(TopicId(0)),
            Some(TopicTouch {
                count: 2,
                high: 0.8
            })
        );
        assert_eq!(
            a.touch(TopicId(1)),
            Some(TopicTouch {
                count: 1,
                high: 0.1
            })
        );
    }

    #[test]
    fn equality_ignores_recording_order() {
        let mut a = RankedDelta::new(3);
        a.record(TopicId(0), 0.2);
        a.record(TopicId(2), 0.5);
        let mut b = RankedDelta::new(3);
        b.record(TopicId(2), 0.5);
        b.record(TopicId(0), 0.2);
        assert_eq!(a, b);
        b.record(TopicId(1), 0.1);
        assert_ne!(a, b);
    }

    #[test]
    fn window_delta_lost_uses_sorted_expired() {
        let delta = WindowDelta {
            expired: vec![ElementId(2), ElementId(5), ElementId(9)],
            ..WindowDelta::default()
        };
        assert!(delta.lost(ElementId(5)));
        assert!(!delta.lost(ElementId(4)));
        assert!(delta.lost_any([ElementId(4), ElementId(9)]));
        assert!(!delta.lost_any([ElementId(4), ElementId(6)]));
        assert!(!delta.is_empty());
        assert!(WindowDelta::default().is_empty());
        assert!(WindowDelta::default().touches().is_empty());
    }
}
