//! The subscription manager: ingestion plus delta-driven refresh.

use std::collections::BTreeMap;

use ksir_core::{Algorithm, IngestReport, KsirEngine, KsirQuery, QueryResult};
use ksir_stream::WindowDelta;
use ksir_types::{
    ElementId, KsirError, Result, SocialElement, Timestamp, TopicVector, TopicWordDistribution,
};

use crate::subscription::{
    RefreshReason, ResultDelta, Subscription, SubscriptionId, SubscriptionStats,
};

/// Aggregate work counters across all subscriptions and slides.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ManagerStats {
    /// Buckets ingested through the manager.
    pub slides: usize,
    /// Slide-driven subscription refreshes (query re-runs).  Initial
    /// evaluations at subscribe time and forced refreshes are not counted,
    /// so `refreshes + skips` always reconciles with the number of
    /// slide-time classifications (`Σ per-slide subscription count`).
    pub refreshes: usize,
    /// Subscription evaluations skipped because the slide provably could not
    /// have changed the result.
    pub skips: usize,
}

/// The outcome of one [`SubscriptionManager::ingest_bucket`] call.
#[derive(Debug, Clone, PartialEq)]
pub struct SlideOutcome {
    /// The engine's ingestion report (including the [`WindowDelta`]).
    pub report: IngestReport,
    /// Result deltas of the subscriptions whose stored result *changed*.
    /// Refreshes that merely confirmed the previous result are counted in
    /// [`SlideOutcome::refreshed`] but produce no entry here.
    pub updates: Vec<ResultDelta>,
    /// Number of subscriptions whose query was re-run this slide.
    pub refreshed: usize,
    /// Number of subscriptions skipped by the delta rules this slide.
    pub skipped: usize,
}

/// Manages standing k-SIR queries over an owned [`KsirEngine`].
///
/// Ingest buckets through the manager instead of the engine; after updating
/// the index it applies the delta-refresh rules (see the crate docs) to every
/// registered subscription and returns the result changes.
#[derive(Debug)]
pub struct SubscriptionManager<D> {
    engine: KsirEngine<D>,
    subscriptions: BTreeMap<SubscriptionId, Subscription>,
    next_id: u64,
    stats: ManagerStats,
}

impl<D: TopicWordDistribution> SubscriptionManager<D> {
    /// Wraps an engine (empty or pre-loaded) for standing-query serving.
    pub fn new(engine: KsirEngine<D>) -> Self {
        SubscriptionManager {
            engine,
            subscriptions: BTreeMap::new(),
            next_id: 0,
            stats: ManagerStats::default(),
        }
    }

    /// Read access to the underlying engine (for ad-hoc queries, stats, …).
    pub fn engine(&self) -> &KsirEngine<D> {
        &self.engine
    }

    /// Tears the manager down, returning the engine.
    pub fn into_engine(self) -> KsirEngine<D> {
        self.engine
    }

    /// Number of registered subscriptions.
    pub fn subscription_count(&self) -> usize {
        self.subscriptions.len()
    }

    /// Aggregate work counters.
    pub fn stats(&self) -> ManagerStats {
        self.stats
    }

    /// Registers a standing query, evaluating it immediately against the
    /// engine's current state.
    ///
    /// Returns the subscription handle; the initial result is available via
    /// [`SubscriptionManager::result`] right away.
    pub fn subscribe(&mut self, query: KsirQuery, algorithm: Algorithm) -> Result<SubscriptionId> {
        if query.vector().num_topics() != self.engine.num_topics() {
            return Err(KsirError::DimensionMismatch {
                expected: self.engine.num_topics(),
                actual: query.vector().num_topics(),
            });
        }
        let id = SubscriptionId(self.next_id);
        self.next_id += 1;
        let mut sub = Subscription::new(query, algorithm);
        // The initial evaluation is not a slide, so it is deliberately left
        // out of the refresh/skip counters — they must reconcile with
        // `slides x subscriptions`.
        Self::refresh_one(&self.engine, id, &mut sub, RefreshReason::Initial);
        self.subscriptions.insert(id, sub);
        Ok(id)
    }

    /// Removes a subscription.  Returns `true` if it existed.
    pub fn unsubscribe(&mut self, id: SubscriptionId) -> bool {
        self.subscriptions.remove(&id).is_some()
    }

    /// The current maintained result of a subscription.
    pub fn result(&self, id: SubscriptionId) -> Option<&QueryResult> {
        self.subscriptions.get(&id)?.result.as_ref()
    }

    /// The work counters of one subscription.
    pub fn subscription_stats(&self, id: SubscriptionId) -> Option<SubscriptionStats> {
        self.subscriptions.get(&id).map(|s| s.stats)
    }

    /// Forces a refresh of one subscription, returning the delta if the
    /// result changed.
    pub fn refresh(&mut self, id: SubscriptionId) -> Option<ResultDelta> {
        let sub = self.subscriptions.get_mut(&id)?;
        Self::refresh_one(&self.engine, id, sub, RefreshReason::Forced)
    }

    /// Ingests one bucket through the engine, then refreshes exactly the
    /// subscriptions the slide could have affected.
    pub fn ingest_bucket(
        &mut self,
        bucket: Vec<(SocialElement, TopicVector)>,
        bucket_end: Timestamp,
    ) -> Result<SlideOutcome> {
        let report = self.engine.ingest_bucket(bucket, bucket_end)?;
        self.stats.slides += 1;
        let mut updates = Vec::new();
        let mut refreshed = 0;
        let mut skipped = 0;
        for (&id, sub) in self.subscriptions.iter_mut() {
            match Self::classify(sub, &report.delta) {
                Some(reason) => {
                    refreshed += 1;
                    sub.stats.refreshes += 1;
                    self.stats.refreshes += 1;
                    if let Some(delta) = Self::refresh_one(&self.engine, id, sub, reason) {
                        updates.push(delta);
                    }
                }
                None => {
                    skipped += 1;
                    sub.stats.skips += 1;
                    self.stats.skips += 1;
                }
            }
        }
        Ok(SlideOutcome {
            report,
            updates,
            refreshed,
            skipped,
        })
    }

    /// Convenience wrapper mirroring [`KsirEngine::ingest_stream`]: cuts a
    /// timestamp-ordered stream into buckets of the configured length `L`
    /// (via the shared [`ksir_stream::for_each_bucket`] convention),
    /// ingesting each through [`SubscriptionManager::ingest_bucket`].
    /// Returns the per-slide outcomes.
    pub fn ingest_stream<I>(&mut self, stream: I) -> Result<Vec<SlideOutcome>>
    where
        I: IntoIterator<Item = (SocialElement, TopicVector)>,
    {
        let bucket_len = self.engine.config().window.bucket_len();
        let mut outcomes = Vec::new();
        ksir_stream::for_each_bucket(bucket_len, self.engine.now(), stream, |bucket, end| {
            outcomes.push(self.ingest_bucket(bucket, end)?);
            Ok(())
        })?;
        Ok(outcomes)
    }

    /// Applies the delta-refresh rules to one subscription.  `Some(reason)`
    /// means the query must be re-run; `None` means the stored result is
    /// provably what a fresh run would return.
    fn classify(sub: &Subscription, delta: &WindowDelta) -> Option<RefreshReason> {
        let Some(result) = &sub.result else {
            return Some(RefreshReason::Initial);
        };
        // Rule 2: a stored member expired out of the active window.
        if result.elements.iter().any(|&id| delta.lost(id)) {
            return Some(RefreshReason::MemberExpired);
        }
        // Rule 3: a support topic was disturbed at or above the traversal
        // floor; without a frontier, any support-topic touch disturbs.
        let disturbed = match sub.frontier() {
            Some(frontier) => frontier.disturbed_by(&delta.ranked),
            None => sub
                .query
                .vector()
                .support()
                .iter()
                .any(|&(topic, _)| delta.ranked.touched(topic)),
        };
        if disturbed {
            return Some(RefreshReason::TopicDisturbed);
        }
        None
    }

    /// Re-runs one subscription's query and stores the fresh result.
    /// Returns the delta when the result set or score changed.  Callers own
    /// the refresh/skip accounting (only slide-classified refreshes count).
    fn refresh_one(
        engine: &KsirEngine<D>,
        id: SubscriptionId,
        sub: &mut Subscription,
        reason: RefreshReason,
    ) -> Option<ResultDelta> {
        let fresh = engine
            .query(&sub.query, sub.algorithm)
            .expect("subscription dimensions were validated at subscribe time");

        let (old_elements, score_before) = match &sub.result {
            Some(old) => (old.elements.clone(), old.score),
            None => (Vec::new(), 0.0),
        };
        let added: Vec<ElementId> = fresh
            .elements
            .iter()
            .copied()
            .filter(|id| !old_elements.contains(id))
            .collect();
        let mut removed: Vec<ElementId> = old_elements
            .iter()
            .copied()
            .filter(|id| !fresh.elements.contains(id))
            .collect();
        removed.sort_unstable();

        let score_after = fresh.score;
        sub.result = Some(fresh);

        let changed =
            !added.is_empty() || !removed.is_empty() || (score_after - score_before).abs() > 1e-12;
        if !changed {
            return None;
        }
        sub.stats.result_changes += 1;
        Some(ResultDelta {
            subscription: id,
            reason,
            added,
            removed,
            score_before,
            score_after,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksir_core::fixtures::paper_example;
    use ksir_types::QueryVector;

    fn query(k: usize, weights: &[f64]) -> KsirQuery {
        KsirQuery::new(k, QueryVector::new(weights.to_vec()).unwrap()).unwrap()
    }

    #[test]
    fn subscribe_validates_dimensions() {
        let ex = paper_example();
        let mut mgr = SubscriptionManager::new(ex.empty_engine());
        assert!(matches!(
            mgr.subscribe(query(2, &[1.0, 1.0, 1.0]), Algorithm::Mttd),
            Err(KsirError::DimensionMismatch { .. })
        ));
        assert_eq!(mgr.subscription_count(), 0);
    }

    #[test]
    fn subscribe_evaluates_immediately_and_unsubscribe_removes() {
        let ex = paper_example();
        let mut mgr = SubscriptionManager::new(ex.build_engine());
        let id = mgr
            .subscribe(query(2, &[0.5, 0.5]), Algorithm::Mttd)
            .unwrap();
        let result = mgr.result(id).expect("evaluated at subscribe time");
        assert_eq!(result.len(), 2);
        assert!(result.score > 0.6);
        assert!(mgr.unsubscribe(id));
        assert!(!mgr.unsubscribe(id));
        assert!(mgr.result(id).is_none());
    }

    #[test]
    fn maintained_result_tracks_the_stream() {
        let ex = paper_example();
        let mut mgr = SubscriptionManager::new(ex.empty_engine());
        let id = mgr
            .subscribe(query(2, &[0.5, 0.5]), Algorithm::Mttd)
            .unwrap();
        // Before any data the result is empty.
        assert!(mgr.result(id).unwrap().is_empty());
        for (element, tv) in ex.stream() {
            let end = element.ts;
            mgr.ingest_bucket(vec![(element, tv)], end).unwrap();
        }
        // At t = 8 the maintained result must match the ad-hoc answer.
        let fresh = mgr
            .engine()
            .query(&query(2, &[0.5, 0.5]), Algorithm::Mttd)
            .unwrap();
        let maintained = mgr.result(id).unwrap();
        assert_eq!(maintained.sorted_elements(), fresh.sorted_elements());
        assert!((maintained.score - fresh.score).abs() < 1e-9);
        let stats = mgr.stats();
        assert_eq!(stats.slides, 8);
        assert!(stats.refreshes >= 1);
    }

    #[test]
    fn disjoint_topic_subscription_is_skipped() {
        // A subscription whose support is topic 1 only must be skipped when
        // a slide touches only topic 0.
        let ex = paper_example();
        let mut mgr = SubscriptionManager::new(ex.empty_engine());
        // e3 is almost pure topic 0; subscribe to pure topic 1 and ingest an
        // element with support {topic 0} only.
        let id = mgr
            .subscribe(query(1, &[0.0, 1.0]), Algorithm::Mtts)
            .unwrap();
        let e3 = ex.element(3).clone();
        let tv3 = ksir_types::TopicVector::from_values(vec![1.0, 0.0]).unwrap();
        let outcome = mgr.ingest_bucket(vec![(e3, tv3)], Timestamp(3)).unwrap();
        assert_eq!(outcome.skipped, 1);
        assert_eq!(outcome.refreshed, 0);
        assert_eq!(mgr.subscription_stats(id).unwrap().skips, 1);
    }

    #[test]
    fn forced_refresh_reports_forced_reason_only_on_change() {
        let ex = paper_example();
        let mut mgr = SubscriptionManager::new(ex.build_engine());
        let id = mgr
            .subscribe(query(2, &[0.5, 0.5]), Algorithm::Mttd)
            .unwrap();
        // Nothing changed since subscribe: a forced refresh confirms the
        // result and reports no delta.
        assert!(mgr.refresh(id).is_none());
        assert!(mgr.refresh(SubscriptionId(999)).is_none());
    }

    #[test]
    fn ingest_stream_cuts_buckets_and_maintains() {
        let ex = paper_example();
        let mut mgr = SubscriptionManager::new(ex.empty_engine());
        let id = mgr
            .subscribe(query(2, &[0.5, 0.5]), Algorithm::Mtts)
            .unwrap();
        let outcomes = mgr.ingest_stream(ex.stream()).unwrap();
        assert_eq!(outcomes.len(), 8, "bucket length is 1");
        let fresh = mgr
            .engine()
            .query(&query(2, &[0.5, 0.5]), Algorithm::Mtts)
            .unwrap();
        assert_eq!(
            mgr.result(id).unwrap().sorted_elements(),
            fresh.sorted_elements()
        );
    }
}
