//! Topic-keyed shards of the subscription table.
//!
//! The serial subscription manager of PR 1 walked every subscription after
//! every slide.  Sharding exploits the observation that a slide's
//! [`WindowDelta`] names exactly the topics it touched: if subscriptions are
//! partitioned by the **dominant support topic** of their query vector, the
//! delta can be projected onto per-shard *touch filters* and whole shards
//! proven undisturbed without looking at a single resident.
//!
//! Every shard maintains three conservative filters over its residents,
//! rebuilt whenever a resident's stored result changes:
//!
//! * a [`FloorAggregate`] — the loosest traversal floor per watched topic
//!   across all resident frontiers (frontier-less residents watch each of
//!   their support topics at *any-touch* level),
//! * the union of resident **result members**, so an expiry of any stored
//!   element schedules the shard (refresh rule 2),
//! * a count of residents awaiting their first evaluation (defensive —
//!   `subscribe` evaluates immediately, so this only fires if a result-less
//!   resident is ever introduced by a future registration path).
//!
//! A slide schedules a shard iff one of the filters fires; scheduled shards
//! then run the exact per-subscription delta-refresh rules of the serial
//! manager, so the refresh/skip decision for every individual subscription —
//! and therefore the work counters — are **identical** to the serial walk.
//! Unscheduled shards charge one skip per resident without touching them.
//!
//! Queries whose support is broader than
//! [`ShardConfig::overflow_support_threshold`] topics have no meaningful
//! dominant topic; they rendezvous in the dedicated
//! [`ShardKey::Overflow`] shard instead of pinning an arbitrary topic shard
//! to a near-global topic set.
//!
//! ## Shared evaluation plans
//!
//! With [`ShardConfig::shared_plans`] enabled (the default), a shard also
//! groups its residents into **plan clusters**
//! (`cluster::PlanCluster`): subscriptions whose queries are
//! plan-compatible — identical vector and `ε`, same algorithm — differ only
//! in `k`, so a scheduled shard evaluates each disturbed cluster once per
//! distinct member `k` (largest first, the **covering** run) against a
//! shared singleton memo instead of once per member.  Same-`k` members share
//! the run's result outright; smaller-`k` members re-run their own admission
//! logic with singleton lookups served from the covering run's memo.  The
//! per-member classify/refresh/skip *decisions* are computed by exactly the
//! same rules as the per-subscription walk, so stats and delivered deltas
//! are identical — only the number of evaluations changes.

use std::collections::{BTreeMap, HashSet, VecDeque};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

use ksir_core::{FloorAggregate, KsirQuery, QueryResult, QuerySource};
use ksir_snapshot::{PrefixSpec, SnapshotPolicy, SnapshotSource};
use ksir_stream::WindowDelta;
use ksir_telemetry::{Counter, Histogram, ShardLabel, Telemetry, TelemetryConfig, TraceEventKind};
use ksir_types::{ElementId, TopicId};

use crate::cluster::{ClusterKey, PlanCluster};
use crate::overload::OverloadConfig;
use crate::reorder::LatePolicy;
use crate::subscription::{RefreshReason, ResultDelta, Subscription, SubscriptionId};

/// Identity of one shard of the subscription table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ShardKey {
    /// Subscriptions whose dominant support topic is this topic.
    Topic(TopicId),
    /// Rendezvous shard for broad subscriptions (support wider than the
    /// configured threshold) and degenerate queries with no dominant topic.
    Overflow,
}

impl ShardKey {
    /// Returns `true` for the overflow shard.
    pub fn is_overflow(&self) -> bool {
        matches!(self, ShardKey::Overflow)
    }
}

impl std::fmt::Display for ShardKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardKey::Topic(topic) => write!(f, "shard[{topic}]"),
            ShardKey::Overflow => write!(f, "shard[overflow]"),
        }
    }
}

/// Sharding and parallelism settings of a
/// [`SubscriptionManager`](crate::SubscriptionManager).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardConfig {
    /// Queries with support (non-zero topics) strictly wider than this route
    /// to the [`ShardKey::Overflow`] shard instead of a topic shard.
    pub overflow_support_threshold: usize,
    /// Upper bound on refresh worker threads per slide; `None` uses
    /// [`std::thread::available_parallelism`].  `Some(1)` refreshes scheduled
    /// shards serially on the caller's thread.
    pub max_threads: Option<usize>,
    /// How many epochs the asynchronous pipeline may have in flight at once
    /// (clamped to at least 1).  `ingest_bucket_async` admits a new epoch
    /// only when fewer than this many earlier epochs still have outstanding
    /// refresh work; `1` reproduces the quiesce-before-write barrier of the
    /// pre-snapshot pipeline, `2` (the default) lets epoch `N+1`'s index
    /// write proceed while epoch `N`'s refreshes drain.  Higher depths buy
    /// little: each in-flight epoch pins its snapshot (and the writer's
    /// copy-on-write clones) in memory.
    pub pipeline_depth: usize,
    /// How per-shard snapshots capture the ranked lists
    /// (see [`SnapshotPolicy`]); [`SnapshotPolicy::Exact`] keeps the
    /// pipelined path decision- and score-identical to the synchronous API.
    pub snapshot_policy: SnapshotPolicy,
    /// How much telemetry the manager collects (see [`TelemetryConfig`]).
    /// Tracing is on by default; metrics are always on.
    pub telemetry: TelemetryConfig,
    /// Whether slide-driven refreshes may run **delta-restricted**: singleton
    /// scores answered from the subscription's retained memo, with only the
    /// slide's changed elements re-derived from their stored ranked-list
    /// tuples.  Decisions and scores are identical to a full re-run (see
    /// [`ksir_core::SingletonCache`]); `false` forces every refresh down the
    /// full-rerun path, which is the baseline the `refresh` perf gate
    /// compares against.
    pub delta_refresh: bool,
    /// Whether shards cluster plan-compatible residents (identical query
    /// vector and `ε`, same algorithm) into shared evaluation plans: one
    /// covering traversal per disturbed cluster and `k`, specialized per
    /// member, instead of one evaluation per member.  Decisions, results and
    /// work counters are identical either way (pinned by the `shared_plans`
    /// property tests); `false` keeps the per-subscription walk, which is
    /// the oracle the clustered path is compared against and the baseline of
    /// the `per_subscription` perf gate.
    pub shared_plans: bool,
    /// How many out-of-order bucket positions
    /// [`ingest_bucket_reordered`](crate::SubscriptionManager::ingest_bucket_reordered)
    /// re-sequences before releasing to the engine.  `0` (the default) is a
    /// pass-through that still sheds regressions under `late_policy` instead
    /// of surfacing them as ingest errors.  See [`crate::reorder`].
    pub reorder_horizon: usize,
    /// What the reorder buffer does with a bucket that arrives beyond the
    /// horizon (see [`LatePolicy`]).
    pub late_policy: LatePolicy,
    /// The graceful-degradation ladder's tuning (disabled by default; see
    /// [`crate::overload`]).
    pub overload: OverloadConfig,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            overflow_support_threshold: 4,
            max_threads: None,
            pipeline_depth: 2,
            snapshot_policy: SnapshotPolicy::Exact,
            telemetry: TelemetryConfig::default(),
            delta_refresh: true,
            shared_plans: true,
            reorder_horizon: 0,
            late_policy: LatePolicy::DropLate,
            overload: OverloadConfig::default(),
        }
    }
}

impl ShardConfig {
    /// Topic-sharded routing, but all refreshes on the caller's thread.
    pub fn serial() -> Self {
        ShardConfig::default().with_threads(Some(1))
    }

    /// The PR-1 behaviour: a single (overflow) shard walked serially.
    /// Useful as the baseline the sharded paths are benchmarked against.
    pub fn unsharded() -> Self {
        ShardConfig {
            overflow_support_threshold: 0,
            max_threads: Some(1),
            ..ShardConfig::default()
        }
    }

    /// Overrides the worker-thread bound (`None` = auto).
    pub fn with_threads(mut self, max_threads: Option<usize>) -> Self {
        self.max_threads = max_threads;
        self
    }

    /// Overrides the overflow routing threshold.
    pub fn with_overflow_support_threshold(mut self, threshold: usize) -> Self {
        self.overflow_support_threshold = threshold;
        self
    }

    /// Overrides the pipeline depth (clamped to at least 1 on use).
    pub fn with_pipeline_depth(mut self, depth: usize) -> Self {
        self.pipeline_depth = depth;
        self
    }

    /// Overrides the shard-snapshot capture policy.
    pub fn with_snapshot_policy(mut self, policy: SnapshotPolicy) -> Self {
        self.snapshot_policy = policy;
        self
    }

    /// Overrides the telemetry configuration (e.g.
    /// [`TelemetryConfig::disabled`] to turn tracing off).
    pub fn with_telemetry(mut self, telemetry: TelemetryConfig) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Enables or disables delta-restricted refreshes (`false` = always run
    /// full, the perf-gate baseline).
    pub fn with_delta_refresh(mut self, delta_refresh: bool) -> Self {
        self.delta_refresh = delta_refresh;
        self
    }

    /// Enables or disables shared evaluation plans (`false` = one evaluation
    /// per subscription, the decision oracle and perf-gate baseline).
    pub fn with_shared_plans(mut self, shared_plans: bool) -> Self {
        self.shared_plans = shared_plans;
        self
    }

    /// Overrides the reorder horizon (out-of-order bucket positions the
    /// reordered ingest path re-sequences before releasing).
    pub fn with_reorder_horizon(mut self, horizon: usize) -> Self {
        self.reorder_horizon = horizon;
        self
    }

    /// Overrides the beyond-horizon arrival policy.
    pub fn with_late_policy(mut self, policy: LatePolicy) -> Self {
        self.late_policy = policy;
        self
    }

    /// Overrides the overload-degradation tuning (pass
    /// [`OverloadConfig::enabled`] to arm the ladder).
    pub fn with_overload(mut self, overload: OverloadConfig) -> Self {
        self.overload = overload;
        self
    }

    /// The shard a query routes to under this configuration: its dominant
    /// support topic, or the overflow shard when the support is broader than
    /// the threshold.
    pub fn route(&self, query: &KsirQuery) -> ShardKey {
        let vector = query.vector();
        if vector.support_size() > self.overflow_support_threshold {
            return ShardKey::Overflow;
        }
        match vector.as_topic_vector().dominant_topic() {
            Some(topic) => ShardKey::Topic(topic),
            // Unreachable for valid QueryVectors (all-zero is rejected), but
            // the overflow shard is always a safe home.
            None => ShardKey::Overflow,
        }
    }

    /// The effective refresh worker-thread cap: `max_threads`, or the host's
    /// [`std::thread::available_parallelism`] when unset.
    pub fn worker_threads(&self) -> usize {
        self.max_threads
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
            .max(1)
    }

    /// Number of refresh worker threads to use for `scheduled` shards.
    pub(crate) fn threads_for(&self, scheduled: usize) -> usize {
        self.worker_threads().clamp(1, scheduled.max(1))
    }
}

/// Cumulative work counters of one shard.
///
/// `refreshes + skips` over all shards reconciles to `slides ×
/// subscriptions` exactly like the serial manager's counters:
/// every resident of a scheduled shard is classified individually, and every
/// resident of an unscheduled shard is charged one skip.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardStats {
    /// Which shard these counters belong to.
    pub key: ShardKey,
    /// Current number of resident subscriptions.
    pub subscriptions: usize,
    /// Slide-driven query re-runs across all residents.
    pub refreshes: usize,
    /// The subset of [`ShardStats::refreshes`] that ran delta-restricted
    /// (singleton scores answered from the residents' retained memos).
    pub delta_refreshes: usize,
    /// Slide-time evaluations skipped (shard-level and per-resident).
    pub skips: usize,
    /// Slides for which the shard's filters fired and residents were
    /// classified.
    pub scheduled_slides: usize,
    /// Slides the shard was proven undisturbed as a whole.
    pub skipped_slides: usize,
    /// Current number of plan clusters (0 with shared plans disabled).
    pub clusters: usize,
    /// Covering/variant evaluations the clustered refresh path actually ran.
    /// Each one serves every to-refresh member of one cluster at one `k`;
    /// without shared plans this stays 0 (each refresh runs its own
    /// evaluation instead).
    pub covering_evaluations: usize,
    /// Refreshes served by sharing a variant run's result instead of running
    /// an evaluation of their own — `refreshes` minus the evaluations that
    /// actually ran, summed over clustered slides.
    pub shared_refreshes: usize,
    /// Clusters proven undisturbed inside scheduled slides (all members
    /// charged a skip without per-member classification).
    pub skipped_clusters: usize,
    /// Whether the shard is quarantined (degraded full-recompute mode after
    /// exhausting a refresh retry budget; see the worker's fault isolation).
    pub quarantined: bool,
}

impl ShardStats {
    /// Fraction of slide-time evaluations the delta rules skipped.
    pub fn skip_rate(&self) -> f64 {
        let total = self.refreshes + self.skips;
        if total == 0 {
            0.0
        } else {
            self.skips as f64 / total as f64
        }
    }
}

/// The telemetry label of a shard key (same rendering, but free of the
/// continuous crate's types so the telemetry crate stays dependency-free).
pub(crate) fn label_of(key: ShardKey) -> ShardLabel {
    match key {
        ShardKey::Topic(TopicId(t)) => ShardLabel::Topic(t),
        ShardKey::Overflow => ShardLabel::Overflow,
    }
}

/// One shard's handle into the manager's [`Telemetry`] bundle: the shared
/// trace/registry plus pre-resolved metric handles, so the refresh loop
/// never touches the registry's name map.
///
/// The registry counters (`shard.refreshes`, `shard.skips`, ...) are bumped
/// in the same statements as the [`ShardStats`] fields they aggregate — the
/// two views cannot drift.
#[derive(Debug, Clone)]
pub(crate) struct ShardTelemetry {
    bundle: Arc<Telemetry>,
    label: ShardLabel,
    refresh_hist: Arc<Histogram>,
    refreshes: Arc<Counter>,
    skips: Arc<Counter>,
    scheduled_slides: Arc<Counter>,
    skipped_slides: Arc<Counter>,
    /// `refresh.mode.*` counters: how each slide-time classification was
    /// served — a full re-run, a delta-restricted re-run, or a provable skip.
    /// `refresh.mode.full + refresh.mode.delta == shard.refreshes` and
    /// `refresh.mode.skipped == shard.skips`, bumped in the same statements.
    refresh_mode_full: Arc<Counter>,
    refresh_mode_delta: Arc<Counter>,
    refresh_mode_skipped: Arc<Counter>,
    /// `refresh.cluster.*` counters: how the shared-plan layer served a
    /// scheduled slide — covering/variant evaluations actually run, member
    /// refreshes served by sharing a run's result, and whole clusters
    /// fast-skipped.  Bumped in the same statements as the [`ShardStats`]
    /// fields they aggregate.
    cluster_covering: Arc<Counter>,
    cluster_shared: Arc<Counter>,
    cluster_skipped: Arc<Counter>,
    /// `refresh.gain_evaluations`: total scoring passes (marginal-gain /
    /// singleton evaluations) of all slide-driven query runs.  A pure cost
    /// counter with no stats twin — it is what the `per_subscription` perf
    /// gate divides by the subscription count.
    gain_evaluations: Arc<Counter>,
}

impl ShardTelemetry {
    pub(crate) fn new(bundle: Arc<Telemetry>, key: ShardKey) -> Self {
        let registry = bundle.registry();
        ShardTelemetry {
            label: label_of(key),
            refresh_hist: registry.histogram("refresh.shard"),
            refreshes: registry.counter("shard.refreshes"),
            skips: registry.counter("shard.skips"),
            scheduled_slides: registry.counter("shard.scheduled_slides"),
            skipped_slides: registry.counter("shard.skipped_slides"),
            refresh_mode_full: registry.counter("refresh.mode.full"),
            refresh_mode_delta: registry.counter("refresh.mode.delta"),
            refresh_mode_skipped: registry.counter("refresh.mode.skipped"),
            cluster_covering: registry.counter("refresh.cluster.covering"),
            cluster_shared: registry.counter("refresh.cluster.shared"),
            cluster_skipped: registry.counter("refresh.cluster.skipped"),
            gain_evaluations: registry.counter("refresh.gain_evaluations"),
            bundle,
        }
    }

    fn record(&self, epoch: u64, kind: TraceEventKind) {
        self.bundle.record(epoch, Some(self.label), kind);
    }
}

/// The work a scheduled shard performed on one slide.
#[derive(Debug, Default)]
pub(crate) struct ShardSlide {
    pub(crate) updates: Vec<ResultDelta>,
    pub(crate) refreshed: usize,
    /// The subset of `refreshed` that ran delta-restricted.
    pub(crate) delta_refreshed: usize,
    pub(crate) skipped: usize,
}

/// Cost-side accounting of one scheduled slide, kept separate from
/// [`ShardSlide`] because it describes *how* the work was served, not what
/// was decided: the decision counters are pinned identical across the
/// per-subscription and clustered paths, these are not.
#[derive(Debug, Default)]
struct SlideWork {
    /// Covering/variant evaluations actually run.
    covering: usize,
    /// Member refreshes served from another member's evaluation.
    shared: usize,
    /// Clusters fast-skipped without per-member classification.
    skipped_clusters: usize,
    /// Scoring passes (marginal-gain / singleton evaluations) of the runs.
    gain: usize,
}

/// One epoch queued on a busy shard's lane: the slide delta to project, the
/// frozen engine image to refresh against if the projection fires, the
/// snapshot policy the refresh must honour (captured per epoch so the
/// overload ladder's [`SnapshotPolicy`] switch cannot retroactively change
/// an in-flight epoch), and the watermark drop-guard that marks the epoch's
/// work complete however the task leaves the pipeline — processed, shed, or
/// dropped on the floor by a dying worker.
pub(crate) struct PendingEpoch {
    pub(crate) epoch: u64,
    pub(crate) delta: Arc<WindowDelta>,
    pub(crate) snapshot: Arc<dyn SnapshotSource>,
    pub(crate) policy: SnapshotPolicy,
    /// Never read — held purely for its `Drop`, which completes the epoch's
    /// watermark registration.
    #[allow(dead_code)]
    pub(crate) task: crate::worker::EpochTask,
}

impl std::fmt::Debug for PendingEpoch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PendingEpoch")
            .field("epoch", &self.epoch)
            .finish()
    }
}

/// The pipelined work queue of one shard: whether a worker currently owns
/// the shard, and the epochs awaiting their scheduling decision.
///
/// Epochs are processed strictly in queue (= epoch) order, which is the only
/// ordering the refresh decisions depend on — filters updated by epoch `e`
/// are what epoch `e+1`'s `is_touched_by` must observe.
#[derive(Debug, Default)]
struct Lane {
    busy: bool,
    pending: VecDeque<PendingEpoch>,
}

/// A shard plus its pipeline lane, under separate locks.
///
/// The split is what keeps ingestion latency independent of refresh compute:
/// the ingest thread appends epochs to a *busy* shard through the cheap lane
/// lock while a worker holds the shard lock through a long refresh.  The
/// shard lock is only taken by the ingest thread for *idle* shards (inline
/// skip / schedule decision), which no worker contends for.
///
/// Lock order is lane → shard; nothing acquires the lane while holding the
/// shard.
#[derive(Debug)]
pub(crate) struct ShardCell {
    lane: Mutex<Lane>,
    shard: Mutex<Shard>,
    /// Own clone of the shard's telemetry handles, so the busy-lane
    /// (deferred) path can trace without touching the contended shard lock.
    telemetry: ShardTelemetry,
}

impl ShardCell {
    pub(crate) fn new(
        key: ShardKey,
        bundle: Arc<Telemetry>,
        delta_refresh: bool,
        shared_plans: bool,
    ) -> Self {
        let telemetry = ShardTelemetry::new(bundle, key);
        ShardCell {
            lane: Mutex::new(Lane::default()),
            shard: Mutex::new(Shard::new(
                key,
                telemetry.clone(),
                delta_refresh,
                shared_plans,
            )),
            telemetry,
        }
    }

    fn lane(&self) -> MutexGuard<'_, Lane> {
        self.lane.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Locks the shard itself (resident subscriptions, filters, counters).
    pub(crate) fn shard(&self) -> MutexGuard<'_, Shard> {
        self.shard.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Ingest side: projects one epoch onto this shard, atomically with the
    /// ownership check (a worker releasing the lane between a separate check
    /// and enqueue would otherwise strand the task).
    ///
    /// * lane busy → append the epoch; the owning worker decides in order
    ///   once the filters are current ([`LaneDecision::Deferred`]);
    /// * lane idle → the filters are final for all prior epochs, so decide
    ///   now: enqueue + take ownership for the caller to hand to a worker
    ///   ([`LaneDecision::Scheduled`]), or skip every resident inline
    ///   ([`LaneDecision::Skipped`]).
    ///
    /// `make_task` is only invoked when the epoch is actually enqueued, so
    /// snapshot capture (and watermark registration) stays lazy.
    pub(crate) fn project_epoch(
        &self,
        epoch: u64,
        delta: &WindowDelta,
        make_task: impl FnOnce() -> PendingEpoch,
    ) -> LaneDecision {
        let mut lane = self.lane();
        if lane.busy {
            lane.pending.push_back(make_task());
            self.telemetry.record(epoch, TraceEventKind::ShardDeferred);
            return LaneDecision::Deferred;
        }
        // Lock order lane → shard; the shard lock is uncontended here (only
        // a lane owner holds it for long, and the lane is idle).
        let mut shard = self.shard();
        if shard.len() == 0 {
            LaneDecision::Empty
        } else if shard.is_touched_by(delta) {
            lane.busy = true;
            lane.pending.push_back(make_task());
            LaneDecision::Scheduled
        } else {
            LaneDecision::Skipped(shard.skip_all(epoch))
        }
    }

    /// Worker side: pops the next pending epoch, or — atomically with the
    /// emptiness check — releases lane ownership and returns `None`.
    pub(crate) fn pop_pending_or_release(&self) -> Option<PendingEpoch> {
        let mut lane = self.lane();
        match lane.pending.pop_front() {
            Some(task) => Some(task),
            None => {
                lane.busy = false;
                None
            }
        }
    }
}

/// Outcome of [`ShardCell::project_epoch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum LaneDecision {
    /// Appended behind earlier epochs; the owning worker decides in order.
    Deferred,
    /// Idle shard whose filters fired: epoch enqueued, lane ownership taken —
    /// the caller must hand the shard to a worker.
    Scheduled,
    /// Idle shard proven undisturbed: residents skipped inline (count).
    Skipped(usize),
    /// No residents; nothing to do.
    Empty,
}

/// One shard: resident subscriptions plus the slide-time touch filters.
#[derive(Debug)]
pub(crate) struct Shard {
    key: ShardKey,
    subs: BTreeMap<SubscriptionId, Subscription>,
    /// Loosest traversal floor per watched topic across residents.
    floors: FloorAggregate,
    /// Union of resident result members (refresh rule 2 at shard level).
    members: HashSet<ElementId>,
    /// Residents that have never been evaluated (refresh rule 1).
    pending_initial: usize,
    /// Whether classified refreshes may run delta-restricted
    /// (see [`ShardConfig::delta_refresh`]).  Structural capability; the
    /// effective mode also honours `delta_active` and quarantine
    /// (see [`Shard::delta_enabled`]).
    delta_refresh: bool,
    /// Whether residents are grouped into plan clusters and refreshed
    /// through shared covering runs (see [`ShardConfig::shared_plans`]).
    /// Structural: cluster bookkeeping stays alive even while covering runs
    /// are suspended by `plans_active`/quarantine
    /// (see [`Shard::plans_enabled`]).
    shared_plans: bool,
    /// Overload-ladder switch: covering runs suspended while `false`.
    plans_active: bool,
    /// Overload-ladder switch: delta restriction suspended while `false`.
    delta_active: bool,
    /// Degraded mode entered after a refresh retry budget is exhausted:
    /// shared plans and delta restriction are off until the operator
    /// lifts it ([`Shard::lift_quarantine`]).
    quarantined: bool,
    /// Plan clusters of the residents, keyed by plan identity.  Empty when
    /// shared plans are disabled.
    clusters: BTreeMap<ClusterKey, PlanCluster>,
    /// Reverse index: which cluster each resident belongs to.
    cluster_of: BTreeMap<SubscriptionId, ClusterKey>,
    refreshes: usize,
    delta_refreshes: usize,
    skips: usize,
    scheduled_slides: usize,
    skipped_slides: usize,
    covering_evaluations: usize,
    shared_refreshes: usize,
    skipped_clusters: usize,
    telemetry: ShardTelemetry,
}

impl Shard {
    pub(crate) fn new(
        key: ShardKey,
        telemetry: ShardTelemetry,
        delta_refresh: bool,
        shared_plans: bool,
    ) -> Self {
        Shard {
            key,
            subs: BTreeMap::new(),
            floors: FloorAggregate::new(),
            members: HashSet::new(),
            pending_initial: 0,
            delta_refresh,
            shared_plans,
            plans_active: true,
            delta_active: true,
            quarantined: false,
            clusters: BTreeMap::new(),
            cluster_of: BTreeMap::new(),
            refreshes: 0,
            delta_refreshes: 0,
            skips: 0,
            scheduled_slides: 0,
            skipped_slides: 0,
            covering_evaluations: 0,
            shared_refreshes: 0,
            skipped_clusters: 0,
            telemetry,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.subs.len()
    }

    /// This shard's identity (used by the fault seams to address it).
    pub(crate) fn key(&self) -> ShardKey {
        self.key
    }

    /// Effective shared-plan mode: the structural capability gated by the
    /// overload ladder and quarantine.
    fn plans_enabled(&self) -> bool {
        self.shared_plans && self.plans_active && !self.quarantined
    }

    /// Effective delta-restriction mode: the structural capability gated by
    /// the overload ladder and quarantine.
    fn delta_enabled(&self) -> bool {
        self.delta_refresh && self.delta_active && !self.quarantined
    }

    /// Applies one rung of the overload ladder.  Suspending either
    /// optimisation invalidates the plan-cluster memos: a memo warmed by a
    /// covering run must not serve a later per-resident walk whose delta
    /// bookkeeping it never saw, and vice versa.
    pub(crate) fn set_modes(&mut self, plans_active: bool, delta_active: bool) {
        if self.plans_active == plans_active && self.delta_active == delta_active {
            return;
        }
        self.plans_active = plans_active;
        self.delta_active = delta_active;
        self.drop_memos();
    }

    /// Whether the shard is in degraded (quarantined) mode.
    pub(crate) fn is_quarantined(&self) -> bool {
        self.quarantined
    }

    /// Enters degraded mode: shared plans and delta restriction are off for
    /// future refreshes (every run is a full recompute), memos are dropped.
    /// Returns the resident count for the caller's trace event.
    pub(crate) fn quarantine(&mut self) -> usize {
        self.quarantined = true;
        self.drop_memos();
        self.subs.len()
    }

    /// Lifts a quarantine: the shard resumes its configured modes on the
    /// next refresh (memos rebuild from cold, which is always sound).
    pub(crate) fn lift_quarantine(&mut self) {
        self.quarantined = false;
    }

    /// Best-effort repair after a caught refresh panic: the resident walk
    /// may have stored some fresh results and not others, so every memo is
    /// suspect and the filters may be stale.  Replacing the memos with cold
    /// ones (an empty memo is always sound — only *stale* entries can lie)
    /// and rebuilding the filters restores the invariants the next slide's
    /// scheduling decision depends on; stored results are whatever the
    /// interrupted walk left, which the retry (a normal classify/refresh
    /// pass) brings forward correctly.
    pub(crate) fn recover(&mut self) {
        self.drop_memos();
        for sub in self.subs.values_mut() {
            if sub.cache.is_some() {
                sub.cache = Some(ksir_core::SingletonCache::new());
            }
        }
        self.rebuild_filters();
    }

    /// Invalidates every plan-cluster memo.
    fn drop_memos(&mut self) {
        for cluster in self.clusters.values_mut() {
            cluster.invalidate_cache();
        }
    }

    pub(crate) fn get(&self, id: SubscriptionId) -> Option<&Subscription> {
        self.subs.get(&id)
    }

    pub(crate) fn get_mut(&mut self, id: SubscriptionId) -> Option<&mut Subscription> {
        self.subs.get_mut(&id)
    }

    pub(crate) fn insert(&mut self, id: SubscriptionId, sub: Subscription) {
        // The filters are monotone unions, so one new resident only needs an
        // incremental absorb — a full rebuild here would make bulk
        // registration O(residents²) per shard.
        self.absorb_resident(&sub);
        if self.shared_plans {
            let key = ClusterKey::of(&sub.query, sub.algorithm);
            match self.clusters.get_mut(&key) {
                Some(cluster) => cluster.add_member(id, &sub),
                None => {
                    self.clusters
                        .insert(key.clone(), PlanCluster::new(id, &sub));
                }
            }
            self.cluster_of.insert(id, key);
        }
        self.subs.insert(id, sub);
    }

    pub(crate) fn remove(&mut self, id: SubscriptionId) -> Option<Subscription> {
        let removed = self.subs.remove(&id);
        if removed.is_some() {
            if let Some(key) = self.cluster_of.remove(&id) {
                let retire = self
                    .clusters
                    .get_mut(&key)
                    .is_some_and(|cluster| cluster.remove_member(id));
                if retire {
                    self.clusters.remove(&key);
                }
            }
            self.rebuild_filters();
        }
        removed
    }

    /// Drops the shared memo of `id`'s plan cluster.  Must be called when a
    /// member's result is replaced outside the cluster's own refresh path
    /// (forced refreshes): the departing frontier may have been the memo's
    /// validity guard.  No-op without shared plans.
    pub(crate) fn invalidate_plan_cache(&mut self, id: SubscriptionId) {
        if let Some(key) = self.cluster_of.get(&id) {
            if let Some(cluster) = self.clusters.get_mut(key) {
                cluster.invalidate_cache();
            }
        }
    }

    pub(crate) fn stats(&self) -> ShardStats {
        ShardStats {
            key: self.key,
            subscriptions: self.subs.len(),
            refreshes: self.refreshes,
            delta_refreshes: self.delta_refreshes,
            skips: self.skips,
            scheduled_slides: self.scheduled_slides,
            skipped_slides: self.skipped_slides,
            clusters: self.clusters.len(),
            covering_evaluations: self.covering_evaluations,
            shared_refreshes: self.shared_refreshes,
            skipped_clusters: self.skipped_clusters,
            quarantined: self.quarantined,
        }
    }

    /// Folds one resident's state into the touch filters;
    /// `O(k + support)`.
    fn absorb_resident(&mut self, sub: &Subscription) {
        match &sub.result {
            // Defensive: `subscribe` evaluates before insertion, so in the
            // manager's lifecycle a resident always has a result — but the
            // filters must stay a conservative union of `classify`, whose
            // rule 1 refreshes result-less subscriptions unconditionally.
            None => self.pending_initial += 1,
            Some(result) => {
                self.members.extend(result.elements.iter().copied());
                match &result.frontier {
                    Some(frontier) => self.floors.absorb(frontier),
                    // Frontier-less residents refresh on any touch of a
                    // support topic (classify's rule-3 fallback).
                    None => {
                        for (topic, _) in sub.query.vector().support() {
                            self.floors.watch_any(topic);
                        }
                    }
                }
            }
        }
    }

    /// Recomputes the shard's touch filters from its residents — and, under
    /// shared plans, every cluster's covering query and filters from its
    /// members.  Called after any refresh or removal;
    /// `O(residents × (k + support))`.
    pub(crate) fn rebuild_filters(&mut self) {
        self.floors.clear();
        self.members.clear();
        self.pending_initial = 0;
        let subs = std::mem::take(&mut self.subs);
        for sub in subs.values() {
            self.absorb_resident(sub);
        }
        if self.shared_plans {
            let mut clusters = std::mem::take(&mut self.clusters);
            for cluster in clusters.values_mut() {
                cluster.rebuild(|id| &subs[&id]);
            }
            self.clusters = clusters;
        }
        self.subs = subs;
    }

    /// Projects the slide delta onto this shard's filters: `true` iff some
    /// resident could be disturbed, i.e. the shard must be scheduled.
    pub(crate) fn is_touched_by(&self, delta: &WindowDelta) -> bool {
        if self.subs.is_empty() {
            return false;
        }
        if self.pending_initial > 0 {
            return true;
        }
        if delta.lost_any(self.members.iter().copied()) {
            return true;
        }
        self.floors.disturbed_by(&delta.ranked)
    }

    /// The ranked-list view a refresh of this shard needs, as truncation
    /// floors: for every support topic of every resident, the loosest
    /// per-resident requirement.  Fed to
    /// [`ksir_snapshot::SnapshotSource::shard_source`] to build the bounded
    /// per-shard snapshot.
    ///
    /// A resident with a frontier requires each support list down to its own
    /// traversal floor, tightened by its admission **bar** when the last run
    /// reported one ([`ksir_core::QueryFrontier::bar`]): an element whose
    /// weighted tuple is below `bar / (support_len · xᵢ)` in *every* support
    /// topic has a singleton score below the bar and could not have entered
    /// the result, so lists exhausted by the last traversal no longer force
    /// whole-list prefixes.  Residents without a frontier — awaiting their
    /// first evaluation, or running a frontier-less algorithm — require the
    /// whole list.
    pub(crate) fn prefix_spec(&self) -> PrefixSpec {
        let mut floors: BTreeMap<TopicId, Option<f64>> = BTreeMap::new();
        if self.shared_plans {
            // Fold per cluster first: a cluster's covering floors (loosest
            // member requirement per topic) are exactly what its covering
            // run must see.  The shard spec is their merge — the loosest
            // (min / whole-list) merge is associative, so the two-level fold
            // yields the same floors as the flat per-resident fold.
            for cluster in self.clusters.values() {
                let mut covering: BTreeMap<TopicId, Option<f64>> = BTreeMap::new();
                for &id in &cluster.members {
                    fold_resident_floors(&mut covering, &self.subs[&id]);
                }
                for (topic, own) in covering {
                    merge_floor(&mut floors, topic, own);
                }
            }
        } else {
            for sub in self.subs.values() {
                fold_resident_floors(&mut floors, sub);
            }
        }
        PrefixSpec {
            floors: floors.into_iter().collect(),
        }
    }

    /// Classifies and (where needed) refreshes every resident against the
    /// slide, then rebuilds the touch filters.  Runs on a worker thread when
    /// the manager refreshes shards in parallel; `source` is the live engine
    /// on the synchronous path and an epoch snapshot on the pipelined one.
    ///
    /// With shared plans the refresh walks plan clusters instead of
    /// residents; decisions and updates are identical (the per-member rules
    /// are unchanged), only the number of query evaluations differs.
    pub(crate) fn refresh_scheduled(
        &mut self,
        source: &dyn QuerySource,
        delta: &WindowDelta,
        epoch: u64,
    ) -> ShardSlide {
        let started = Instant::now();
        self.telemetry.record(epoch, TraceEventKind::ShardScheduled);
        self.telemetry.record(epoch, TraceEventKind::RefreshStarted);
        let (slide, work) = if self.plans_enabled() {
            self.refresh_clusters(source, delta)
        } else {
            self.refresh_residents(source, delta)
        };
        self.scheduled_slides += 1;
        self.refreshes += slide.refreshed;
        self.delta_refreshes += slide.delta_refreshed;
        self.skips += slide.skipped;
        self.covering_evaluations += work.covering;
        self.shared_refreshes += work.shared;
        self.skipped_clusters += work.skipped_clusters;
        self.telemetry.scheduled_slides.inc();
        self.telemetry.refreshes.add(slide.refreshed as u64);
        self.telemetry
            .refresh_mode_full
            .add((slide.refreshed - slide.delta_refreshed) as u64);
        self.telemetry
            .refresh_mode_delta
            .add(slide.delta_refreshed as u64);
        self.telemetry.skips.add(slide.skipped as u64);
        self.telemetry
            .refresh_mode_skipped
            .add(slide.skipped as u64);
        self.telemetry.cluster_covering.add(work.covering as u64);
        self.telemetry.cluster_shared.add(work.shared as u64);
        self.telemetry
            .cluster_skipped
            .add(work.skipped_clusters as u64);
        self.telemetry.gain_evaluations.add(work.gain as u64);
        self.telemetry.refresh_hist.record(started.elapsed());
        self.telemetry.record(
            epoch,
            TraceEventKind::RefreshFinished {
                refreshed: slide.refreshed as u64,
                skipped: slide.skipped as u64,
                updates: slide.updates.len() as u64,
            },
        );
        // Stored results — and therefore the filters derived from them —
        // only change when at least one resident actually refreshed; a shard
        // scheduled conservatively but skipped throughout keeps its filters.
        if slide.refreshed > 0 {
            self.rebuild_filters();
        }
        slide
    }

    /// The per-subscription walk: classify and refresh each resident on its
    /// own (the decision oracle the clustered path is pinned against).
    fn refresh_residents(
        &mut self,
        source: &dyn QuerySource,
        delta: &WindowDelta,
    ) -> (ShardSlide, SlideWork) {
        let mut slide = ShardSlide::default();
        let mut work = SlideWork::default();
        let delta_refresh = self.delta_enabled();
        for (&id, sub) in self.subs.iter_mut() {
            match classify(sub, delta) {
                Some(reason) => {
                    slide.refreshed += 1;
                    sub.stats.refreshes += 1;
                    let (update, mode) =
                        refresh_one(source, id, sub, reason, Some(delta), delta_refresh);
                    work.gain += sub
                        .result
                        .as_ref()
                        .map_or(0, |result| result.gain_evaluations);
                    if mode == RefreshMode::Delta {
                        slide.delta_refreshed += 1;
                        sub.stats.delta_refreshes += 1;
                    }
                    if let Some(update) = update {
                        slide.updates.push(update);
                    }
                }
                None => {
                    slide.skipped += 1;
                    sub.stats.skips += 1;
                }
            }
        }
        (slide, work)
    }

    /// The shared-plan walk: per cluster, either fast-skip the whole cluster
    /// (its filters prove every member would classify as skippable) or
    /// classify each member by the unchanged per-subscription rules and serve
    /// the to-refresh members from one evaluation per distinct `k`, largest
    /// first — the covering run — against the cluster's shared memo.
    ///
    /// Soundness of each piece:
    ///
    /// * fast-skip — the cluster filters are the same conservative union of
    ///   `classify`'s conditions the shard filters are, just over a subset of
    ///   residents, so an untouched cluster implies member-wise skips;
    /// * same-`k` sharing — plan-compatible queries with equal `k` are
    ///   *identical* queries, and evaluation is deterministic;
    /// * cross-`k` specialization — smaller-`k` variants re-run their own
    ///   algorithm (admission thresholds depend on `k`), but their singleton
    ///   lookups hit the covering run's memo entries, which are bit-identical
    ///   to fresh scoring passes (the PR 6 invariant).
    fn refresh_clusters(
        &mut self,
        source: &dyn QuerySource,
        delta: &WindowDelta,
    ) -> (ShardSlide, SlideWork) {
        let mut slide = ShardSlide::default();
        let mut work = SlideWork::default();
        let delta_refresh = self.delta_enabled();
        let empty = WindowDelta::default();
        // Mirror `refresh_one`: with delta refreshes disabled every run is a
        // full re-run against an empty delta and a cold memo — the memo is
        // still shared *within* the slide, which is the whole point.
        let effective = if delta_refresh { delta } else { &empty };
        let mut clusters = std::mem::take(&mut self.clusters);
        for cluster in clusters.values_mut() {
            if !cluster.is_touched_by(delta) {
                for &id in &cluster.members {
                    let sub = self
                        .subs
                        .get_mut(&id)
                        .expect("cluster members reside in the shard");
                    sub.stats.skips += 1;
                }
                slide.skipped += cluster.members.len();
                work.skipped_clusters += 1;
                continue;
            }
            let mut to_refresh: Vec<(SubscriptionId, RefreshReason)> = Vec::new();
            for &id in &cluster.members {
                let sub = self
                    .subs
                    .get_mut(&id)
                    .expect("cluster members reside in the shard");
                match classify(sub, delta) {
                    Some(reason) => to_refresh.push((id, reason)),
                    None => {
                        slide.skipped += 1;
                        sub.stats.skips += 1;
                    }
                }
            }
            if to_refresh.is_empty() {
                continue;
            }
            // One variant per distinct k, largest first.
            let mut variants: BTreeMap<
                std::cmp::Reverse<usize>,
                Vec<(SubscriptionId, RefreshReason)>,
            > = BTreeMap::new();
            for (id, reason) in to_refresh {
                let k = self.subs[&id].query.k();
                variants
                    .entry(std::cmp::Reverse(k))
                    .or_default()
                    .push((id, reason));
            }
            if let Some(cache) = cluster.cache.as_mut() {
                cache.begin_scope();
                if !delta_refresh {
                    cache.clear();
                }
            }
            let mut covering_run = true;
            for members in variants.values() {
                let covering =
                    KsirQuery::covering(members.iter().map(|(id, _)| &self.subs[id].query))
                        .expect("cluster members are plan-compatible");
                let fresh = match cluster.cache.as_mut() {
                    Some(cache) if covering_run => source
                        .query_covering(&covering, cluster.algorithm, effective, cache)
                        .map(|outcome| outcome.result),
                    Some(cache) => {
                        source.query_delta(&covering, cluster.algorithm, effective, cache)
                    }
                    None => source.query(&covering, cluster.algorithm),
                }
                .expect("subscription dimensions were validated at subscribe time");
                covering_run = false;
                work.covering += 1;
                work.gain += fresh.gain_evaluations;
                for (served, &(id, reason)) in members.iter().enumerate() {
                    let sub = self
                        .subs
                        .get_mut(&id)
                        .expect("cluster members reside in the shard");
                    slide.refreshed += 1;
                    sub.stats.refreshes += 1;
                    // Same mode-attribution rule as `refresh_one`, evaluated
                    // against the member's pre-refresh state.
                    let slide_classified = matches!(
                        reason,
                        RefreshReason::TopicDisturbed | RefreshReason::MemberExpired
                    );
                    if cluster.cache.is_some()
                        && delta_refresh
                        && slide_classified
                        && sub.result.is_some()
                    {
                        slide.delta_refreshed += 1;
                        sub.stats.delta_refreshes += 1;
                    }
                    if served > 0 {
                        work.shared += 1;
                    }
                    if let Some(update) = apply_fresh(id, sub, reason, fresh.clone()) {
                        slide.updates.push(update);
                    }
                }
            }
            if let Some(cache) = cluster.cache.as_mut() {
                cache.end_scope();
            }
        }
        self.clusters = clusters;
        // The per-subscription walk emits updates in resident (id) order;
        // match it so downstream consumers see the same stream.
        slide.updates.sort_by_key(|update| update.subscription);
        (slide, work)
    }

    /// Charges one skip to every resident of an unscheduled shard.  Returns
    /// the number of skips charged.
    ///
    /// A shard with no residents charges nothing — in particular it does
    /// *not* count a skipped slide, so `scheduled_slides + skipped_slides`
    /// keeps reconciling with the slides the shard actually had residents
    /// for.  (Empty shards are also pruned on `unsubscribe`, so this guard
    /// only matters for transient states.)
    pub(crate) fn skip_all(&mut self, epoch: u64) -> usize {
        if self.subs.is_empty() {
            return 0;
        }
        for sub in self.subs.values_mut() {
            sub.stats.skips += 1;
        }
        let skipped = self.subs.len();
        self.skips += skipped;
        self.skipped_slides += 1;
        self.telemetry.skips.add(skipped as u64);
        self.telemetry.refresh_mode_skipped.add(skipped as u64);
        self.telemetry.skipped_slides.inc();
        self.telemetry.record(
            epoch,
            TraceEventKind::ShardSkipped {
                residents: skipped as u64,
            },
        );
        skipped
    }
}

/// Applies the delta-refresh rules to one subscription.  `Some(reason)` means
/// the query must be re-run; `None` means the stored result is provably what
/// a fresh run would return.
pub(crate) fn classify(sub: &Subscription, delta: &WindowDelta) -> Option<RefreshReason> {
    let Some(result) = &sub.result else {
        return Some(RefreshReason::Initial);
    };
    // Rule 2: a stored member expired out of the active window.
    if result.elements.iter().any(|&id| delta.lost(id)) {
        return Some(RefreshReason::MemberExpired);
    }
    // Rule 3: a support topic was disturbed at or above the traversal floor;
    // without a frontier, any support-topic touch disturbs.
    let disturbed = match sub.frontier() {
        Some(frontier) => frontier.disturbed_by(&delta.ranked),
        None => sub
            .query
            .vector()
            .support()
            .iter()
            .any(|&(topic, _)| delta.ranked.touched(topic)),
    };
    if disturbed {
        return Some(RefreshReason::TopicDisturbed);
    }
    None
}

/// How [`refresh_one`] served a refresh.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RefreshMode {
    /// Full re-run: every singleton score from a scoring pass (the memo, when
    /// the algorithm keeps one, is cleared first and re-warmed by the run).
    Full,
    /// Delta-restricted re-run: the memo was brought up to date against the
    /// slide's changed elements and answered every other singleton lookup.
    Delta,
}

/// Re-runs one subscription's query against `source` — the live engine or an
/// epoch snapshot — and stores the fresh result.  Returns the delta when the
/// result set or score changed, plus how the refresh was served.  Callers own
/// the refresh/skip accounting (only slide-classified refreshes count).
///
/// The refresh runs **delta-restricted** when all of the following hold:
/// delta refreshes are enabled, the slide's [`WindowDelta`] is at hand, the
/// refresh is slide-classified ([`RefreshReason::TopicDisturbed`] or
/// [`RefreshReason::MemberExpired`] — the rules that guarantee every slide
/// since the memo's last sync was processed or provably skippable), a prior
/// result exists to restrict against, and the algorithm keeps a memo.
/// Everything else — initial evaluations, forced refreshes, the exhaustive
/// baselines — runs full.  Both modes produce identical results; the
/// equivalence is pinned by the `delta_refresh` property tests.
pub(crate) fn refresh_one(
    source: &dyn QuerySource,
    id: SubscriptionId,
    sub: &mut Subscription,
    reason: RefreshReason,
    delta: Option<&WindowDelta>,
    delta_refresh: bool,
) -> (Option<ResultDelta>, RefreshMode) {
    let slide_classified = matches!(
        reason,
        RefreshReason::TopicDisturbed | RefreshReason::MemberExpired
    );
    let mode = match (&mut sub.cache, delta) {
        (Some(_), Some(_)) if delta_refresh && slide_classified && sub.result.is_some() => {
            RefreshMode::Delta
        }
        _ => RefreshMode::Full,
    };
    let fresh = match (&mut sub.cache, mode) {
        (Some(cache), RefreshMode::Delta) => source.query_delta(
            &sub.query,
            sub.algorithm,
            delta.expect("Delta mode requires a slide delta"),
            cache,
        ),
        (Some(cache), RefreshMode::Full) => {
            // Full mode discards the memo (Initial starts from nothing;
            // Forced must not trust state whose sync with the slide stream
            // the caller cannot vouch for) but still collects into it, so
            // the next delta-restricted refresh starts warm.
            cache.clear();
            source.query_delta(&sub.query, sub.algorithm, &WindowDelta::default(), cache)
        }
        (None, _) => source.query(&sub.query, sub.algorithm),
    }
    .expect("subscription dimensions were validated at subscribe time");

    (apply_fresh(id, sub, reason, fresh), mode)
}

/// Stores a freshly computed result on the subscription and diffs it against
/// the previous one: `Some` when the result set or score actually changed
/// (bumping `result_changes`), `None` for a no-op refresh.  Shared by
/// [`refresh_one`] and the clustered refresh path so the two can never
/// disagree about what counts as a change.
pub(crate) fn apply_fresh(
    id: SubscriptionId,
    sub: &mut Subscription,
    reason: RefreshReason,
    fresh: QueryResult,
) -> Option<ResultDelta> {
    let (old_elements, score_before) = match &sub.result {
        Some(old) => (old.elements.clone(), old.score),
        None => (Vec::new(), 0.0),
    };
    let added: Vec<ElementId> = fresh
        .elements
        .iter()
        .copied()
        .filter(|id| !old_elements.contains(id))
        .collect();
    let mut removed: Vec<ElementId> = old_elements
        .iter()
        .copied()
        .filter(|id| !fresh.elements.contains(id))
        .collect();
    removed.sort_unstable();

    let score_after = fresh.score;
    sub.result = Some(fresh);

    let changed = !added.is_empty()
        || !removed.is_empty()
        || (score_after - score_before).abs() > crate::subscription::SCORE_EPS;
    if !changed {
        return None;
    }
    sub.stats.result_changes += 1;
    Some(ResultDelta {
        subscription: id,
        reason,
        added,
        removed,
        score_before,
        score_after,
    })
}

/// Folds one resident's snapshot requirement into a floors map: for every
/// support topic, its own floor (tightened by the admission bar when the
/// last run reported one), merged loosest-wins with what is already there.
/// See [`Shard::prefix_spec`] for the math.
fn fold_resident_floors(floors: &mut BTreeMap<TopicId, Option<f64>>, sub: &Subscription) {
    let support = sub.query.vector().support();
    let frontier = sub.frontier();
    let bar = frontier.and_then(|f| f.bar);
    for &(topic, weight) in &support {
        let own = frontier.and_then(|f| {
            let floor = f
                .floors
                .iter()
                .find(|&&(t, _)| t == topic)
                .and_then(|&(_, floor)| floor);
            let cutoff = bar.map(|b| b / (support.len() as f64 * weight));
            match (floor, cutoff) {
                (Some(floor), Some(cutoff)) => Some(floor.max(cutoff)),
                (Some(floor), None) => Some(floor),
                (None, Some(cutoff)) => Some(cutoff),
                (None, None) => None,
            }
        });
        merge_floor(floors, topic, own);
    }
}

/// Merges one requirement into a floors map, loosest-wins: the lower floor
/// dominates, and a whole-list requirement (`None`) dominates everything.
fn merge_floor(floors: &mut BTreeMap<TopicId, Option<f64>>, topic: TopicId, own: Option<f64>) {
    floors
        .entry(topic)
        .and_modify(|agg| {
            *agg = match (*agg, own) {
                (Some(a), Some(o)) => Some(a.min(o)),
                // Any whole-list requirement wins.
                _ => None,
            };
        })
        .or_insert(own);
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksir_core::Algorithm;
    use ksir_types::QueryVector;

    fn query(k: usize, weights: &[f64]) -> KsirQuery {
        KsirQuery::new(k, QueryVector::new(weights.to_vec()).unwrap()).unwrap()
    }

    fn shard(key: ShardKey) -> Shard {
        Shard::new(
            key,
            ShardTelemetry::new(Arc::new(Telemetry::default()), key),
            true,
            true,
        )
    }

    #[test]
    fn routing_picks_dominant_topic_for_narrow_queries() {
        let config = ShardConfig::default();
        assert_eq!(
            config.route(&query(2, &[0.1, 0.9, 0.0])),
            ShardKey::Topic(TopicId(1))
        );
        assert_eq!(
            config.route(&query(2, &[1.0, 0.0, 0.0])),
            ShardKey::Topic(TopicId(0))
        );
    }

    #[test]
    fn routing_sends_broad_queries_to_overflow() {
        let config = ShardConfig::default().with_overflow_support_threshold(2);
        assert_eq!(
            config.route(&query(2, &[0.5, 0.3, 0.2])),
            ShardKey::Overflow
        );
        assert_eq!(
            config.route(&query(2, &[0.5, 0.5, 0.0])),
            ShardKey::Topic(TopicId(0)),
            "ties break toward the first maximal topic"
        );
        // unsharded(): everything overflows.
        assert_eq!(
            ShardConfig::unsharded().route(&query(2, &[1.0, 0.0, 0.0])),
            ShardKey::Overflow
        );
    }

    #[test]
    fn thread_budget_is_clamped_to_scheduled_shards() {
        let auto = ShardConfig::default();
        assert!(auto.threads_for(8) >= 1);
        assert_eq!(ShardConfig::serial().threads_for(8), 1);
        assert_eq!(
            ShardConfig::default().with_threads(Some(4)).threads_for(2),
            2
        );
        assert_eq!(
            ShardConfig::default().with_threads(Some(4)).threads_for(0),
            1
        );
    }

    #[test]
    fn shard_key_display_and_overflow_flag() {
        assert_eq!(ShardKey::Topic(TopicId(3)).to_string(), "shard[θ3]");
        assert_eq!(ShardKey::Overflow.to_string(), "shard[overflow]");
        assert!(ShardKey::Overflow.is_overflow());
        assert!(!ShardKey::Topic(TopicId(0)).is_overflow());
    }

    #[test]
    fn empty_shard_is_never_touched() {
        let shard = shard(ShardKey::Overflow);
        let delta = WindowDelta::default();
        assert!(!shard.is_touched_by(&delta));
        assert_eq!(shard.stats().subscriptions, 0);
        assert_eq!(shard.stats().skip_rate(), 0.0);
    }

    #[test]
    fn pending_initial_resident_always_schedules() {
        let mut shard = shard(ShardKey::Topic(TopicId(0)));
        shard.insert(
            SubscriptionId(0),
            Subscription::new(query(1, &[1.0, 0.0]), Algorithm::Mtts),
        );
        assert!(shard.is_touched_by(&WindowDelta::default()));
    }

    #[test]
    fn prefix_spec_covers_every_resident_support_topic() {
        use ksir_core::{QueryFrontier, QueryResult};
        let mut shard = shard(ShardKey::Topic(TopicId(0)));
        // Resident with a frontier on topics 0 and 1.
        let mut with_frontier = Subscription::new(query(1, &[0.6, 0.4, 0.0]), Algorithm::Mtts);
        with_frontier.result = Some(QueryResult {
            frontier: Some(QueryFrontier::new(vec![
                (TopicId(0), Some(0.5)),
                (TopicId(1), None),
            ])),
            ..QueryResult::empty(Algorithm::Mtts)
        });
        shard.insert(SubscriptionId(0), with_frontier);
        let spec = shard.prefix_spec();
        assert_eq!(
            spec.floors,
            vec![
                (TopicId(0), Some(0.5)), // the resident's own floor
                (TopicId(1), None),      // exhausted list, no bar ⇒ whole list
            ]
        );
        // A result-less resident (pending initial) on topics 0 and 2 needs
        // whole lists for its Initial traversal — including topic 0, where
        // the first resident's floor must not truncate it.
        shard.insert(
            SubscriptionId(1),
            Subscription::new(query(1, &[0.5, 0.0, 0.5]), Algorithm::Celf),
        );
        let spec = shard.prefix_spec();
        assert_eq!(
            spec.floors,
            vec![(TopicId(0), None), (TopicId(1), None), (TopicId(2), None)]
        );
    }

    #[test]
    fn prefix_spec_tightens_with_the_admission_bar() {
        use ksir_core::{QueryFrontier, QueryResult};
        let mut shard = shard(ShardKey::Topic(TopicId(0)));
        // Support {0: 0.6, 1: 0.4}; the last run exhausted topic 1 and left a
        // floor of 0.1 on topic 0, with an admission bar of 0.24.
        let mut sub = Subscription::new(query(1, &[0.6, 0.4, 0.0]), Algorithm::Mtts);
        sub.result = Some(QueryResult {
            frontier: Some(
                QueryFrontier::new(vec![(TopicId(0), Some(0.1)), (TopicId(1), None)])
                    .with_bar(0.24),
            ),
            ..QueryResult::empty(Algorithm::Mtts)
        });
        shard.insert(SubscriptionId(0), sub);
        let spec = shard.prefix_spec();
        // cutoff(topic) = bar / (support_len · weight):
        //   topic 0: 0.24 / (2 · 0.6) = 0.2 > floor 0.1 ⇒ tightened to 0.2;
        //   topic 1: 0.24 / (2 · 0.4) = 0.3 — the exhausted list no longer
        //   forces a whole-list prefix.
        assert_eq!(spec.floors.len(), 2);
        let floor_of = |t: u32| spec.floors.iter().find(|&&(tt, _)| tt == TopicId(t));
        let f0 = floor_of(0).unwrap().1.unwrap();
        let f1 = floor_of(1).unwrap().1.unwrap();
        assert!((f0 - 0.2).abs() < 1e-12, "topic 0 floor {f0}");
        assert!((f1 - 0.3).abs() < 1e-12, "topic 1 floor {f1}");
    }

    #[test]
    fn lane_projection_hands_ownership_exactly_once() {
        let watermark = Arc::new(crate::worker::Watermark::new());
        let task = |epoch: u64| -> PendingEpoch {
            // A snapshot is only consulted when a refresh fires; for lane
            // bookkeeping any engine image works.
            let ex = ksir_core::fixtures::paper_example();
            PendingEpoch {
                epoch,
                delta: Arc::new(WindowDelta::default()),
                snapshot: Arc::new(ksir_snapshot::EngineSnapshot::capture(
                    &ex.empty_engine(),
                    epoch,
                    &ksir_snapshot::SnapshotCounters::new(),
                )),
                policy: SnapshotPolicy::Exact,
                task: crate::worker::EpochTask::register(&watermark, epoch),
            }
        };
        let cell = ShardCell::new(
            ShardKey::Overflow,
            Arc::new(Telemetry::default()),
            true,
            true,
        );
        // No residents: nothing happens, nothing is enqueued.
        assert_eq!(
            cell.project_epoch(0, &WindowDelta::default(), || task(0)),
            LaneDecision::Empty
        );
        // A pending-initial resident schedules on any delta.
        cell.shard().insert(
            SubscriptionId(0),
            Subscription::new(query(1, &[1.0, 0.0]), Algorithm::Mtts),
        );
        assert_eq!(
            cell.project_epoch(1, &WindowDelta::default(), || task(1)),
            LaneDecision::Scheduled,
            "idle shard: caller must dispatch"
        );
        assert_eq!(
            cell.project_epoch(2, &WindowDelta::default(), || task(2)),
            LaneDecision::Deferred,
            "busy shard: the owner will get there"
        );
        // The owner drains in epoch order, then releases atomically.
        assert_eq!(cell.pop_pending_or_release().unwrap().epoch, 1);
        assert_eq!(cell.pop_pending_or_release().unwrap().epoch, 2);
        assert!(cell.pop_pending_or_release().is_none());
        // Released: the next firing epoch schedules again.
        assert_eq!(
            cell.project_epoch(3, &WindowDelta::default(), || task(3)),
            LaneDecision::Scheduled
        );
    }
}
