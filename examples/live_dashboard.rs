//! Live dashboard: many standing k-SIR queries maintained through the
//! asynchronous ingestion pipeline.
//!
//! A production deployment does not re-run queries on demand — it holds
//! *subscriptions* (one per dashboard panel, per user, per alerting rule)
//! whose results must stay current as the window slides.  This example
//! registers a panel of standing queries with very different topic interests
//! over a Twitter-shaped stream, attaches a bounded delivery queue to each
//! panel, and replays the stream through `ingest_bucket_async`: ingestion
//! returns as soon as the index is updated and the touched shards are handed
//! to the refresh workers, while each panel's result changes stream into its
//! queue to be drained at the panel's own pace.  At the end it prints how
//! much evaluation work the delta-refresh rules saved, how the panels spread
//! over shards, what the epoch snapshots and the writer's copy-on-write
//! cost, and the stage latencies / readiness / flight-recorder panels —
//! rendered not from in-process accessors but by scraping a live
//! `ksir-obs` introspection server over real TCP, exactly as an external
//! dashboard or Prometheus would.
//!
//! Run with `cargo run --release --example live_dashboard`.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

use ksir::continuous::{DeliveryConfig, SubscriptionManager};
use ksir::datagen::{DatasetProfile, StreamGenerator};
use ksir::obs::{ObsConfig, ObsServer};
use ksir::{
    Algorithm, EngineConfig, KsirEngine, KsirQuery, QueryVector, ScoringConfig, WindowConfig,
};

/// One blocking `GET` against the obs server; returns the response body.
/// An example-sized HTTP client: the server answers every request with
/// `Connection: close`, so read-to-EOF is the whole protocol.
fn http_get(addr: SocketAddr, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to obs server");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: obs\r\n\r\n").expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|code| code.parse().ok())
        .expect("status line");
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, body)| body.to_string())
        .unwrap_or_default();
    (status, body)
}

/// Pulls `"key": <integer>` out of a JSON object slice (the exporters emit
/// flat, predictable JSON — a full parser would be overkill here).
fn json_u64(object: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\": ");
    let start = object.find(&needle)? + needle.len();
    let digits: String = object[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// Slices the `"name": { ... }` object out of an exported JSON body.
fn json_object<'a>(body: &'a str, name: &str) -> Option<&'a str> {
    let needle = format!("\"{name}\": {{");
    let start = body.find(&needle)? + needle.len();
    let end = body[start..].find('}')?;
    Some(&body[start..start + end])
}

fn main() -> Result<(), ksir::KsirError> {
    let profile = DatasetProfile::twitter().scaled(0.25).with_topics(20);
    let stream = StreamGenerator::new(profile, 77)?.generate()?;
    println!(
        "Streaming {} posts over {:.1} hours into a live dashboard…\n",
        stream.len(),
        stream.end_time().raw() as f64 / 60.0,
    );

    let config = EngineConfig::new(
        WindowConfig::new(6 * 60, 15)?,
        ScoringConfig::new(0.5, 1.0)?,
    );
    let engine = KsirEngine::new(stream.planted.phi().clone(), config)?;
    let num_topics = engine.num_topics();
    let mut dashboard = SubscriptionManager::new(engine);

    // Five topic mixes (narrow interests, mixed between the two index-based
    // algorithms), four panels each: the small/medium/large panels of one
    // mix are plan-compatible — same vector, same ε, same algorithm, only
    // `k` differs — so the shard clusters them behind one covering query,
    // and the medium size appears twice (two users, same view), so one of
    // the two is served from the other's covering run outright.  Each panel
    // consumes its result changes from a bounded delivery queue (capacity
    // 256, DropOldest): a panel that falls behind sheds its own oldest
    // updates instead of slowing ingestion down.
    let mut panels = Vec::new();
    for mix in 0..5 {
        let mut weights = vec![0.0; num_topics];
        weights[(2 * mix) % num_topics] = 0.7;
        weights[(2 * mix + 1) % num_topics] = 0.3;
        let vector = QueryVector::new(weights)?;
        let algorithm = if mix % 2 == 0 {
            Algorithm::Mttd
        } else {
            Algorithm::Mtts
        };
        for k in [2usize, 4, 4, 6] {
            let query = KsirQuery::new(k, vector.clone())?;
            let id = dashboard.subscribe(query, algorithm)?;
            let inbox = dashboard
                .attach_delivery(id, DeliveryConfig::default().with_capacity(256))
                .expect("panel just registered");
            panels.push((id, inbox));
        }
    }
    println!(
        "Registered {} standing queries, each with a bounded delivery queue.\n",
        dashboard.subscription_count()
    );

    // The introspection server shares the manager's telemetry bundle by
    // `Arc` and serves it for the whole replay; everything the dashboard
    // prints below comes back over this socket.
    let obs = ObsServer::spawn(Arc::clone(dashboard.telemetry()), ObsConfig::default())
        .expect("bind obs server on an ephemeral port");
    let obs_addr = obs.local_addr();
    println!("Introspection live at http://{obs_addr} for the whole replay.\n");

    // Pipelined replay: every `ingest_bucket_async` returns after the index
    // update and epoch-snapshot capture; the refresh workers evaluate
    // against the snapshots and stream panel updates into the queues while
    // the next slide's index write proceeds.  `sync()` is the barrier that
    // awaits every outstanding epoch.
    let tickets = dashboard.ingest_stream_async(stream.iter_pairs())?;
    dashboard.sync();
    // Tickets report what was decided *inline*; a shard still draining an
    // earlier epoch defers its decision to the owning worker, so the
    // inline/deferred split varies with worker timing.  The decision
    // counters themselves are deterministic — read them from the shards.
    let deferred: usize = tickets.iter().map(|t| t.shards_deferred).sum();
    let scheduled: usize = dashboard
        .shard_stats()
        .iter()
        .map(|s| s.scheduled_slides)
        .sum();
    let undisturbed: usize = dashboard
        .shard_stats()
        .iter()
        .map(|s| s.skipped_slides)
        .sum();
    let snap = dashboard.snapshot_stats();
    println!(
        "{} slides ingested; shard touch filters scheduled {} shard refreshes \
         and proved {} shard-slides undisturbed ({} epoch handoffs rode a busy \
         shard's lane).\n",
        tickets.len(),
        scheduled,
        undisturbed,
        deferred,
    );
    // What the pipelining cost: epoch snapshots on the capture side
    // (SnapshotStats) and copy-on-write clones on the writer side
    // (EngineStats) — the two halves of the snapshot subsystem's bill.
    let engine_stats = dashboard.engine().stats();
    println!(
        "Snapshot bill: {} epoch snapshots -> {} shard snapshots ({} watched \
         lists shared whole, {} truncated); the writer paid {} cow clones \
         ({} window / {} topic-vector / {} ranked-list) to leave them \
         immutable.\n",
        snap.epochs_captured,
        snap.shard_snapshots,
        snap.prefixes_shared,
        snap.prefixes_truncated,
        engine_stats.window_cow_clones
            + engine_stats.topic_vector_cow_clones
            + engine_stats.ranked_cow_clones,
        engine_stats.window_cow_clones,
        engine_stats.topic_vector_cow_clones,
        engine_stats.ranked_cow_clones,
    );

    // Drain each panel's queue: the full change history (bounded by the
    // queue capacity) with the slide that produced each delta.
    for (id, inbox) in &panels {
        let updates = inbox.drain();
        println!(
            "{}: {} updates ({} shed by the bounded queue)",
            id,
            updates.len(),
            inbox.dropped(),
        );
        for delivery in updates.iter().rev().take(3).rev() {
            let u = &delivery.delta;
            println!(
                "  [slide {:>4}] score {:.3} -> {:.3}  +{:?} -{:?}  ({:?})",
                delivery.slide,
                u.score_before,
                u.score_after,
                u.added.iter().map(|e| e.raw()).collect::<Vec<_>>(),
                u.removed.iter().map(|e| e.raw()).collect::<Vec<_>>(),
                u.reason,
            );
        }
    }

    let stats = dashboard.stats();
    let evaluations = stats.slides * panels.len();
    println!(
        "\n{} slides × {} panels = {} potential evaluations; \
         {} refreshes, {} skipped by the delta rules ({:.1}% saved).",
        stats.slides,
        panels.len(),
        evaluations,
        stats.refreshes,
        stats.skips,
        100.0 * stats.skips as f64 / evaluations.max(1) as f64,
    );

    // How the panels spread over topic shards and what each shard skipped.
    println!("\nPer-shard skip rates:");
    for shard in dashboard.shard_stats() {
        println!(
            "  {}: {} panels, scheduled {}/{} slides, {} refreshes / {} skips ({:.1}% skipped)",
            shard.key,
            shard.subscriptions,
            shard.scheduled_slides,
            shard.scheduled_slides + shard.skipped_slides,
            shard.refreshes,
            shard.skips,
            100.0 * shard.skip_rate(),
        );
    }

    // How much of the refresh bill the shared evaluation plans absorbed:
    // plan-compatible panels cluster behind one covering query, so the
    // sharing ratio — covering traversals per live subscription-slide —
    // stays well below 1 whenever clusters have more than one member.
    let covering: usize = dashboard
        .shard_stats()
        .iter()
        .map(|s| s.covering_evaluations)
        .sum();
    let shared: usize = dashboard
        .shard_stats()
        .iter()
        .map(|s| s.shared_refreshes)
        .sum();
    let clusters: usize = dashboard.shard_stats().iter().map(|s| s.clusters).sum();
    let subscription_slides = stats.slides * panels.len();
    let sharing_ratio = if subscription_slides == 0 {
        0.0
    } else {
        covering as f64 / subscription_slides as f64
    };
    println!(
        "\nShared plans: {} clusters over {} panels; {} covering runs served \
         {} shared refreshes — sharing ratio {:.3} covering evaluations per \
         live subscription-slide.",
        clusters,
        panels.len(),
        covering,
        shared,
        sharing_ratio,
    );

    // The same numbers, scraped back over HTTP from the live obs server —
    // the example is its own external dashboard from here on.
    let (status, metrics_json) = http_get(obs_addr, "/metrics.json");
    assert_eq!(status, 200, "GET /metrics.json");
    println!("\nStage latencies (GET /metrics.json):");
    for stage in [
        "ingest.admission_wait",
        "ingest.index_write",
        "ingest.project",
        "snapshot.capture",
        "refresh.shard",
        "worker.item",
        "delivery.e2e",
    ] {
        let Some(hist) = json_object(&metrics_json, stage) else {
            continue;
        };
        let count = json_u64(hist, "count").unwrap_or(0);
        if count == 0 {
            continue;
        }
        let micros = |key| json_u64(hist, key).unwrap_or(0) as f64 / 1e3;
        println!(
            "  {stage:<22} n={count:<6} p50 {:>9.1} µs  p95 {:>9.1} µs  max {:>9.1} µs",
            micros("p50_ns"),
            micros("p95_ns"),
            micros("max_ns"),
        );
    }

    // The SLO verdict a load balancer would poll: freshness lag, active
    // quarantines, and the overload ladder, all bounded by ReadinessPolicy.
    let (ready_status, ready) = http_get(obs_addr, "/ready");
    println!(
        "Readiness (GET /ready): HTTP {ready_status}, freshness lag {:.2} ms, \
         {} quarantined, overload level {}.",
        json_u64(&ready, "freshness_lag_ns").unwrap_or(0) as f64 / 1e6,
        json_u64(&ready, "quarantined").unwrap_or(0),
        json_u64(&ready, "overload_level").unwrap_or(0),
    );

    let (status, timeline) = http_get(obs_addr, "/timeline");
    assert_eq!(status, 200, "GET /timeline");
    println!(
        "Epoch timeline (GET /timeline): {} epochs traced, {} events shed from \
         the trace ring.",
        timeline.matches("\"epoch\":").count(),
        json_u64(&timeline, "truncated_events").unwrap_or(0),
    );

    // The flight recorder stays empty on a healthy run — records appear
    // only when a trigger (quarantine, overload step, late-drop burst,
    // worker respawn) fires.  Dead air here is the good outcome.
    let (status, flight) = http_get(obs_addr, "/flight");
    assert_eq!(status, 200, "GET /flight");
    println!(
        "Flight recorder (GET /flight): {} postmortem records captured \
         (capacity {}).",
        flight.matches("\"seq\":").count(),
        json_u64(&flight, "capacity").unwrap_or(0),
    );

    let (status, prometheus) = http_get(obs_addr, "/metrics");
    assert_eq!(status, 200, "GET /metrics");
    println!(
        "Prometheus exposition (GET /metrics): {} metric lines (e.g. `{}`).",
        prometheus
            .lines()
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .count(),
        prometheus
            .lines()
            .find(|l| l.starts_with("ksir_manager_refreshes"))
            .unwrap_or_default(),
    );

    // Final state of every panel.
    println!("\nFinal dashboard:");
    for (id, _) in &panels {
        let result = dashboard.result(*id).expect("panel evaluated");
        println!(
            "  {}: {:?} (score {:.3})",
            id,
            result.elements.iter().map(|e| e.raw()).collect::<Vec<_>>(),
            result.score,
        );
    }
    Ok(())
}
