//! Unified observability for the k-SIR pipeline: a lock-free metrics
//! registry, epoch-scoped structured tracing, and exporters that give
//! `perf_gate`, CI, and the live dashboard one schema to consume.
//!
//! The crate is dependency-free by design — the workspace vendors offline
//! stubs for its few external deps, and the telemetry layer must sit below
//! every other crate without enlarging the build graph.
//!
//! # Architecture
//!
//! One [`Telemetry`] bundle travels with a `SubscriptionManager` (shared by
//! `Arc` with its shards, workers, and delivery queues) and owns three
//! things:
//!
//! * a [`MetricsRegistry`] of [`Counter`]s, [`Gauge`]s, and log-bucketed
//!   latency [`Histogram`]s keyed by static stage names
//!   (`ingest.index_write`, `snapshot.capture`, `refresh.shard`, ...);
//! * a bounded [`TraceLog`] ring of [`TraceEvent`]s, each stamped with its
//!   epoch (1-based slide number), shard, and monotonic nanoseconds;
//! * the monotonic origin those timestamps are measured from.
//!
//! Events are emitted at the exact code sites that bump the pre-existing
//! stats counters, so the [`EpochTimeline`] reconstructed from the trace
//! reconciles **exactly** with `ManagerStats`/`ShardStats`/`SnapshotStats` —
//! the integration tests assert equality, not correlation.

#![warn(missing_docs)]

mod export;
mod flight;
mod freshness;
mod metrics;
mod timeline;
mod trace;

pub use flight::{FlightRecord, FlightRecorder, FlightTrigger};
pub use freshness::FreshnessClock;
pub use metrics::{Counter, Gauge, Histogram, MetricsRegistry};
pub use timeline::{EpochRecord, EpochTimeline};
pub use trace::{ShardLabel, TraceEvent, TraceEventKind, TraceLog};

use std::time::Instant;

/// How much telemetry a manager collects.  Rides inside `ShardConfig`, so it
/// must stay `Copy + Eq`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Whether the trace ring records events.  Metrics (counters, gauges,
    /// histograms) are always on; their cost is a relaxed atomic op per
    /// stage, not per element.
    pub tracing: bool,
    /// Bound on the trace ring; the oldest events are shed beyond it.
    pub trace_capacity: usize,
    /// Bound on the flight-recorder ring of postmortem records; `0` disables
    /// the recorder (triggers become no-ops).
    pub flight_capacity: usize,
    /// A single late arrival shedding at least this many elements trips a
    /// [`FlightTrigger::LateDropBurst`] flight record; `0` disables the
    /// trigger.
    pub late_drop_burst: u64,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            tracing: true,
            trace_capacity: 65_536,
            flight_capacity: 32,
            late_drop_burst: 1,
        }
    }
}

impl TelemetryConfig {
    /// Tracing off (metrics stay on).  The CI telemetry-overhead gate
    /// compares default against this.
    pub fn disabled() -> Self {
        TelemetryConfig {
            tracing: false,
            ..TelemetryConfig::default()
        }
    }

    /// Overrides the trace ring bound.
    pub fn with_trace_capacity(mut self, capacity: usize) -> Self {
        self.trace_capacity = capacity;
        self
    }

    /// Overrides the flight-recorder bound (`0` = recorder off).
    pub fn with_flight_capacity(mut self, capacity: usize) -> Self {
        self.flight_capacity = capacity;
        self
    }

    /// Overrides the late-drop burst threshold (`0` = trigger off).
    pub fn with_late_drop_burst(mut self, elements: u64) -> Self {
        self.late_drop_burst = elements;
        self
    }
}

/// The telemetry bundle one pipeline shares: registry + trace ring + the
/// monotonic origin all trace timestamps are relative to.
#[derive(Debug)]
pub struct Telemetry {
    registry: MetricsRegistry,
    trace: TraceLog,
    freshness: FreshnessClock,
    flight: FlightRecorder,
    origin: Instant,
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new(TelemetryConfig::default())
    }
}

impl Telemetry {
    /// A fresh bundle; the monotonic clock starts now.
    pub fn new(config: TelemetryConfig) -> Self {
        Telemetry {
            registry: MetricsRegistry::new(),
            trace: TraceLog::new(config.trace_capacity, config.tracing),
            freshness: FreshnessClock::default(),
            flight: FlightRecorder::new(config.flight_capacity),
            origin: Instant::now(),
        }
    }

    /// The metrics registry.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// The trace ring.
    pub fn trace(&self) -> &TraceLog {
        &self.trace
    }

    /// The end-to-end freshness clock (epoch → ingest-timestamp map).
    pub fn freshness(&self) -> &FreshnessClock {
        &self.freshness
    }

    /// The flight recorder's ring of postmortem records.
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// Fires one flight-recorder trigger: atomically snapshots the metrics
    /// surface and the trace ring alongside the trigger's metadata into a
    /// [`FlightRecord`], and bumps the `flight.records` / `flight.dropped`
    /// counters.  A no-op (beyond one length check) when the recorder is
    /// disabled (`flight_capacity == 0`).
    pub fn trigger_flight(&self, trigger: FlightTrigger) {
        if !self.flight.is_enabled() {
            return;
        }
        let shed_before = self.flight.len() >= self.flight.capacity();
        let captured = self.flight.capture(
            self.now_nanos(),
            trigger,
            self.trace.events_dropped(),
            self.to_json(),
            &self.trace.snapshot(),
        );
        if captured {
            self.registry.counter("flight.records").inc();
            if shed_before {
                self.registry.counter("flight.dropped").inc();
            }
        }
    }

    /// Monotonic nanoseconds since this bundle was created — the clock trace
    /// timestamps use.
    pub fn now_nanos(&self) -> u64 {
        self.origin.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }

    /// Stamps and records one trace event.  A single relaxed load when
    /// tracing is disabled.
    pub fn record(&self, epoch: u64, shard: Option<ShardLabel>, kind: TraceEventKind) {
        if !self.trace.is_enabled() {
            return;
        }
        self.trace.record(TraceEvent {
            at_nanos: self.now_nanos(),
            epoch,
            shard,
            kind,
        });
    }

    /// Reconstructs the per-epoch timeline from the current trace contents.
    pub fn timeline(&self) -> EpochTimeline {
        EpochTimeline::reconstruct(&self.trace.snapshot(), self.trace.events_dropped())
    }

    /// Folds the trace ring's shed tally onto the gauge surface, so every
    /// export carries `trace.events_dropped` — the signal that a timeline
    /// reconstructed from the ring covers only a suffix of the stream.
    fn publish_trace_gauges(&self) {
        self.registry
            .gauge("trace.events_dropped")
            .set(self.trace.events_dropped());
    }

    /// Prometheus text rendering of the registry (see
    /// [`MetricsRegistry::render_prometheus`]).
    pub fn render_prometheus(&self) -> String {
        self.publish_trace_gauges();
        self.registry.render_prometheus()
    }

    /// JSON rendering of the registry (see [`MetricsRegistry::to_json`]).
    pub fn to_json(&self) -> String {
        self.publish_trace_gauges();
        self.registry.to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bundle_records_and_reconstructs() {
        let telemetry = Telemetry::new(TelemetryConfig::default());
        telemetry.record(1, None, TraceEventKind::SlideIngested { elements: 2 });
        telemetry.record(
            1,
            Some(ShardLabel::Topic(0)),
            TraceEventKind::ShardScheduled,
        );
        telemetry.registry().counter("manager.slides").inc();

        let timeline = telemetry.timeline();
        assert_eq!(timeline.epochs.len(), 1);
        assert_eq!(timeline.epoch(1).unwrap().shards_scheduled, 1);
        assert!(telemetry
            .render_prometheus()
            .contains("ksir_manager_slides 1"));
        assert!(telemetry.to_json().contains("\"manager.slides\": 1"));
    }

    #[test]
    fn disabled_tracing_is_a_noop_but_metrics_stay_on() {
        let telemetry = Telemetry::new(TelemetryConfig::disabled());
        telemetry.record(1, None, TraceEventKind::SlideIngested { elements: 2 });
        assert!(telemetry.trace().is_empty());
        telemetry.registry().counter("still.counting").inc();
        assert_eq!(telemetry.registry().counter("still.counting").get(), 1);
    }

    #[test]
    fn timestamps_are_monotonic() {
        let telemetry = Telemetry::default();
        let a = telemetry.now_nanos();
        let b = telemetry.now_nanos();
        assert!(b >= a);
    }

    #[test]
    fn exports_surface_trace_events_dropped() {
        let telemetry = Telemetry::new(TelemetryConfig::default().with_trace_capacity(1));
        telemetry.record(1, None, TraceEventKind::SlideIngested { elements: 1 });
        telemetry.record(2, None, TraceEventKind::SlideIngested { elements: 1 });
        telemetry.record(3, None, TraceEventKind::SlideIngested { elements: 1 });
        assert!(telemetry
            .render_prometheus()
            .contains("ksir_trace_events_dropped 2"));
        assert!(telemetry.to_json().contains("\"trace.events_dropped\": 2"));
    }

    #[test]
    fn trigger_flight_snapshots_metrics_and_trace() {
        let telemetry = Telemetry::new(TelemetryConfig::default());
        telemetry.registry().counter("manager.slides").add(5);
        telemetry.record(
            3,
            Some(ShardLabel::Topic(7)),
            TraceEventKind::WorkerPanicked,
        );
        telemetry.trigger_flight(FlightTrigger::ShardQuarantined {
            epoch: 3,
            shard: ShardLabel::Topic(7),
        });
        let records = telemetry.flight().records();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].trigger.name(), "shard_quarantined");
        assert!(records[0].metrics_json.contains("\"manager.slides\": 5"));
        assert!(records[0].trace_json.contains("worker_panicked"));
        assert_eq!(telemetry.registry().counter("flight.records").get(), 1);
        assert_eq!(telemetry.registry().counter("flight.dropped").get(), 0);
    }

    #[test]
    fn disabled_flight_recorder_captures_nothing() {
        let telemetry = Telemetry::new(TelemetryConfig::default().with_flight_capacity(0));
        telemetry.trigger_flight(FlightTrigger::WorkerRespawned { epoch: 0 });
        assert!(telemetry.flight().is_empty());
        assert_eq!(telemetry.registry().counter("flight.records").get(), 0);
    }

    #[test]
    fn flight_ring_overflow_counts_dropped_records() {
        let telemetry = Telemetry::new(TelemetryConfig::default().with_flight_capacity(2));
        for epoch in 1..=3 {
            telemetry.trigger_flight(FlightTrigger::OverloadStep { epoch, level: 1 });
        }
        assert_eq!(telemetry.flight().len(), 2);
        assert_eq!(telemetry.flight().dropped(), 1);
        assert_eq!(telemetry.registry().counter("flight.records").get(), 3);
        assert_eq!(telemetry.registry().counter("flight.dropped").get(), 1);
    }
}
