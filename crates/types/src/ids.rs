//! Strongly-typed identifiers used throughout the workspace.
//!
//! Using newtypes instead of bare integers prevents the classic
//! "passed a word id where an element id was expected" class of bugs and
//! documents intent in every signature.

use std::fmt;

/// Identifier of a social element within a stream.
///
/// Element ids are assigned by the producer of the stream (usually the data
/// generator or a dataset loader) and must be unique within one stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct ElementId(pub u64);

/// Identifier of a word in a [`crate::Vocabulary`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct WordId(pub u32);

/// Index of a topic in a topic model `Θ = {θ_1, …, θ_z}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct TopicId(pub u32);

/// A discrete logical timestamp.
///
/// The paper's experiments use wall-clock seconds; the algorithms only rely
/// on timestamps being totally ordered and on arithmetic for window bounds, so
/// a `u64` tick is sufficient.  The unit (seconds, minutes, …) is chosen by
/// the application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Timestamp(pub u64);

impl ElementId {
    /// Returns the raw numeric id.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl WordId {
    /// Returns the raw numeric id.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Returns the id as a `usize` index (for dense arrays keyed by word).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl TopicId {
    /// Returns the raw numeric id.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Returns the id as a `usize` index (for dense arrays keyed by topic).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl Timestamp {
    /// The zero timestamp.
    pub const ZERO: Timestamp = Timestamp(0);

    /// Returns the raw tick count.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Saturating addition of a duration expressed in ticks.
    #[inline]
    pub fn saturating_add(self, ticks: u64) -> Timestamp {
        Timestamp(self.0.saturating_add(ticks))
    }

    /// Saturating subtraction of a duration expressed in ticks.
    #[inline]
    pub fn saturating_sub(self, ticks: u64) -> Timestamp {
        Timestamp(self.0.saturating_sub(ticks))
    }

    /// Number of ticks elapsed since `earlier` (saturating at zero).
    #[inline]
    pub fn since(self, earlier: Timestamp) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl fmt::Display for ElementId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for WordId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{}", self.0)
    }
}

impl fmt::Display for TopicId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "θ{}", self.0)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", self.0)
    }
}

impl From<u64> for ElementId {
    fn from(v: u64) -> Self {
        ElementId(v)
    }
}

impl From<u32> for WordId {
    fn from(v: u32) -> Self {
        WordId(v)
    }
}

impl From<u32> for TopicId {
    fn from(v: u32) -> Self {
        TopicId(v)
    }
}

impl From<u64> for Timestamp {
    fn from(v: u64) -> Self {
        Timestamp(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn element_id_roundtrip_and_display() {
        let id = ElementId::from(42);
        assert_eq!(id.raw(), 42);
        assert_eq!(id.to_string(), "e42");
    }

    #[test]
    fn word_id_index() {
        assert_eq!(WordId(7).index(), 7);
        assert_eq!(WordId(7).to_string(), "w7");
    }

    #[test]
    fn topic_id_index() {
        assert_eq!(TopicId(3).index(), 3);
        assert_eq!(TopicId(3).to_string(), "θ3");
    }

    #[test]
    fn timestamp_arithmetic_saturates() {
        let t = Timestamp(10);
        assert_eq!(t.saturating_add(5), Timestamp(15));
        assert_eq!(t.saturating_sub(20), Timestamp(0));
        assert_eq!(Timestamp(20).since(Timestamp(5)), 15);
        assert_eq!(Timestamp(5).since(Timestamp(20)), 0);
    }

    #[test]
    fn ids_are_ordered() {
        assert!(ElementId(1) < ElementId(2));
        assert!(Timestamp(1) < Timestamp(2));
        assert!(WordId(1) < WordId(2));
        assert!(TopicId(1) < TopicId(2));
    }
}
