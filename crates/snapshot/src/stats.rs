//! Capture-side work counters.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Cumulative snapshot-capture counters, read out as [`SnapshotStats`].
///
/// Cloneable `Arc` handle: the manager keeps one, every [`EngineSnapshot`]
/// and [`ShardSnapshot`] built under it records into the same tallies from
/// whatever thread it runs on.
///
/// [`EngineSnapshot`]: crate::EngineSnapshot
/// [`ShardSnapshot`]: crate::ShardSnapshot
#[derive(Debug, Clone, Default)]
pub struct SnapshotCounters {
    inner: Arc<Counters>,
}

#[derive(Debug, Default)]
struct Counters {
    epochs_captured: AtomicUsize,
    shard_snapshots: AtomicUsize,
    prefixes_shared: AtomicUsize,
    prefixes_truncated: AtomicUsize,
    entries_copied: AtomicUsize,
    entries_truncated: AtomicUsize,
    truncation_shortfalls: AtomicUsize,
}

impl SnapshotCounters {
    /// Fresh, all-zero counters.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn count_epoch(&self) {
        self.inner.epochs_captured.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_shard_snapshot(&self) {
        self.inner.shard_snapshots.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_shared_prefix(&self) {
        self.inner.prefixes_shared.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_truncated_prefix(&self, copied: usize, truncated: usize) {
        self.inner
            .prefixes_truncated
            .fetch_add(1, Ordering::Relaxed);
        self.inner
            .entries_copied
            .fetch_add(copied, Ordering::Relaxed);
        self.inner
            .entries_truncated
            .fetch_add(truncated, Ordering::Relaxed);
    }

    pub(crate) fn count_shortfall(&self) {
        self.inner
            .truncation_shortfalls
            .fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of the tallies.
    pub fn stats(&self) -> SnapshotStats {
        SnapshotStats {
            epochs_captured: self.inner.epochs_captured.load(Ordering::Relaxed),
            shard_snapshots: self.inner.shard_snapshots.load(Ordering::Relaxed),
            prefixes_shared: self.inner.prefixes_shared.load(Ordering::Relaxed),
            prefixes_truncated: self.inner.prefixes_truncated.load(Ordering::Relaxed),
            entries_copied: self.inner.entries_copied.load(Ordering::Relaxed),
            entries_truncated: self.inner.entries_truncated.load(Ordering::Relaxed),
            truncation_shortfalls: self.inner.truncation_shortfalls.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time snapshot-capture statistics (see [`SnapshotCounters`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SnapshotStats {
    /// Epoch images captured ([`EngineSnapshot`](crate::EngineSnapshot)s).
    pub epochs_captured: usize,
    /// Per-shard snapshots built on top of epoch images.
    pub shard_snapshots: usize,
    /// Watched lists served whole through the shared `Arc` image (`O(1)`
    /// capture, exact).
    pub prefixes_shared: usize,
    /// Watched lists materialised as floor-truncated contiguous prefixes.
    pub prefixes_truncated: usize,
    /// Tuples copied into truncated prefixes.
    pub entries_copied: usize,
    /// Tuples dropped below the floors (the memory the truncation saved).
    pub entries_truncated: usize,
    /// Traversals that exhausted a truncated prefix — conservative signal
    /// that a re-run may have wanted tuples the truncation dropped.
    pub truncation_shortfalls: usize,
}
