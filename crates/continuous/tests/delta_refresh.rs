//! Delta-restricted refresh equivalence at the manager level.
//!
//! [`ShardConfig::delta_refresh`] switches disturbed subscriptions from
//! full query re-runs to memoised, delta-restricted re-runs (the singleton
//! cache primed from each slide's `WindowDelta`).  The contract is that the
//! toggle changes **cost only**: slide for slide, both modes classify the
//! same subscriptions, emit the same result deltas, and converge on the same
//! maintained results — and the new `refresh.mode.*` telemetry counters
//! reconcile exactly with the shard/subscription stats.

use ksir_continuous::{ShardConfig, SnapshotPolicy, SubscriptionId, SubscriptionManager};
use ksir_core::{Algorithm, EngineConfig, KsirEngine, KsirQuery, ScoringConfig};
use ksir_datagen::{DatasetProfile, GeneratedStream, QueryWorkloadGenerator, StreamGenerator};
use ksir_stream::WindowConfig;
use ksir_types::{DenseTopicWordTable, QueryVector};

/// Builds a planted-stream manager with a mixed workload under `config`.
/// Managers built with the same seed get identical engines, subscriptions,
/// and subscription ids, so outcomes are comparable element for element.
fn planted_manager(
    seed: u64,
    config: ShardConfig,
) -> (
    SubscriptionManager<DenseTopicWordTable>,
    Vec<(SubscriptionId, KsirQuery, Algorithm)>,
    GeneratedStream,
) {
    let profile = DatasetProfile::twitter().scaled(0.02).with_topics(12);
    let stream = StreamGenerator::new(profile, seed)
        .unwrap()
        .generate()
        .unwrap();
    let window = WindowConfig::new(120, 15).unwrap();
    let engine: KsirEngine<DenseTopicWordTable> = KsirEngine::new(
        stream.planted.phi().clone(),
        EngineConfig::new(window, ScoringConfig::default()),
    )
    .unwrap();
    let mut mgr = SubscriptionManager::with_shard_config(engine, config);

    let workload = QueryWorkloadGenerator::new(&stream.planted, seed ^ 0x5eed)
        .generate(5, stream.end_time())
        .unwrap();
    // The memoised index algorithms plus both frontier-less baselines, which
    // carry no cache and must always refresh full.
    let algorithms = [
        Algorithm::Mtts,
        Algorithm::Mttd,
        Algorithm::TopkRepresentative,
        Algorithm::Celf,
        Algorithm::SieveStreaming,
    ];
    let mut subs = Vec::new();
    for (i, generated) in workload.into_iter().enumerate() {
        let mut narrow = vec![0.0; 12];
        narrow[(3 * i) % 12] = 0.8;
        narrow[(3 * i + 1) % 12] = 0.2;
        for vector in [QueryVector::new(narrow).unwrap(), generated.vector] {
            let q = KsirQuery::new(4, vector).unwrap();
            let algorithm = algorithms[subs.len() % algorithms.len()];
            let id = mgr.subscribe(q.clone(), algorithm).unwrap();
            subs.push((id, q, algorithm));
        }
    }
    (mgr, subs, stream)
}

/// Total delta-restricted refreshes a manager has performed, live shards
/// plus retired ones.
fn total_delta_refreshes(mgr: &SubscriptionManager<DenseTopicWordTable>) -> usize {
    mgr.shard_stats()
        .iter()
        .map(|s| s.delta_refreshes)
        .sum::<usize>()
        + mgr.retired_stats().delta_refreshes
}

/// The tentpole contract, end to end: a delta-restricted manager and a
/// full-rerun manager fed the same stream make identical decisions on every
/// slide and end on identical results — only the delta manager's
/// `delta_refreshes` counters move.
#[test]
fn delta_restricted_runs_match_full_reruns_slide_for_slide() {
    for seed in [7u64, 21] {
        let (mut full_mgr, full_subs, stream) =
            planted_manager(seed, ShardConfig::default().with_delta_refresh(false));
        // Delta refresh is the default; spelled out for contrast.
        let (mut delta_mgr, delta_subs, _) =
            planted_manager(seed, ShardConfig::default().with_delta_refresh(true));
        assert_eq!(
            full_subs.iter().map(|s| s.0).collect::<Vec<_>>(),
            delta_subs.iter().map(|s| s.0).collect::<Vec<_>>(),
        );

        let full_outcomes = full_mgr.ingest_stream(stream.iter_pairs()).unwrap();
        let delta_outcomes = delta_mgr.ingest_stream(stream.iter_pairs()).unwrap();
        assert_eq!(full_outcomes.len(), delta_outcomes.len());
        for (slide, (full, delta)) in full_outcomes.iter().zip(&delta_outcomes).enumerate() {
            assert_eq!(full.report, delta.report, "slide {slide}: engine diverged");
            assert_eq!(
                full.refreshed, delta.refreshed,
                "slide {slide}: refresh decisions diverged"
            );
            assert_eq!(
                full.skipped, delta.skipped,
                "slide {slide}: skip decisions diverged"
            );
            assert_eq!(
                full.updates.len(),
                delta.updates.len(),
                "slide {slide}: different number of result changes"
            );
            for (fu, du) in full.updates.iter().zip(&delta.updates) {
                assert_eq!(fu.subscription, du.subscription, "slide {slide}");
                assert_eq!(fu.reason, du.reason, "slide {slide}: {}", fu.subscription);
                assert_eq!(fu.added, du.added, "slide {slide}: {}", fu.subscription);
                assert_eq!(fu.removed, du.removed, "slide {slide}: {}", fu.subscription);
                // Memoised scores replay earlier scoring passes; divergence
                // is bounded by accumulated float rounding, not algorithmic.
                assert!(
                    (fu.score_after - du.score_after).abs() <= 1e-12,
                    "slide {slide}: {} score {} vs {}",
                    fu.subscription,
                    fu.score_after,
                    du.score_after
                );
            }
        }

        // Final maintained results agree with each other and with scratch.
        for (id, query, algorithm) in &delta_subs {
            let full = full_mgr.result(*id).unwrap();
            let delta = delta_mgr.result(*id).unwrap();
            assert_eq!(full.sorted_elements(), delta.sorted_elements());
            let fresh = delta_mgr.engine().query(query, *algorithm).unwrap();
            assert_eq!(delta.sorted_elements(), fresh.sorted_elements());
            assert!((delta.score - fresh.score).abs() < 1e-9);
        }

        // The toggle actually switched modes: the delta manager ran
        // delta-restricted refreshes, the full manager ran none.
        assert!(
            total_delta_refreshes(&delta_mgr) > 0,
            "seed {seed}: no refresh ran delta-restricted"
        );
        assert_eq!(total_delta_refreshes(&full_mgr), 0);

        // Per subscription: delta refreshes are a subset of refreshes, and
        // the frontier-less algorithms (no cache) never run delta-restricted.
        for (id, _, algorithm) in &delta_subs {
            let stats = delta_mgr.subscription_stats(*id).unwrap();
            assert!(stats.delta_refreshes <= stats.refreshes);
            if matches!(algorithm, Algorithm::Celf | Algorithm::SieveStreaming) {
                assert_eq!(
                    stats.delta_refreshes, 0,
                    "{algorithm} carries no cache and must refresh full"
                );
            }
        }
    }
}

/// The `refresh.mode.*` registry counters reconcile exactly with the stats
/// structs: `full + delta == shard.refreshes == ManagerStats::refreshes`,
/// `skipped == shard.skips`, and the delta split matches both the per-shard
/// and per-subscription tallies.
#[test]
fn refresh_mode_counters_reconcile_with_stats() {
    let (mut mgr, subs, stream) = planted_manager(21, ShardConfig::default());
    mgr.ingest_stream(stream.iter_pairs()).unwrap();

    let stats = mgr.stats();
    let telemetry = mgr.telemetry();
    let registry = telemetry.registry();
    let full = registry.counter("refresh.mode.full").get();
    let delta = registry.counter("refresh.mode.delta").get();
    let skipped = registry.counter("refresh.mode.skipped").get();

    assert_eq!(
        full + delta,
        stats.refreshes as u64,
        "every refresh has a mode"
    );
    assert_eq!(skipped, stats.skips as u64);
    assert_eq!(full + delta, registry.counter("shard.refreshes").get());
    assert_eq!(skipped, registry.counter("shard.skips").get());

    let shard_delta = total_delta_refreshes(&mgr);
    assert_eq!(delta, shard_delta as u64, "registry vs shard stats drifted");
    let sub_delta: usize = subs
        .iter()
        .filter_map(|(id, _, _)| mgr.subscription_stats(*id))
        .map(|s| s.delta_refreshes)
        .sum();
    assert_eq!(
        sub_delta, shard_delta,
        "subscription vs shard stats drifted"
    );
    assert!(delta > 0, "the workload never exercised the delta path");
    assert!(
        full > 0,
        "initial-result and frontier-less refreshes run full"
    );
}

/// Delta-restricted refresh composes with the pipelined path and
/// floor-truncated snapshots: truncated per-shard captures answer point
/// lookups only inside their prefixes, so priming degrades gracefully and
/// the work accounting still reconciles after the barrier.
#[test]
fn delta_refresh_reconciles_under_truncated_pipelined_snapshots() {
    let config = ShardConfig::default()
        .with_pipeline_depth(2)
        .with_snapshot_policy(SnapshotPolicy::TruncateAtFloors);
    let (mut mgr, subs, stream) = planted_manager(33, config);
    let tickets = mgr.ingest_stream_async(stream.iter_pairs()).unwrap();
    mgr.sync();
    assert_eq!(mgr.completed_epoch(), tickets.len() as u64);

    let stats = mgr.stats();
    assert_eq!(stats.slides, tickets.len());
    assert_eq!(
        stats.refreshes + stats.skips,
        stats.slides * subs.len(),
        "work accounting reconciles under truncated snapshots"
    );
    let telemetry = mgr.telemetry();
    let registry = telemetry.registry();
    assert_eq!(
        registry.counter("refresh.mode.full").get() + registry.counter("refresh.mode.delta").get(),
        stats.refreshes as u64
    );
    assert_eq!(
        registry.counter("refresh.mode.skipped").get(),
        stats.skips as u64
    );
    assert!(
        total_delta_refreshes(&mgr) > 0,
        "snapshot-backed refreshes never ran delta-restricted"
    );

    // Every subscription still holds a result consistent with its own query
    // dimensions (truncation bounds memory, not membership validity).
    for (id, query, _) in &subs {
        let result = mgr.result(*id).unwrap();
        assert!(result.len() <= query.k());
    }
}
