//! Figure 13 — effect of the window length T on query time, for
//! T ∈ {6, 12, 18, 24, 30} hours.
//!
//! Run with `cargo run --release -p ksir-bench --bin exp_fig13 [--scale 1.0]`.

use ksir_bench::{replay_with_queries, scale_from_args, ProcessingConfig, Table};
use ksir_core::Algorithm;
use ksir_datagen::{DatasetProfile, StreamGenerator};

fn main() {
    let scale = scale_from_args();
    let hours = [6u64, 12, 18, 24, 30];

    for profile in DatasetProfile::all() {
        let profile = profile.scaled(scale).with_topics(50);
        let stream = StreamGenerator::new(profile.clone(), 17)
            .expect("profile is valid")
            .generate()
            .expect("stream generation succeeds");
        let mut table = Table::new(
            format!("Figure 13 ({}) — query time (ms) vs T", profile.name),
            &[
                "T (hours)",
                "CELF",
                "MTTD",
                "MTTS",
                "Top-k Rep",
                "SieveStreaming",
            ],
        );
        for &h in &hours {
            let config = ProcessingConfig {
                window_len: h * 60,
                num_queries: 10,
                ..ProcessingConfig::for_stream(&stream)
            };
            let report = replay_with_queries(&stream, &config).expect("replay succeeds");
            table.add_row(vec![
                h.to_string(),
                format!("{:.3}", report.mean_query_millis(Algorithm::Celf)),
                format!("{:.3}", report.mean_query_millis(Algorithm::Mttd)),
                format!("{:.3}", report.mean_query_millis(Algorithm::Mtts)),
                format!(
                    "{:.3}",
                    report.mean_query_millis(Algorithm::TopkRepresentative)
                ),
                format!("{:.3}", report.mean_query_millis(Algorithm::SieveStreaming)),
            ]);
        }
        table.print();
    }
    println!(
        "Paper's shape: query time rises with T for every method (more active \
         elements), with MTTS/MTTD staying far below CELF and SieveStreaming."
    );
}
