//! The Biterm Topic Model (BTM) for short texts.
//!
//! BTM (Yan et al., WWW'13) sidesteps the sparsity of short documents by
//! modelling the corpus as a bag of *biterms* — unordered pairs of words that
//! co-occur inside the same short document — and assigning a topic to each
//! biterm rather than to each token.  The collapsed Gibbs update for a biterm
//! `(w1, w2)` is
//!
//! ```text
//! p(z = k | rest) ∝ (n_k + α) · (n_kw1 + β)(n_kw2 + β) / (n_k·2 + m·β)²
//! ```
//!
//! The paper trains BTM on the Twitter corpus because tweets are too short for
//! vanilla LDA; we mirror that choice in the experiment harness.

use ksir_types::rng::seeded_rng;
use ksir_types::{DenseTopicWordTable, Document, KsirError, Result, WordId};
use rand::Rng;

use crate::model::TopicModel;

/// Configuration and entry point for BTM training.
#[derive(Debug, Clone)]
pub struct BtmTrainer {
    num_topics: usize,
    alpha: f64,
    beta: f64,
    iterations: usize,
    seed: u64,
    /// Maximum number of biterms extracted per document (guards against
    /// quadratic blow-up on unusually long "short" texts).
    max_biterms_per_doc: usize,
}

impl BtmTrainer {
    /// Creates a trainer with the paper's priors (`α = 50/z`, `β = 0.01`).
    pub fn new(num_topics: usize) -> Result<Self> {
        if num_topics == 0 {
            return Err(KsirError::invalid_parameter(
                "num_topics",
                "must be at least 1",
            ));
        }
        Ok(BtmTrainer {
            num_topics,
            alpha: 50.0 / num_topics as f64,
            beta: 0.01,
            iterations: 200,
            seed: 42,
            max_biterms_per_doc: 256,
        })
    }

    /// Overrides the biterm-topic prior `α`.
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }

    /// Overrides the topic-word prior `β`.
    pub fn with_beta(mut self, beta: f64) -> Self {
        self.beta = beta;
        self
    }

    /// Overrides the number of Gibbs sweeps.
    pub fn with_iterations(mut self, iterations: usize) -> Self {
        self.iterations = iterations.max(1);
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Extracts the biterm multiset of a document (all unordered pairs of
    /// token positions, capped at `max_biterms_per_doc`).
    fn biterms(&self, doc: &Document) -> Vec<(WordId, WordId)> {
        let tokens = doc.tokens();
        let mut out = Vec::new();
        'outer: for i in 0..tokens.len() {
            for j in (i + 1)..tokens.len() {
                out.push((tokens[i], tokens[j]));
                if out.len() >= self.max_biterms_per_doc {
                    break 'outer;
                }
            }
        }
        out
    }

    /// Trains a topic model on a corpus of (short) documents.
    pub fn train(&self, corpus: &[Document], vocab_size: usize) -> Result<TopicModel> {
        if corpus.is_empty() {
            return Err(KsirError::invalid_parameter(
                "corpus",
                "cannot train a topic model on an empty corpus",
            ));
        }
        for doc in corpus {
            if let Some(w) = doc.words().find(|w| w.index() >= vocab_size) {
                return Err(KsirError::UnknownWord(w));
            }
        }

        let z = self.num_topics;
        let m = vocab_size;
        let mut rng = seeded_rng(self.seed);

        // Corpus-wide biterm list.  Single-word documents contribute a
        // degenerate biterm (w, w) so that their word still receives topic
        // mass (standard BTM practice for length-1 texts).
        let mut biterms: Vec<(WordId, WordId)> = Vec::new();
        for doc in corpus {
            let bs = self.biterms(doc);
            if bs.is_empty() {
                if let Some(w) = doc.words().next() {
                    biterms.push((w, w));
                }
            } else {
                biterms.extend(bs);
            }
        }
        if biterms.is_empty() {
            return Err(KsirError::invalid_parameter(
                "corpus",
                "corpus contains no words; cannot extract biterms",
            ));
        }

        let mut assignments: Vec<usize> = biterms.iter().map(|_| rng.gen_range(0..z)).collect();
        let mut n_k = vec![0u32; z];
        let mut n_kw = vec![vec![0u32; m]; z];
        for (b, &(w1, w2)) in biterms.iter().enumerate() {
            let k = assignments[b];
            n_k[k] += 1;
            n_kw[k][w1.index()] += 1;
            n_kw[k][w2.index()] += 1;
        }

        let mut weights = vec![0.0f64; z];
        for _sweep in 0..self.iterations {
            for (b, &(w1, w2)) in biterms.iter().enumerate() {
                let old = assignments[b];
                n_k[old] -= 1;
                n_kw[old][w1.index()] -= 1;
                n_kw[old][w2.index()] -= 1;

                let mut total = 0.0;
                for (k, wt) in weights.iter_mut().enumerate() {
                    let denom = 2.0 * n_k[k] as f64 + m as f64 * self.beta;
                    let p1 = (n_kw[k][w1.index()] as f64 + self.beta) / denom;
                    let p2 = (n_kw[k][w2.index()] as f64 + self.beta) / (denom + 1.0);
                    *wt = (n_k[k] as f64 + self.alpha) * p1 * p2;
                    total += *wt;
                }
                let mut target = rng.gen::<f64>() * total;
                let mut new = z - 1;
                for (k, &wt) in weights.iter().enumerate() {
                    if target < wt {
                        new = k;
                        break;
                    }
                    target -= wt;
                }

                assignments[b] = new;
                n_k[new] += 1;
                n_kw[new][w1.index()] += 1;
                n_kw[new][w2.index()] += 1;
            }
        }

        // φ_k(w) = (n_kw + β) / (2·n_k + m·β)
        let mut rows = Vec::with_capacity(z);
        for k in 0..z {
            let denom = 2.0 * n_k[k] as f64 + m as f64 * self.beta;
            let row: Vec<f64> = (0..m)
                .map(|w| (n_kw[k][w] as f64 + self.beta) / denom)
                .collect();
            rows.push(row);
        }
        let mut phi = DenseTopicWordTable::from_rows(rows)?;
        // Rows of BTM are proper distributions already up to rounding; make it
        // exact so downstream invariant checks hold.
        phi.normalize_rows();
        TopicModel::new(phi, self.alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksir_types::{TopicId, TopicVector};

    fn doc(words: &[u32]) -> Document {
        Document::from_tokens(words.iter().map(|&w| WordId(w)))
    }

    /// Short documents from two disjoint word communities.
    fn short_corpus() -> Vec<Document> {
        let mut corpus = Vec::new();
        for i in 0..40u32 {
            if i % 2 == 0 {
                corpus.push(doc(&[i % 4, (i + 1) % 4, 2]));
            } else {
                corpus.push(doc(&[4 + i % 4, 4 + (i + 1) % 4, 6]));
            }
        }
        corpus
    }

    #[test]
    fn new_rejects_zero_topics() {
        assert!(BtmTrainer::new(0).is_err());
    }

    #[test]
    fn train_rejects_empty_and_oov() {
        let t = BtmTrainer::new(2).unwrap();
        assert!(t.train(&[], 4).is_err());
        assert!(t.train(&[doc(&[9])], 4).is_err());
        // corpus of empty documents has no biterms at all
        assert!(t.train(&[Document::new()], 4).is_err());
    }

    #[test]
    fn single_word_documents_are_handled() {
        let t = BtmTrainer::new(2).unwrap().with_iterations(10);
        let model = t.train(&[doc(&[0]), doc(&[1])], 2).unwrap();
        assert_eq!(model.num_topics(), 2);
    }

    #[test]
    fn phi_rows_are_distributions() {
        let model = BtmTrainer::new(3)
            .unwrap()
            .with_iterations(30)
            .train(&short_corpus(), 8)
            .unwrap();
        for t in 0..3u32 {
            let sum: f64 = (0..8).map(|w| model.word_prob(TopicId(t), WordId(w))).sum();
            assert!((sum - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn separates_short_text_communities() {
        let model = BtmTrainer::new(2)
            .unwrap()
            .with_iterations(150)
            .with_seed(5)
            .train(&short_corpus(), 8)
            .unwrap();
        let mass = |t: u32, lo: u32, hi: u32| -> f64 {
            (lo..hi)
                .map(|w| model.word_prob(TopicId(t), WordId(w)))
                .sum()
        };
        let t0_low = mass(0, 0, 4);
        let t1_low = mass(1, 0, 4);
        let separated = (t0_low > 0.75 && t1_low < 0.25) || (t1_low > 0.75 && t0_low < 0.25);
        assert!(
            separated,
            "BTM failed to separate: {t0_low:.2} vs {t1_low:.2}"
        );
    }

    #[test]
    fn training_is_deterministic_for_a_seed() {
        let corpus = short_corpus();
        let a = BtmTrainer::new(2)
            .unwrap()
            .with_iterations(20)
            .with_seed(9)
            .train(&corpus, 8)
            .unwrap();
        let b = BtmTrainer::new(2)
            .unwrap()
            .with_iterations(20)
            .with_seed(9)
            .train(&corpus, 8)
            .unwrap();
        for t in 0..2u32 {
            for w in 0..8u32 {
                assert_eq!(
                    a.word_prob(TopicId(t), WordId(w)),
                    b.word_prob(TopicId(t), WordId(w))
                );
            }
        }
    }

    #[test]
    fn inference_with_btm_model_works() {
        let model = BtmTrainer::new(2)
            .unwrap()
            .with_iterations(150)
            .with_seed(5)
            .train(&short_corpus(), 8)
            .unwrap();
        let a: TopicVector = model.infer_document(&doc(&[0, 1]));
        let b: TopicVector = model.infer_document(&doc(&[5, 6]));
        assert_ne!(a.dominant_topic(), b.dominant_topic());
    }

    #[test]
    fn biterm_extraction_counts() {
        let t = BtmTrainer::new(2).unwrap();
        assert_eq!(t.biterms(&doc(&[1, 2, 3])).len(), 3); // C(3,2)
        assert_eq!(t.biterms(&doc(&[1])).len(), 0);
        assert_eq!(t.biterms(&Document::new()).len(), 0);
    }
}
