//! Standing-query maintenance: delta-driven refresh vs recompute-per-slide.
//!
//! The workload the `ksir-continuous` subsystem exists for: a 10k-element
//! Twitter-shaped stream replayed bucket by bucket while ≥16 standing queries
//! must be kept current.  `delta_refresh` maintains them through the
//! `SubscriptionManager` (skipping subscriptions whose support topics were
//! not disturbed above their traversal floors); `recompute_per_slide` is the
//! naive baseline that re-runs every query after every bucket.  Both replay
//! the same pre-generated stream from a fresh engine, so the measured gap is
//! exactly the maintenance saving.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ksir_continuous::SubscriptionManager;
use ksir_core::{Algorithm, EngineConfig, KsirEngine, KsirQuery, ScoringConfig};
use ksir_datagen::{DatasetProfile, GeneratedStream, StreamGenerator};
use ksir_stream::WindowConfig;
use ksir_types::{DenseTopicWordTable, QueryVector};

const NUM_SUBSCRIPTIONS: usize = 16;
const K: usize = 10;

fn make_stream() -> GeneratedStream {
    // ~10k elements over ~28 hours, 50 planted topics.
    let profile = DatasetProfile::twitter().scaled(1.67).with_topics(50);
    StreamGenerator::new(profile, 4242)
        .unwrap()
        .generate()
        .unwrap()
}

fn make_engine(stream: &GeneratedStream) -> KsirEngine<DenseTopicWordTable> {
    // 6-hour window, 15-minute buckets.
    let config = EngineConfig::new(
        WindowConfig::new(6 * 60, 15).unwrap(),
        ScoringConfig::new(0.5, 1.0).unwrap(),
    );
    KsirEngine::new(stream.planted.phi().clone(), config).unwrap()
}

/// Narrow standing interests (1–2 topics each), the realistic subscription
/// shape: users follow a handful of topics, not all fifty.
fn make_queries(num_topics: usize) -> Vec<(KsirQuery, Algorithm)> {
    (0..NUM_SUBSCRIPTIONS)
        .map(|i| {
            let mut weights = vec![0.0; num_topics];
            weights[(3 * i) % num_topics] = 0.8;
            weights[(3 * i + 1) % num_topics] = 0.2;
            let query = KsirQuery::new(K, QueryVector::new(weights).unwrap()).unwrap();
            let algorithm = if i % 2 == 0 {
                Algorithm::Mttd
            } else {
                Algorithm::Mtts
            };
            (query, algorithm)
        })
        .collect()
}

fn bench_standing_queries(c: &mut Criterion) {
    let stream = make_stream();
    let queries = make_queries(stream.planted.num_topics());
    let mut group = c.benchmark_group("continuous");
    group.sample_size(10);

    group.bench_function(BenchmarkId::new("delta_refresh", stream.len()), |b| {
        b.iter(|| {
            let mut mgr = SubscriptionManager::new(make_engine(&stream));
            for (query, algorithm) in &queries {
                mgr.subscribe(query.clone(), *algorithm).unwrap();
            }
            let outcomes = mgr.ingest_stream(stream.iter_pairs()).unwrap();
            std::hint::black_box(outcomes.len())
        })
    });

    group.bench_function(BenchmarkId::new("recompute_per_slide", stream.len()), |b| {
        b.iter(|| {
            let mut engine = make_engine(&stream);
            let bucket_len = engine.config().window.bucket_len();
            let mut total_results = 0usize;
            ksir_stream::for_each_bucket(
                bucket_len,
                engine.now(),
                stream.iter_pairs(),
                |bucket, end| {
                    engine.ingest_bucket(bucket, end)?;
                    for (query, algorithm) in &queries {
                        total_results += engine.query(query, *algorithm)?.len();
                    }
                    Ok(())
                },
            )
            .unwrap();
            std::hint::black_box(total_results)
        })
    });

    group.finish();
}

/// One-shot report of how much work the delta rules skip on this workload
/// (printed alongside the timings so the bench output is self-explaining).
fn report_skip_rate(c: &mut Criterion) {
    let stream = make_stream();
    let queries = make_queries(stream.planted.num_topics());
    let mut mgr = SubscriptionManager::new(make_engine(&stream));
    for (query, algorithm) in &queries {
        mgr.subscribe(query.clone(), *algorithm).unwrap();
    }
    mgr.ingest_stream(stream.iter_pairs()).unwrap();
    let stats = mgr.stats();
    let potential = stats.slides * queries.len();
    println!(
        "continuous/skip_rate: {} slides x {} subscriptions = {} evaluations; \
         {} refreshes, {} skips ({:.1}% saved)",
        stats.slides,
        queries.len(),
        potential,
        stats.refreshes,
        stats.skips,
        100.0 * stats.skips as f64 / potential.max(1) as f64,
    );
    let _ = c;
}

criterion_group!(benches, bench_standing_queries, report_skip_rate);
criterion_main!(benches);
