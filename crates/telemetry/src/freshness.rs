//! End-to-end freshness tracking: a bounded epoch → ingest-timestamp map.
//!
//! The ingest path stamps every slide's epoch with the bundle's monotonic
//! clock the moment the bucket is applied to the index; the delivery path
//! looks the stamp back up when a `ResultDelta` for that epoch is accepted
//! into (or shed from) a subscriber queue.  The difference is the
//! **ingest-to-consumption latency** a subscriber actually experiences —
//! the `delivery.e2e` histograms — and the age of the oldest epoch not yet
//! fully refreshed is the live `manager.freshness_lag` gauge a readiness
//! probe can alert on.
//!
//! Stamps are kept after their epoch completes (delivery can legitimately
//! trail completion) and pruned only by the capacity bound, oldest first;
//! epochs are monotonically increasing, so pruning is always a `pop_first`.

use std::collections::BTreeMap;
use std::sync::Mutex;

#[derive(Debug, Default)]
struct State {
    stamps: BTreeMap<u64, u64>,
    retired_through: u64,
}

/// A bounded map from epoch (1-based slide number) to the monotonic
/// nanosecond timestamp its bucket was ingested at.  Shared through the
/// owning [`Telemetry`](crate::Telemetry) bundle.
#[derive(Debug)]
pub struct FreshnessClock {
    capacity: usize,
    state: Mutex<State>,
}

impl Default for FreshnessClock {
    fn default() -> Self {
        FreshnessClock::new(4096)
    }
}

impl FreshnessClock {
    /// A clock retaining at most `capacity` epoch stamps (oldest shed
    /// first).
    pub fn new(capacity: usize) -> Self {
        FreshnessClock {
            capacity: capacity.max(1),
            state: Mutex::new(State::default()),
        }
    }

    /// Records that `epoch`'s bucket hit the index at monotonic `nanos`.
    pub fn stamp(&self, epoch: u64, nanos: u64) {
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        state.stamps.insert(epoch, nanos);
        while state.stamps.len() > self.capacity {
            state.stamps.pop_first();
        }
    }

    /// The ingest timestamp of `epoch`, if still retained.
    pub fn stamp_of(&self, epoch: u64) -> Option<u64> {
        self.state
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .stamps
            .get(&epoch)
            .copied()
    }

    /// Marks every epoch `<= epoch` as fully refreshed.  The stamps stay
    /// retrievable for delivery lookups; only the lag computation stops
    /// charging them.
    pub fn retire_through(&self, epoch: u64) {
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        state.retired_through = state.retired_through.max(epoch);
    }

    /// The age in nanoseconds (relative to `now_nanos`) of the **oldest
    /// epoch not yet retired** — zero when every stamped epoch has been
    /// retired.  This is the live watermark-stall signal: a wedged pipeline
    /// stops retiring epochs and the lag grows monotonically.
    pub fn lag_nanos(&self, now_nanos: u64) -> u64 {
        let state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        let retired = state.retired_through;
        state
            .stamps
            .range(retired + 1..)
            .next()
            .map(|(_, &stamp)| now_nanos.saturating_sub(stamp))
            .unwrap_or(0)
    }

    /// Number of epoch stamps currently retained.
    pub fn len(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .stamps
            .len()
    }

    /// Returns `true` when no epochs have been stamped (or all were pruned).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lag_tracks_oldest_unretired_epoch() {
        let clock = FreshnessClock::new(16);
        assert_eq!(clock.lag_nanos(100), 0, "no stamps, no lag");
        clock.stamp(1, 10);
        clock.stamp(2, 40);
        assert_eq!(clock.lag_nanos(100), 90, "epoch 1 is the oldest open");
        clock.retire_through(1);
        assert_eq!(clock.lag_nanos(100), 60, "epoch 2 takes over");
        clock.retire_through(2);
        assert_eq!(clock.lag_nanos(100), 0, "all retired");
        // Stamps survive retirement for delivery lookups.
        assert_eq!(clock.stamp_of(1), Some(10));
        assert_eq!(clock.stamp_of(2), Some(40));
    }

    #[test]
    fn capacity_prunes_oldest_stamps_only() {
        let clock = FreshnessClock::new(2);
        clock.stamp(1, 10);
        clock.stamp(2, 20);
        clock.stamp(3, 30);
        assert_eq!(clock.len(), 2);
        assert_eq!(clock.stamp_of(1), None, "oldest pruned");
        assert_eq!(clock.stamp_of(3), Some(30));
    }

    #[test]
    fn retire_is_monotonic_and_lag_saturates() {
        let clock = FreshnessClock::new(4);
        clock.stamp(5, 1000);
        clock.retire_through(7);
        clock.retire_through(3); // must not roll back
        assert_eq!(clock.lag_nanos(2000), 0);
        clock.stamp(8, 3000);
        assert_eq!(clock.lag_nanos(2500), 0, "clock skew saturates to zero");
        assert_eq!(clock.lag_nanos(3500), 500);
    }
}
