//! Workspace-level integration test: generated data → trained topic model →
//! streaming engine → queries → effectiveness metrics, all through the `ksir`
//! facade crate.

use ksir::baselines::{result_ids, RelSearcher, TfIdfSearcher};
use ksir::datagen::{DatasetProfile, QueryWorkloadGenerator, StreamGenerator};
use ksir::eval::{coverage_score, normalized_influence_score, pool_from_engine};
use ksir::{
    Algorithm, EngineConfig, KsirEngine, KsirQuery, LdaTrainer, ScoringConfig, WindowConfig,
};

/// Generates a small Reddit-shaped stream once for the whole test file.
fn generate() -> ksir::datagen::GeneratedStream {
    let profile = DatasetProfile::reddit().scaled(0.1).with_topics(10);
    StreamGenerator::new(profile, 1234)
        .expect("valid profile")
        .generate()
        .expect("generation succeeds")
}

fn build_engine(
    stream: &ksir::datagen::GeneratedStream,
) -> KsirEngine<ksir::types::DenseTopicWordTable> {
    let config = EngineConfig::new(
        WindowConfig::new(24 * 60, 15).unwrap(),
        ScoringConfig::new(0.5, 0.5).unwrap(),
    );
    let mut engine = KsirEngine::new(stream.planted.phi().clone(), config).unwrap();
    engine.ingest_stream(stream.iter_pairs()).unwrap();
    engine
}

#[test]
fn streaming_engine_answers_queries_from_generated_data() {
    let stream = generate();
    let engine = build_engine(&stream);
    assert!(
        engine.active_count() > 10,
        "window should retain recent elements"
    );
    assert!(engine.active_count() <= stream.len());

    let queries = QueryWorkloadGenerator::new(&stream.planted, 5)
        .generate(5, stream.end_time())
        .unwrap();
    for q in queries {
        let query = KsirQuery::new(5, q.vector).unwrap();
        let mttd = engine.query(&query, Algorithm::Mttd).unwrap();
        let celf = engine.query(&query, Algorithm::Celf).unwrap();
        assert!(mttd.len() <= 5);
        assert!(mttd.score >= 0.9 * celf.score, "MTTD quality close to CELF");
        assert!(mttd.evaluated_elements <= celf.evaluated_elements);
        for id in &mttd.elements {
            assert!(engine.is_active(*id));
        }
    }
}

#[test]
fn ksir_beats_keyword_search_on_influence_and_coverage() {
    let stream = generate();
    let engine = build_engine(&stream);
    let pool = pool_from_engine(&engine);
    let queries = QueryWorkloadGenerator::new(&stream.planted, 21)
        .generate(10, stream.end_time())
        .unwrap();

    let tfidf = TfIdfSearcher::new();
    let rel = RelSearcher::new();
    let mut totals = [0.0f64; 3]; // coverage for tf-idf, rel, ksir
    let mut influence = [0.0f64; 3];
    for q in &queries {
        let ksir_query = KsirQuery::new(5, q.vector.clone()).unwrap();
        let results = [
            result_ids(&tfidf.search(&q.keywords, &pool, 5)),
            result_ids(&rel.search(&q.vector, &pool, 5)),
            engine.query(&ksir_query, Algorithm::Mttd).unwrap().elements,
        ];
        for (m, r) in results.iter().enumerate() {
            totals[m] += coverage_score(&pool, &q.vector, r);
            influence[m] += normalized_influence_score(&pool, r);
        }
    }
    // Table 5/6's qualitative claim, with a small tolerance because this is a
    // deliberately tiny stream (the full-size comparison lives in the
    // `exp_table5` / `exp_table6` harness binaries): k-SIR must be at least
    // on par with keyword search on coverage and clearly ahead on influence.
    assert!(
        totals[2] >= 0.95 * totals[0],
        "coverage: k-SIR {} vs TF-IDF {}",
        totals[2],
        totals[0]
    );
    assert!(
        influence[2] >= influence[0],
        "influence: k-SIR {} vs TF-IDF {}",
        influence[2],
        influence[0]
    );
}

#[test]
fn trained_lda_can_replace_the_planted_oracle() {
    let stream = generate();
    // Train LDA on the generated corpus and drive the engine with the trained
    // model instead of the planted ground truth.
    let corpus: Vec<_> = stream.elements.iter().map(|e| e.doc.clone()).collect();
    let model = LdaTrainer::new(10)
        .unwrap()
        .with_alpha(1.0)
        .with_iterations(40)
        .with_seed(3)
        .train(&corpus, stream.planted.vocab_size())
        .unwrap();

    let config = EngineConfig::new(
        WindowConfig::new(24 * 60, 15).unwrap(),
        ScoringConfig::new(0.5, 0.5).unwrap(),
    );
    let mut engine = KsirEngine::new(model.topic_word_table().clone(), config).unwrap();
    engine
        .ingest_stream(
            stream
                .elements
                .iter()
                .map(|e| (e.clone(), model.infer_document(&e.doc))),
        )
        .unwrap();

    let query = KsirQuery::new(5, ksir::QueryVector::uniform(10).unwrap()).unwrap();
    let result = engine.query(&query, Algorithm::Mttd).unwrap();
    assert_eq!(result.len(), 5);
    assert!(result.score > 0.0);
}

#[test]
fn facade_reexports_are_usable() {
    // A smoke test that the paths advertised in the README all resolve.
    let example = ksir::core::fixtures::paper_example();
    let engine = example.build_engine();
    let query = KsirQuery::new(2, ksir::QueryVector::new(vec![0.5, 0.5]).unwrap()).unwrap();
    for alg in Algorithm::ALL {
        let result = engine.query(&query, alg).unwrap();
        assert!(result.len() <= 2);
    }
    let stats = engine.stats();
    assert_eq!(stats.elements_ingested, 8);
    assert_eq!(stats.buckets_ingested, 8);
}
