//! Table 5 — proxy user study: representativeness and impact ratings (1–5)
//! of TF-IDF, DIV, Sumblr, REL and k-SIR on the three dataset profiles.
//!
//! Run with `cargo run --release -p ksir-bench --bin exp_table5 [--scale 1.0]`.

use ksir_bench::{run_effectiveness, scale_from_args, EffectivenessConfig, Table};
use ksir_datagen::{DatasetProfile, StreamGenerator};

fn main() {
    let scale = scale_from_args();
    let mut rep_table = Table::new(
        "Table 5 — user study (proxy): representativeness (1-5)",
        &[
            "Dataset", "TF-IDF", "DIV", "Sumblr", "REL", "k-SIR", "kappa",
        ],
    );
    let mut imp_table = Table::new(
        "Table 5 — user study (proxy): impact (1-5)",
        &[
            "Dataset", "TF-IDF", "DIV", "Sumblr", "REL", "k-SIR", "kappa",
        ],
    );

    for profile in DatasetProfile::all() {
        let profile = profile.scaled(scale).with_topics(50);
        let stream = StreamGenerator::new(profile.clone(), 42)
            .expect("profile is valid")
            .generate()
            .expect("stream generation succeeds");
        let config = EffectivenessConfig {
            processing: ksir_bench::ProcessingConfig {
                k: 5,
                num_queries: 20,
                ..ksir_bench::ProcessingConfig::for_stream(&stream)
            },
            judges: 3,
        };
        let report = run_effectiveness(&stream, &config).expect("experiment runs");

        let fmt = |v: &[f64]| v.iter().map(|x| format!("{x:.2}")).collect::<Vec<_>>();
        let mut rep_row = vec![profile.name.clone()];
        rep_row.extend(fmt(&report.user_study.representativeness));
        rep_row.push(format!("{:.2}", report.user_study.kappa_representativeness));
        rep_table.add_row(rep_row);

        let mut imp_row = vec![profile.name.clone()];
        imp_row.extend(fmt(&report.user_study.impact));
        imp_row.push(format!("{:.2}", report.user_study.kappa_impact));
        imp_table.add_row(imp_row);
    }

    rep_table.print();
    imp_table.print();
    println!(
        "Paper's shape: k-SIR obtains the highest representativeness and impact \
         ratings on every dataset (Table 5)."
    );
}
