//! Deterministic fault injection for the async refresh pipeline.
//!
//! A [`FaultPlan`] is a list of [`Fault`]s addressed by pipeline coordinates
//! — epoch (1-based slide number) and optionally shard — that the worker,
//! snapshot, and delivery paths consult at well-defined seams:
//!
//! * [`FaultKind::PanicInRefresh`] fires at the **entry** of a worker's
//!   refresh attempt, before any shard state has been mutated.  The panic is
//!   caught at the worker's isolation boundary
//!   (`catch_unwind` around `refresh_scheduled`), the attempt is retried
//!   with bounded backoff, and a shard that exhausts its budget is
//!   quarantined.  Because injection is pre-mutation, a recovering fault
//!   leaves refresh decisions bit-identical to a fault-free run — which is
//!   exactly what the chaos equivalence oracles assert.
//! * [`FaultKind::DelaySnapshot`] stalls epoch snapshot capture, widening
//!   the race window between ingestion and refresh without changing any
//!   decision.
//! * [`FaultKind::PoisonDelivery`] makes one delivery send panic; the
//!   caught panic is converted into a counted shed so
//!   `delivered + dropped == result_changes` keeps reconciling.
//! * [`FaultKind::KillWorker`] makes a worker thread exit after finishing
//!   its current item; the pool detects the death at the next dispatch and
//!   respawns within its budget.
//!
//! Plans are consulted with *consume-on-match* semantics: each [`Fault`]
//! carries a `fires` budget and is removed when exhausted, so a plan is
//! also a test's fault *schedule* — `remaining()` going to zero proves every
//! planned fault actually fired.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::shard::ShardKey;

/// The kind of fault to inject.  See the module docs for where each fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic at the entry of a refresh attempt (pre-mutation).
    PanicInRefresh,
    /// Delay epoch snapshot capture by this many milliseconds.
    DelaySnapshot(u64),
    /// Panic inside one delivery send; converted into a counted shed.
    PoisonDelivery,
    /// Make the worker thread that picks this up exit after its current
    /// item completes.
    KillWorker,
}

/// One scheduled fault: where it fires, what it does, how many times.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// The 1-based slide number the fault is armed for.
    pub epoch: u64,
    /// The shard the fault targets; `None` matches any shard (or a seam
    /// with no shard coordinate, like snapshot capture).
    pub shard: Option<ShardKey>,
    /// What to inject.
    pub kind: FaultKind,
    /// Remaining firings; the fault is removed when this reaches zero.
    pub fires: usize,
}

impl Fault {
    /// A fault that fires exactly once at the given coordinates.
    pub fn once(epoch: u64, shard: Option<ShardKey>, kind: FaultKind) -> Self {
        Fault {
            epoch,
            shard,
            kind,
            fires: 1,
        }
    }

    /// The same fault with a firing budget of `n`.  A refresh panic with
    /// `fires` larger than the worker retry budget forces quarantine.
    pub fn times(mut self, n: usize) -> Self {
        self.fires = n;
        self
    }
}

/// A deterministic schedule of faults, shared across the manager, workers,
/// and delivery paths.  Thread-safe; consult methods consume matches.
#[derive(Debug, Default)]
pub struct FaultPlan {
    faults: Mutex<Vec<Fault>>,
    injected: AtomicU64,
}

impl FaultPlan {
    /// A plan pre-loaded with `faults`.
    pub fn new(faults: Vec<Fault>) -> Self {
        FaultPlan {
            faults: Mutex::new(faults),
            injected: AtomicU64::new(0),
        }
    }

    /// Adds one fault to the schedule.
    pub fn push(&self, fault: Fault) {
        self.faults
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(fault);
    }

    /// Total faults fired so far, across all kinds.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Scheduled faults not yet (fully) fired.  Zero after a run proves the
    /// whole schedule executed.
    pub fn remaining(&self) -> usize {
        self.faults
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .iter()
            .map(|f| f.fires)
            .sum()
    }

    fn take(
        &self,
        epoch: u64,
        shard: Option<ShardKey>,
        want: impl Fn(FaultKind) -> bool,
    ) -> Option<FaultKind> {
        let mut faults = self.faults.lock().unwrap_or_else(|p| p.into_inner());
        let hit = faults.iter().position(|f| {
            f.epoch == epoch
                && want(f.kind)
                && (f.shard.is_none() || shard.is_none() || f.shard == shard)
        })?;
        let kind = faults[hit].kind;
        faults[hit].fires -= 1;
        if faults[hit].fires == 0 {
            faults.swap_remove(hit);
        }
        drop(faults);
        self.injected.fetch_add(1, Ordering::Relaxed);
        Some(kind)
    }

    /// Consumes a [`FaultKind::PanicInRefresh`] armed for these coordinates,
    /// if any.  Returns `true` when the caller must panic.
    pub fn take_refresh_panic(&self, epoch: u64, shard: ShardKey) -> bool {
        self.take(epoch, Some(shard), |k| k == FaultKind::PanicInRefresh)
            .is_some()
    }

    /// Consumes a [`FaultKind::DelaySnapshot`] armed for this epoch,
    /// returning the delay in milliseconds.
    pub fn take_snapshot_delay(&self, epoch: u64) -> Option<u64> {
        match self.take(epoch, None, |k| matches!(k, FaultKind::DelaySnapshot(_)))? {
            FaultKind::DelaySnapshot(ms) => Some(ms),
            _ => unreachable!("filtered to DelaySnapshot"),
        }
    }

    /// Consumes a [`FaultKind::PoisonDelivery`] armed for this epoch.
    /// Returns `true` when the caller must poison the next send.
    pub fn take_delivery_poison(&self, epoch: u64) -> bool {
        self.take(epoch, None, |k| k == FaultKind::PoisonDelivery)
            .is_some()
    }

    /// Consumes a [`FaultKind::KillWorker`] armed for these coordinates.
    /// Returns `true` when the consuming worker must exit its loop.
    pub fn take_worker_kill(&self, epoch: u64, shard: ShardKey) -> bool {
        self.take(epoch, Some(shard), |k| k == FaultKind::KillWorker)
            .is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksir_types::TopicId;

    #[test]
    fn faults_consume_on_match_and_respect_coordinates() {
        let plan = FaultPlan::new(vec![
            Fault::once(
                3,
                Some(ShardKey::Topic(TopicId(1))),
                FaultKind::PanicInRefresh,
            ),
            Fault::once(4, None, FaultKind::DelaySnapshot(7)),
        ]);
        assert_eq!(plan.remaining(), 2);
        // Wrong epoch, wrong shard: no fire.
        assert!(!plan.take_refresh_panic(2, ShardKey::Topic(TopicId(1))));
        assert!(!plan.take_refresh_panic(3, ShardKey::Topic(TopicId(2))));
        // Exact match fires once, then is gone.
        assert!(plan.take_refresh_panic(3, ShardKey::Topic(TopicId(1))));
        assert!(!plan.take_refresh_panic(3, ShardKey::Topic(TopicId(1))));
        assert_eq!(plan.take_snapshot_delay(4), Some(7));
        assert_eq!(plan.take_snapshot_delay(4), None);
        assert_eq!(plan.injected(), 2);
        assert_eq!(plan.remaining(), 0);
    }

    #[test]
    fn wildcard_shard_matches_any_and_times_bounds_firings() {
        let plan = FaultPlan::new(vec![
            Fault::once(1, None, FaultKind::PanicInRefresh).times(2)
        ]);
        assert!(plan.take_refresh_panic(1, ShardKey::Overflow));
        assert!(plan.take_refresh_panic(1, ShardKey::Topic(TopicId(9))));
        assert!(!plan.take_refresh_panic(1, ShardKey::Overflow));
        assert_eq!(plan.injected(), 2);
    }

    #[test]
    fn kill_and_poison_seams_consume_independently() {
        let plan = FaultPlan::default();
        plan.push(Fault::once(2, None, FaultKind::KillWorker));
        plan.push(Fault::once(2, None, FaultKind::PoisonDelivery));
        assert!(!plan.take_delivery_poison(1));
        assert!(plan.take_worker_kill(2, ShardKey::Overflow));
        assert!(plan.take_delivery_poison(2));
        assert_eq!(plan.remaining(), 0);
    }
}
