//! Method comparison: the k-SIR query against the search / summarisation
//! baselines, and the processing algorithms against each other.
//!
//! A compact, end-to-end version of the paper's evaluation (§5): one
//! Reddit-shaped stream, one batch of keyword queries, and two comparisons —
//! result *quality* across TF-IDF / DIV / Sumblr / REL / k-SIR (coverage and
//! influence, as in Table 6) and *processing cost* across CELF /
//! SieveStreaming / Top-k / MTTS / MTTD (as in Figure 9).
//!
//! Run with `cargo run --release --example method_comparison`.

use std::time::Instant;

use ksir::baselines::{result_ids, DivSearcher, RelSearcher, SumblrSummarizer, TfIdfSearcher};
use ksir::datagen::{DatasetProfile, QueryWorkloadGenerator, StreamGenerator};
use ksir::eval::{coverage_score, normalized_influence_score, pool_from_engine};
use ksir::{Algorithm, EngineConfig, KsirEngine, KsirQuery, ScoringConfig, WindowConfig};

fn main() -> Result<(), ksir::KsirError> {
    let profile = DatasetProfile::reddit().scaled(0.25).with_topics(30);
    let stream = StreamGenerator::new(profile, 99)?.generate()?;

    // η rescales the influence term; on a laptop-scale stream in-window
    // reference counts are single digits, so a small η keeps the semantic and
    // influence terms balanced the way the paper's per-dataset η does.
    let config = EngineConfig::new(
        WindowConfig::new(24 * 60, 15)?,
        ScoringConfig::new(0.5, 0.2)?,
    );
    let mut engine = KsirEngine::new(stream.planted.phi().clone(), config)?;
    engine.ingest_stream(stream.iter_pairs())?;
    println!(
        "Stream of {} posts indexed; {} active in the final 24h window.\n",
        stream.len(),
        engine.active_count()
    );

    let queries =
        QueryWorkloadGenerator::new(&stream.planted, 5).generate(10, stream.end_time())?;
    let pool = pool_from_engine(&engine);
    let k = 5;

    // --- Effectiveness: quality of the returned sets -----------------------
    let tfidf = TfIdfSearcher::new();
    let div = DivSearcher::new();
    let sumblr = SumblrSummarizer::new();
    let rel = RelSearcher::new();

    let mut names = ["TF-IDF", "DIV", "Sumblr", "REL", "k-SIR"];
    let mut coverage = [0.0f64; 5];
    let mut influence = [0.0f64; 5];
    for q in &queries {
        let ksir_query = KsirQuery::new(k, q.vector.clone())?;
        let results = [
            result_ids(&tfidf.search(&q.keywords, &pool, k)),
            result_ids(&div.search(&q.keywords, &pool, k)),
            result_ids(&sumblr.search(&q.keywords, &pool, k)),
            result_ids(&rel.search(&q.vector, &pool, k)),
            engine.query(&ksir_query, Algorithm::Mttd)?.elements,
        ];
        for (m, result) in results.iter().enumerate() {
            coverage[m] += coverage_score(&pool, &q.vector, result) / queries.len() as f64;
            influence[m] += normalized_influence_score(&pool, result) / queries.len() as f64;
        }
    }
    println!(
        "== Result quality over {} keyword queries (k = {k}) ==",
        queries.len()
    );
    println!("{:<10} {:>10} {:>10}", "method", "coverage", "influence");
    for m in 0..names.len() {
        println!(
            "{:<10} {:>10.4} {:>10.4}",
            names[m], coverage[m], influence[m]
        );
    }

    // --- Efficiency: cost of answering the same k-SIR queries ---------------
    names = ["CELF", "SieveStrm", "Top-k Rep", "MTTS", "MTTD"];
    let algorithms = [
        Algorithm::Celf,
        Algorithm::SieveStreaming,
        Algorithm::TopkRepresentative,
        Algorithm::Mtts,
        Algorithm::Mttd,
    ];
    println!("\n== Processing cost for the same queries ==");
    println!(
        "{:<10} {:>12} {:>12} {:>10}",
        "algorithm", "avg time", "avg score", "evaluated"
    );
    for (name, algorithm) in names.iter().zip(algorithms) {
        let mut total_time = 0.0;
        let mut total_score = 0.0;
        let mut total_evaluated = 0usize;
        for q in &queries {
            let ksir_query = KsirQuery::new(k, q.vector.clone())?;
            let started = Instant::now();
            let result = engine.query(&ksir_query, algorithm)?;
            total_time += started.elapsed().as_secs_f64();
            total_score += result.score;
            total_evaluated += result.evaluated_elements;
        }
        let n = queries.len() as f64;
        println!(
            "{:<10} {:>9.3} ms {:>12.4} {:>9.1}",
            name,
            total_time * 1e3 / n,
            total_score / n,
            total_evaluated as f64 / n
        );
    }
    println!(
        "\nExpected shape (paper §5): k-SIR leads (or ties) the baselines on coverage and \
         influence; MTTS/MTTD match CELF's quality while evaluating only a small fraction \
         of the active elements."
    );
    Ok(())
}
