//! The minimum of HTTP/1.1 the introspection server needs: parse a request
//! head off a [`TcpStream`], write one `Connection: close` response back.
//! No keep-alive, no chunking, no bodies on requests — every endpoint is an
//! idempotent `GET`.

use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Longest request head we will buffer before giving up on a client.
const MAX_HEAD_BYTES: usize = 8 * 1024;

/// The parts of a request the router cares about.
#[derive(Debug)]
pub(crate) struct Request {
    pub method: String,
    /// The path with any query string stripped.
    pub path: String,
}

/// Reads one request head (through the blank line) and parses its request
/// line.  Headers beyond the first line are read and discarded.
pub(crate) fn read_request(stream: &mut TcpStream) -> io::Result<Request> {
    let mut head = Vec::with_capacity(256);
    let mut chunk = [0u8; 512];
    while !head.windows(4).any(|w| w == b"\r\n\r\n") {
        if head.len() > MAX_HEAD_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "request head too large",
            ));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-request",
            ));
        }
        head.extend_from_slice(&chunk[..n]);
    }
    let head = String::from_utf8_lossy(&head);
    let line = head.lines().next().unwrap_or_default();
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or_default().to_string();
    let target = parts.next().unwrap_or_default();
    let path = target.split('?').next().unwrap_or_default().to_string();
    if method.is_empty() || !path.starts_with('/') {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "malformed request line",
        ));
    }
    Ok(Request { method, path })
}

/// One response, written whole and then closed.
#[derive(Debug)]
pub(crate) struct Response {
    pub status: u16,
    pub content_type: &'static str,
    pub body: String,
}

impl Response {
    pub(crate) fn json(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "application/json",
            body,
        }
    }

    pub(crate) fn text(status: u16, content_type: &'static str, body: String) -> Self {
        Response {
            status,
            content_type,
            body,
        }
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Writes `response` to the stream; the caller drops the stream (and with it
/// the connection) afterwards.
pub(crate) fn write_response(stream: &mut TcpStream, response: &Response) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        response.status,
        reason(response.status),
        response.content_type,
        response.body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(response.body.as_bytes())?;
    stream.flush()
}
