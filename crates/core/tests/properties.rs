//! Property-based tests of the k-SIR scoring function and query algorithms on
//! randomly generated streams.
//!
//! Random instances are generated from a seed (so that proptest failures are
//! reproducible from the printed seed) and the following invariants are
//! checked:
//!
//! * Lemma 3.6 / 3.7: the scoring function is monotone and submodular.
//! * The incremental marginal-gain state matches from-scratch scoring.
//! * Theorems 4.2 / 4.4 and the baselines' guarantees hold against the
//!   exhaustive optimum on small instances.
//! * Algorithm 1 keeps the ranked-list tuples equal to the directly computed
//!   topic-wise scores `f_i({e})`, even across expiry and resurrection.
//! * The shard-level refresh floors ([`FloorAggregate`]) stay a monotone,
//!   conservative union of the absorbed frontiers, and a ranked-list prefix
//!   truncated at the aggregated floor is *sufficient for refresh
//!   decisions*: no tuple the truncation drops can disturb any absorbed
//!   frontier — the invariant `ksir-snapshot`'s floor-truncated captures
//!   rely on.

use proptest::prelude::*;
// Explicit trait imports: `proptest::prelude::*` re-exports a different rand
// version, so the glob `rand::prelude::*` would leave these traits shadowed.
use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng as _};

use ksir_core::{
    prime_singleton_cache, Algorithm, EngineConfig, FloorAggregate, KsirEngine, KsirQuery,
    QueryEvaluator, QueryFrontier, QuerySource, RankedView, ScoringConfig, SingletonCache,
    StoredScore,
};
use ksir_stream::{RankedDelta, RankedList, WindowConfig, WindowDelta, FLOOR_SLACK};
use ksir_types::{
    DenseTopicWordTable, ElementId, QueryVector, SocialElement, SocialElementBuilder, Timestamp,
    TopicId, TopicVector,
};

/// Parameters of a random instance.
#[derive(Debug, Clone)]
struct InstanceParams {
    seed: u64,
    num_elements: usize,
    num_topics: usize,
    vocab_size: usize,
    window_len: u64,
    lambda_tenths: u8,
    k: usize,
}

fn instance_params() -> impl Strategy<Value = InstanceParams> {
    (
        any::<u64>(),
        5usize..=12,
        2usize..=4,
        8usize..=16,
        3u64..=8,
        0u8..=10,
        1usize..=3,
    )
        .prop_map(
            |(seed, num_elements, num_topics, vocab_size, window_len, lambda_tenths, k)| {
                InstanceParams {
                    seed,
                    num_elements,
                    num_topics,
                    vocab_size,
                    window_len,
                    lambda_tenths,
                    k,
                }
            },
        )
}

/// A fully built random instance: engine at the end of the stream + a query.
struct Instance {
    engine: KsirEngine<DenseTopicWordTable>,
    query: KsirQuery,
    query_vector: QueryVector,
}

/// A random instance before ingestion: an empty engine plus the stream it is
/// to be fed, one bucket (= slide) per element.  Lets slide-replaying tests
/// interleave queries with ingestion.
struct StreamInstance {
    engine: KsirEngine<DenseTopicWordTable>,
    stream: Vec<(SocialElement, TopicVector)>,
    query: KsirQuery,
    query_vector: QueryVector,
}

fn build_stream_instance(p: &InstanceParams) -> StreamInstance {
    let mut rng = StdRng::seed_from_u64(p.seed);

    // Random topic-word table with normalised rows.
    let rows: Vec<Vec<f64>> = (0..p.num_topics)
        .map(|_| {
            let mut row: Vec<f64> = (0..p.vocab_size).map(|_| rng.gen::<f64>()).collect();
            let sum: f64 = row.iter().sum();
            row.iter_mut().for_each(|v| *v /= sum);
            row
        })
        .collect();
    let phi = DenseTopicWordTable::from_rows(rows).unwrap();

    let scoring = ScoringConfig::new(f64::from(p.lambda_tenths) / 10.0, 2.0).unwrap();
    let config = EngineConfig::new(WindowConfig::new(p.window_len, 1).unwrap(), scoring)
        .with_max_topics_per_element(None);
    let engine = KsirEngine::new(phi, config).unwrap();

    // Random stream: increasing timestamps, random words, random references to
    // earlier elements, random (normalised) topic vectors.
    let mut stream = Vec::with_capacity(p.num_elements);
    let mut ts = 0u64;
    for i in 1..=p.num_elements as u64 {
        ts += rng.gen_range(1..=2u64);
        let num_words = rng.gen_range(1..=5);
        let words: Vec<u32> = (0..num_words)
            .map(|_| rng.gen_range(0..p.vocab_size as u32))
            .collect();
        let mut builder = SocialElementBuilder::new(i).at(ts).words(words);
        if i > 1 {
            for _ in 0..rng.gen_range(0..=2) {
                builder = builder.referencing(rng.gen_range(1..i));
            }
        }
        let element: SocialElement = builder.build();
        let weights: Vec<f64> = (0..p.num_topics).map(|_| rng.gen::<f64>()).collect();
        let tv = TopicVector::normalized(weights).unwrap();
        stream.push((element, tv));
    }

    let query_weights: Vec<f64> = (0..p.num_topics).map(|_| rng.gen::<f64>() + 0.01).collect();
    let query_vector = QueryVector::new(query_weights).unwrap();
    let query = KsirQuery::new(p.k, query_vector.clone())
        .unwrap()
        .with_epsilon(0.1)
        .unwrap();

    StreamInstance {
        engine,
        stream,
        query,
        query_vector,
    }
}

fn build_instance(p: &InstanceParams) -> Instance {
    let StreamInstance {
        mut engine,
        stream,
        query,
        query_vector,
    } = build_stream_instance(p);
    for (element, tv) in stream {
        let end = element.ts;
        engine.ingest_bucket(vec![(element, tv)], end).unwrap();
    }
    Instance {
        engine,
        query,
        query_vector,
    }
}

/// Picks a random subset of the active elements.
fn random_subset(rng: &mut StdRng, ids: &[ElementId], max_len: usize) -> Vec<ElementId> {
    let mut subset: Vec<ElementId> = ids
        .iter()
        .copied()
        .filter(|_| rng.gen_bool(0.4))
        .take(max_len)
        .collect();
    subset.sort_unstable();
    subset.dedup();
    subset
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Lemma 3.6 / 3.7: `f(·, x)` is monotone and submodular.
    #[test]
    fn scoring_is_monotone_and_submodular(p in instance_params()) {
        let instance = build_instance(&p);
        let engine = &instance.engine;
        let scorer = engine.scorer();
        let ids = engine.active_ids();
        prop_assume!(!ids.is_empty());
        let mut rng = StdRng::seed_from_u64(p.seed ^ 0xdead_beef);

        for _ in 0..4 {
            let small = random_subset(&mut rng, &ids, 3);
            // Superset of `small`.
            let mut large = small.clone();
            for &id in &ids {
                if !large.contains(&id) && rng.gen_bool(0.5) {
                    large.push(id);
                }
            }
            let extra = ids[rng.gen_range(0..ids.len())];
            let f_small = scorer.set_score(&instance.query_vector, &small);
            let f_large = scorer.set_score(&instance.query_vector, &large);
            // Monotone: adding elements never decreases the score.
            prop_assert!(f_large + 1e-9 >= f_small);
            // Non-negative.
            prop_assert!(f_small >= 0.0);
            // Submodular: the marginal gain of `extra` shrinks on the superset.
            if !small.contains(&extra) && !large.contains(&extra) {
                let g_small = scorer.marginal_gain(&instance.query_vector, &small, extra);
                let g_large = scorer.marginal_gain(&instance.query_vector, &large, extra);
                prop_assert!(g_small + 1e-9 >= g_large);
                prop_assert!(g_large >= -1e-9);
            }
        }
    }

    /// The incremental candidate state agrees with from-scratch evaluation.
    #[test]
    fn incremental_gains_match_scratch(p in instance_params()) {
        let instance = build_instance(&p);
        let engine = &instance.engine;
        let scorer = engine.scorer();
        let ids = engine.active_ids();
        prop_assume!(!ids.is_empty());
        let evaluator = QueryEvaluator::new(
            scorer,
            engine.window(),
            engine.topic_vectors(),
            &instance.query_vector,
        );
        let mut state = evaluator.new_candidate();
        let mut selected: Vec<ElementId> = Vec::new();
        let mut rng = StdRng::seed_from_u64(p.seed ^ 0x5eed);
        for _ in 0..ids.len().min(5) {
            let id = ids[rng.gen_range(0..ids.len())];
            let scratch = scorer.marginal_gain(&instance.query_vector, &selected, id);
            let incremental = evaluator.marginal_gain(&state, id);
            prop_assert!((scratch - incremental).abs() < 1e-9,
                "scratch {scratch} vs incremental {incremental}");
            evaluator.insert(&mut state, id);
            if !selected.contains(&id) {
                selected.push(id);
            }
            let full = scorer.set_score(&instance.query_vector, &selected);
            prop_assert!((full - state.score()).abs() < 1e-9);
        }
    }

    /// Approximation guarantees against the exhaustive optimum.
    #[test]
    fn algorithms_meet_guarantees(p in instance_params()) {
        let instance = build_instance(&p);
        let engine = &instance.engine;
        let q = &instance.query;
        let opt = engine.exhaustive_optimum(q).unwrap().score;
        let e = std::f64::consts::E;
        let guarantees = [
            (Algorithm::Celf, 1.0 - 1.0 / e),
            (Algorithm::Mttd, 1.0 - 1.0 / e - q.epsilon()),
            (Algorithm::Mtts, 0.5 - q.epsilon()),
            (Algorithm::SieveStreaming, 0.5 - q.epsilon()),
            (Algorithm::TopkRepresentative, 1.0 / q.k() as f64),
        ];
        for (alg, ratio) in guarantees {
            let r = engine.query(q, alg).unwrap();
            prop_assert!(r.score + 1e-9 >= ratio * opt,
                "{alg}: {} < {}·OPT ({})", r.score, ratio, ratio * opt);
            prop_assert!(r.len() <= q.k());
            // Every returned element is active and unique.
            let mut sorted = r.sorted_elements();
            let before = sorted.len();
            sorted.dedup();
            prop_assert_eq!(before, sorted.len());
            for id in &r.elements {
                prop_assert!(engine.is_active(*id));
            }
        }
    }

    /// Algorithm 1 invariant: stored ranked-list tuples always equal the
    /// directly computed topic-wise scores over the current window.
    #[test]
    fn ranked_lists_stay_consistent(p in instance_params()) {
        let instance = build_instance(&p);
        let engine = &instance.engine;
        let scorer = engine.scorer();
        for topic_idx in 0..engine.num_topics() {
            let topic = ksir_types::TopicId(topic_idx as u32);
            for (id, stored, _) in engine.ranked_lists().list(topic).iter() {
                let direct = scorer.topicwise_element(topic, id);
                prop_assert!((stored - direct).abs() < 1e-9,
                    "stale tuple for {id} on topic {topic_idx}: {stored} vs {direct}");
                prop_assert!(engine.is_active(id));
            }
            // Scores are non-negative and the traversal order is non-increasing.
            let scores: Vec<f64> = engine
                .ranked_lists()
                .list(topic)
                .iter()
                .map(|(_, s, _)| s)
                .collect();
            prop_assert!(scores.windows(2).all(|w| w[0] >= w[1]));
            prop_assert!(scores.iter().all(|s| *s >= 0.0));
        }
    }

    /// Absorbing more frontiers only loosens a [`FloorAggregate`]: per-topic
    /// floors never rise (with "any touch disturbs" as the loosest state),
    /// and anything that disturbed the aggregate before an absorb still
    /// disturbs it afterwards.
    #[test]
    fn floor_aggregate_absorption_is_monotone(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let num_topics = rng.gen_range(2..=5usize);
        let num_frontiers = rng.gen_range(1..=6);
        let frontiers = random_frontiers(&mut rng, num_topics, num_frontiers);
        let probes = random_touches(&mut rng, num_topics, 24);

        let mut agg = FloorAggregate::new();
        for frontier in &frontiers {
            let before = agg.clone();
            agg.absorb(frontier);
            for topic_idx in 0..num_topics {
                let topic = TopicId(topic_idx as u32);
                match (before.floor(topic), agg.floor(topic)) {
                    // Watched topics never become unwatched.
                    (Some(_), None) => prop_assert!(false, "topic {topic_idx} unwatched by absorb"),
                    // Any-touch (loosest) never tightens back to a floor.
                    (Some(None), after) => prop_assert_eq!(after, Some(None)),
                    // A finite floor only ever moves down (or loosens all
                    // the way to any-touch).
                    (Some(Some(fb)), Some(fa)) => {
                        if let Some(fa) = fa {
                            prop_assert!(fa <= fb);
                        }
                    }
                    (None, _) => {}
                }
            }
            for delta in &probes {
                if before.disturbed_by(delta) {
                    prop_assert!(
                        agg.disturbed_by(delta),
                        "absorb un-disturbed a previously disturbing touch"
                    );
                }
            }
        }
        // The aggregate is conservative: any touch disturbing an absorbed
        // frontier disturbs the aggregate.
        for delta in &probes {
            if frontiers.iter().any(|f| f.disturbed_by(delta)) {
                prop_assert!(agg.disturbed_by(delta));
            }
        }
    }

    /// Snapshot-prefix sufficiency: truncating a ranked list at the shard's
    /// aggregated floor never changes a refresh decision vs the full list —
    /// every tuple at or above any resident's floor survives truncation, and
    /// a slide touching only dropped (below-floor) tuples disturbs neither
    /// the aggregate nor any absorbed frontier.
    #[test]
    fn prefix_truncated_at_the_floor_preserves_refresh_decisions(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let num_topics = rng.gen_range(1..=4usize);
        let num_frontiers = rng.gen_range(1..=5);
        let frontiers = random_frontiers(&mut rng, num_topics, num_frontiers);
        let mut agg = FloorAggregate::new();
        for frontier in &frontiers {
            agg.absorb(frontier);
        }

        for topic_idx in 0..num_topics {
            let topic = TopicId(topic_idx as u32);
            // A random ranked list for this topic.
            let mut list = RankedList::new();
            for id in 1..=rng.gen_range(1..=30u64) {
                list.upsert(ElementId(id), rng.gen::<f64>(), Timestamp(id));
            }
            let floor = match agg.floor(topic) {
                Some(Some(floor)) => floor,
                // Unwatched or any-touch topics are captured whole; nothing
                // to check.
                _ => continue,
            };
            let prefix = list.share().prefix(Some(floor));
            prop_assert_eq!(prefix.len() + prefix.truncated(), list.len());

            // (a) Every tuple any resident's check could reference survives:
            // tuples at/above the *loosest* floor are in the prefix.
            for (id, score, _) in list.iter() {
                if score >= floor {
                    prop_assert!(
                        prefix.iter().any(|(pid, _, _)| pid == id),
                        "tuple {id} at {score} >= floor {floor} was dropped"
                    );
                }
            }
            // (b) Dropped tuples are invisible to every refresh decision: a
            // slide touching this topic at a dropped tuple's score disturbs
            // no absorbed frontier (and not the aggregate).
            let kept: std::collections::HashSet<ElementId> =
                prefix.iter().map(|(id, _, _)| id).collect();
            for (id, score, _) in list.iter() {
                if kept.contains(&id) {
                    continue;
                }
                let mut touch = RankedDelta::new(num_topics);
                touch.record(topic, score);
                prop_assert!(
                    !agg.disturbed_by(&touch),
                    "dropped tuple at {score} (floor {floor}) disturbs the aggregate"
                );
                for frontier in &frontiers {
                    prop_assert!(
                        !frontier.disturbed_by(&touch),
                        "dropped tuple at {score} disturbs a resident frontier"
                    );
                }
            }
        }
    }

    /// Once the whole stream slides out of the window (and nothing references
    /// it any more), every algorithm returns the empty result.
    #[test]
    fn queries_on_an_emptied_window_return_nothing(p in instance_params()) {
        let mut instance = build_instance(&p);
        let far_future = Timestamp(instance.engine.now().raw() + 10 * p.window_len + 10);
        instance.engine.ingest_bucket(vec![], far_future).unwrap();
        prop_assert_eq!(instance.engine.active_count(), 0);
        for alg in Algorithm::ALL {
            let r = instance.engine.query(&instance.query, alg).unwrap();
            prop_assert!(r.is_empty(), "{} returned elements from an empty window", alg);
            prop_assert_eq!(r.score, 0.0);
        }
    }
}

/// The index-based algorithms that keep a singleton-score memo across
/// refreshes (the standing-query manager attaches no cache to CELF or
/// SieveStreaming).
const CACHED_ALGORITHMS: [Algorithm; 3] = [
    Algorithm::Mtts,
    Algorithm::Mttd,
    Algorithm::TopkRepresentative,
];

/// Asserts that a delta-restricted (memoised) run of each cached algorithm is
/// decision-identical to a from-scratch run on the same engine state: same
/// selected set, same traversal depth, same frontier, score equal to within
/// float noise — and never *more* scoring passes.
fn assert_cached_run_matches(
    engine: &KsirEngine<DenseTopicWordTable>,
    query: &KsirQuery,
    delta: &WindowDelta,
    caches: &mut [SingletonCache],
) {
    for (alg, cache) in CACHED_ALGORITHMS.iter().zip(caches.iter_mut()) {
        let fresh = engine.query(query, *alg).unwrap();
        let cached = engine.query_delta(query, *alg, delta, cache).unwrap();
        prop_assert_eq!(
            &cached.elements,
            &fresh.elements,
            "{}: selected sets diverged",
            alg
        );
        // Cached singleton scores replay earlier scoring passes; summation
        // order inside a pass is deterministic, so any divergence is at most
        // accumulated rounding from values primed on earlier slides.
        prop_assert!(
            (cached.score - fresh.score).abs() <= 1e-12,
            "{}: cached score {} vs fresh {}",
            alg,
            cached.score,
            fresh.score
        );
        prop_assert_eq!(
            cached.evaluated_elements,
            fresh.evaluated_elements,
            "{}: traversal depth diverged",
            alg
        );
        prop_assert!(
            cached.gain_evaluations <= fresh.gain_evaluations,
            "{}: cached run scored more ({} > {})",
            alg,
            cached.gain_evaluations,
            fresh.gain_evaluations
        );
        match (&cached.frontier, &fresh.frontier) {
            (Some(c), Some(f)) => {
                prop_assert_eq!(&c.floors, &f.floors, "{}: frontier floors diverged", alg);
                match (c.bar, f.bar) {
                    (Some(cb), Some(fb)) => prop_assert!(
                        (cb - fb).abs() <= 1e-12,
                        "{}: bar {} vs fresh {}",
                        alg,
                        cb,
                        fb
                    ),
                    (None, None) => {}
                    (cb, fb) => prop_assert!(
                        false,
                        "{}: bar presence diverged ({:?} vs {:?})",
                        alg,
                        cb,
                        fb
                    ),
                }
            }
            (None, None) => {}
            _ => prop_assert!(false, "{}: frontier presence diverged", alg),
        }
    }
}

/// Element ids a slide changed: activated, resurrected, or with refreshed
/// ranked-list tuples.
fn changed_ids(delta: &WindowDelta) -> Vec<ElementId> {
    delta
        .activated
        .iter()
        .chain(&delta.resurrected)
        .chain(&delta.refreshed)
        .copied()
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The tentpole equivalence: replaying a stream slide by slide, a
    /// delta-restricted refresh (retained singleton-score memo, primed from
    /// each slide's [`WindowDelta`]) makes the same decisions as a
    /// from-scratch run on every slide — including an expiry-heavy final
    /// slide that empties the window.
    #[test]
    fn delta_restricted_refresh_is_decision_identical(p in instance_params()) {
        let StreamInstance { mut engine, stream, query, .. } = build_stream_instance(&p);
        let mut caches: Vec<SingletonCache> =
            CACHED_ALGORITHMS.iter().map(|_| SingletonCache::new()).collect();

        for (element, tv) in stream {
            let end = element.ts;
            let report = engine.ingest_bucket(vec![(element, tv)], end).unwrap();
            assert_cached_run_matches(&engine, &query, &report.delta, &mut caches);
        }

        // Mass expiry: slide far enough that everything falls out at once.
        let far_future = Timestamp(engine.now().raw() + 10 * p.window_len + 10);
        let report = engine.ingest_bucket(vec![], far_future).unwrap();
        prop_assert_eq!(engine.active_count(), 0);
        assert_cached_run_matches(&engine, &query, &report.delta, &mut caches);
    }

    /// Priming rebuilds a changed element's singleton score from its stored
    /// tuples *bit-identically* to a fresh scoring pass on the same window
    /// state — the invariant that lets cached runs replay admission
    /// decisions exactly.
    #[test]
    fn primed_scores_match_fresh_evaluation(p in instance_params()) {
        let StreamInstance { mut engine, stream, query, query_vector } =
            build_stream_instance(&p);
        for (element, tv) in stream {
            let end = element.ts;
            let report = engine.ingest_bucket(vec![(element, tv)], end).unwrap();
            let mut cache = SingletonCache::new();
            prime_singleton_cache(engine.ranked_lists(), &query, &report.delta, &mut cache);

            let scorer = engine.scorer();
            let evaluator = QueryEvaluator::new(
                scorer,
                engine.window(),
                engine.topic_vectors(),
                &query_vector,
            );
            for id in changed_ids(&report.delta) {
                let primed = cache.get(id);
                prop_assert!(
                    primed.is_some(),
                    "changed element {id:?} was not primed from the live lists"
                );
                let fresh = evaluator.delta(id);
                prop_assert_eq!(
                    primed.unwrap().to_bits(),
                    fresh.to_bits(),
                    "primed score {} != fresh score {} for {:?}",
                    primed.unwrap(),
                    fresh,
                    id
                );
            }
        }
    }

    /// The touched-suffix contract behind delta-restricted reads: every
    /// stored tuple of a changed element lies within the slide's touched
    /// suffix of that topic's list — the touch exists, bounds the tuple's
    /// score from above, and a [`RankedView::suffix_cursor`] started at the
    /// touch height reaches the tuple.
    #[test]
    fn changed_tuples_lie_within_touched_suffixes(p in instance_params()) {
        let StreamInstance { mut engine, stream, .. } = build_stream_instance(&p);
        for (element, tv) in stream {
            let end = element.ts;
            let report = engine.ingest_bucket(vec![(element, tv)], end).unwrap();
            let lists = engine.ranked_lists();
            for id in changed_ids(&report.delta) {
                for t in 0..p.num_topics {
                    let topic = TopicId(t as u32);
                    let score = match lists.stored_score(topic, id) {
                        StoredScore::Score(score) => score,
                        StoredScore::Absent => continue,
                        StoredScore::Unsupported => {
                            panic!("live ranked lists must support point lookups")
                        }
                    };
                    let touch = report.delta.ranked.touch(topic);
                    prop_assert!(
                        touch.is_some(),
                        "changed element {id:?} has a tuple in topic {topic:?} \
                         but the slide logged no touch there"
                    );
                    let touch = touch.unwrap();
                    prop_assert!(
                        score <= touch.high + FLOOR_SLACK,
                        "tuple score {score} above touch high {}",
                        touch.high
                    );
                    let mut cursor = lists.suffix_cursor(topic, touch.high);
                    let mut found = false;
                    while let Some((cid, cscore, _)) = cursor.current() {
                        if cid == id {
                            prop_assert_eq!(
                                cscore.to_bits(),
                                score.to_bits(),
                                "suffix cursor surfaced a different score for {:?}",
                                id
                            );
                            found = true;
                            break;
                        }
                        cursor.advance();
                    }
                    prop_assert!(
                        found,
                        "suffix cursor from {} never reached changed element {:?}",
                        touch.high,
                        id
                    );
                }
            }
        }
    }
}

/// Random traversal frontiers over `num_topics` topics: each support topic
/// watched with a finite floor in `[0, 1)` or as exhausted (`None`).
fn random_frontiers(rng: &mut StdRng, num_topics: usize, count: usize) -> Vec<QueryFrontier> {
    (0..count)
        .map(|_| {
            let mut floors = Vec::new();
            for t in 0..num_topics {
                if !rng.gen_bool(0.8) {
                    continue;
                }
                let floor = if rng.gen_bool(0.75) {
                    Some(rng.gen::<f64>())
                } else {
                    None
                };
                floors.push((TopicId(t as u32), floor));
            }
            QueryFrontier::new(floors)
        })
        .collect()
}

/// Random slide touch logs: a few topics touched at random scores each.
fn random_touches(rng: &mut StdRng, num_topics: usize, count: usize) -> Vec<RankedDelta> {
    (0..count)
        .map(|_| {
            let mut delta = RankedDelta::new(num_topics);
            for t in 0..num_topics {
                if rng.gen_bool(0.5) {
                    delta.record(TopicId(t as u32), rng.gen::<f64>());
                }
            }
            delta
        })
        .collect()
}
