//! Grouping an ordered element stream into fixed-length buckets.

use ksir_types::{KsirError, Result, SocialElement, Timestamp};

use crate::window::WindowConfig;

/// Groups a timestamp-ordered stream of elements into buckets of length `L`.
///
/// The k-SIR architecture (Figure 4) updates the active window and the ranked
/// lists once per bucket, at the discrete times `L, 2L, 3L, …`.  The
/// bucketizer enforces the ordering contract of the stream: feeding an element
/// older than an already-emitted bucket is an error.
#[derive(Debug)]
pub struct Bucketizer {
    config: WindowConfig,
    current_end: Timestamp,
    pending: Vec<SocialElement>,
    emitted_through: Option<Timestamp>,
}

/// One bucket of elements: everything posted in `(end - L, end]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Bucket {
    /// Bucket end time (a multiple of the bucket length `L`).
    pub end: Timestamp,
    /// Elements in the bucket, in arrival order.
    pub elements: Vec<SocialElement>,
}

impl Bucketizer {
    /// Creates a bucketizer for the given window configuration.
    pub fn new(config: WindowConfig) -> Self {
        Bucketizer {
            config,
            current_end: Timestamp(config.bucket_len()),
            pending: Vec::new(),
            emitted_through: None,
        }
    }

    /// The end time of the bucket currently being filled.
    pub fn current_bucket_end(&self) -> Timestamp {
        self.current_end
    }

    /// Feeds one element, returning every bucket that became complete.
    ///
    /// A bucket with end time `b` is complete as soon as an element with
    /// `ts > b` arrives; empty buckets are emitted too so the window always
    /// advances at a steady cadence even through silent periods.
    pub fn push(&mut self, element: SocialElement) -> Result<Vec<Bucket>> {
        if let Some(done) = self.emitted_through {
            if element.ts <= done {
                return Err(KsirError::TimestampRegression {
                    last: done,
                    offending: element.ts,
                });
            }
        }
        let mut completed = Vec::new();
        while element.ts > self.current_end {
            completed.push(self.roll());
        }
        self.pending.push(element);
        Ok(completed)
    }

    /// Flushes the bucket currently being filled (used at end of stream).
    pub fn flush(&mut self) -> Option<Bucket> {
        if self.pending.is_empty() {
            return None;
        }
        Some(self.roll())
    }

    fn roll(&mut self) -> Bucket {
        let bucket = Bucket {
            end: self.current_end,
            elements: std::mem::take(&mut self.pending),
        };
        self.emitted_through = Some(self.current_end);
        self.current_end = Timestamp(self.current_end.raw() + self.config.bucket_len());
        bucket
    }
}

/// Cuts a timestamp-ordered stream of `(element, payload)` pairs into
/// buckets of length `bucket_len` ending at multiples of `L`, invoking `f`
/// once per bucket with its contents and end time.
///
/// The first bucket ends at the first multiple of `L` at or after
/// `max(now, L)`, so a consumer already advanced to logical time `now` keeps
/// its cadence.  Intermediate empty buckets are emitted (as empty vectors) so
/// the window slides through silent periods; a trailing partial bucket is
/// flushed at the end.  Returns the number of buckets emitted.
///
/// This is the single definition of the stream-replay convention shared by
/// `KsirEngine::ingest_stream`, the standing-query manager and the replay
/// benchmarks — keep them on this helper so the bucket-boundary contract
/// cannot drift between them.
pub fn for_each_bucket<P, I, F>(
    bucket_len: u64,
    now: Timestamp,
    stream: I,
    mut f: F,
) -> Result<usize>
where
    I: IntoIterator<Item = (SocialElement, P)>,
    F: FnMut(Vec<(SocialElement, P)>, Timestamp) -> Result<()>,
{
    let mut current_end = Timestamp(now.raw().max(bucket_len));
    if !current_end.raw().is_multiple_of(bucket_len) {
        current_end = Timestamp(current_end.raw().div_ceil(bucket_len) * bucket_len);
    }
    let mut pending: Vec<(SocialElement, P)> = Vec::new();
    let mut buckets = 0;
    for (element, payload) in stream {
        while element.ts > current_end {
            f(std::mem::take(&mut pending), current_end)?;
            buckets += 1;
            current_end = Timestamp(current_end.raw() + bucket_len);
        }
        pending.push((element, payload));
    }
    if !pending.is_empty() {
        f(pending, current_end)?;
        buckets += 1;
    }
    Ok(buckets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksir_types::{Document, ElementId};

    fn elem(id: u64, ts: u64) -> SocialElement {
        SocialElement::original(ElementId(id), Timestamp(ts), Document::new())
    }

    #[test]
    fn elements_accumulate_until_bucket_boundary() {
        let cfg = WindowConfig::new(20, 5).unwrap();
        let mut b = Bucketizer::new(cfg);
        assert!(b.push(elem(1, 1)).unwrap().is_empty());
        assert!(b.push(elem(2, 4)).unwrap().is_empty());
        assert!(b.push(elem(3, 5)).unwrap().is_empty());
        // ts = 6 closes the first bucket (end = 5)
        let done = b.push(elem(4, 6)).unwrap();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].end, Timestamp(5));
        assert_eq!(done[0].elements.len(), 3);
    }

    #[test]
    fn silent_periods_emit_empty_buckets() {
        let cfg = WindowConfig::new(20, 5).unwrap();
        let mut b = Bucketizer::new(cfg);
        b.push(elem(1, 2)).unwrap();
        let done = b.push(elem(2, 18)).unwrap();
        // buckets ending at 5, 10, 15 all complete; 5 has one element
        assert_eq!(done.len(), 3);
        assert_eq!(done[0].elements.len(), 1);
        assert!(done[1].elements.is_empty());
        assert!(done[2].elements.is_empty());
        assert_eq!(b.current_bucket_end(), Timestamp(20));
    }

    #[test]
    fn flush_returns_partial_bucket() {
        let cfg = WindowConfig::new(20, 5).unwrap();
        let mut b = Bucketizer::new(cfg);
        assert!(b.flush().is_none());
        b.push(elem(1, 3)).unwrap();
        let last = b.flush().unwrap();
        assert_eq!(last.end, Timestamp(5));
        assert_eq!(last.elements.len(), 1);
        assert!(b.flush().is_none());
    }

    #[test]
    fn for_each_bucket_matches_engine_replay_convention() {
        let pairs: Vec<(SocialElement, u32)> = [1u64, 4, 6, 18, 21]
            .iter()
            .map(|&ts| (elem(ts, ts), ts as u32))
            .collect();
        let mut seen: Vec<(usize, u64)> = Vec::new();
        let buckets = for_each_bucket(5, Timestamp::ZERO, pairs, |bucket, end| {
            seen.push((bucket.len(), end.raw()));
            Ok(())
        })
        .unwrap();
        // Buckets end at 5, 10, 15, 20 (10 and 15 empty), final flush at 25.
        assert_eq!(buckets, 5);
        assert_eq!(seen, vec![(2, 5), (1, 10), (0, 15), (1, 20), (1, 25)]);
    }

    #[test]
    fn for_each_bucket_resumes_from_advanced_now() {
        // A consumer already at t = 7 with L = 5 starts at the next multiple
        // of L, i.e. 10.
        let pairs = vec![(elem(1, 8), ()), (elem(2, 12), ())];
        let mut ends = Vec::new();
        for_each_bucket(5, Timestamp(7), pairs, |_, end| {
            ends.push(end.raw());
            Ok(())
        })
        .unwrap();
        assert_eq!(ends, vec![10, 15]);
    }

    #[test]
    fn for_each_bucket_propagates_errors() {
        let pairs = vec![(elem(1, 1), ()), (elem(2, 9), ())];
        let err = for_each_bucket(5, Timestamp::ZERO, pairs, |_, _| {
            Err(KsirError::invalid_parameter("test", "boom"))
        })
        .unwrap_err();
        assert!(matches!(err, KsirError::InvalidParameter { .. }));
    }

    #[test]
    fn regression_into_emitted_bucket_is_rejected() {
        let cfg = WindowConfig::new(20, 5).unwrap();
        let mut b = Bucketizer::new(cfg);
        b.push(elem(1, 3)).unwrap();
        b.push(elem(2, 9)).unwrap(); // emits bucket ending at 5
        let err = b.push(elem(3, 4)).unwrap_err();
        assert!(matches!(err, KsirError::TimestampRegression { .. }));
        // but anything newer than the emitted boundary is fine, even if it is
        // older than the previous element (same-bucket disorder is allowed)
        assert!(b.push(elem(4, 8)).is_ok());
    }
}
