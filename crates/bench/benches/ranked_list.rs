//! Micro-benchmarks of the per-topic ranked lists (Algorithm 1's data
//! structure): inserts, score adjustments, removals and ordered traversal.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use ksir_stream::RankedList;
use ksir_types::{ElementId, Timestamp};

fn filled_list(n: u64) -> RankedList {
    let mut list = RankedList::new();
    for i in 0..n {
        list.upsert(
            ElementId(i),
            ((i * 37) % 1000) as f64 / 1000.0,
            Timestamp(i),
        );
    }
    list
}

fn bench_ranked_list(c: &mut Criterion) {
    let mut group = c.benchmark_group("ranked_list");
    group.sample_size(30);

    for &n in &[1_000u64, 10_000, 100_000] {
        group.throughput(Throughput::Elements(n));
        group.bench_function(BenchmarkId::new("build", n), |b| {
            b.iter(|| black_box(filled_list(n)))
        });

        let list = filled_list(n);
        group.bench_function(BenchmarkId::new("adjust_score", n), |b| {
            let mut list = list.clone_for_bench();
            let mut i = 0u64;
            b.iter(|| {
                i = (i + 1) % n;
                list.upsert(ElementId(i), ((i * 13) % 997) as f64 / 997.0, Timestamp(i));
            })
        });

        group.bench_function(BenchmarkId::new("traverse_top_100", n), |b| {
            b.iter(|| {
                let mut cursor = list.cursor();
                let mut sum = 0.0;
                for _ in 0..100 {
                    match cursor.current() {
                        Some((_, s, _)) => sum += s,
                        None => break,
                    }
                    cursor.advance();
                }
                black_box(sum)
            })
        });
    }
    group.finish();
}

/// Helper so the adjust benchmark does not mutate the shared list.
trait CloneForBench {
    fn clone_for_bench(&self) -> RankedList;
}

impl CloneForBench for RankedList {
    fn clone_for_bench(&self) -> RankedList {
        let mut out = RankedList::new();
        for (id, score, ts) in self.iter() {
            out.upsert(id, score, ts);
        }
        out
    }
}

criterion_group!(benches, bench_ranked_list);
criterion_main!(benches);
