//! Pipelined epochs (snapshot-backed refresh) vs the quiesce-before-write
//! barrier.
//!
//! Same shared [`MaintenanceScenario`] as the other `continuous*` benches.
//! Both modes use `ingest_bucket_async`; the only difference is
//! `ShardConfig::pipeline_depth`:
//!
//! * `barrier_depth1` — every index write waits for the previous slide's
//!   refresh compute (the PR-3 behaviour),
//! * `pipelined_depth2` — the index write proceeds against an immutable
//!   epoch snapshot while the previous epoch's refreshes drain.
//!
//! The number that matters is the **ingest span** (first ingest started →
//! last ingest returned): its per-slide mean is the ingest-to-ingest
//! interval under refresh load, the bound the snapshot subsystem removes.
//! The CI perf gate (`perf_gate`) enforces that depth 2 never regresses
//! past depth 1; this bench exists to observe the margin interactively.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ksir_bench::MaintenanceScenario;
use ksir_continuous::ShardConfig;

fn bench_pipelined_maintenance(c: &mut Criterion) {
    let scenario = MaintenanceScenario::standard();
    let mut group = c.benchmark_group("continuous_pipelined");
    group.sample_size(10);

    group.bench_function(
        BenchmarkId::new("barrier_depth1", scenario.stream.len()),
        |b| {
            b.iter(|| {
                scenario
                    .run_async(
                        ShardConfig::default().with_pipeline_depth(1),
                        Duration::ZERO,
                    )
                    .ingest_span
            })
        },
    );
    group.bench_function(
        BenchmarkId::new("pipelined_depth2", scenario.stream.len()),
        |b| {
            b.iter(|| {
                scenario
                    .run_async(ShardConfig::default(), Duration::ZERO)
                    .ingest_span
            })
        },
    );
    group.finish();
}

/// One-shot report: intervals plus the snapshot/copy-on-write cost the
/// overlap paid for.
fn report_pipeline_overlap(c: &mut Criterion) {
    let scenario = MaintenanceScenario::standard();
    let barrier = scenario.run_async(
        ShardConfig::default().with_pipeline_depth(1),
        Duration::ZERO,
    );
    let pipelined = scenario.run_async(ShardConfig::default(), Duration::ZERO);
    let ms = |d: Duration| d.as_secs_f64() * 1e3;
    assert_eq!(
        barrier.stats, pipelined.stats,
        "pipelining must not change refresh decisions"
    );
    println!(
        "continuous_pipelined/interval: {:.3} ms/slide pipelined vs {:.3} ms/slide barrier \
         over {} slides (span {:.0} ms vs {:.0} ms)",
        ms(pipelined.ingest_interval()),
        ms(barrier.ingest_interval()),
        pipelined.stats.slides,
        ms(pipelined.ingest_span),
        ms(barrier.ingest_span),
    );
    println!(
        "continuous_pipelined/capture: {} epochs captured, {} shard snapshots, \
         {} writer cow clones (barrier run: {} / {} / {})",
        pipelined.snapshots.epochs_captured,
        pipelined.snapshots.shard_snapshots,
        pipelined.cow_clones,
        barrier.snapshots.epochs_captured,
        barrier.snapshots.shard_snapshots,
        barrier.cow_clones,
    );
    let _ = c;
}

criterion_group!(
    benches,
    bench_pipelined_maintenance,
    report_pipeline_overlap
);
criterion_main!(benches);
