//! Readiness: is the pipeline keeping up, or should a load balancer stop
//! routing to it?
//!
//! `/health` is liveness — the server thread is accepting, nothing more.
//! `/ready` is the SLO check: it evaluates a [`ReadinessPolicy`] against the
//! live telemetry bundle and answers 503 while any bound is violated.  The
//! three inputs deliberately cover the three ways a k-SIR pipeline degrades:
//!
//! * **freshness lag** — the oldest ingested-but-undelivered epoch's age,
//!   read live from the [`FreshnessClock`](ksir_telemetry::FreshnessClock)
//!   (not from the `manager.freshness_lag` gauge, which is only republished
//!   at barriers and would go stale exactly when the pipeline stalls);
//! * **quarantined shards** — the `shard.quarantine_active` gauge, counted
//!   up at quarantine and back down when a lift restores the shard;
//! * **overload level** — the load-shed ladder rung from `overload.level`.

use std::time::Duration;

use ksir_telemetry::Telemetry;

/// Bounds a deployment considers "ready".  The defaults are deliberately
/// strict: any quarantined shard or any ladder step beyond light shedding is
/// a routing problem even when throughput looks fine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadinessPolicy {
    /// Oldest unconsumed epoch may be at most this stale.
    pub max_freshness_lag: Duration,
    /// Quarantined shards tolerated before the instance is not ready.
    pub max_quarantined: u64,
    /// Highest overload-ladder rung still considered ready (0 = normal).
    pub max_overload_level: u64,
}

impl Default for ReadinessPolicy {
    fn default() -> Self {
        ReadinessPolicy {
            max_freshness_lag: Duration::from_secs(5),
            max_quarantined: 0,
            max_overload_level: 1,
        }
    }
}

impl ReadinessPolicy {
    /// Overrides the freshness-lag bound.
    pub fn with_max_freshness_lag(mut self, lag: Duration) -> Self {
        self.max_freshness_lag = lag;
        self
    }

    /// Overrides the quarantine tolerance.
    pub fn with_max_quarantined(mut self, shards: u64) -> Self {
        self.max_quarantined = shards;
        self
    }

    /// Overrides the overload-ladder tolerance.
    pub fn with_max_overload_level(mut self, level: u64) -> Self {
        self.max_overload_level = level;
        self
    }
}

/// One readiness evaluation: the observed values, the verdict, and a reason
/// string per violated bound.
#[derive(Debug, Clone)]
pub struct Readiness {
    /// `true` when every bound holds.
    pub ready: bool,
    /// Live freshness lag (bundle-clock nanoseconds) at evaluation.
    pub freshness_lag_nanos: u64,
    /// `shard.quarantine_active` at evaluation.
    pub quarantined: u64,
    /// `overload.level` at evaluation.
    pub overload_level: u64,
    /// One human-readable line per violated bound; empty when ready.
    pub reasons: Vec<String>,
}

impl Readiness {
    /// Evaluates `policy` against the bundle's live state.
    pub fn evaluate(telemetry: &Telemetry, policy: &ReadinessPolicy) -> Self {
        let lag = telemetry.freshness().lag_nanos(telemetry.now_nanos());
        let quarantined = telemetry.registry().gauge("shard.quarantine_active").get();
        let overload = telemetry.registry().gauge("overload.level").get();

        let mut reasons = Vec::new();
        let max_lag = policy.max_freshness_lag.as_nanos().min(u64::MAX as u128) as u64;
        if lag > max_lag {
            reasons.push(format!(
                "freshness lag {lag}ns exceeds {max_lag}ns (watermark stall)"
            ));
        }
        if quarantined > policy.max_quarantined {
            reasons.push(format!(
                "{quarantined} shard(s) quarantined (tolerance {})",
                policy.max_quarantined
            ));
        }
        if overload > policy.max_overload_level {
            reasons.push(format!(
                "overload ladder at level {overload} (tolerance {})",
                policy.max_overload_level
            ));
        }
        Readiness {
            ready: reasons.is_empty(),
            freshness_lag_nanos: lag,
            quarantined,
            overload_level: overload,
            reasons,
        }
    }

    /// The evaluation as one JSON object (the `/ready` body).
    pub fn to_json(&self) -> String {
        let mut reasons = String::from("[");
        for (i, reason) in self.reasons.iter().enumerate() {
            if i > 0 {
                reasons.push_str(", ");
            }
            reasons.push('"');
            // Reasons are generated above from numbers and fixed text; the
            // escape keeps the invariant local anyway.
            reasons.push_str(&reason.replace('\\', "\\\\").replace('"', "\\\""));
            reasons.push('"');
        }
        reasons.push(']');
        format!(
            "{{\n  \"ready\": {},\n  \"freshness_lag_ns\": {},\n  \"quarantined\": {},\n  \
             \"overload_level\": {},\n  \"reasons\": {}\n}}\n",
            self.ready, self.freshness_lag_nanos, self.quarantined, self.overload_level, reasons,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksir_telemetry::TelemetryConfig;

    #[test]
    fn fresh_bundle_is_ready() {
        let telemetry = Telemetry::new(TelemetryConfig::default());
        let readiness = Readiness::evaluate(&telemetry, &ReadinessPolicy::default());
        assert!(readiness.ready);
        assert!(readiness.reasons.is_empty());
        assert!(readiness.to_json().contains("\"ready\": true"));
    }

    #[test]
    fn each_bound_trips_independently() {
        let telemetry = Telemetry::new(TelemetryConfig::default());
        let policy = ReadinessPolicy::default();

        // Watermark stall: an epoch stamped but never retired ages forever.
        telemetry.freshness().stamp(1, 0);
        let strict = policy.with_max_freshness_lag(Duration::ZERO);
        let readiness = Readiness::evaluate(&telemetry, &strict);
        assert!(!readiness.ready);
        assert!(readiness.reasons[0].contains("watermark stall"));
        telemetry.freshness().retire_through(1);
        assert!(Readiness::evaluate(&telemetry, &strict).ready);

        telemetry.registry().gauge("shard.quarantine_active").set(1);
        let readiness = Readiness::evaluate(&telemetry, &policy);
        assert!(!readiness.ready);
        assert!(readiness.reasons[0].contains("quarantined"));
        telemetry.registry().gauge("shard.quarantine_active").set(0);

        telemetry.registry().gauge("overload.level").set(2);
        let readiness = Readiness::evaluate(&telemetry, &policy);
        assert!(!readiness.ready, "level 2 exceeds the default tolerance 1");
        assert_eq!(readiness.overload_level, 2);
        telemetry.registry().gauge("overload.level").set(1);
        assert!(Readiness::evaluate(&telemetry, &policy).ready);
    }
}
