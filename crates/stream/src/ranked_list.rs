//! Per-topic ranked lists of active elements (Algorithm 1).
//!
//! For every topic `θ_i` the system keeps a list `RL_i` of tuples
//! `⟨δ_i(e), t_e⟩` — the topic-wise representativeness score of each active
//! element and the time it was last referenced — sorted in descending order of
//! score.  MTTS and MTTD traverse the lists with the `first` / `next`
//! operations to evaluate elements in decreasing order of their upper-bound
//! score and terminate early.
//!
//! The list is a [`BTreeSet`] keyed by `(descending score, element id)` plus a
//! hash map from element id to its current key, giving `O(log n)` insert,
//! adjust and delete, and ordered traversal with zero allocation per step.
//! An ablation benchmark (`crates/bench/benches/ablation.rs`) compares this
//! layout against a re-sorted `Vec` baseline.
//!
//! ## Snapshot capture
//!
//! Both structures live behind an `Arc` internally, so an immutable image of
//! a list at one instant is an `O(1)` pointer clone ([`RankedList::share`] →
//! [`RankedListHandle`]): the writer's next mutation pays a copy-on-write
//! clone of that one list (counted in [`RankedList::cow_clones`]) and the
//! reader keeps traversing the frozen image for as long as it likes.  For
//! bounded captures, [`RankedListHandle::prefix`] materialises the descending
//! prefix of tuples at or above a score floor into a contiguous
//! [`RankedPrefix`].  `ksir-snapshot` builds its per-epoch / per-shard
//! snapshots out of exactly these two primitives.

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

use ksir_types::{ElementId, Timestamp, TopicId};

use crate::delta::{RankedDelta, FLOOR_SLACK};

/// Key ordering entries by descending score, breaking ties by element id.
#[derive(Debug, Clone, Copy, PartialEq)]
struct ScoreKey {
    score: f64,
    id: ElementId,
}

impl Eq for ScoreKey {}

impl PartialOrd for ScoreKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ScoreKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Descending by score, then ascending by id for a total order.
        other
            .score
            .total_cmp(&self.score)
            .then_with(|| self.id.cmp(&other.id))
    }
}

/// The shared (and therefore snapshot-able) storage of one ranked list.
#[derive(Debug, Clone, Default)]
struct ListCore {
    order: BTreeSet<ScoreKey>,
    entries: HashMap<ElementId, (f64, Timestamp)>,
}

impl ListCore {
    fn first(&self) -> Option<(ElementId, f64, Timestamp)> {
        self.order.iter().next().map(|k| {
            let (_, ts) = self.entries[&k.id];
            (k.id, k.score, ts)
        })
    }

    fn iter(&self) -> impl Iterator<Item = (ElementId, f64, Timestamp)> + '_ {
        self.order.iter().map(move |k| {
            let (_, ts) = self.entries[&k.id];
            (k.id, k.score, ts)
        })
    }

    /// Ordered iteration over the suffix of entries with score
    /// `≤ high + FLOOR_SLACK`, highest first — an `O(log n)` positioned seek
    /// on the score order rather than a scan past the prefix.
    fn suffix_iter(&self, high: f64) -> impl Iterator<Item = (ElementId, f64, Timestamp)> + '_ {
        // Keys sort by descending score then ascending id, so the first key
        // at or below the bound is `(high + slack, smallest id)`.
        let start = ScoreKey {
            score: high + FLOOR_SLACK,
            id: ElementId(0),
        };
        self.order.range(start..).map(move |k| {
            let (_, ts) = self.entries[&k.id];
            (k.id, k.score, ts)
        })
    }
}

/// One ranked list `RL_i`: active elements ordered by topic-wise score.
#[derive(Debug, Default)]
pub struct RankedList {
    core: Arc<ListCore>,
    /// Mutations that had to deep-clone the core because a
    /// [`RankedListHandle`] (snapshot) was still alive.
    cow_clones: usize,
}

impl RankedList {
    /// Creates an empty list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mutable access to the core, cloning it first iff a snapshot handle is
    /// still sharing it (copy-on-write).
    fn core_mut(&mut self) -> &mut ListCore {
        if Arc::strong_count(&self.core) > 1 {
            self.cow_clones += 1;
        }
        Arc::make_mut(&mut self.core)
    }

    /// Number of mutations that paid a copy-on-write clone because a
    /// [`RankedListHandle`] was outstanding.  The writer-side cost of
    /// snapshot capture; zero in pure-synchronous use.
    pub fn cow_clones(&self) -> usize {
        self.cow_clones
    }

    /// An `O(1)` immutable image of the list at this instant.  The handle
    /// keeps observing exactly today's tuples no matter how the list is
    /// mutated afterwards; the first subsequent mutation pays one
    /// copy-on-write clone (see [`RankedList::cow_clones`]).
    pub fn share(&self) -> RankedListHandle {
        RankedListHandle {
            core: Arc::clone(&self.core),
        }
    }

    /// Number of elements in the list.
    pub fn len(&self) -> usize {
        self.core.entries.len()
    }

    /// Returns `true` if the list is empty.
    pub fn is_empty(&self) -> bool {
        self.core.entries.is_empty()
    }

    /// Returns `true` if the element is present.
    pub fn contains(&self, id: ElementId) -> bool {
        self.core.entries.contains_key(&id)
    }

    /// Returns the stored `(score, last-referenced time)` tuple for `id`.
    pub fn get(&self, id: ElementId) -> Option<(f64, Timestamp)> {
        self.core.entries.get(&id).copied()
    }

    /// Inserts or updates an element's tuple, repositioning it in the order.
    pub fn upsert(&mut self, id: ElementId, score: f64, last_referenced: Timestamp) {
        debug_assert!(score.is_finite(), "ranked list scores must be finite");
        let core = self.core_mut();
        if let Some((old_score, _)) = core.entries.insert(id, (score, last_referenced)) {
            core.order.remove(&ScoreKey {
                score: old_score,
                id,
            });
        }
        core.order.insert(ScoreKey { score, id });
    }

    /// Removes an element (no-op if absent).  Returns the removed tuple so
    /// callers can log the position the removal touched.
    pub fn remove(&mut self, id: ElementId) -> Option<(f64, Timestamp)> {
        if !self.core.entries.contains_key(&id) {
            return None;
        }
        let core = self.core_mut();
        let (score, ts) = core.entries.remove(&id)?;
        core.order.remove(&ScoreKey { score, id });
        Some((score, ts))
    }

    /// The highest-scored entry (`RL_i.first` in the paper).
    pub fn first(&self) -> Option<(ElementId, f64, Timestamp)> {
        self.core.first()
    }

    /// Iterates over entries in descending score order.
    pub fn iter(&self) -> impl Iterator<Item = (ElementId, f64, Timestamp)> + '_ {
        self.core.iter()
    }

    /// Starts an ordered traversal (`first` + repeated `next`).
    pub fn cursor(&self) -> RankedListCursor<'_> {
        RankedListCursor::over(self.core.iter())
    }

    /// Starts an ordered traversal over the *suffix* of entries whose score
    /// is at or below `high` (with the same comparison slack the
    /// floor/frontier checks use).  With `high` taken from a slide's
    /// [`Touch`](crate::Touch) entry, the suffix contains every tuple that
    /// slide upserted or removed in this list — touches are logged at
    /// `max(old, new)` score, so nothing the slide rewrote can sit above it.
    /// `O(log n)` to position, then `O(1)` per step.
    pub fn suffix_cursor(&self, high: f64) -> RankedListCursor<'_> {
        RankedListCursor::over(self.core.suffix_iter(high))
    }
}

/// An immutable, `Arc`-shared image of one ranked list, detached from the
/// writer (see [`RankedList::share`]).  Readers traverse it exactly like the
/// live list; the writer advances underneath without ever invalidating it.
#[derive(Debug, Clone)]
pub struct RankedListHandle {
    core: Arc<ListCore>,
}

impl RankedListHandle {
    /// Number of elements in the captured image.
    pub fn len(&self) -> usize {
        self.core.entries.len()
    }

    /// Returns `true` if the captured image is empty.
    pub fn is_empty(&self) -> bool {
        self.core.entries.is_empty()
    }

    /// The captured `(score, last-referenced time)` tuple for `id`.
    pub fn get(&self, id: ElementId) -> Option<(f64, Timestamp)> {
        self.core.entries.get(&id).copied()
    }

    /// Returns `true` if the captured image still shares storage with the
    /// list it was taken from (i.e. the writer has not mutated it since).
    pub fn is_shared(&self) -> bool {
        Arc::strong_count(&self.core) > 1
    }

    /// Iterates over the captured entries in descending score order.
    pub fn iter(&self) -> impl Iterator<Item = (ElementId, f64, Timestamp)> + '_ {
        self.core.iter()
    }

    /// Starts an ordered traversal over the captured image.
    pub fn cursor(&self) -> RankedListCursor<'_> {
        RankedListCursor::over(self.core.iter())
    }

    /// Starts an ordered traversal over the captured suffix of entries whose
    /// score is at or below `high` — see [`RankedList::suffix_cursor`].
    pub fn suffix_cursor(&self, high: f64) -> RankedListCursor<'_> {
        RankedListCursor::over(self.core.suffix_iter(high))
    }

    /// Materialises the descending prefix of tuples whose score is at or
    /// above `floor` (with the same comparison slack the frontier checks
    /// use) into a contiguous [`RankedPrefix`]; `None` copies the whole
    /// list.  `O(prefix length)`.
    pub fn prefix(&self, floor: Option<f64>) -> RankedPrefix {
        let mut entries = Vec::new();
        let mut truncated = 0usize;
        match floor {
            None => entries.extend(self.core.iter()),
            Some(floor) => {
                for (id, score, ts) in self.core.iter() {
                    if score >= floor - FLOOR_SLACK {
                        entries.push((id, score, ts));
                    } else {
                        // Entries are descending: everything from here on is
                        // below the floor.
                        truncated = self.core.entries.len() - entries.len();
                        break;
                    }
                }
            }
        }
        RankedPrefix { entries, truncated }
    }
}

/// A contiguous, descending prefix of one ranked list, captured by
/// [`RankedListHandle::prefix`] and truncated at a score floor.
///
/// The prefix provably contains every tuple a touch at or above the floor
/// could involve (same comparison slack as the frontier-disturbance checks),
/// which is what makes floor-truncated captures sufficient for *refresh
/// decisions*; whether it is also sufficient for re-running a query depends
/// on how deep the re-run descends — see `ksir-snapshot`'s `SnapshotPolicy`
/// for the exact/truncated trade-off.
#[derive(Debug, Clone, Default)]
pub struct RankedPrefix {
    entries: Vec<(ElementId, f64, Timestamp)>,
    truncated: usize,
}

impl RankedPrefix {
    /// Number of captured tuples.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of tuples of the source list that fell below the floor and
    /// were *not* captured.
    pub fn truncated(&self) -> usize {
        self.truncated
    }

    /// Returns `true` if the capture dropped any below-floor tuples.
    pub fn is_truncated(&self) -> bool {
        self.truncated > 0
    }

    /// The captured tuples, descending by score.
    pub fn entries(&self) -> &[(ElementId, f64, Timestamp)] {
        &self.entries
    }

    /// Iterates over the captured tuples in descending score order.
    pub fn iter(&self) -> impl Iterator<Item = (ElementId, f64, Timestamp)> + '_ {
        self.entries.iter().copied()
    }

    /// Starts an ordered traversal over the captured prefix.
    pub fn cursor(&self) -> RankedListCursor<'_> {
        RankedListCursor::over(self.entries.iter().copied())
    }

    /// Iterates over the captured tuples whose score is at or below `high`
    /// (same comparison slack as the floor checks), descending.  `O(log n)`
    /// binary search on the descending order to position.
    pub fn suffix_iter(&self, high: f64) -> impl Iterator<Item = (ElementId, f64, Timestamp)> + '_ {
        let start = self
            .entries
            .partition_point(|&(_, score, _)| score > high + FLOOR_SLACK);
        self.entries[start..].iter().copied()
    }

    /// Starts an ordered traversal over the captured tuples whose score is
    /// at or below `high` — see [`RankedList::suffix_cursor`].
    pub fn suffix_cursor(&self, high: f64) -> RankedListCursor<'_> {
        RankedListCursor::over(self.suffix_iter(high))
    }
}

/// A traversal cursor over one ranked list, mirroring the paper's
/// `RL_i.first` / `RL_i.next` operations.
///
/// The cursor is positioned *on* an element: [`RankedListCursor::current`]
/// returns it, [`RankedListCursor::advance`] moves to the next one.  Before
/// the first call to `advance`, the cursor is positioned on the head of the
/// list (or exhausted if the list is empty).
pub struct RankedListCursor<'a> {
    inner: Box<dyn Iterator<Item = (ElementId, f64, Timestamp)> + 'a>,
    current: Option<(ElementId, f64, Timestamp)>,
    started: bool,
}

impl std::fmt::Debug for RankedListCursor<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RankedListCursor")
            .field("current", &self.current)
            .field("started", &self.started)
            .finish()
    }
}

impl<'a> RankedListCursor<'a> {
    /// Builds a cursor over any descending `(id, score, ts)` sequence — the
    /// seam that lets snapshot prefixes and live lists share one traversal
    /// type (and with it the query algorithms in `ksir-core`).
    pub fn over(iter: impl Iterator<Item = (ElementId, f64, Timestamp)> + 'a) -> Self {
        RankedListCursor {
            inner: Box::new(iter),
            current: None,
            started: false,
        }
    }

    /// The element the cursor is currently positioned on, or `None` when the
    /// traversal is exhausted.
    pub fn current(&mut self) -> Option<(ElementId, f64, Timestamp)> {
        if !self.started {
            self.current = self.inner.next();
            self.started = true;
        }
        self.current
    }

    /// Moves to the next element and returns it.
    pub fn advance(&mut self) -> Option<(ElementId, f64, Timestamp)> {
        // Ensure the cursor is initialised before advancing past the head.
        let _ = self.current();
        self.current = self.inner.next();
        self.current
    }
}

/// The full set of ranked lists, one per topic.
///
/// Every mutation routed through [`RankedLists::upsert`] /
/// [`RankedLists::remove_everywhere`] is additionally logged into a
/// [`RankedDelta`] so incremental consumers (standing queries in
/// `ksir-continuous`) can tell how high in each list a window slide reached.
/// Call [`RankedLists::take_delta`] to drain the log; see the
/// [`crate::delta`] module docs for the exact invariant the log guarantees.
#[derive(Debug)]
pub struct RankedLists {
    lists: Vec<RankedList>,
    delta: RankedDelta,
}

impl RankedLists {
    /// Creates `num_topics` empty lists.
    pub fn new(num_topics: usize) -> Self {
        RankedLists {
            lists: (0..num_topics).map(|_| RankedList::new()).collect(),
            delta: RankedDelta::new(num_topics),
        }
    }

    /// Number of topics.
    pub fn num_topics(&self) -> usize {
        self.lists.len()
    }

    /// The list for one topic (panics on an out-of-range topic id, which
    /// indicates an engine bug rather than user input).
    pub fn list(&self, topic: TopicId) -> &RankedList {
        &self.lists[topic.index()]
    }

    /// Mutable access to one topic's list.
    ///
    /// Mutations through this escape hatch bypass the touch log; incremental
    /// consumers relying on [`RankedLists::take_delta`] should route all
    /// changes through [`RankedLists::upsert`] and
    /// [`RankedLists::remove_everywhere`] instead.
    pub fn list_mut(&mut self, topic: TopicId) -> &mut RankedList {
        &mut self.lists[topic.index()]
    }

    /// Upserts an element's tuple in the given topic's list, logging a touch
    /// at the higher of the old and new scores.
    pub fn upsert(&mut self, topic: TopicId, id: ElementId, score: f64, ts: Timestamp) {
        let list = &mut self.lists[topic.index()];
        let touched = match list.get(id) {
            Some((old_score, _)) => old_score.max(score),
            None => score,
        };
        self.delta.record(topic, touched);
        list.upsert(id, score, ts);
    }

    /// Removes an element from every list, logging a touch at each removed
    /// tuple's score.  Returns how many lists held it.
    pub fn remove_everywhere(&mut self, id: ElementId) -> usize {
        let mut removed = 0;
        for (i, list) in self.lists.iter_mut().enumerate() {
            if let Some((score, _)) = list.remove(id) {
                self.delta.record(TopicId(i as u32), score);
                removed += 1;
            }
        }
        removed
    }

    /// The touches accumulated since the last [`RankedLists::take_delta`] /
    /// [`RankedLists::clear_delta`].
    pub fn pending_delta(&self) -> &RankedDelta {
        &self.delta
    }

    /// Drains and returns the accumulated touch log.  The resident log keeps
    /// its dense index buffer, so subsequent slides record without
    /// re-allocating it.
    pub fn take_delta(&mut self) -> RankedDelta {
        self.delta.drain()
    }

    /// Discards the accumulated touch log in place, reusing its buffers.
    /// Cheaper than [`RankedLists::take_delta`] when the touches are not
    /// needed (e.g. resetting the log at the start of a slide): a quiet log
    /// is cleared without any allocation.
    pub fn clear_delta(&mut self) {
        self.delta.clear();
    }

    /// Total number of tuples across all lists (an element appears once per
    /// topic with non-zero probability).
    pub fn total_entries(&self) -> usize {
        self.lists.iter().map(|l| l.len()).sum()
    }

    /// `O(num_topics)` immutable image of every list at this instant — the
    /// epoch-snapshot primitive.  Each handle is an `Arc` clone; the writer
    /// pays a copy-on-write clone per list it subsequently mutates while the
    /// handles are alive (see [`RankedLists::cow_clones`]).
    pub fn share_all(&self) -> Vec<RankedListHandle> {
        self.lists.iter().map(|l| l.share()).collect()
    }

    /// Total copy-on-write clones the lists have paid for outstanding
    /// snapshot handles.
    pub fn cow_clones(&self) -> usize {
        self.lists.iter().map(|l| l.cow_clones()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(i: u64) -> ElementId {
        ElementId(i)
    }

    #[test]
    fn upsert_orders_descending_by_score() {
        let mut rl = RankedList::new();
        rl.upsert(id(1), 0.2, Timestamp(1));
        rl.upsert(id(2), 0.9, Timestamp(2));
        rl.upsert(id(3), 0.5, Timestamp(3));
        let order: Vec<u64> = rl.iter().map(|(e, _, _)| e.raw()).collect();
        assert_eq!(order, vec![2, 3, 1]);
        assert_eq!(rl.first().unwrap().0, id(2));
        assert_eq!(rl.len(), 3);
    }

    #[test]
    fn ties_break_by_element_id() {
        let mut rl = RankedList::new();
        rl.upsert(id(5), 0.5, Timestamp(1));
        rl.upsert(id(2), 0.5, Timestamp(1));
        let order: Vec<u64> = rl.iter().map(|(e, _, _)| e.raw()).collect();
        assert_eq!(order, vec![2, 5]);
    }

    #[test]
    fn upsert_repositions_existing_elements() {
        let mut rl = RankedList::new();
        rl.upsert(id(1), 0.2, Timestamp(1));
        rl.upsert(id(2), 0.9, Timestamp(2));
        assert_eq!(rl.first().unwrap().0, id(2));
        // e1 gains score (e.g. it got referenced) and overtakes e2
        rl.upsert(id(1), 1.5, Timestamp(4));
        assert_eq!(rl.first().unwrap(), (id(1), 1.5, Timestamp(4)));
        assert_eq!(rl.len(), 2, "upsert must not duplicate");
        assert_eq!(rl.get(id(1)), Some((1.5, Timestamp(4))));
    }

    #[test]
    fn remove_works_and_is_idempotent() {
        let mut rl = RankedList::new();
        rl.upsert(id(1), 0.3, Timestamp(1));
        assert_eq!(rl.remove(id(1)), Some((0.3, Timestamp(1))));
        assert_eq!(rl.remove(id(1)), None);
        assert!(rl.is_empty());
        assert_eq!(rl.first(), None);
    }

    #[test]
    fn cursor_walks_first_then_next() {
        let mut rl = RankedList::new();
        rl.upsert(id(1), 0.65, Timestamp(8));
        rl.upsert(id(2), 0.48, Timestamp(8));
        rl.upsert(id(3), 0.17, Timestamp(8));
        let mut c = rl.cursor();
        assert_eq!(c.current().unwrap().0, id(1));
        assert_eq!(c.current().unwrap().0, id(1), "current is stable");
        assert_eq!(c.advance().unwrap().0, id(2));
        assert_eq!(c.advance().unwrap().0, id(3));
        assert_eq!(c.advance(), None);
        assert_eq!(c.current(), None);
    }

    #[test]
    fn cursor_on_empty_list() {
        let rl = RankedList::new();
        let mut c = rl.cursor();
        assert_eq!(c.current(), None);
        assert_eq!(c.advance(), None);
    }

    #[test]
    fn ranked_lists_per_topic_and_remove_everywhere() {
        let mut rls = RankedLists::new(3);
        assert_eq!(rls.num_topics(), 3);
        rls.upsert(TopicId(0), id(1), 0.65, Timestamp(8));
        rls.upsert(TopicId(1), id(1), 0.06, Timestamp(8));
        rls.upsert(TopicId(1), id(2), 0.56, Timestamp(5));
        assert_eq!(rls.total_entries(), 3);
        assert_eq!(rls.list(TopicId(0)).len(), 1);
        assert_eq!(rls.list(TopicId(2)).len(), 0);
        assert_eq!(rls.remove_everywhere(id(1)), 2);
        assert_eq!(rls.total_entries(), 1);
        assert_eq!(rls.remove_everywhere(id(1)), 0);
    }

    #[test]
    fn touch_log_tracks_upserts_adjustments_and_removals() {
        let mut rls = RankedLists::new(3);
        assert!(rls.pending_delta().is_empty());
        // fresh insert touches at the new score
        rls.upsert(TopicId(0), id(1), 0.4, Timestamp(1));
        assert_eq!(rls.pending_delta().touch(TopicId(0)).unwrap().high, 0.4);
        // a downward adjustment touches at the *old* (higher) score
        rls.upsert(TopicId(0), id(1), 0.1, Timestamp(2));
        let t = rls.pending_delta().touch(TopicId(0)).unwrap();
        assert_eq!(t.high, 0.4);
        assert_eq!(t.count, 2);
        // an upward adjustment touches at the new score
        rls.upsert(TopicId(0), id(1), 0.9, Timestamp(3));
        assert_eq!(rls.pending_delta().touch(TopicId(0)).unwrap().high, 0.9);
        // untouched topics stay clean
        assert!(!rls.pending_delta().touched(TopicId(1)));
        // draining resets the log
        let drained = rls.take_delta();
        assert_eq!(drained.touch(TopicId(0)).unwrap().count, 3);
        assert!(rls.pending_delta().is_empty());
        // removal touches every list that held the element, at the old scores
        rls.upsert(TopicId(1), id(1), 0.7, Timestamp(4));
        rls.take_delta();
        rls.remove_everywhere(id(1));
        let d = rls.take_delta();
        assert_eq!(d.touch(TopicId(0)).unwrap().high, 0.9);
        assert_eq!(d.touch(TopicId(1)).unwrap().high, 0.7);
        assert!(!d.touched(TopicId(2)));
    }

    #[test]
    fn shared_handle_freezes_the_list_image() {
        let mut rl = RankedList::new();
        rl.upsert(id(1), 0.65, Timestamp(8));
        rl.upsert(id(2), 0.48, Timestamp(8));
        let snap = rl.share();
        assert!(snap.is_shared());
        assert_eq!(rl.cow_clones(), 0, "capture alone costs nothing");
        // Mutations after the capture are invisible to the handle...
        rl.upsert(id(3), 0.9, Timestamp(9));
        rl.remove(id(1));
        assert_eq!(rl.cow_clones(), 1, "first mutation pays the one clone");
        assert_eq!(snap.len(), 2);
        assert_eq!(snap.get(id(1)), Some((0.65, Timestamp(8))));
        assert!(snap.get(id(3)).is_none());
        let order: Vec<u64> = snap.iter().map(|(e, _, _)| e.raw()).collect();
        assert_eq!(order, vec![1, 2]);
        // ...and the live list sees only its own state.
        assert_eq!(rl.len(), 2);
        assert_eq!(rl.first().unwrap().0, id(3));
        assert!(!snap.is_shared(), "writer moved on to its own core");
        // A cursor over the handle walks the frozen image.
        let mut c = snap.cursor();
        assert_eq!(c.current().unwrap().0, id(1));
        assert_eq!(c.advance().unwrap().0, id(2));
        assert_eq!(c.advance(), None);
    }

    #[test]
    fn removing_an_absent_element_pays_no_cow_clone() {
        let mut rl = RankedList::new();
        rl.upsert(id(1), 0.5, Timestamp(1));
        let _snap = rl.share();
        assert_eq!(rl.remove(id(99)), None);
        assert_eq!(rl.cow_clones(), 0, "no-op removal must not clone");
    }

    #[test]
    fn prefix_truncates_at_the_floor_with_slack() {
        let mut rl = RankedList::new();
        rl.upsert(id(1), 0.9, Timestamp(1));
        rl.upsert(id(2), 0.5, Timestamp(2));
        rl.upsert(id(3), 0.5 - 1e-13, Timestamp(3)); // within slack of the floor
        rl.upsert(id(4), 0.1, Timestamp(4));
        let snap = rl.share();
        let full = snap.prefix(None);
        assert_eq!(full.len(), 4);
        assert!(!full.is_truncated());
        let cut = snap.prefix(Some(0.5));
        let kept: Vec<u64> = cut.iter().map(|(e, _, _)| e.raw()).collect();
        assert_eq!(kept, vec![1, 2, 3], "slack keeps near-floor tuples");
        assert_eq!(cut.truncated(), 1);
        assert!(cut.is_truncated());
        assert_eq!(cut.entries().len(), 3);
        // Cursor over the prefix walks the same descending order.
        let mut c = cut.cursor();
        assert_eq!(c.current().unwrap().0, id(1));
        assert_eq!(c.advance().unwrap().0, id(2));
        // A floor above the head keeps nothing.
        let none = snap.prefix(Some(2.0));
        assert!(none.is_empty());
        assert_eq!(none.truncated(), 4);
    }

    #[test]
    fn suffix_cursor_starts_at_the_bound_with_slack() {
        let mut rl = RankedList::new();
        rl.upsert(id(1), 0.9, Timestamp(1));
        rl.upsert(id(2), 0.5 + 1e-13, Timestamp(2)); // within slack of the bound
        rl.upsert(id(3), 0.5, Timestamp(3));
        rl.upsert(id(4), 0.1, Timestamp(4));
        let walk = |mut c: RankedListCursor<'_>| {
            let mut seen = Vec::new();
            while let Some((e, _, _)) = c.current() {
                seen.push(e.raw());
                c.advance();
            }
            seen
        };
        assert_eq!(walk(rl.suffix_cursor(0.5)), vec![2, 3, 4]);
        assert_eq!(walk(rl.suffix_cursor(2.0)), vec![1, 2, 3, 4]);
        assert_eq!(walk(rl.suffix_cursor(0.0)), Vec::<u64>::new());
        // The handle and a materialised prefix agree with the live list.
        let snap = rl.share();
        assert_eq!(walk(snap.suffix_cursor(0.5)), vec![2, 3, 4]);
        let prefix = snap.prefix(None);
        assert_eq!(walk(prefix.suffix_cursor(0.5)), vec![2, 3, 4]);
        assert_eq!(walk(prefix.suffix_cursor(0.05)), Vec::<u64>::new());
    }

    #[test]
    fn share_all_captures_every_topic_and_counts_cow() {
        let mut rls = RankedLists::new(3);
        rls.upsert(TopicId(0), id(1), 0.6, Timestamp(1));
        rls.upsert(TopicId(1), id(2), 0.4, Timestamp(1));
        let handles = rls.share_all();
        assert_eq!(handles.len(), 3);
        assert_eq!(handles[0].len(), 1);
        assert_eq!(handles[2].len(), 0);
        // Touch only topic 0: exactly one list pays a clone.
        rls.upsert(TopicId(0), id(3), 0.9, Timestamp(2));
        assert_eq!(rls.cow_clones(), 1);
        assert_eq!(handles[0].len(), 1, "handle still frozen");
        drop(handles);
        rls.upsert(TopicId(0), id(4), 0.1, Timestamp(3));
        assert_eq!(rls.cow_clones(), 1, "no live handle, no further clone");
    }

    #[test]
    fn negative_and_zero_scores_are_ordered_correctly() {
        let mut rl = RankedList::new();
        rl.upsert(id(1), 0.0, Timestamp(1));
        rl.upsert(id(2), -0.5, Timestamp(1));
        rl.upsert(id(3), 0.5, Timestamp(1));
        let order: Vec<u64> = rl.iter().map(|(e, _, _)| e.raw()).collect();
        assert_eq!(order, vec![3, 1, 2]);
    }

    #[test]
    fn large_list_stays_consistent() {
        let mut rl = RankedList::new();
        for i in 0..1000u64 {
            rl.upsert(id(i), (i % 97) as f64 / 97.0, Timestamp(i));
        }
        assert_eq!(rl.len(), 1000);
        // every adjacent pair in traversal is non-increasing in score
        let scores: Vec<f64> = rl.iter().map(|(_, s, _)| s).collect();
        assert!(scores.windows(2).all(|w| w[0] >= w[1]));
        // update half of them and re-check
        for i in (0..1000u64).step_by(2) {
            rl.upsert(id(i), 2.0 + i as f64, Timestamp(i));
        }
        assert_eq!(rl.len(), 1000);
        let scores: Vec<f64> = rl.iter().map(|(_, s, _)| s).collect();
        assert!(scores.windows(2).all(|w| w[0] >= w[1]));
    }
}
