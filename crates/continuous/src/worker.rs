//! Long-lived shard-refresh workers fed by a channel, plus the epoch
//! watermark that replaced the quiesce-before-write barrier.
//!
//! PR 2 fanned each slide's scheduled shards out over a fresh
//! `std::thread::scope`; PR 3 replaced that with this fixed pool of workers
//! that live as long as the [`SubscriptionManager`](crate::SubscriptionManager)
//! but still quiesced *every* outstanding refresh before *every* index write,
//! so refresh compute bounded the sustained slide rate.  The pipelined design
//! drops that global barrier:
//!
//! * each asynchronously ingested slide (an **epoch**) captures an immutable
//!   [`EngineSnapshot`](ksir_snapshot::EngineSnapshot) right after its index
//!   write, and refresh workers evaluate against the snapshot instead of a
//!   `SharedEngine` read guard — so the *next* epoch's index write proceeds
//!   while this epoch's refreshes drain;
//! * ordering is per shard, not global: every shard processes its pending
//!   epochs strictly in order (the shard's *lane*, see
//!   [`crate::shard::Lane`]), which is exactly the ordering the refresh
//!   decisions depend on — cross-shard interleaving never influenced them;
//! * the [`Watermark`] tracks outstanding shard-epoch tasks per epoch:
//!   [`Watermark::wait_all`] is the old `sync()` barrier, and
//!   [`Watermark::wait_inflight_below`] is the pipeline-admission gate that
//!   bounds how many epochs may be in flight (and with them the snapshot
//!   memory the writer keeps alive).
//!
//! Slow *subscribers* still never extend any of these waits: delivery queues
//! are bounded and non-blocking under the default overflow policy, so the
//! watermark waits on refresh compute only.

use std::collections::BTreeMap;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use ksir_core::SharedEngine;
use ksir_snapshot::SnapshotPolicy;
use ksir_stream::WindowDelta;
use ksir_telemetry::Telemetry;
use ksir_types::TopicWordDistribution;

use crate::delivery::DeliverySender;
use crate::shard::{ShardCell, ShardSlide};
use crate::subscription::SubscriptionId;

/// Shared map from live subscription to its delivery-queue producer.
pub(crate) type DeliveryRegistry =
    Arc<Mutex<std::collections::BTreeMap<SubscriptionId, DeliverySender>>>;

/// Pushes a slide's result deltas into the attached delivery queues.  Used by
/// the workers and by the manager's inline (single-threaded) refresh path, so
/// subscribers see the same stream regardless of which path ran.
pub(crate) fn deliver(
    registry: &DeliveryRegistry,
    slide: u64,
    updates: &[crate::subscription::ResultDelta],
) {
    if updates.is_empty() {
        return;
    }
    // Clone the senders out and release the registry lock before sending: a
    // Block-policy queue may stall its producer, and that stall must never
    // extend to other subscriptions' deliveries (or to the manager methods
    // that take the registry lock).
    let senders: Vec<_> = {
        let registry = registry.lock().unwrap_or_else(|p| p.into_inner());
        updates
            .iter()
            .map(|update| registry.get(&update.subscription).cloned())
            .collect()
    };
    for (update, sender) in updates.iter().zip(senders) {
        if let Some(sender) = sender {
            sender.send(slide, update.clone());
        }
    }
}

/// One unit of work for the pool.
pub(crate) enum WorkItem {
    /// Synchronous path: refresh this shard against the live engine (the
    /// manager quiesced the pipeline first, so the engine *is* the epoch).
    Live {
        epoch: u64,
        shard: Arc<ShardCell>,
        delta: Arc<WindowDelta>,
        collector: Arc<Mutex<Vec<ShardSlide>>>,
    },
    /// Pipelined path: drain the shard's lane of pending epochs, evaluating
    /// each against its captured snapshot.  The lane carries the payloads;
    /// this item only hands the shard to a worker.
    Pipelined { shard: Arc<ShardCell> },
}

/// Outstanding shard-epoch tasks per epoch — the pipeline's completion
/// accounting.
///
/// An epoch is *complete* when every shard has processed it (refreshed or
/// skipped).  Inline work (unscheduled shards skipped on the ingest thread)
/// is never registered, so an epoch that scheduled nothing completes
/// immediately.
#[derive(Debug, Default)]
pub(crate) struct Watermark {
    state: Mutex<WatermarkState>,
    changed: Condvar,
}

#[derive(Debug, Default)]
struct WatermarkState {
    /// `epoch → outstanding shard tasks`; absent = complete.
    pending: BTreeMap<u64, usize>,
    /// Highest epoch ever announced (see [`Watermark::note_epoch`]).
    highest_seen: u64,
}

impl WatermarkState {
    fn completed_through(&self) -> u64 {
        match self.pending.keys().next() {
            Some(&first_open) => first_open.saturating_sub(1),
            None => self.highest_seen,
        }
    }
}

impl Watermark {
    fn lock(&self) -> std::sync::MutexGuard<'_, WatermarkState> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Announces an epoch (moves `highest_seen`) without registering tasks —
    /// so fully-inline slides still advance the watermark.
    pub(crate) fn note_epoch(&self, epoch: u64) {
        let mut state = self.lock();
        if epoch > state.highest_seen {
            state.highest_seen = epoch;
        }
    }

    /// Registers `n` outstanding shard tasks for `epoch`.
    pub(crate) fn add(&self, epoch: u64, n: usize) {
        if n == 0 {
            return;
        }
        let mut state = self.lock();
        if epoch > state.highest_seen {
            state.highest_seen = epoch;
        }
        *state.pending.entry(epoch).or_insert(0) += n;
    }

    /// Completes one shard task of `epoch`.
    pub(crate) fn complete_one(&self, epoch: u64) {
        let mut state = self.lock();
        match state.pending.get_mut(&epoch) {
            Some(n) if *n > 1 => *n -= 1,
            Some(_) => {
                state.pending.remove(&epoch);
                self.changed.notify_all();
            }
            None => debug_assert!(false, "completing a task of an unregistered epoch"),
        }
    }

    /// The highest epoch `e` such that every epoch `≤ e` has fully drained.
    pub(crate) fn completed_through(&self) -> u64 {
        self.lock().completed_through()
    }

    /// Number of epochs with outstanding tasks.
    pub(crate) fn inflight_epochs(&self) -> usize {
        self.lock().pending.len()
    }

    /// Blocks until no epoch has outstanding tasks — the `sync()` barrier.
    pub(crate) fn wait_all(&self) {
        let mut state = self.lock();
        while !state.pending.is_empty() {
            state = self.changed.wait(state).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Blocks until fewer than `depth` epochs have outstanding tasks — the
    /// pipeline-admission gate (`depth = 1` reproduces the PR-3
    /// quiesce-before-write barrier).
    pub(crate) fn wait_inflight_below(&self, depth: usize) {
        let depth = depth.max(1);
        let mut state = self.lock();
        while state.pending.len() >= depth {
            state = self.changed.wait(state).unwrap_or_else(|p| p.into_inner());
        }
    }
}

/// Completes the epoch task even if the refresh panics, so a poisoned shard
/// can never deadlock the ingestion path on the watermark.
struct CompletionGuard<'a>(&'a Watermark, u64);

impl Drop for CompletionGuard<'_> {
    fn drop(&mut self) {
        self.0.complete_one(self.1);
    }
}

/// The fixed pool of long-lived refresh workers.
///
/// Not generic over the topic model: the engine handle is moved into the
/// worker closures at spawn time, which keeps the pool embeddable in any
/// manager without dragging `D` through the channel types — pipelined work
/// carries its engine state as `Arc<dyn SnapshotSource>` payloads in the
/// shard lanes instead.
pub(crate) struct WorkerPool {
    tx: Option<Sender<WorkItem>>,
    watermark: Arc<Watermark>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.handles.len())
            .finish()
    }
}

impl WorkerPool {
    /// Spawns `threads` workers over a shared engine handle, delivery
    /// registry, and the manager's watermark.
    pub(crate) fn spawn<D>(
        threads: usize,
        engine: SharedEngine<D>,
        registry: DeliveryRegistry,
        watermark: Arc<Watermark>,
        policy: SnapshotPolicy,
        telemetry: Arc<Telemetry>,
    ) -> Self
    where
        D: TopicWordDistribution + Send + Sync + 'static,
    {
        let (tx, rx) = channel::<WorkItem>();
        let rx = Arc::new(Mutex::new(rx));
        let handles = (0..threads.max(1))
            .map(|_| {
                let rx = Arc::clone(&rx);
                let watermark = Arc::clone(&watermark);
                let engine = engine.clone();
                let registry = Arc::clone(&registry);
                let telemetry = Arc::clone(&telemetry);
                std::thread::spawn(move || {
                    worker_loop(&rx, &watermark, &engine, &registry, policy, &telemetry)
                })
            })
            .collect();
        WorkerPool {
            tx: Some(tx),
            watermark,
            handles,
        }
    }

    /// Enqueues work.  Returns immediately; the items run on the workers.
    /// The caller has already registered the matching watermark tasks.
    pub(crate) fn dispatch(&self, items: Vec<WorkItem>) {
        let tx = self.tx.as_ref().expect("pool not shut down");
        for item in items {
            tx.send(item).expect("worker channel closed");
        }
    }

    /// Blocks until every registered task has completed — the `sync()`
    /// barrier.
    pub(crate) fn wait_idle(&self) {
        self.watermark.wait_all();
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the channel ends every worker's recv loop; join so shard
        // and engine handles are released before the manager is torn down.
        self.tx.take();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop<D: TopicWordDistribution>(
    rx: &Mutex<Receiver<WorkItem>>,
    watermark: &Watermark,
    engine: &SharedEngine<D>,
    registry: &DeliveryRegistry,
    policy: SnapshotPolicy,
    telemetry: &Telemetry,
) {
    // Resolved once per worker: the name-map lookup stays off the per-item
    // path.
    let item_hist = telemetry.registry().histogram("worker.item");
    loop {
        // Hold the receiver lock only while pulling the next item, never
        // while refreshing, so idle workers queue on the channel rather than
        // behind a busy one.
        let item = match rx.lock().unwrap_or_else(|p| p.into_inner()).recv() {
            Ok(item) => item,
            Err(_) => return, // channel closed: pool shut down
        };
        let started = std::time::Instant::now();
        match item {
            WorkItem::Live {
                epoch,
                shard,
                delta,
                collector,
            } => {
                let _complete = CompletionGuard(watermark, epoch);
                let slide = {
                    let engine = engine.read();
                    shard.shard().refresh_scheduled(&*engine, &delta, epoch)
                };
                deliver(registry, epoch, &slide.updates);
                collector
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .push(slide);
            }
            WorkItem::Pipelined { shard } => drain_lane(&shard, watermark, registry, policy),
        }
        item_hist.record(started.elapsed());
    }
}

/// Processes a shard's pending epochs in order until its lane is empty.
///
/// The worker owns the shard for the whole drain (the lane's `busy` flag),
/// so filter updates from epoch `e` are always visible to epoch `e+1`'s
/// scheduling decision — per-shard decisions are exactly the serial walk's.
/// The ingest thread only ever touches the (cheap) lane lock of a busy
/// shard, never its shard lock, so a long refresh here cannot stall
/// ingestion.
fn drain_lane(
    cell: &ShardCell,
    watermark: &Watermark,
    registry: &DeliveryRegistry,
    policy: SnapshotPolicy,
) {
    loop {
        // Pop-or-release must be atomic under the lane lock: otherwise the
        // ingest thread could observe `busy` in the instant before release
        // and strand a task in the queue.
        let Some(task) = cell.pop_pending_or_release() else {
            return;
        };
        let _complete = CompletionGuard(watermark, task.epoch);
        let slide = {
            let mut shard = cell.shard();
            if shard.is_touched_by(&task.delta) {
                let source = match policy {
                    // Exact serves the epoch image as-is: no spec walk, no
                    // per-shard allocation on the default hot path.
                    SnapshotPolicy::Exact => task.snapshot.as_query_source(),
                    SnapshotPolicy::TruncateAtFloors => {
                        task.snapshot.shard_source(&shard.prefix_spec(), policy)
                    }
                };
                Some(shard.refresh_scheduled(source.as_ref(), &task.delta, task.epoch))
            } else {
                shard.skip_all(task.epoch);
                None
            }
        };
        if let Some(slide) = slide {
            deliver(registry, task.epoch, &slide.updates);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watermark_tracks_epoch_completion_out_of_order() {
        let wm = Watermark::default();
        assert_eq!(wm.completed_through(), 0);
        wm.add(1, 2);
        wm.add(2, 1);
        assert_eq!(wm.inflight_epochs(), 2);
        assert_eq!(wm.completed_through(), 0);
        // Epoch 2 finishes first: the watermark must not jump past epoch 1.
        wm.complete_one(2);
        assert_eq!(wm.completed_through(), 0);
        assert_eq!(wm.inflight_epochs(), 1);
        wm.complete_one(1);
        assert_eq!(wm.completed_through(), 0, "one epoch-1 task remains");
        wm.complete_one(1);
        assert_eq!(wm.completed_through(), 2);
        assert_eq!(wm.inflight_epochs(), 0);
        // An all-inline epoch advances the watermark without tasks.
        wm.note_epoch(3);
        assert_eq!(wm.completed_through(), 3);
        wm.wait_all(); // no outstanding work: returns immediately
        wm.wait_inflight_below(1);
    }

    #[test]
    fn admission_gate_blocks_until_an_epoch_drains() {
        let wm = Arc::new(Watermark::default());
        wm.add(1, 1);
        wm.add(2, 1);
        // Depth 2 is full: admission for epoch 3 must wait for a drain.
        let waiter = {
            let wm = Arc::clone(&wm);
            std::thread::spawn(move || {
                wm.wait_inflight_below(2);
                wm.inflight_epochs()
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        wm.complete_one(1);
        assert!(waiter.join().unwrap() < 2);
    }
}
