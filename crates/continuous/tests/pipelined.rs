//! Pipelined-epoch equivalence: with snapshot-backed refreshes and the
//! quiesce-before-write barrier gone, the asynchronous pipeline must still
//! be **decision-identical to the synchronous API slide for slide** — same
//! deltas, same counters — at every pipeline depth and pool size, because
//! every shard processes its epochs in order against that epoch's frozen
//! engine image.
//!
//! Also pinned here: the property the whole subsystem exists for (an index
//! write proceeds while the previous epoch's refreshes are demonstrably
//! still in flight), the completion watermark, and the snapshot capture /
//! copy-on-write accounting.

use std::collections::BTreeMap;
use std::time::Duration;

use ksir_continuous::{
    DeliveryConfig, OverflowPolicy, ResultDelta, ShardConfig, SnapshotPolicy, SubscriptionId,
    SubscriptionManager,
};
use ksir_core::{Algorithm, EngineConfig, KsirEngine, KsirQuery, ScoringConfig};
use ksir_datagen::{DatasetProfile, GeneratedStream, QueryWorkloadGenerator, StreamGenerator};
use ksir_stream::WindowConfig;
use ksir_types::{DenseTopicWordTable, QueryVector};

/// Builds a planted-stream manager with a mixed workload under `config`
/// (same construction as the sharding/async tests, so subscription ids line
/// up across managers built with the same seed).
fn planted_manager(
    seed: u64,
    config: ShardConfig,
) -> (
    SubscriptionManager<DenseTopicWordTable>,
    Vec<(SubscriptionId, KsirQuery, Algorithm)>,
    GeneratedStream,
) {
    let profile = DatasetProfile::twitter().scaled(0.02).with_topics(12);
    let stream = StreamGenerator::new(profile, seed)
        .unwrap()
        .generate()
        .unwrap();
    let window = WindowConfig::new(120, 15).unwrap();
    let engine: KsirEngine<DenseTopicWordTable> = KsirEngine::new(
        stream.planted.phi().clone(),
        EngineConfig::new(window, ScoringConfig::default()),
    )
    .unwrap();
    let mut mgr = SubscriptionManager::with_shard_config(engine, config);

    let workload = QueryWorkloadGenerator::new(&stream.planted, seed ^ 0x5eed)
        .generate(4, stream.end_time())
        .unwrap();
    let algorithms = [
        Algorithm::Mtts,
        Algorithm::Mttd,
        Algorithm::TopkRepresentative,
        Algorithm::Celf,
    ];
    let mut subs = Vec::new();
    for (i, generated) in workload.into_iter().enumerate() {
        let mut narrow = vec![0.0; 12];
        narrow[(3 * i) % 12] = 0.8;
        narrow[(3 * i + 1) % 12] = 0.2;
        for vector in [QueryVector::new(narrow).unwrap(), generated.vector] {
            let q = KsirQuery::new(4, vector).unwrap();
            let algorithm = algorithms[subs.len() % algorithms.len()];
            let id = mgr.subscribe(q.clone(), algorithm).unwrap();
            subs.push((id, q, algorithm));
        }
    }
    (mgr, subs, stream)
}

/// Pipelined mode is decision-identical to the sync API slide for slide —
/// across pipeline depths (1 = the old barrier, 2 = default overlap, 4 =
/// deep) and including a forced 4-thread pool.
#[test]
fn pipelined_deltas_equal_sync_outcomes_slide_for_slide() {
    for (seed, config) in [
        (7u64, ShardConfig::default().with_pipeline_depth(1)),
        (7u64, ShardConfig::default().with_pipeline_depth(2)),
        (
            7u64,
            ShardConfig::default()
                .with_threads(Some(4))
                .with_pipeline_depth(2),
        ),
        (
            21u64,
            ShardConfig::default()
                .with_threads(Some(4))
                .with_pipeline_depth(4),
        ),
    ] {
        // Synchronous reference run.
        let (mut sync_mgr, sync_subs, stream) = planted_manager(seed, config);
        let outcomes = sync_mgr.ingest_stream(stream.iter_pairs()).unwrap();

        // Pipelined run over the same stream and workload.
        let (mut pipe_mgr, pipe_subs, _) = planted_manager(seed, config);
        assert_eq!(
            sync_subs.iter().map(|s| s.0).collect::<Vec<_>>(),
            pipe_subs.iter().map(|s| s.0).collect::<Vec<_>>(),
        );
        let receivers: Vec<_> = pipe_subs
            .iter()
            .map(|(id, _, _)| {
                let rx = pipe_mgr
                    .attach_delivery(*id, DeliveryConfig::default().with_capacity(1 << 16))
                    .expect("live subscription");
                (*id, rx)
            })
            .collect();
        let tickets = pipe_mgr.ingest_stream_async(stream.iter_pairs()).unwrap();
        assert_eq!(tickets.len(), outcomes.len(), "same bucket cutting");
        pipe_mgr.sync();
        // After the barrier the completion watermark has caught up with the
        // last ingested epoch.
        assert_eq!(pipe_mgr.completed_epoch(), tickets.len() as u64);
        assert_eq!(pipe_mgr.inflight_epochs(), 0);

        // Group every drained delta by the slide that produced it.
        let mut by_slide: BTreeMap<u64, Vec<ResultDelta>> = BTreeMap::new();
        for (_, rx) in &receivers {
            assert_eq!(rx.dropped(), 0, "capacity was ample");
            for delivery in rx.drain() {
                by_slide
                    .entry(delivery.slide)
                    .or_default()
                    .push(delivery.delta);
            }
        }
        for deltas in by_slide.values_mut() {
            deltas.sort_by_key(|d| d.subscription);
        }
        for (i, outcome) in outcomes.iter().enumerate() {
            let slide = (i + 1) as u64;
            let drained = by_slide.remove(&slide).unwrap_or_default();
            assert_eq!(
                drained, outcome.updates,
                "seed={seed} {config:?}: slide {slide} deltas diverge"
            );
        }
        assert!(by_slide.is_empty(), "deltas delivered for unknown slides");

        // Aggregate and per-subscription counters agree, and the maintained
        // results equal the synchronous manager's.
        assert_eq!(sync_mgr.stats(), pipe_mgr.stats());
        for (id, _, _) in &sync_subs {
            assert_eq!(
                sync_mgr.subscription_stats(*id),
                pipe_mgr.subscription_stats(*id),
                "seed={seed}: per-subscription counters diverge for {id}"
            );
            let a = sync_mgr.result(*id).unwrap();
            let b = pipe_mgr.result(*id).unwrap();
            assert_eq!(a.sorted_elements(), b.sorted_elements());
            assert!((a.score - b.score).abs() < 1e-12);
        }

        // Depth ≥ 2 with scheduled work runs on snapshots.
        let snap = pipe_mgr.snapshot_stats();
        if config.pipeline_depth >= 2 {
            assert!(snap.epochs_captured > 0, "no epoch was ever captured");
            assert!(snap.shard_snapshots >= snap.epochs_captured);
            assert_eq!(snap.prefixes_truncated, 0, "Exact policy never truncates");
            assert_eq!(snap.truncation_shortfalls, 0);
        }
    }
}

/// The write path genuinely overlaps refresh work: with a worker provably
/// stalled mid-refresh of epoch `N` (blocked on a full Block-policy delivery
/// queue), `ingest_bucket_async` for epoch `N+1` must complete its index
/// write and return.  Under the old quiesce-before-write barrier this test
/// deadlocks.
#[test]
fn index_write_proceeds_while_previous_epoch_refreshes() {
    let (mut mgr, subs, stream) = planted_manager(7, ShardConfig::default().with_pipeline_depth(2));
    // Give every subscription a Block-policy queue of capacity 1 and do not
    // drain: the first delivered delta of a slide fills a queue, the second
    // blocks its worker mid-epoch.
    let receivers: Vec<_> = subs
        .iter()
        .map(|(id, _, _)| {
            mgr.attach_delivery(
                *id,
                DeliveryConfig::default()
                    .with_capacity(1)
                    .with_policy(OverflowPolicy::Block),
            )
            .unwrap()
        })
        .collect();

    let mut pairs = stream.iter_pairs();
    let mut bucket: Vec<_> = Vec::new();
    let mut tickets = Vec::new();
    let mut bucket_end = 15u64;
    for (element, tv) in &mut pairs {
        while element.ts.raw() > bucket_end {
            let t = mgr
                .ingest_bucket_async(
                    std::mem::take(&mut bucket),
                    ksir_types::Timestamp(bucket_end),
                )
                .unwrap();
            tickets.push(t);
            bucket_end += 15;
            if tickets.len() == 2 {
                break;
            }
        }
        if tickets.len() == 2 {
            break;
        }
        bucket.push((element, tv));
    }
    assert_eq!(tickets.len(), 2, "stream long enough for two epochs");
    // Epoch 1 scheduled refresh work that is now stalled on the undrained
    // Block queues; epoch 2's ingest nevertheless returned above.  Give the
    // workers a moment and confirm epoch 1 is genuinely still in flight.
    std::thread::sleep(Duration::from_millis(50));
    assert!(
        mgr.completed_epoch() < 2,
        "with undrained Block queues some epoch must still be in flight"
    );
    // Drain everything; the pipeline must settle.
    let drainer = std::thread::spawn(move || {
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        loop {
            let mut any = false;
            let mut all_closed = true;
            for rx in &receivers {
                any |= rx.try_recv().is_some();
                all_closed &= rx.is_closed();
            }
            if all_closed || std::time::Instant::now() > deadline {
                return receivers;
            }
            if !any {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    });
    mgr.sync();
    assert_eq!(mgr.completed_epoch(), 2);
    for (id, _, _) in &subs {
        assert!(mgr.unsubscribe(*id));
    }
    drainer.join().unwrap();
}

/// The floor-truncated capture policy runs the full pipeline with bounded
/// prefixes: counters still reconcile, truncation is actually exercised, and
/// the stats expose how much memory the floors saved.
#[test]
fn truncated_policy_reconciles_and_reports_savings() {
    let config = ShardConfig::default()
        .with_pipeline_depth(2)
        .with_snapshot_policy(SnapshotPolicy::TruncateAtFloors);
    let (mut mgr, subs, stream) = planted_manager(21, config);
    let tickets = mgr.ingest_stream_async(stream.iter_pairs()).unwrap();
    mgr.sync();
    let stats = mgr.stats();
    assert_eq!(stats.slides, tickets.len());
    assert_eq!(
        stats.refreshes + stats.skips,
        stats.slides * subs.len(),
        "work accounting reconciles under truncated snapshots"
    );
    let snap = mgr.snapshot_stats();
    if snap.epochs_captured > 0 {
        assert!(
            snap.prefixes_truncated + snap.prefixes_shared > 0,
            "shard snapshots must have captured some prefixes"
        );
    }
}
