//! # ksir — Semantic and Influence aware k-Representative queries over social streams
//!
//! A from-scratch Rust reproduction of *"Semantic and Influence aware
//! k-Representative Queries over Social Streams"* (Yanhao Wang, Yuchen Li,
//! Kian-Lee Tan — EDBT 2019).
//!
//! A **k-SIR query** retrieves, from the elements active in a sliding window
//! over a social stream, a set of at most `k` elements that together maximise
//! a *representativeness* score w.r.t. a user's topic-preference vector.  The
//! score combines a topic-specific **semantic** score (weighted word
//! coverage) with a topic-specific, time-critical **influence** score
//! (probabilistic coverage of the elements that reference the result), and is
//! monotone submodular.  The paper's contribution — and this crate's core —
//! is a pair of index-based approximation algorithms, **MTTS** and **MTTD**,
//! that answer such queries in real time by traversing per-topic ranked lists
//! instead of evaluating every active element.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`types`] | `ksir-types` | social elements, topic/query vectors, vocabularies |
//! | [`text`] | `ksir-text` | tokenisation, stop words, TF-IDF |
//! | [`topics`] | `ksir-topics` | LDA and BTM trainers, topic-model oracle |
//! | [`stream`] | `ksir-stream` | sliding window, active elements, ranked lists |
//! | [`core`] | `ksir-core` | scoring, the engine, MTTS/MTTD/CELF/SieveStreaming/Top-k |
//! | [`continuous`] | `ksir-continuous` | standing queries with delta-driven result maintenance |
//! | [`obs`] | `ksir-obs` | live introspection HTTP server over the telemetry bundle |
//! | [`baselines`] | `ksir-baselines` | TF-IDF, DIV, Sumblr, REL effectiveness baselines |
//! | [`datagen`] | `ksir-datagen` | synthetic streams calibrated to the paper's datasets |
//! | [`eval`] | `ksir-eval` | coverage/influence metrics, proxy user study, kappa |
//!
//! The most common entry points are also re-exported at the crate root.
//!
//! ## Example
//!
//! ```
//! use ksir::{Algorithm, KsirQuery, QueryVector};
//! use ksir::core::fixtures::paper_example;
//!
//! // The paper's running example (Table 1): 8 tweets, 2 topics.
//! let example = paper_example();
//! let engine = example.build_engine();
//!
//! // Example 3.4: a user equally interested in both topics asks for 2 elements.
//! let query = KsirQuery::new(2, QueryVector::new(vec![0.5, 0.5])?)?;
//! let result = engine.query(&query, Algorithm::Mttd)?;
//! assert_eq!(result.len(), 2);
//! # Ok::<(), ksir::KsirError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use ksir_baselines as baselines;
pub use ksir_continuous as continuous;
pub use ksir_core as core;
pub use ksir_datagen as datagen;
pub use ksir_eval as eval;
pub use ksir_obs as obs;
pub use ksir_stream as stream;
pub use ksir_text as text;
pub use ksir_topics as topics;
pub use ksir_types as types;

pub use ksir_continuous::{
    ResultDelta, ShardConfig, ShardKey, ShardStats, SubscriptionId, SubscriptionManager,
};
pub use ksir_core::{
    Algorithm, EngineConfig, IngestReport, KsirEngine, KsirQuery, QueryFrontier, QueryResult,
    Scorer, ScoringConfig,
};
pub use ksir_stream::{WindowConfig, WindowDelta};
pub use ksir_topics::{BtmTrainer, LdaTrainer, TopicModel, TopicOracle};
pub use ksir_types::{
    Document, ElementId, KsirError, QueryVector, SocialElement, SocialElementBuilder, Timestamp,
    TopicId, TopicVector, Vocabulary,
};
