//! Topic-space vectors: element topic distributions and query vectors.

use crate::{KsirError, Result, TopicId};

/// A dense distribution over the `z` topics of a topic model.
///
/// For an element `e` the entry `i` stores `p_i(e)`, the probability that the
/// element's document was generated from topic `θ_i`; entries sum to 1 (or to
/// 0 for the degenerate empty distribution).  The same representation is used
/// for topic-word rows and for query vectors (see [`QueryVector`]).
#[derive(Debug, Clone, PartialEq)]
pub struct TopicVector {
    values: Vec<f64>,
}

impl TopicVector {
    /// Creates a vector of `z` zeros.
    pub fn zeros(z: usize) -> Self {
        TopicVector {
            values: vec![0.0; z],
        }
    }

    /// Creates a uniform distribution over `z` topics.
    pub fn uniform(z: usize) -> Self {
        assert!(z > 0, "uniform distribution needs at least one topic");
        TopicVector {
            values: vec![1.0 / z as f64; z],
        }
    }

    /// Builds a vector from raw values, validating that every entry is finite
    /// and non-negative.
    pub fn from_values(values: Vec<f64>) -> Result<Self> {
        for (i, v) in values.iter().enumerate() {
            if !v.is_finite() || *v < 0.0 {
                return Err(KsirError::invalid_parameter(
                    "topic_vector",
                    format!("entry {i} is {v}, expected a finite non-negative number"),
                ));
            }
        }
        Ok(TopicVector { values })
    }

    /// Builds a normalised distribution from raw non-negative weights.
    ///
    /// If all weights are zero the result is the all-zero vector.
    pub fn normalized(values: Vec<f64>) -> Result<Self> {
        let mut v = TopicVector::from_values(values)?;
        v.normalize();
        Ok(v)
    }

    /// Number of topics (dimensionality `z`).
    #[inline]
    pub fn num_topics(&self) -> usize {
        self.values.len()
    }

    /// Value at topic `i` (panics if out of range — use [`TopicVector::get`]
    /// for a checked accessor).
    #[inline]
    pub fn value(&self, topic: TopicId) -> f64 {
        self.values[topic.index()]
    }

    /// Checked accessor.
    pub fn get(&self, topic: TopicId) -> Option<f64> {
        self.values.get(topic.index()).copied()
    }

    /// Raw slice of values.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.values
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Scales the vector so entries sum to 1 (no-op for the all-zero vector).
    pub fn normalize(&mut self) {
        let s = self.sum();
        if s > 0.0 {
            for v in &mut self.values {
                *v /= s;
            }
        }
    }

    /// Indices and values of non-zero entries, in ascending topic order.
    ///
    /// k-SIR queries only touch topics with `x_i > 0`; both MTTS and MTTD
    /// iterate over this support instead of all `z` topics.
    pub fn support(&self) -> Vec<(TopicId, f64)> {
        self.values
            .iter()
            .enumerate()
            .filter(|(_, &v)| v > 0.0)
            .map(|(i, &v)| (TopicId(i as u32), v))
            .collect()
    }

    /// Number of non-zero entries (`d` in the paper's complexity analysis).
    pub fn support_size(&self) -> usize {
        self.values.iter().filter(|&&v| v > 0.0).count()
    }

    /// Returns the topic with maximum probability, or `None` for an all-zero
    /// vector.
    pub fn dominant_topic(&self) -> Option<TopicId> {
        let (mut best, mut best_v) = (None, 0.0);
        for (i, &v) in self.values.iter().enumerate() {
            if v > best_v {
                best_v = v;
                best = Some(TopicId(i as u32));
            }
        }
        best
    }

    /// Dot product with another vector of the same dimensionality.
    pub fn dot(&self, other: &TopicVector) -> Result<f64> {
        if self.num_topics() != other.num_topics() {
            return Err(KsirError::DimensionMismatch {
                expected: self.num_topics(),
                actual: other.num_topics(),
            });
        }
        Ok(self
            .values
            .iter()
            .zip(other.values.iter())
            .map(|(a, b)| a * b)
            .sum())
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f64 {
        self.values.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Cosine similarity with another vector (0 when either vector is zero).
    pub fn cosine(&self, other: &TopicVector) -> Result<f64> {
        let dot = self.dot(other)?;
        let denom = self.norm() * other.norm();
        if denom == 0.0 {
            Ok(0.0)
        } else {
            Ok(dot / denom)
        }
    }

    /// Sets the value of a topic (used by model trainers).
    pub fn set(&mut self, topic: TopicId, value: f64) {
        self.values[topic.index()] = value;
    }
}

/// A user's preference over topics: the query vector `x` of a k-SIR query.
///
/// `x ∈ [0,1]^z` and `Σ_i x_i = 1` (the constructor normalises).  The vector
/// is typically inferred from a keyword query by treating the keywords as a
/// pseudo-document and asking the topic model for its topic distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryVector {
    inner: TopicVector,
}

impl QueryVector {
    /// Builds a query vector from raw non-negative weights; the weights are
    /// normalised to sum to 1.
    ///
    /// Returns an error if any weight is negative/non-finite or if all weights
    /// are zero (an all-zero preference makes every result score 0 and is
    /// almost always a caller bug).
    pub fn new(weights: Vec<f64>) -> Result<Self> {
        let inner = TopicVector::normalized(weights)?;
        if inner.sum() == 0.0 {
            return Err(KsirError::invalid_parameter(
                "query_vector",
                "all weights are zero; a query must express interest in at least one topic",
            ));
        }
        Ok(QueryVector { inner })
    }

    /// A query interested in a single topic.
    pub fn single_topic(z: usize, topic: TopicId) -> Result<Self> {
        if topic.index() >= z {
            return Err(KsirError::UnknownTopic(topic));
        }
        let mut w = vec![0.0; z];
        w[topic.index()] = 1.0;
        QueryVector::new(w)
    }

    /// A query with uniform interest over all topics.
    pub fn uniform(z: usize) -> Result<Self> {
        QueryVector::new(vec![1.0; z])
    }

    /// Wraps an already-normalised topic distribution (e.g. produced by a
    /// topic model's inference step) as a query vector.
    pub fn from_distribution(dist: TopicVector) -> Result<Self> {
        QueryVector::new(dist.values)
    }

    /// Number of topics.
    #[inline]
    pub fn num_topics(&self) -> usize {
        self.inner.num_topics()
    }

    /// Weight `x_i` of topic `i`.
    #[inline]
    pub fn weight(&self, topic: TopicId) -> f64 {
        self.inner.value(topic)
    }

    /// Non-zero entries in ascending topic order.
    pub fn support(&self) -> Vec<(TopicId, f64)> {
        self.inner.support()
    }

    /// Number of non-zero entries (`d` in the paper).
    pub fn support_size(&self) -> usize {
        self.inner.support_size()
    }

    /// The underlying distribution.
    pub fn as_topic_vector(&self) -> &TopicVector {
        &self.inner
    }

    /// Cosine similarity between this query and an element's topic vector —
    /// the relevance measure used by the REL baseline.
    pub fn cosine(&self, element: &TopicVector) -> Result<f64> {
        self.inner.cosine(element)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-12, "{a} != {b}");
    }

    #[test]
    fn zeros_and_uniform() {
        let z = TopicVector::zeros(4);
        assert_eq!(z.sum(), 0.0);
        assert_eq!(z.num_topics(), 4);
        let u = TopicVector::uniform(4);
        assert_close(u.sum(), 1.0);
        assert_close(u.value(TopicId(2)), 0.25);
    }

    #[test]
    fn from_values_rejects_negative_and_nan() {
        assert!(TopicVector::from_values(vec![0.1, -0.2]).is_err());
        assert!(TopicVector::from_values(vec![f64::NAN]).is_err());
        assert!(TopicVector::from_values(vec![f64::INFINITY]).is_err());
        assert!(TopicVector::from_values(vec![0.3, 0.7]).is_ok());
    }

    #[test]
    fn normalization() {
        let v = TopicVector::normalized(vec![2.0, 2.0, 4.0]).unwrap();
        assert_close(v.value(TopicId(0)), 0.25);
        assert_close(v.value(TopicId(2)), 0.5);
        // all-zero stays all-zero
        let v = TopicVector::normalized(vec![0.0, 0.0]).unwrap();
        assert_eq!(v.sum(), 0.0);
    }

    #[test]
    fn support_and_dominant_topic() {
        let v = TopicVector::from_values(vec![0.0, 0.7, 0.0, 0.3]).unwrap();
        let s = v.support();
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].0, TopicId(1));
        assert_eq!(s[1].0, TopicId(3));
        assert_eq!(v.support_size(), 2);
        assert_eq!(v.dominant_topic(), Some(TopicId(1)));
        assert_eq!(TopicVector::zeros(3).dominant_topic(), None);
    }

    #[test]
    fn dot_and_cosine() {
        let a = TopicVector::from_values(vec![1.0, 0.0]).unwrap();
        let b = TopicVector::from_values(vec![0.0, 1.0]).unwrap();
        assert_close(a.dot(&b).unwrap(), 0.0);
        assert_close(a.cosine(&b).unwrap(), 0.0);
        assert_close(a.cosine(&a).unwrap(), 1.0);
        let c = TopicVector::from_values(vec![0.5, 0.5]).unwrap();
        assert_close(a.cosine(&c).unwrap(), (0.5f64) / (0.5f64.hypot(0.5)));
    }

    #[test]
    fn dot_dimension_mismatch() {
        let a = TopicVector::zeros(2);
        let b = TopicVector::zeros(3);
        assert!(matches!(
            a.dot(&b),
            Err(KsirError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn cosine_of_zero_vector_is_zero() {
        let a = TopicVector::zeros(2);
        let b = TopicVector::from_values(vec![0.3, 0.7]).unwrap();
        assert_eq!(a.cosine(&b).unwrap(), 0.0);
    }

    #[test]
    fn query_vector_normalises() {
        let q = QueryVector::new(vec![1.0, 3.0]).unwrap();
        assert_close(q.weight(TopicId(0)), 0.25);
        assert_close(q.weight(TopicId(1)), 0.75);
        assert_eq!(q.support_size(), 2);
    }

    #[test]
    fn query_vector_rejects_all_zero() {
        assert!(QueryVector::new(vec![0.0, 0.0]).is_err());
    }

    #[test]
    fn query_vector_single_topic() {
        let q = QueryVector::single_topic(3, TopicId(1)).unwrap();
        assert_eq!(q.weight(TopicId(1)), 1.0);
        assert_eq!(q.weight(TopicId(0)), 0.0);
        assert!(QueryVector::single_topic(3, TopicId(5)).is_err());
    }

    #[test]
    fn query_vector_uniform() {
        let q = QueryVector::uniform(4).unwrap();
        assert_close(q.weight(TopicId(3)), 0.25);
    }
}
