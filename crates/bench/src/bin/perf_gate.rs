//! CI perf-regression gate for standing-query maintenance.
//!
//! Runs the shared [`MaintenanceScenario`] (10k-element stream, 16 standing
//! queries) under three synchronous strategies — recompute-per-slide, serial
//! delta refresh (PR-1 behaviour), and sharded multi-core refresh — plus the
//! asynchronous pipeline in three configurations: a fast and an artificially
//! slow delivery consumer at `pipeline_depth = 1` (the quiesce-before-write
//! barrier, the pre-snapshot baseline), and the **pipelined** mode
//! (`pipeline_depth = 2`, epoch snapshots) whose ingest-to-ingest interval
//! under refresh load is the number the snapshot subsystem exists to
//! improve.  Wall times, ingest latencies/intervals, skip ratios and
//! snapshot/copy-on-write counters go to `BENCH_continuous.json` (override
//! the path with the first CLI argument or `BENCH_OUT`).  The baseline JSON
//! is committed at the repo root, so the perf trajectory is tracked in-repo
//! and the CI artifact can be diffed against it.
//!
//! Three gates, each failing the process with exit code 1 and printing
//! `gate=<name> measured=<x> allowed=<y>` so a CI failure needs no
//! re-derivation from the JSON:
//!
//! * **sharded**: the sharded path's wall time must not exceed the serial
//!   delta-refresh path by more than `PERF_GATE_TOLERANCE` (default 0.15 —
//!   absorbing runner noise on single-core CI hosts where the worker pool
//!   degenerates to the serial path).
//! * **async**: the pipeline's total ingest-return latency with a slow
//!   consumer (1 ms simulated work per delta) must not exceed the
//!   fast-consumer run by more than `PERF_GATE_ASYNC_TOLERANCE` (default
//!   0.5).  If ingestion ever waited on delivery, the slow run would blow
//!   past this by an order of magnitude.
//! * **pipelined**: the mean ingest-to-ingest interval at depth 2 must not
//!   exceed the depth-1 barrier run's by more than
//!   `PERF_GATE_PIPELINE_TOLERANCE` (default 0.25).  On a multi-core host
//!   depth 2 wins outright (refresh compute leaves the ingest path); on the
//!   1-core CI host the two interleave on the same core, so the comparison
//!   measures only the overlap's copy-on-write/scheduling overhead — the
//!   tolerance bounds that overhead, and a regression back to serialising
//!   index writes behind refresh compute (≈ +80% interval) blows through it
//!   regardless of core count.
//! * **telemetry**: the pipelined interval with the default telemetry
//!   (tracing on) must not exceed the tracing-off run's by more than
//!   `PERF_GATE_TELEMETRY_TOLERANCE` (default 0.25).  Telemetry's budget is
//!   a relaxed atomic per stage plus one bounded ring push per event; an
//!   instrumentation change that adds a lock or an allocation to the hot
//!   path shows up here.
//! * **refresh**: the per-refresh cost of the delta-restricted probe
//!   ([`MaintenanceScenario::run_refresh_probe`] — every standing query
//!   re-evaluated after every slide), measured in **scoring passes per
//!   refresh**, must not exceed the from-scratch probe's scaled by
//!   `PERF_GATE_REFRESH_TOLERANCE` (default 0.0: memoisation must save
//!   work outright, that is the point of carrying the cache).  Scoring
//!   passes rather than wall time because the measure must be
//!   deterministic: the true wall-time margin (a few percent on this
//!   scenario) sits below run-to-run host noise, so a 0-tolerance timing
//!   gate would flake.  The probes' wall times are still recorded in the
//!   JSON for tracking, the gate asserts strictly fewer scoring passes in
//!   total, and the probes make identical decisions (pinned by the core
//!   property tests).
//! * **per_subscription**: on the subscriber-heavy Zipf population
//!   ([`MaintenanceScenario::shared_standard`] — 100k standing queries over
//!   48 plan templates; override the count with
//!   `PERF_GATE_SHARED_SUBSCRIPTIONS`), the clustered path's **scoring
//!   passes per subscription** must come in at or under the unclustered
//!   control's divided by `PERF_GATE_SHARED_FACTOR` (default 5: at this
//!   overlap, plan sharing must save at least 5× outright).  Deterministic
//!   like the refresh gate — the population is LCG-seeded and both runs are
//!   also asserted decision-identical, so a pass can never come from the
//!   clustered path silently doing different work.
//!
//! * **reorder**: the wall time of a clean in-order replay through the
//!   reorder buffer ([`MaintenanceScenario::run_reorder_probe`] at horizon
//!   8) must not exceed the no-buffer async baseline by more than
//!   `PERF_GATE_REORDER_TOLERANCE` (default 0.05).  On a healthy stream
//!   the buffer re-sequences nothing and sheds nothing (asserted), so the
//!   gate bounds the pure cost of carrying the resilience front end; both
//!   runs are also asserted decision-identical to the serial path.
//!
//! * **obs**: the pipelined interval with a live `ksir-obs` introspection
//!   server attached and a scraper thread hammering `/metrics` and
//!   `/metrics.json` over real TCP ([`MaintenanceScenario::run_obs_probe`])
//!   must not exceed the unobserved pipelined interval by more than
//!   `PERF_GATE_OBS_TOLERANCE` (default 0.25).  E2E freshness stamping and
//!   the flight recorder are on in both runs; the gate isolates the cost of
//!   serving the surface — rendering the registry must never contend with
//!   the ingest hot path.
//!
//! Each timed strategy is run three times and the fastest run is kept,
//! which damps scheduler noise further; the deterministic shared-plans
//! probes run once each.
//!
//! `--json <path>` additionally writes a machine-readable gate-records file
//! (one object per gate: name, measured, allowed, the subscription count it
//! was measured over, verdict) for CI artifact upload, so a dashboard can
//! track the margins without parsing stderr.

use std::time::Duration;

use ksir_bench::{AsyncMaintenanceRun, MaintenanceRun, MaintenanceScenario, RefreshProbe};
use ksir_continuous::{ShardConfig, TelemetryConfig};

const RUNS_PER_STRATEGY: usize = 3;
const SLOW_CONSUMER_DELAY: Duration = Duration::from_millis(1);

fn best_of<F: Fn() -> MaintenanceRun>(run: F) -> MaintenanceRun {
    (0..RUNS_PER_STRATEGY)
        .map(|_| run())
        .min_by_key(|r| r.elapsed)
        .expect("at least one run")
}

fn best_of_async<F: Fn() -> AsyncMaintenanceRun>(
    key: fn(&AsyncMaintenanceRun) -> Duration,
    run: F,
) -> AsyncMaintenanceRun {
    (0..RUNS_PER_STRATEGY)
        .map(|_| run())
        .min_by_key(key)
        .expect("at least one run")
}

fn best_of_probe<F: Fn() -> RefreshProbe>(run: F) -> RefreshProbe {
    (0..RUNS_PER_STRATEGY)
        .map(|_| run())
        .min_by_key(|r| r.query_time)
        .expect("at least one run")
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn env_tolerance(var: &str, default: f64) -> f64 {
    std::env::var(var)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// One named gate: `measured` must stay within `allowed` (both in `unit`,
/// over a maintained population of `subscriptions` standing queries).
/// Prints the machine-greppable verdict line and, on failure, the
/// explanation.
struct Gate {
    name: &'static str,
    measured: f64,
    allowed: f64,
    unit: &'static str,
    subscriptions: usize,
    explanation: &'static str,
}

impl Gate {
    fn passed(&self) -> bool {
        self.measured <= self.allowed
    }

    fn report(&self) -> bool {
        eprintln!(
            "perf_gate: gate={} measured={:.1} {} allowed={:.1} {} -> {}",
            self.name,
            self.measured,
            self.unit,
            self.allowed,
            self.unit,
            if self.passed() { "PASS" } else { "FAIL" },
        );
        if !self.passed() {
            eprintln!("perf_gate: gate={} FAILED: {}", self.name, self.explanation);
        }
        self.passed()
    }
}

fn main() {
    let mut out_path: Option<String> = None;
    let mut json_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--json" {
            json_path = Some(args.next().expect("--json takes a path"));
        } else {
            out_path = Some(arg);
        }
    }
    let out_path = out_path
        .or_else(|| std::env::var("BENCH_OUT").ok())
        .unwrap_or_else(|| "BENCH_continuous.json".to_string());
    let tolerance = env_tolerance("PERF_GATE_TOLERANCE", 0.15);
    let async_tolerance = env_tolerance("PERF_GATE_ASYNC_TOLERANCE", 0.5);
    let pipeline_tolerance = env_tolerance("PERF_GATE_PIPELINE_TOLERANCE", 0.25);
    let telemetry_tolerance = env_tolerance("PERF_GATE_TELEMETRY_TOLERANCE", 0.25);
    let refresh_tolerance = env_tolerance("PERF_GATE_REFRESH_TOLERANCE", 0.0);
    let reorder_tolerance = env_tolerance("PERF_GATE_REORDER_TOLERANCE", 0.05);
    let obs_tolerance = env_tolerance("PERF_GATE_OBS_TOLERANCE", 0.25);
    let shared_factor = env_tolerance("PERF_GATE_SHARED_FACTOR", 5.0);
    let shared_subscriptions = std::env::var("PERF_GATE_SHARED_SUBSCRIPTIONS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100_000);

    let scenario = MaintenanceScenario::standard();
    eprintln!(
        "perf_gate: {} elements, {} subscriptions, best of {RUNS_PER_STRATEGY} runs per strategy",
        scenario.stream.len(),
        scenario.queries.len(),
    );

    // pipeline_depth = 1 reproduces the quiesce-before-write barrier: the
    // baseline both the async gate (consumer independence) and the pipelined
    // gate (epoch overlap) compare against.
    let barrier = ShardConfig::default().with_pipeline_depth(1);
    let pipelined_cfg = ShardConfig::default(); // depth 2

    let recompute = best_of(|| scenario.run_recompute());
    let serial = best_of(|| scenario.run_managed(ShardConfig::unsharded()));
    let sharded = best_of(|| scenario.run_managed(ShardConfig::default()));
    // The refresh gate's probes: pure evaluation cost per refresh, memoised
    // vs from scratch, over the identical slide-by-slide replay.
    let refresh_delta = best_of_probe(|| scenario.run_refresh_probe(true));
    let refresh_full = best_of_probe(|| scenario.run_refresh_probe(false));
    let async_fast = best_of_async(
        |r| r.ingest_return,
        || scenario.run_async(barrier, Duration::ZERO),
    );
    let async_slow = best_of_async(
        |r| r.ingest_return,
        || scenario.run_async(barrier, SLOW_CONSUMER_DELAY),
    );
    let pipelined = best_of_async(
        |r| r.ingest_span,
        || scenario.run_async(pipelined_cfg, Duration::ZERO),
    );
    // The same pipelined run with the trace ring off — the telemetry gate's
    // baseline.  (Metrics stay on in both runs; tracing is the only knob.)
    let untraced_cfg = pipelined_cfg.with_telemetry(TelemetryConfig::disabled());
    let untraced = best_of_async(
        |r| r.ingest_span,
        || scenario.run_async(untraced_cfg, Duration::ZERO),
    );
    // The obs gate's measured side: the same pipelined run with the
    // introspection server live and a scraper thread polling it throughout.
    let observed = best_of_async(|r| r.ingest_span, || scenario.run_obs_probe(pipelined_cfg));
    // The reorder gate's probes: the same clean in-order replay with and
    // without the reorder buffer staged in front of async ingestion.
    let reorder_base = best_of(|| scenario.run_reorder_probe(0));
    let reorder_buffered = best_of(|| scenario.run_reorder_probe(8));
    // The shared-plans probes: the subscriber-heavy Zipf population,
    // clustered vs per-subscription.  Scoring-pass counts are exact on
    // every run, so one run each suffices.
    let shared_scenario = MaintenanceScenario::zipf_population(shared_subscriptions);
    eprintln!(
        "perf_gate: shared-plans population {} subscriptions over {} elements",
        shared_scenario.queries.len(),
        shared_scenario.stream.len(),
    );
    let shared_on = shared_scenario.run_shared_probe(true);
    let shared_off = shared_scenario.run_shared_probe(false);
    let threads = ShardConfig::default().worker_threads();

    // Identical refresh decisions are a correctness invariant (pinned in the
    // continuous crate's tests); check it here too so a gate pass can never
    // come from a faster path silently doing less work.
    assert_eq!(
        serial.stats, sharded.stats,
        "sharded and serial paths must make identical refresh decisions"
    );
    assert_eq!(
        serial.stats, async_fast.stats,
        "the async pipeline must make identical refresh decisions"
    );
    assert_eq!(
        serial.stats, async_slow.stats,
        "a slow consumer must not change any refresh decision"
    );
    assert_eq!(
        serial.stats, pipelined.stats,
        "pipelined epochs must make identical refresh decisions"
    );
    assert_eq!(
        serial.stats, untraced.stats,
        "disabling tracing must not change any refresh decision"
    );
    assert_eq!(
        serial.stats, observed.stats,
        "a live introspection scraper must not change any refresh decision"
    );
    assert_eq!(
        serial.stats, reorder_base.stats,
        "the reorder probe's no-buffer baseline must make identical refresh decisions"
    );
    assert_eq!(
        serial.stats, reorder_buffered.stats,
        "an in-order stream through the reorder buffer must change nothing: no \
         re-sequencing, no shedding, identical refresh decisions"
    );
    let delta_refreshes: usize = sharded.shard_stats.iter().map(|s| s.delta_refreshes).sum();
    assert!(
        delta_refreshes > 0,
        "the scenario never exercised a delta-restricted refresh"
    );
    assert_eq!(
        refresh_delta.refreshes, refresh_full.refreshes,
        "both probes evaluate every subscription every slide"
    );
    // The deterministic form of the refresh gate: memoisation must save
    // scoring passes outright, independent of timer noise.
    assert!(
        refresh_delta.gain_evaluations < refresh_full.gain_evaluations,
        "delta-restricted probes performed no fewer scoring passes ({} vs {})",
        refresh_delta.gain_evaluations,
        refresh_full.gain_evaluations,
    );
    // The shared-plans probes must be decision-identical — the
    // per_subscription gate is a pure cost comparison, never a behaviour
    // change — and the clustered run must actually have clustered.
    assert_eq!(
        shared_on.stats, shared_off.stats,
        "plan clustering must make identical refresh decisions"
    );
    assert!(
        shared_on.covering_evaluations() > 0 && shared_on.shared_refreshes() > 0,
        "the shared-plans scenario never shared a covering run"
    );
    assert!(
        shared_on.gain_evaluations < shared_off.gain_evaluations,
        "the clustered path performed no fewer scoring passes ({} vs {})",
        shared_on.gain_evaluations,
        shared_off.gain_evaluations,
    );

    let gates = [
        Gate {
            name: "sharded",
            measured: ms(sharded.elapsed),
            allowed: ms(serial.elapsed) * (1.0 + tolerance),
            unit: "ms",
            subscriptions: scenario.queries.len(),
            explanation: "sharded refresh regressed past the serial delta-refresh path",
        },
        Gate {
            name: "async",
            measured: ms(async_slow.ingest_return),
            allowed: ms(async_fast.ingest_return) * (1.0 + async_tolerance),
            unit: "ms",
            subscriptions: scenario.queries.len(),
            explanation: "ingest-return latency depends on consumer speed — the pipeline is \
                 back-pressuring on delivery",
        },
        Gate {
            name: "pipelined",
            measured: ms(pipelined.ingest_interval()),
            allowed: ms(async_fast.ingest_interval()) * (1.0 + pipeline_tolerance),
            unit: "ms",
            subscriptions: scenario.queries.len(),
            explanation:
                "pipelined ingest-to-ingest interval regressed past the depth-1 barrier — \
                 index writes are re-serialising behind refresh compute",
        },
        Gate {
            name: "telemetry",
            measured: ms(pipelined.ingest_interval()),
            allowed: ms(untraced.ingest_interval()) * (1.0 + telemetry_tolerance),
            unit: "ms",
            subscriptions: scenario.queries.len(),
            explanation: "tracing-on ingest interval regressed past the tracing-off run — \
                 instrumentation has left the relaxed-atomic/ring-push budget",
        },
        // Deterministic by design: scoring passes, not wall time.  The true
        // wall-time margin of memoisation (a few percent on this scenario)
        // sits below run-to-run host noise, so a timing gate here would
        // flake; the scoring-pass count is exact on every run, and the
        // wall-time probes are still recorded in the JSON for tracking.
        Gate {
            name: "refresh",
            measured: refresh_delta.passes_per_refresh(),
            allowed: refresh_full.passes_per_refresh() * (1.0 + refresh_tolerance),
            unit: "passes/refresh",
            subscriptions: scenario.queries.len(),
            explanation: "delta-restricted refresh no longer saves scoring passes over the \
                 full-rerun baseline — the singleton cache is not paying for itself",
        },
        Gate {
            name: "reorder",
            measured: ms(reorder_buffered.elapsed),
            allowed: ms(reorder_base.elapsed) * (1.0 + reorder_tolerance),
            unit: "ms",
            subscriptions: scenario.queries.len(),
            explanation: "the reorder buffer costs more than its budget on a clean in-order \
                 stream — the resilience front end is taxing the healthy path",
        },
        Gate {
            name: "obs",
            measured: ms(observed.ingest_interval()),
            allowed: ms(pipelined.ingest_interval()) * (1.0 + obs_tolerance),
            unit: "ms",
            subscriptions: scenario.queries.len(),
            explanation: "the pipelined interval regressed under a live introspection scraper — \
                 serving /metrics is contending with the ingest hot path",
        },
        // Also deterministic: the LCG-seeded Zipf population makes both
        // probes' scoring-pass totals exact, so the required factor is a
        // hard floor, not a tolerance band.
        Gate {
            name: "per_subscription",
            measured: shared_on.passes_per_subscription(),
            allowed: shared_off.passes_per_subscription() / shared_factor,
            unit: "passes/subscription",
            subscriptions: shared_scenario.queries.len(),
            explanation: "clustered refresh no longer saves the required factor in scoring \
                 passes per subscription — covering runs are not being shared",
        },
    ];

    let json = format!(
        concat!(
            "{{\n",
            "  \"scenario\": {{ \"elements\": {}, \"subscriptions\": {}, \"slides\": {} }},\n",
            "  \"recompute_ms\": {:.3},\n",
            "  \"delta_serial_ms\": {:.3},\n",
            "  \"delta_sharded_ms\": {:.3},\n",
            "  \"refresh_probe_delta_ms\": {:.3},\n",
            "  \"refresh_probe_full_ms\": {:.3},\n",
            "  \"refresh_cost_delta_ms\": {:.4},\n",
            "  \"refresh_cost_full_ms\": {:.4},\n",
            "  \"refresh_gain_evaluations_delta\": {},\n",
            "  \"refresh_gain_evaluations_full\": {},\n",
            "  \"delta_refreshes\": {},\n",
            "  \"async_ingest_fast_consumer_ms\": {:.3},\n",
            "  \"async_ingest_slow_consumer_ms\": {:.3},\n",
            "  \"async_max_ingest_ms\": {:.3},\n",
            "  \"async_ingest_interval_ms\": {:.4},\n",
            "  \"pipelined_ingest_interval_ms\": {:.4},\n",
            "  \"pipelined_untraced_ingest_interval_ms\": {:.4},\n",
            "  \"obs_observed_ingest_interval_ms\": {:.4},\n",
            "  \"obs_delivered\": {},\n",
            "  \"pipelined_ingest_span_ms\": {:.3},\n",
            "  \"pipelined_epochs_captured\": {},\n",
            "  \"pipelined_shard_snapshots\": {},\n",
            "  \"pipelined_cow_clones\": {},\n",
            "  \"async_delivered\": {},\n",
            "  \"async_dropped\": {},\n",
            "  \"reorder_baseline_ms\": {:.3},\n",
            "  \"reorder_buffered_ms\": {:.3},\n",
            "  \"skip_ratio\": {:.4},\n",
            "  \"shards\": {},\n",
            "  \"worker_threads\": {},\n",
            "  \"shared_subscriptions\": {},\n",
            "  \"shared_covering_evaluations\": {},\n",
            "  \"shared_refreshes\": {},\n",
            "  \"shared_gain_evaluations_clustered\": {},\n",
            "  \"shared_gain_evaluations_unclustered\": {},\n",
            "  \"shared_clustered_ms\": {:.3},\n",
            "  \"shared_unclustered_ms\": {:.3},\n",
            "  \"tolerance\": {:.2},\n",
            "  \"async_tolerance\": {:.2},\n",
            "  \"pipeline_tolerance\": {:.2},\n",
            "  \"telemetry_tolerance\": {:.2},\n",
            "  \"refresh_tolerance\": {:.2},\n",
            "  \"reorder_tolerance\": {:.2},\n",
            "  \"obs_tolerance\": {:.2},\n",
            "  \"shared_factor\": {:.2},\n",
            "  \"gate\": \"{}\",\n",
            "  \"async_gate\": \"{}\",\n",
            "  \"pipelined_gate\": \"{}\",\n",
            "  \"telemetry_gate\": \"{}\",\n",
            "  \"refresh_gate\": \"{}\",\n",
            "  \"reorder_gate\": \"{}\",\n",
            "  \"obs_gate\": \"{}\",\n",
            "  \"per_subscription_gate\": \"{}\"\n",
            "}}\n"
        ),
        scenario.stream.len(),
        scenario.queries.len(),
        serial.stats.slides,
        ms(recompute.elapsed),
        ms(serial.elapsed),
        ms(sharded.elapsed),
        ms(refresh_delta.query_time),
        ms(refresh_full.query_time),
        ms(refresh_delta.per_refresh()),
        ms(refresh_full.per_refresh()),
        refresh_delta.gain_evaluations,
        refresh_full.gain_evaluations,
        delta_refreshes,
        ms(async_fast.ingest_return),
        ms(async_slow.ingest_return),
        ms(async_slow.max_ingest_return),
        ms(async_fast.ingest_interval()),
        ms(pipelined.ingest_interval()),
        ms(untraced.ingest_interval()),
        ms(observed.ingest_interval()),
        observed.delivered,
        ms(pipelined.ingest_span),
        pipelined.snapshots.epochs_captured,
        pipelined.snapshots.shard_snapshots,
        pipelined.cow_clones,
        async_slow.delivered,
        async_slow.dropped,
        ms(reorder_base.elapsed),
        ms(reorder_buffered.elapsed),
        sharded.skip_ratio(),
        sharded.shard_stats.len(),
        threads,
        shared_on.subscriptions,
        shared_on.covering_evaluations(),
        shared_on.shared_refreshes(),
        shared_on.gain_evaluations,
        shared_off.gain_evaluations,
        ms(shared_on.elapsed),
        ms(shared_off.elapsed),
        tolerance,
        async_tolerance,
        pipeline_tolerance,
        telemetry_tolerance,
        refresh_tolerance,
        reorder_tolerance,
        obs_tolerance,
        shared_factor,
        if gates[0].passed() { "pass" } else { "fail" },
        if gates[1].passed() { "pass" } else { "fail" },
        if gates[2].passed() { "pass" } else { "fail" },
        if gates[3].passed() { "pass" } else { "fail" },
        if gates[4].passed() { "pass" } else { "fail" },
        if gates[5].passed() { "pass" } else { "fail" },
        if gates[6].passed() { "pass" } else { "fail" },
        if gates[7].passed() { "pass" } else { "fail" },
    );
    std::fs::write(&out_path, &json).expect("write BENCH_continuous.json");
    print!("{json}");
    if let Some(json_path) = &json_path {
        let mut records = String::from("{\n  \"gates\": [\n");
        for (i, gate) in gates.iter().enumerate() {
            records.push_str(&format!(
                "    {{ \"gate\": \"{}\", \"measured\": {:.3}, \"allowed\": {:.3}, \
                 \"unit\": \"{}\", \"subscriptions\": {}, \"passed\": {} }}{}\n",
                gate.name,
                gate.measured,
                gate.allowed,
                gate.unit,
                gate.subscriptions,
                gate.passed(),
                if i + 1 == gates.len() { "" } else { "," },
            ));
        }
        records.push_str("  ]\n}\n");
        std::fs::write(json_path, records).expect("write gate-records JSON");
    }
    eprintln!(
        "perf_gate: recompute {:.0} ms | delta-serial {:.0} ms | delta-sharded {:.0} ms \
         ({:.1}% evals skipped, {} shards, {} worker threads)",
        ms(recompute.elapsed),
        ms(serial.elapsed),
        ms(sharded.elapsed),
        100.0 * sharded.skip_ratio(),
        sharded.shard_stats.len(),
        threads,
    );
    eprintln!(
        "perf_gate: async ingest-return fast {:.0} ms vs slow-consumer {:.0} ms \
         (max slide {:.2} ms, {} delivered / {} dropped)",
        ms(async_fast.ingest_return),
        ms(async_slow.ingest_return),
        ms(async_slow.max_ingest_return),
        async_slow.delivered,
        async_slow.dropped,
    );
    eprintln!(
        "perf_gate: ingest-to-ingest interval {:.3} ms pipelined (depth 2) vs {:.3} ms barrier \
         (depth 1); {} epochs captured, {} shard snapshots, {} cow clones",
        ms(pipelined.ingest_interval()),
        ms(async_fast.ingest_interval()),
        pipelined.snapshots.epochs_captured,
        pipelined.snapshots.shard_snapshots,
        pipelined.cow_clones,
    );
    eprintln!(
        "perf_gate: telemetry tracing-on interval {:.3} ms vs tracing-off {:.3} ms",
        ms(pipelined.ingest_interval()),
        ms(untraced.ingest_interval()),
    );
    eprintln!(
        "perf_gate: obs-scraped interval {:.3} ms vs unobserved {:.3} ms",
        ms(observed.ingest_interval()),
        ms(pipelined.ingest_interval()),
    );
    eprintln!(
        "perf_gate: refresh cost {:.4} ms/refresh delta-restricted vs {:.4} ms/refresh \
         full-rerun ({} vs {} scoring passes over {} evaluations; {} managed refreshes ran delta)",
        ms(refresh_delta.per_refresh()),
        ms(refresh_full.per_refresh()),
        refresh_delta.gain_evaluations,
        refresh_full.gain_evaluations,
        refresh_delta.refreshes,
        delta_refreshes,
    );
    eprintln!(
        "perf_gate: reorder-buffer overhead on a clean stream: {:.0} ms buffered (horizon 8) \
         vs {:.0} ms direct",
        ms(reorder_buffered.elapsed),
        ms(reorder_base.elapsed),
    );
    eprintln!(
        "perf_gate: shared plans over {} subscriptions: {:.2} passes/subscription clustered vs \
         {:.2} unclustered ({} covering runs served {} shared refreshes; {:.0} ms vs {:.0} ms)",
        shared_on.subscriptions,
        shared_on.passes_per_subscription(),
        shared_off.passes_per_subscription(),
        shared_on.covering_evaluations(),
        shared_on.shared_refreshes(),
        ms(shared_on.elapsed),
        ms(shared_off.elapsed),
    );
    let mut pass = true;
    for gate in &gates {
        pass &= gate.report();
    }
    if !pass {
        std::process::exit(1);
    }
}
