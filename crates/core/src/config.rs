//! Scoring and engine configuration.

use ksir_stream::WindowConfig;
use ksir_types::{KsirError, Result};

/// Parameters of the representativeness scoring function (Equation 2).
///
/// `f_i(S) = λ·R_i(S) + (1-λ)/η · I_{i,t}(S)` where `λ ∈ [0,1]` trades off
/// the semantic score against the influence score and `η > 0` rescales the
/// influence score so both terms live on comparable ranges.  The paper uses
/// `λ = 0.5` everywhere, `η = 20` for AMiner/Reddit and `η = 200` for Twitter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoringConfig {
    lambda: f64,
    eta: f64,
}

impl Default for ScoringConfig {
    fn default() -> Self {
        ScoringConfig {
            lambda: 0.5,
            eta: 20.0,
        }
    }
}

impl ScoringConfig {
    /// Creates a scoring configuration.
    ///
    /// `lambda` must lie in `[0, 1]` and `eta` must be a positive finite
    /// number; anything else would break the submodularity/monotonicity
    /// arguments behind the approximation guarantees.
    pub fn new(lambda: f64, eta: f64) -> Result<Self> {
        if !lambda.is_finite() || !(0.0..=1.0).contains(&lambda) {
            return Err(KsirError::invalid_parameter(
                "lambda",
                format!("must be in [0, 1], got {lambda}"),
            ));
        }
        if !eta.is_finite() || eta <= 0.0 {
            return Err(KsirError::invalid_parameter(
                "eta",
                format!("must be a positive finite number, got {eta}"),
            ));
        }
        Ok(ScoringConfig { lambda, eta })
    }

    /// The semantic/influence trade-off `λ`.
    #[inline]
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// The influence rescaling factor `η`.
    #[inline]
    pub fn eta(&self) -> f64 {
        self.eta
    }

    /// Weight multiplying the semantic score `R_i` (that is, `λ`).
    #[inline]
    pub fn semantic_weight(&self) -> f64 {
        self.lambda
    }

    /// Weight multiplying the influence score `I_{i,t}` (that is, `(1-λ)/η`).
    #[inline]
    pub fn influence_weight(&self) -> f64 {
        (1.0 - self.lambda) / self.eta
    }

    /// Combines per-topic semantic and influence scores into `f_i`.
    #[inline]
    pub fn combine(&self, semantic: f64, influence: f64) -> f64 {
        self.semantic_weight() * semantic + self.influence_weight() * influence
    }
}

/// Retention policy of the engine's element archive.
///
/// The paper defines the active set `A_t` as the window elements *plus every
/// element they reference*, which means an element that has already slid out
/// of the window must be brought back when a fresh element references it
/// (e.g. `e2` in Table 1 re-enters `A_t` at `t = 7` when `e7` cites it).  The
/// engine therefore archives the elements it has seen so referenced parents
/// can be resurrected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArchiveRetention {
    /// Keep every ingested element (what the paper's in-memory evaluation
    /// setup effectively does).  Memory grows with the stream length.
    Unbounded,
    /// Keep elements for this many ticks after their posting time; references
    /// to older elements are ignored.
    Ticks(u64),
    /// Keep nothing: references to elements outside the active window are
    /// ignored.
    Disabled,
}

/// Full configuration of a [`crate::KsirEngine`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// Sliding-window length `T` and bucket length `L`.
    pub window: WindowConfig,
    /// Representativeness scoring parameters.
    pub scoring: ScoringConfig,
    /// If set, each element's topic distribution is truncated to its `n`
    /// most probable topics (and renormalised) at ingest time.
    ///
    /// Real topic-model inference assigns a little probability mass to every
    /// topic, which would put every element into every ranked list and defeat
    /// the pruning that MTTS/MTTD rely on.  The paper observes that "the
    /// average number of topics per element is less than 2"; truncation is how
    /// we reproduce that sparsity with an honest dense inference procedure.
    pub max_topics_per_element: Option<usize>,
    /// Topic probabilities strictly below this value are zeroed at ingest
    /// time (before the optional truncation above).  Defaults to `0.0`.
    pub min_topic_prob: f64,
    /// How long ingested elements are archived so that later references can
    /// bring them back into the active set.  Defaults to
    /// [`ArchiveRetention::Unbounded`].
    pub archive: ArchiveRetention,
}

impl EngineConfig {
    /// Creates a configuration with default sparsification (top-2 topics per
    /// element, mirroring the sparsity the paper reports).
    pub fn new(window: WindowConfig, scoring: ScoringConfig) -> Self {
        EngineConfig {
            window,
            scoring,
            max_topics_per_element: Some(2),
            min_topic_prob: 0.0,
            archive: ArchiveRetention::Unbounded,
        }
    }

    /// Overrides the per-element topic truncation (`None` disables it).
    pub fn with_max_topics_per_element(mut self, n: Option<usize>) -> Self {
        self.max_topics_per_element = n;
        self
    }

    /// Overrides the minimum topic probability kept at ingest time.
    pub fn with_min_topic_prob(mut self, p: f64) -> Self {
        self.min_topic_prob = p;
        self
    }

    /// Overrides the archive retention policy.
    pub fn with_archive(mut self, archive: ArchiveRetention) -> Self {
        self.archive = archive;
        self
    }

    /// Validates numeric fields that the builders cannot enforce by type.
    pub fn validate(&self) -> Result<()> {
        if !self.min_topic_prob.is_finite()
            || self.min_topic_prob < 0.0
            || self.min_topic_prob > 1.0
        {
            return Err(KsirError::invalid_parameter(
                "min_topic_prob",
                format!("must be in [0, 1], got {}", self.min_topic_prob),
            ));
        }
        if self.max_topics_per_element == Some(0) {
            return Err(KsirError::invalid_parameter(
                "max_topics_per_element",
                "must keep at least one topic per element (use None to disable truncation)",
            ));
        }
        if self.archive == ArchiveRetention::Ticks(0) {
            return Err(KsirError::invalid_parameter(
                "archive",
                "archive retention of 0 ticks keeps nothing; use ArchiveRetention::Disabled",
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoring_config_validation() {
        assert!(ScoringConfig::new(-0.1, 1.0).is_err());
        assert!(ScoringConfig::new(1.1, 1.0).is_err());
        assert!(ScoringConfig::new(f64::NAN, 1.0).is_err());
        assert!(ScoringConfig::new(0.5, 0.0).is_err());
        assert!(ScoringConfig::new(0.5, -2.0).is_err());
        assert!(ScoringConfig::new(0.5, f64::INFINITY).is_err());
        assert!(ScoringConfig::new(0.0, 1.0).is_ok());
        assert!(ScoringConfig::new(1.0, 1.0).is_ok());
    }

    #[test]
    fn weights_follow_equation_2() {
        let c = ScoringConfig::new(0.5, 2.0).unwrap();
        assert_eq!(c.lambda(), 0.5);
        assert_eq!(c.eta(), 2.0);
        assert_eq!(c.semantic_weight(), 0.5);
        assert_eq!(c.influence_weight(), 0.25);
        assert!((c.combine(1.0, 2.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pure_semantic_and_pure_influence_extremes() {
        let sem_only = ScoringConfig::new(1.0, 5.0).unwrap();
        assert_eq!(sem_only.influence_weight(), 0.0);
        assert_eq!(sem_only.combine(3.0, 100.0), 3.0);
        let inf_only = ScoringConfig::new(0.0, 4.0).unwrap();
        assert_eq!(inf_only.semantic_weight(), 0.0);
        assert_eq!(inf_only.combine(100.0, 8.0), 2.0);
    }

    #[test]
    fn default_matches_paper_defaults() {
        let c = ScoringConfig::default();
        assert_eq!(c.lambda(), 0.5);
        assert_eq!(c.eta(), 20.0);
    }

    #[test]
    fn engine_config_validation() {
        let w = WindowConfig::new(24, 4).unwrap();
        let cfg = EngineConfig::new(w, ScoringConfig::default());
        assert!(cfg.validate().is_ok());
        assert_eq!(cfg.max_topics_per_element, Some(2));
        assert!(cfg.with_min_topic_prob(1.5).validate().is_err());
        let cfg =
            EngineConfig::new(w, ScoringConfig::default()).with_max_topics_per_element(Some(0));
        assert!(cfg.validate().is_err());
        let cfg = EngineConfig::new(w, ScoringConfig::default())
            .with_max_topics_per_element(None)
            .with_min_topic_prob(0.05);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn archive_retention_validation() {
        let w = WindowConfig::new(24, 4).unwrap();
        let base = EngineConfig::new(w, ScoringConfig::default());
        assert_eq!(base.archive, ArchiveRetention::Unbounded);
        assert!(base
            .with_archive(ArchiveRetention::Ticks(0))
            .validate()
            .is_err());
        assert!(base
            .with_archive(ArchiveRetention::Ticks(48))
            .validate()
            .is_ok());
        assert!(base
            .with_archive(ArchiveRetention::Disabled)
            .validate()
            .is_ok());
    }
}
