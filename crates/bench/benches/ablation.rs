//! Ablation benchmarks for the design decisions called out in DESIGN.md:
//!
//! 1. **Ranked-list layout** — the ordered-set ranked list (`O(log n)` score
//!    adjustments) against a naive sorted-`Vec` that re-sorts after every
//!    update, under the maintenance workload of Algorithm 1.
//! 2. **Marginal-gain evaluation** — the incremental coverage state
//!    (`CandidateState`) against recomputing `f(S ∪ {e}) − f(S)` from scratch
//!    while greedily building a k-element result.

use std::collections::HashMap;
use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ksir_bench::{build_engine, ProcessingConfig};
use ksir_core::QueryEvaluator;
use ksir_datagen::{DatasetProfile, QueryWorkloadGenerator, StreamGenerator};
use ksir_stream::RankedList;
use ksir_types::{ElementId, Timestamp, TopicVector};

/// Naive alternative to [`RankedList`]: a vector kept sorted by re-sorting
/// after every mutation.
#[derive(Default)]
struct SortedVecList {
    entries: Vec<(ElementId, f64, Timestamp)>,
}

impl SortedVecList {
    fn upsert(&mut self, id: ElementId, score: f64, ts: Timestamp) {
        if let Some(e) = self.entries.iter_mut().find(|(i, _, _)| *i == id) {
            *e = (id, score, ts);
        } else {
            self.entries.push((id, score, ts));
        }
        self.entries
            .sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    }
}

fn update_workload(n: u64) -> Vec<(ElementId, f64, Timestamp)> {
    // Mixed inserts and score adjustments, as produced by Algorithm 1.
    (0..n)
        .map(|i| {
            let id = ElementId(i % (n / 2).max(1));
            (id, ((i * 31) % 991) as f64 / 991.0, Timestamp(i))
        })
        .collect()
}

fn bench_ranked_list_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_ranked_list_layout");
    group.sample_size(20);
    for &n in &[2_000u64, 20_000] {
        let workload = update_workload(n);
        group.bench_function(BenchmarkId::new("ordered_set", n), |b| {
            b.iter(|| {
                let mut list = RankedList::new();
                for &(id, score, ts) in &workload {
                    list.upsert(id, score, ts);
                }
                black_box(list.len())
            })
        });
        // The naive layout is quadratic; keep it to the smaller size so the
        // benchmark suite stays fast while still showing the gap.
        if n <= 2_000 {
            group.bench_function(BenchmarkId::new("resorted_vec", n), |b| {
                b.iter(|| {
                    let mut list = SortedVecList::default();
                    for &(id, score, ts) in &workload {
                        list.upsert(id, score, ts);
                    }
                    black_box(list.entries.len())
                })
            });
        }
    }
    group.finish();
}

fn bench_marginal_gain_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_marginal_gain");
    group.sample_size(20);

    let profile = DatasetProfile::reddit().scaled(0.25).with_topics(50);
    let stream = StreamGenerator::new(profile, 13)
        .unwrap()
        .generate()
        .unwrap();
    let config = ProcessingConfig::for_stream(&stream);
    let mut engine = build_engine(&stream, &config).unwrap();
    engine.ingest_stream(stream.iter_pairs()).unwrap();
    let vector = QueryWorkloadGenerator::new(&stream.planted, 3)
        .generate(1, stream.end_time())
        .unwrap()
        .remove(0)
        .vector;
    let scorer = engine.scorer();
    let tv_map: HashMap<ElementId, TopicVector> = engine
        .active_ids()
        .into_iter()
        .filter_map(|id| engine.topic_vector(id).map(|tv| (id, tv.clone())))
        .collect();
    let candidates: Vec<ElementId> = engine.active_ids().into_iter().take(40).collect();
    let k = 10;

    group.bench_function("incremental_state", |b| {
        b.iter(|| {
            let evaluator = QueryEvaluator::new(scorer, engine.window(), &tv_map, &vector);
            let mut state = evaluator.new_candidate();
            while state.len() < k {
                let best = candidates
                    .iter()
                    .filter(|id| !state.contains(**id))
                    .map(|&id| (id, evaluator.marginal_gain(&state, id)))
                    .max_by(|a, b| a.1.total_cmp(&b.1));
                match best {
                    Some((id, _)) => {
                        evaluator.insert(&mut state, id);
                    }
                    None => break,
                }
            }
            black_box(state.score())
        })
    });

    group.bench_function("from_scratch", |b| {
        b.iter(|| {
            let mut selected: Vec<ElementId> = Vec::new();
            while selected.len() < k {
                let best = candidates
                    .iter()
                    .filter(|id| !selected.contains(id))
                    .map(|&id| (id, scorer.marginal_gain(&vector, &selected, id)))
                    .max_by(|a, b| a.1.total_cmp(&b.1));
                match best {
                    Some((id, _)) => selected.push(id),
                    None => break,
                }
            }
            black_box(scorer.set_score(&vector, &selected))
        })
    });

    group.finish();
}

criterion_group!(
    benches,
    bench_ranked_list_ablation,
    bench_marginal_gain_ablation
);
criterion_main!(benches);
