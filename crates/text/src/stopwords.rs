//! Stop-word and noise-word filtering.
//!
//! The paper removes "stop words and noise words" during preprocessing
//! (§5.1).  We bundle a compact English stop-word list (function words,
//! auxiliaries, common social-media filler) and allow callers to extend it
//! with domain-specific noise words.

use std::collections::HashSet;

/// The built-in English stop-word list.
///
/// Deliberately compact: the goal is to drop function words that carry no
/// topical signal, not to be an exhaustive linguistic resource.
pub const DEFAULT_STOPWORDS: &[&str] = &[
    "a",
    "about",
    "above",
    "after",
    "again",
    "against",
    "all",
    "am",
    "an",
    "and",
    "any",
    "are",
    "aren't",
    "as",
    "at",
    "be",
    "because",
    "been",
    "before",
    "being",
    "below",
    "between",
    "both",
    "but",
    "by",
    "can",
    "cannot",
    "could",
    "couldn't",
    "did",
    "didn't",
    "do",
    "does",
    "doesn't",
    "doing",
    "don't",
    "down",
    "during",
    "each",
    "few",
    "for",
    "from",
    "further",
    "had",
    "hadn't",
    "has",
    "hasn't",
    "have",
    "haven't",
    "having",
    "he",
    "her",
    "here",
    "hers",
    "herself",
    "him",
    "himself",
    "his",
    "how",
    "i",
    "if",
    "in",
    "into",
    "is",
    "isn't",
    "it",
    "its",
    "itself",
    "just",
    "me",
    "more",
    "most",
    "my",
    "myself",
    "no",
    "nor",
    "not",
    "now",
    "of",
    "off",
    "on",
    "once",
    "only",
    "or",
    "other",
    "our",
    "ours",
    "ourselves",
    "out",
    "over",
    "own",
    "rt",
    "same",
    "she",
    "should",
    "shouldn't",
    "so",
    "some",
    "such",
    "than",
    "that",
    "the",
    "their",
    "theirs",
    "them",
    "themselves",
    "then",
    "there",
    "these",
    "they",
    "this",
    "those",
    "through",
    "to",
    "too",
    "under",
    "until",
    "up",
    "very",
    "was",
    "wasn't",
    "we",
    "were",
    "weren't",
    "what",
    "when",
    "where",
    "which",
    "while",
    "who",
    "whom",
    "why",
    "will",
    "with",
    "won't",
    "would",
    "wouldn't",
    "you",
    "your",
    "yours",
    "yourself",
    "yourselves",
    "via",
    "amp",
    "im",
    "dont",
    "cant",
    "youre",
    "ive",
    "id",
    "lol",
    "get",
    "got",
    "go",
    "going",
    "one",
    "u",
    "ur",
    "us",
];

/// A stop-word filter.
#[derive(Debug, Clone)]
pub struct StopWords {
    words: HashSet<String>,
}

impl Default for StopWords {
    fn default() -> Self {
        StopWords::english()
    }
}

impl StopWords {
    /// An empty filter that keeps every token.
    pub fn none() -> Self {
        StopWords {
            words: HashSet::new(),
        }
    }

    /// The built-in English stop-word list.
    pub fn english() -> Self {
        StopWords {
            words: DEFAULT_STOPWORDS.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// Adds extra noise words (e.g. dataset-specific boilerplate).
    pub fn with_extra<'a, I: IntoIterator<Item = &'a str>>(mut self, extra: I) -> Self {
        for w in extra {
            self.words.insert(w.to_lowercase());
        }
        self
    }

    /// Returns `true` if `word` should be removed.
    pub fn is_stopword(&self, word: &str) -> bool {
        self.words.contains(word)
    }

    /// Filters a token stream in place, keeping only content words.
    pub fn filter(&self, tokens: Vec<String>) -> Vec<String> {
        tokens
            .into_iter()
            .filter(|t| !self.is_stopword(t))
            .collect()
    }

    /// Number of words in the filter.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Returns `true` if the filter is empty.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn english_list_filters_function_words() {
        let sw = StopWords::english();
        assert!(sw.is_stopword("the"));
        assert!(sw.is_stopword("is"));
        assert!(!sw.is_stopword("soccer"));
        assert!(!sw.is_stopword("#ucl"));
    }

    #[test]
    fn none_keeps_everything() {
        let sw = StopWords::none();
        assert!(sw.is_empty());
        assert!(!sw.is_stopword("the"));
        let toks = vec!["the".to_string(), "cavs".to_string()];
        assert_eq!(sw.filter(toks.clone()), toks);
    }

    #[test]
    fn extra_words_are_lowercased_and_filtered() {
        let sw = StopWords::english().with_extra(["Retweet", "breaking"]);
        assert!(sw.is_stopword("retweet"));
        assert!(sw.is_stopword("breaking"));
    }

    #[test]
    fn filter_removes_only_stopwords() {
        let sw = StopWords::english();
        let toks: Vec<String> = ["lebron", "is", "the", "greatest"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(sw.filter(toks), vec!["lebron", "greatest"]);
    }

    #[test]
    fn default_is_english() {
        assert_eq!(StopWords::default().len(), StopWords::english().len());
        assert!(StopWords::default().len() > 100);
    }
}
