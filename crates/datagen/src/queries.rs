//! Query workload generation (§5.1 of the paper).
//!
//! The paper generates k-SIR queries by (1) drawing 1–5 words from the
//! vocabulary, (2) treating them as a pseudo-document and inferring its topic
//! distribution, and (3) assigning each query a random timestamp in
//! `[1, t_n]`.  The workload generator reproduces that procedure against a
//! planted topic model: the words are drawn from a randomly chosen topic's
//! word distribution (so queries are about *something*, as real queries are)
//! and the query vector is obtained by normalising the per-topic likelihoods
//! of the chosen words.

use rand::rngs::StdRng;
use rand::Rng;

use ksir_types::rng::{derive_seed, seeded_rng};
use ksir_types::{
    Document, KsirError, QueryVector, Result, Timestamp, TopicId, TopicWordDistribution,
};

use crate::planted::PlantedTopicModel;

/// One generated query: keywords, the inferred query vector, and the time at
/// which the query should be issued.
#[derive(Debug, Clone)]
pub struct GeneratedQuery {
    /// Keyword pseudo-document (1–5 words).
    pub keywords: Document,
    /// Query vector inferred from the keywords.
    pub vector: QueryVector,
    /// Timestamp at which the query is evaluated.
    pub timestamp: Timestamp,
}

/// Generates query workloads against a planted topic model.
#[derive(Debug)]
pub struct QueryWorkloadGenerator<'a> {
    planted: &'a PlantedTopicModel,
    seed: u64,
    min_words: usize,
    max_words: usize,
}

impl<'a> QueryWorkloadGenerator<'a> {
    /// Creates a workload generator with the paper's 1–5 keywords per query.
    pub fn new(planted: &'a PlantedTopicModel, seed: u64) -> Self {
        QueryWorkloadGenerator {
            planted,
            seed,
            min_words: 1,
            max_words: 5,
        }
    }

    /// Overrides the keyword-count range.
    pub fn with_word_range(mut self, min_words: usize, max_words: usize) -> Result<Self> {
        if min_words == 0 || max_words < min_words {
            return Err(KsirError::invalid_parameter(
                "word_range",
                "need 1 ≤ min_words ≤ max_words",
            ));
        }
        self.min_words = min_words;
        self.max_words = max_words;
        Ok(self)
    }

    /// Generates `count` queries with timestamps uniform in `[1, end_time]`.
    pub fn generate(&self, count: usize, end_time: Timestamp) -> Result<Vec<GeneratedQuery>> {
        if end_time == Timestamp::ZERO {
            return Err(KsirError::invalid_parameter(
                "end_time",
                "the stream end time must be positive",
            ));
        }
        let mut rng = seeded_rng(derive_seed(self.seed, "queries"));
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            out.push(self.generate_one(&mut rng, end_time));
        }
        Ok(out)
    }

    fn generate_one(&self, rng: &mut StdRng, end_time: Timestamp) -> GeneratedQuery {
        let z = self.planted.num_topics();
        let topic = TopicId(rng.gen_range(0..z) as u32);
        let num_words = rng.gen_range(self.min_words..=self.max_words);
        let mut keywords = Document::new();
        for _ in 0..num_words {
            keywords.push(self.planted.sample_word(rng, topic));
        }
        let vector = infer_query_vector(self.planted, &keywords)
            .expect("keywords drawn from a topic always have positive likelihood");
        let timestamp = Timestamp(rng.gen_range(1..=end_time.raw()));
        GeneratedQuery {
            keywords,
            vector,
            timestamp,
        }
    }
}

/// Infers a query vector from a keyword pseudo-document against a planted
/// model by normalising the summed per-topic word probabilities.
///
/// Entries below 5% of the strongest topic are dropped before normalisation:
/// shared background words give every topic a sliver of probability, but real
/// inferred query vectors (and the ones the paper's experiments use) are
/// sparse — "the number of non-zero entries in the query vector" `d` is small,
/// which is what the multi-topic traversal of MTTS/MTTD exploits.
pub fn infer_query_vector(planted: &PlantedTopicModel, keywords: &Document) -> Result<QueryVector> {
    let z = planted.num_topics();
    let mut weights = vec![0.0; z];
    for (word, freq) in keywords.iter() {
        for (t, weight) in weights.iter_mut().enumerate() {
            *weight += freq as f64 * planted.phi().word_prob(TopicId(t as u32), word);
        }
    }
    let max = weights.iter().copied().fold(0.0_f64, f64::max);
    if max > 0.0 {
        // Drop the background-word dust (< 5% of the strongest topic) and keep
        // at most the four strongest topics, mirroring the sparse vectors that
        // Gibbs-sampling inference produces for short keyword queries.
        let floor = 0.05 * max;
        for w in &mut weights {
            if *w < floor {
                *w = 0.0;
            }
        }
        let mut order: Vec<usize> = (0..z).collect();
        order.sort_by(|&a, &b| weights[b].total_cmp(&weights[a]));
        for &idx in order.iter().skip(4) {
            weights[idx] = 0.0;
        }
    }
    QueryVector::new(weights)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn planted() -> PlantedTopicModel {
        PlantedTopicModel::new(8, 400, 1.1).unwrap()
    }

    #[test]
    fn workload_has_requested_size_and_ranges() {
        let p = planted();
        let gen = QueryWorkloadGenerator::new(&p, 9);
        let queries = gen.generate(50, Timestamp(1000)).unwrap();
        assert_eq!(queries.len(), 50);
        for q in &queries {
            assert!(!q.keywords.is_empty() && q.keywords.len() <= 5);
            assert!(q.timestamp.raw() >= 1 && q.timestamp.raw() <= 1000);
            assert!((0..8).any(|t| q.vector.weight(TopicId(t)) > 0.0));
            let total: f64 = (0..8).map(|t| q.vector.weight(TopicId(t))).sum();
            assert!((total - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn workload_is_deterministic_per_seed() {
        let p = planted();
        let a = QueryWorkloadGenerator::new(&p, 4)
            .generate(10, Timestamp(100))
            .unwrap();
        let b = QueryWorkloadGenerator::new(&p, 4)
            .generate(10, Timestamp(100))
            .unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.keywords, y.keywords);
            assert_eq!(x.timestamp, y.timestamp);
        }
        let c = QueryWorkloadGenerator::new(&p, 5)
            .generate(10, Timestamp(100))
            .unwrap();
        assert!(a
            .iter()
            .zip(c.iter())
            .any(|(x, y)| x.keywords != y.keywords));
    }

    #[test]
    fn queries_lean_towards_their_source_topic() {
        let p = planted();
        let queries = QueryWorkloadGenerator::new(&p, 21)
            .with_word_range(3, 5)
            .unwrap()
            .generate(40, Timestamp(500))
            .unwrap();
        // With 3-5 topical keywords, the dominant topic should carry most of
        // the query mass for the clear majority of queries.
        let peaked = queries
            .iter()
            .filter(|q| {
                let top = q
                    .vector
                    .support()
                    .iter()
                    .map(|(_, w)| *w)
                    .fold(0.0, f64::max);
                top > 0.5
            })
            .count();
        assert!(peaked > 25, "only {peaked}/40 queries are topic-peaked");
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        let p = planted();
        assert!(QueryWorkloadGenerator::new(&p, 1)
            .with_word_range(0, 3)
            .is_err());
        assert!(QueryWorkloadGenerator::new(&p, 1)
            .with_word_range(4, 2)
            .is_err());
        assert!(QueryWorkloadGenerator::new(&p, 1)
            .generate(5, Timestamp::ZERO)
            .is_err());
    }

    #[test]
    fn query_vector_inference_matches_word_likelihoods() {
        let p = planted();
        // A document made only of topic 0's top core word must peak on topic 0.
        let w = p.core_words(TopicId(0))[0];
        let doc = Document::from_tokens([w, w]);
        let v = infer_query_vector(&p, &doc).unwrap();
        assert_eq!(
            v.support()
                .iter()
                .max_by(|a, b| a.1.total_cmp(&b.1))
                .unwrap()
                .0,
            TopicId(0)
        );
    }
}
