//! Quantitative effectiveness metrics (Table 6 of the paper).

use ksir_baselines::{SearchItem, SearchPool};
use ksir_types::{ElementId, QueryVector};

/// Coverage of a result set `S` w.r.t. a query vector `x` over the candidate
/// pool `A` (the paper's first quantitative metric, following Lin & Bilmes
/// and Badanidiyuru et al.):
///
/// ```text
/// coverage(S, x) = (1 / |A \ S|) · Σ_{e ∈ A\S}  max_{e' ∈ S}  rel(e, x) · sim(e, e')
/// ```
///
/// where `rel(e, x)` is the cosine similarity between `e`'s topic vector and
/// the query vector and `sim(e, e')` the cosine similarity between topic
/// vectors.  The normalisation by `|A \ S|` keeps the value in `[0, 1]` and
/// independent of the pool size, so the numbers are comparable across
/// datasets and window lengths.
pub fn coverage_score(pool: &SearchPool, query: &QueryVector, result: &[ElementId]) -> f64 {
    if result.is_empty() || pool.is_empty() {
        return 0.0;
    }
    let members: Vec<&SearchItem> = result.iter().filter_map(|id| pool.get(*id)).collect();
    if members.is_empty() {
        return 0.0;
    }
    let mut total = 0.0;
    let mut count = 0usize;
    for item in pool.iter() {
        if result.contains(&item.id) {
            continue;
        }
        let rel = query.cosine(&item.topic_vector).unwrap_or(0.0);
        let best_sim = members
            .iter()
            .map(|m| item.topic_vector.cosine(&m.topic_vector).unwrap_or(0.0))
            .fold(0.0_f64, f64::max);
        total += rel * best_sim;
        count += 1;
    }
    if count == 0 {
        // The result covers the whole pool.
        1.0
    } else {
        total / count as f64
    }
}

/// Raw influence of a result set: the number of pool elements that refer to
/// at least one element of the result set.
pub fn influence_score(pool: &SearchPool, result: &[ElementId]) -> usize {
    if result.is_empty() {
        return 0;
    }
    pool.iter()
        .filter(|item| item.refs.iter().any(|r| result.contains(r)))
        .count()
}

/// Influence of a result set linearly rescaled to `[0, 1]` by dividing by the
/// influence of the `k` most-referenced elements of the pool (the paper's
/// normalisation for Table 6), where `k` is the size of the result set.
pub fn normalized_influence_score(pool: &SearchPool, result: &[ElementId]) -> f64 {
    if result.is_empty() {
        return 0.0;
    }
    let raw = influence_score(pool, result);
    // Top-k most referenced elements of the pool.
    let mut by_popularity: Vec<&SearchItem> = pool.iter().collect();
    by_popularity.sort_by(|a, b| {
        b.referenced_by
            .cmp(&a.referenced_by)
            .then_with(|| a.id.cmp(&b.id))
    });
    let top: Vec<ElementId> = by_popularity
        .iter()
        .take(result.len())
        .map(|i| i.id)
        .collect();
    let denom = influence_score(pool, &top);
    if denom == 0 {
        if raw == 0 {
            0.0
        } else {
            1.0
        }
    } else {
        (raw as f64 / denom as f64).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksir_types::{Document, TopicVector, WordId};

    fn item(id: u64, tv: Vec<f64>, refs: &[u64], referenced_by: usize) -> SearchItem {
        SearchItem {
            id: ElementId(id),
            doc: Document::from_tokens([WordId(0)]),
            topic_vector: TopicVector::from_values(tv).unwrap(),
            refs: refs.iter().map(|&r| ElementId(r)).collect(),
            referenced_by,
        }
    }

    fn pool() -> SearchPool {
        // Topic-0 cluster: 1, 2, 3 (3 references 1).  Topic-1 cluster: 4, 5
        // (5 references 4).  Element 6 references both clusters.
        SearchPool::from_items(vec![
            item(1, vec![1.0, 0.0], &[], 2),
            item(2, vec![0.9, 0.1], &[], 0),
            item(3, vec![0.8, 0.2], &[1], 0),
            item(4, vec![0.0, 1.0], &[], 2),
            item(5, vec![0.1, 0.9], &[4], 0),
            item(6, vec![0.5, 0.5], &[1, 4], 0),
        ])
    }

    #[test]
    fn coverage_prefers_on_topic_representatives() {
        let pool = pool();
        let q = QueryVector::new(vec![1.0, 0.0]).unwrap();
        let on_topic = coverage_score(&pool, &q, &[ElementId(1)]);
        let off_topic = coverage_score(&pool, &q, &[ElementId(4)]);
        assert!(on_topic > off_topic);
        assert!(on_topic > 0.0 && on_topic <= 1.0);
    }

    #[test]
    fn coverage_grows_with_better_coverage() {
        let pool = pool();
        let q = QueryVector::new(vec![0.5, 0.5]).unwrap();
        let one = coverage_score(&pool, &q, &[ElementId(1)]);
        let two = coverage_score(&pool, &q, &[ElementId(1), ElementId(4)]);
        assert!(
            two >= one,
            "covering both clusters cannot hurt: {two} < {one}"
        );
    }

    #[test]
    fn coverage_edge_cases() {
        let pool = pool();
        let q = QueryVector::new(vec![1.0, 0.0]).unwrap();
        assert_eq!(coverage_score(&pool, &q, &[]), 0.0);
        assert_eq!(coverage_score(&SearchPool::new(), &q, &[ElementId(1)]), 0.0);
        // result ids that are not in the pool contribute nothing
        assert_eq!(coverage_score(&pool, &q, &[ElementId(99)]), 0.0);
        // a result covering the entire pool scores 1
        let all: Vec<ElementId> = pool.iter().map(|i| i.id).collect();
        assert_eq!(coverage_score(&pool, &q, &all), 1.0);
    }

    #[test]
    fn influence_counts_referring_elements() {
        let pool = pool();
        assert_eq!(influence_score(&pool, &[ElementId(1)]), 2); // e3 and e6
        assert_eq!(influence_score(&pool, &[ElementId(4)]), 2); // e5 and e6
        assert_eq!(influence_score(&pool, &[ElementId(1), ElementId(4)]), 3);
        assert_eq!(influence_score(&pool, &[ElementId(2)]), 0);
        assert_eq!(influence_score(&pool, &[]), 0);
    }

    #[test]
    fn normalized_influence_is_in_unit_range() {
        let pool = pool();
        // {1, 4} are exactly the two most-referenced elements → ratio 1.
        let best = normalized_influence_score(&pool, &[ElementId(1), ElementId(4)]);
        assert!((best - 1.0).abs() < 1e-12);
        let worst = normalized_influence_score(&pool, &[ElementId(2), ElementId(3)]);
        assert!(worst >= 0.0 && worst < best);
        assert_eq!(normalized_influence_score(&pool, &[]), 0.0);
    }

    #[test]
    fn normalized_influence_handles_reference_free_pools() {
        let pool = SearchPool::from_items(vec![
            item(1, vec![1.0, 0.0], &[], 0),
            item(2, vec![0.0, 1.0], &[], 0),
        ]);
        assert_eq!(normalized_influence_score(&pool, &[ElementId(1)]), 0.0);
    }
}
