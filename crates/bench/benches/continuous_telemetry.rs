//! Telemetry overhead on the pipelined maintenance path.
//!
//! Same shared [`MaintenanceScenario`] as the other `continuous*` benches,
//! always in pipelined mode (`pipeline_depth = 2`); the only knob is
//! [`TelemetryConfig`]:
//!
//! * `tracing_off` — the trace ring disabled (metrics registry still on,
//!   since counters cannot be turned off),
//! * `tracing_on` — the default: every slide/snapshot/schedule/skip/
//!   refresh/delivery event pushed into the bounded ring.
//!
//! The margin between the two is what the CI `telemetry` gate
//! (`PERF_GATE_TELEMETRY_TOLERANCE` in `perf_gate`) bounds; this bench
//! exists to observe it interactively, together with the per-stage
//! histograms a traced run accumulates.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ksir_bench::MaintenanceScenario;
use ksir_continuous::{ShardConfig, TelemetryConfig};

fn bench_telemetry_overhead(c: &mut Criterion) {
    let scenario = MaintenanceScenario::standard();
    let mut group = c.benchmark_group("continuous_telemetry");
    group.sample_size(10);

    group.bench_function(
        BenchmarkId::new("tracing_off", scenario.stream.len()),
        |b| {
            b.iter(|| {
                scenario
                    .run_async(
                        ShardConfig::default().with_telemetry(TelemetryConfig::disabled()),
                        Duration::ZERO,
                    )
                    .ingest_span
            })
        },
    );
    group.bench_function(BenchmarkId::new("tracing_on", scenario.stream.len()), |b| {
        b.iter(|| {
            scenario
                .run_async(ShardConfig::default(), Duration::ZERO)
                .ingest_span
        })
    });
    group.finish();
}

/// One-shot report: the tracing margin plus what a traced run's registry
/// actually saw (stage latencies, event volume) — the numbers a dashboard
/// would render.
fn report_telemetry_cost(c: &mut Criterion) {
    let scenario = MaintenanceScenario::standard();
    let untraced = scenario.run_async(
        ShardConfig::default().with_telemetry(TelemetryConfig::disabled()),
        Duration::ZERO,
    );
    let traced = scenario.run_async(ShardConfig::default(), Duration::ZERO);
    let ms = |d: Duration| d.as_secs_f64() * 1e3;
    assert_eq!(
        untraced.stats, traced.stats,
        "telemetry must not change refresh decisions"
    );
    println!(
        "continuous_telemetry/interval: {:.3} ms/slide tracing-on vs {:.3} ms/slide \
         tracing-off over {} slides",
        ms(traced.ingest_interval()),
        ms(untraced.ingest_interval()),
        traced.stats.slides,
    );
    let _ = c;
}

criterion_group!(benches, bench_telemetry_overhead, report_telemetry_cost);
criterion_main!(benches);
