//! Breaking-news feed: continuous k-SIR queries over a Twitter-like stream.
//!
//! This is the scenario the paper's introduction motivates: a user follows a
//! topic ("soccer") on a fast stream and wants, at any moment, a handful of
//! posts that are *representative* — semantically covering what is being said
//! on the topic right now and heavily referenced (retweeted) inside the
//! current window — rather than merely the most similar ones.
//!
//! The example generates a Twitter-shaped synthetic stream, replays it
//! through the engine, and re-issues the same standing query every few hours
//! of stream time, printing how the representative set evolves.
//!
//! Run with `cargo run --release --example breaking_news_feed`.

use ksir::datagen::{DatasetProfile, StreamGenerator};
use ksir::{
    Algorithm, EngineConfig, KsirEngine, KsirQuery, QueryVector, ScoringConfig, Timestamp, TopicId,
    WindowConfig,
};

fn main() -> Result<(), ksir::KsirError> {
    // A Twitter-shaped stream: short posts, rare but bursty retweets.
    let profile = DatasetProfile::twitter().scaled(0.25).with_topics(20);
    let stream = StreamGenerator::new(profile, 2024)?.generate()?;
    println!(
        "Generated a Twitter-like stream: {} posts over {:.1} hours, avg {:.1} words and {:.2} references per post.\n",
        stream.len(),
        stream.end_time().raw() as f64 / 60.0,
        stream.average_doc_len(),
        stream.average_refs()
    );

    // 6-hour window, 15-minute buckets — the freshness the feed cares about.
    let config = EngineConfig::new(
        WindowConfig::new(6 * 60, 15)?,
        ScoringConfig::new(0.5, 1.0)?,
    );
    let mut engine = KsirEngine::new(stream.planted.phi().clone(), config)?;

    // The standing query: the user follows topic θ0 with a side interest in θ1.
    let query = KsirQuery::new(
        4,
        QueryVector::new({
            let mut w = vec![0.0; engine.num_topics()];
            w[0] = 0.8;
            w[1] = 0.2;
            w
        })?,
    )?;

    // Replay the stream in 15-minute buckets; refresh the feed every 4 hours.
    let refresh_every = 4 * 60;
    let mut next_refresh = refresh_every;
    let bucket_len = 15u64;
    let mut bucket_end = bucket_len;
    let mut pending = Vec::new();

    for (element, tv) in stream.iter_pairs() {
        while element.ts.raw() > bucket_end {
            engine.ingest_bucket(std::mem::take(&mut pending), Timestamp(bucket_end))?;
            if bucket_end >= next_refresh {
                print_feed(&engine, &query)?;
                next_refresh += refresh_every;
            }
            bucket_end += bucket_len;
        }
        pending.push((element, tv));
    }
    engine.ingest_bucket(pending, Timestamp(bucket_end))?;
    print_feed(&engine, &query)?;

    Ok(())
}

fn print_feed(
    engine: &KsirEngine<ksir::types::DenseTopicWordTable>,
    query: &KsirQuery,
) -> Result<(), ksir::KsirError> {
    let result = engine.query(query, Algorithm::Mttd)?;
    println!(
        "t = {:>5} min | {:>4} active posts | feed refreshed in ~{} evaluations | f(S, x) = {:.3}",
        engine.now().raw(),
        engine.active_count(),
        result.evaluated_elements,
        result.score
    );
    for id in &result.elements {
        let element = engine.element(*id).expect("result elements are active");
        let retweets = engine.window().influence_count(*id);
        let dominant = engine
            .topic_vector(*id)
            .and_then(|tv| tv.dominant_topic())
            .unwrap_or(TopicId(0));
        println!(
            "    {id}: {} words, {} in-window retweets, mostly about topic {}",
            element.doc.distinct_words(),
            retweets,
            dominant.raw()
        );
    }
    println!();
    Ok(())
}
