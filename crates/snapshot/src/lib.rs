//! # ksir-snapshot
//!
//! Immutable, epoch-bounded snapshots of the k-SIR engine, for **pipelined**
//! standing-query maintenance.
//!
//! The asynchronous pipeline in `ksir-continuous` used to quiesce every
//! outstanding refresh before each index write — refresh *compute* therefore
//! bounded the sustained slide rate even though refresh *delivery* no longer
//! did.  The fix mirrors the batch discipline of differential dataflow:
//! instead of handing refresh workers a read guard on the live engine, each
//! slide captures an [`EngineSnapshot`] — a frozen image of exactly the state
//! a refresh reads — and the workers evaluate against that while the next
//! epoch's index update proceeds underneath.
//!
//! Capture is cheap by construction:
//!
//! * the per-topic ranked lists, the active window, and the topic-vector map
//!   all live behind `Arc`s inside the engine, so one capture is `O(z)`
//!   pointer clones;
//! * the *writer* pays for isolation copy-on-write, and only for the
//!   structures it actually mutates while a snapshot is still alive (the
//!   engine's `EngineStats::*_cow_clones` counters make that cost visible);
//! * per scheduled shard, a [`ShardSnapshot`] bounds the view to the topics
//!   the shard's residents can traverse, optionally materialising
//!   floor-truncated contiguous prefixes ([`SnapshotPolicy::TruncateAtFloors`]).
//!
//! Both snapshot types implement [`ksir_core::RankedView`] (the index-read
//! seam the MTTS/MTTD/Top-k traversals consume) and [`ksir_core::QuerySource`]
//! (run a whole query), so a subscription refresh is *identical code* whether
//! it reads the live engine or a snapshot — which is what keeps the pipelined
//! path decision-identical to the synchronous one.
//!
//! ## Exact vs truncated capture
//!
//! [`SnapshotPolicy::Exact`] (the default) serves every list whole through
//! the shared `Arc` image: re-running a query against it returns bit-for-bit
//! what the live engine would have returned at that epoch, no matter how deep
//! the traversal descends.  [`SnapshotPolicy::TruncateAtFloors`] instead
//! materialises each watched topic's list only down to the shard's
//! [`FloorAggregate`](ksir_core::FloorAggregate) floor.  A floor-truncated
//! prefix always contains every tuple whose touch could have *scheduled* the
//! refresh (the refresh-decision sufficiency property, see the property tests
//! in `ksir-core`), but a re-run may legitimately descend below the old floor
//! — e.g. after a result member expires — in which case the truncated image
//! under-reports the tail.  Such exhaustions are counted in
//! [`SnapshotStats::truncation_shortfalls`]; use `TruncateAtFloors` only when
//! bounding snapshot memory matters more than exactness of the maintained
//! score on shortfall slides.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod snapshot;
pub mod stats;

pub use snapshot::{EngineSnapshot, PrefixSpec, ShardSnapshot, SnapshotSource};
pub use stats::{SnapshotCounters, SnapshotStats};

/// How a [`ShardSnapshot`] captures the ranked lists its shard can traverse.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
///
/// use ksir_core::{fixtures::paper_example, Algorithm, KsirQuery, QuerySource};
/// use ksir_snapshot::{
///     EngineSnapshot, PrefixSpec, ShardSnapshot, SnapshotCounters, SnapshotPolicy,
/// };
/// use ksir_types::{QueryVector, TopicId};
///
/// let engine = paper_example().build_engine();
/// let counters = SnapshotCounters::new();
/// let epoch = Arc::new(EngineSnapshot::capture(&engine, 1, &counters));
/// let query = KsirQuery::new(2, QueryVector::uniform(2).unwrap()).unwrap();
///
/// // `Exact` serves whole lists through the shared epoch image:
/// // score-identical to the live engine at the capture epoch.
/// let spec = PrefixSpec::whole_lists([TopicId(0), TopicId(1)]);
/// let exact = ShardSnapshot::new(Arc::clone(&epoch), &spec, SnapshotPolicy::Exact);
/// let live = engine.query(&query, Algorithm::Mtts).unwrap();
/// let snap = exact.query(&query, Algorithm::Mtts).unwrap();
/// assert_eq!(live.sorted_elements(), snap.sorted_elements());
///
/// // `TruncateAtFloors` materialises a bounded prefix per topic with a
/// // finite floor; topics without one stay on the shared image.
/// let spec = PrefixSpec {
///     floors: vec![(TopicId(0), Some(0.5)), (TopicId(1), None)],
/// };
/// let truncated = ShardSnapshot::new(epoch, &spec, SnapshotPolicy::TruncateAtFloors);
/// assert_eq!(truncated.truncated_topics(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SnapshotPolicy {
    /// Serve every watched list whole through the shared epoch image.
    /// Decision- and score-identical to evaluating against the live engine
    /// at the capture epoch; capture is `O(1)` per list.
    #[default]
    Exact,
    /// Materialise each watched list as a contiguous prefix truncated at the
    /// shard's aggregated floor (no floor ⇒ whole list).  Bounds snapshot
    /// memory to what refresh *decisions* can see; a re-run that descends
    /// past a floor observes a truncated tail (counted in
    /// [`SnapshotStats::truncation_shortfalls`]).
    TruncateAtFloors,
}
