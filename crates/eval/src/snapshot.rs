//! Building evaluation snapshots from a running engine.

use ksir_baselines::{SearchItem, SearchPool};
use ksir_core::KsirEngine;
use ksir_types::TopicWordDistribution;

/// Snapshots the engine's active window into a [`SearchPool`].
///
/// Every effectiveness method (the k-SIR query and all four baselines) is
/// evaluated against the same candidate set — the active elements at query
/// time — so that Table 5/6 comparisons are apples-to-apples.  The per-item
/// `referenced_by` count is the *in-window* reference count, matching the
/// time-critical influence semantics of the paper.
pub fn pool_from_engine<D: TopicWordDistribution>(engine: &KsirEngine<D>) -> SearchPool {
    engine
        .active_ids()
        .into_iter()
        .filter_map(|id| {
            let element = engine.element(id)?;
            let tv = engine.topic_vector(id)?;
            Some(SearchItem {
                id,
                doc: element.doc.clone(),
                topic_vector: tv.clone(),
                refs: element.refs.clone(),
                referenced_by: engine.window().influence_count(id),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksir_core::fixtures::paper_example;
    use ksir_types::ElementId;

    #[test]
    fn snapshot_mirrors_the_active_window() {
        let ex = paper_example();
        let engine = ex.build_engine();
        let pool = pool_from_engine(&engine);
        assert_eq!(pool.len(), engine.active_count());
        assert!(
            pool.get(ElementId(4)).is_none(),
            "expired elements excluded"
        );
        // e3 is referenced by e6 and e8 inside the window at t = 8.
        assert_eq!(pool.get(ElementId(3)).unwrap().referenced_by, 2);
        // e8 carries its outgoing references.
        assert_eq!(pool.get(ElementId(8)).unwrap().refs.len(), 3);
        // topic vectors travel with the items
        assert_eq!(pool.get(ElementId(1)).unwrap().topic_vector.num_topics(), 2);
    }
}
