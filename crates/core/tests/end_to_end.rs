//! End-to-end pipeline test: raw social text → preprocessing → LDA topic
//! model → k-SIR engine → queries.
//!
//! This exercises the full stack the paper describes in Figure 4 with a small
//! hand-written "two communities" stream (soccer vs basketball), checking
//! that keyword queries inferred through the topic model retrieve elements
//! from the right community.

use ksir_core::{Algorithm, EngineConfig, KsirEngine, KsirQuery, ScoringConfig};
use ksir_stream::WindowConfig;
use ksir_text::TextPipeline;
use ksir_topics::{LdaTrainer, TopicModel, TopicOracle};
use ksir_types::{ElementId, QueryVector, SocialElementBuilder, Timestamp};

/// Raw posts: even indices are soccer, odd indices are basketball.  Each post
/// references the previous post of its own community.
fn raw_posts() -> Vec<&'static str> {
    vec![
        "liverpool wins the champions league final tonight #ucl",
        "lebron dominates the playoffs with a triple double #nba",
        "madrid and liverpool meet in the champions league final #ucl",
        "warriors beat the rockets in the playoffs #nba basketball",
        "premier league title race goes to the final day #epl soccer",
        "celtics playoffs run continues with a huge win #nba basketball",
        "champions league semifinal drama as liverpool scores late #ucl soccer",
        "lebron scores forty points in the playoffs again #nba",
        "premier league champions crowned after dramatic final day #epl soccer",
        "playoffs mvp debate heats up around lebron #nba basketball",
    ]
}

fn build_pipeline_and_model() -> (TextPipeline, TopicModel, Vec<ksir_types::Document>) {
    let mut pipeline = TextPipeline::new();
    let docs: Vec<_> = raw_posts().iter().map(|t| pipeline.process(t)).collect();
    let model = LdaTrainer::new(2)
        .unwrap()
        .with_alpha(1.0)
        .with_iterations(200)
        .with_seed(13)
        .train(&docs, pipeline.vocab_size())
        .unwrap();
    (pipeline, model, docs)
}

fn build_engine(
    model: &TopicModel,
    docs: &[ksir_types::Document],
) -> KsirEngine<ksir_types::DenseTopicWordTable> {
    let config = EngineConfig::new(
        WindowConfig::new(20, 1).unwrap(),
        ScoringConfig::new(0.5, 2.0).unwrap(),
    );
    let mut engine = KsirEngine::new(model.topic_word_table().clone(), config).unwrap();
    for (i, doc) in docs.iter().enumerate() {
        let id = i as u64 + 1;
        let ts = i as u64 + 1;
        let mut builder = SocialElementBuilder::new(id).at(ts);
        for (w, c) in doc.iter() {
            for _ in 0..c {
                builder = builder.word(w.raw());
            }
        }
        // Reference the previous post of the same community (soccer: even
        // indices; basketball: odd indices).
        if i >= 2 {
            builder = builder.referencing(id - 2);
        }
        let element = builder.build();
        let tv = model.infer_document(doc);
        engine
            .ingest_bucket(vec![(element, tv)], Timestamp(ts))
            .unwrap();
    }
    engine
}

#[test]
fn keyword_queries_retrieve_the_right_community() {
    let (pipeline, model, docs) = build_pipeline_and_model();
    let engine = build_engine(&model, &docs);
    assert_eq!(engine.active_count(), 10);

    // Query by keywords, exactly as a user would (query-by-keyword paradigm).
    let soccer_keywords = pipeline.process_readonly("champions league soccer liverpool");
    let basketball_keywords = pipeline.process_readonly("lebron playoffs basketball");
    let soccer_query = model.infer_query(&soccer_keywords).unwrap();
    let basketball_query = model.infer_query(&basketball_keywords).unwrap();

    let soccer_ids: Vec<u64> = vec![1, 3, 5, 7, 9];
    let basketball_ids: Vec<u64> = vec![2, 4, 6, 8, 10];

    for (query_vector, own, other) in [
        (soccer_query, &soccer_ids, &basketball_ids),
        (basketball_query, &basketball_ids, &soccer_ids),
    ] {
        let q = KsirQuery::new(3, query_vector).unwrap();
        let result = engine.query(&q, Algorithm::Mttd).unwrap();
        assert_eq!(result.len(), 3);
        let own_hits = result
            .elements
            .iter()
            .filter(|id| own.contains(&id.raw()))
            .count();
        let other_hits = result
            .elements
            .iter()
            .filter(|id| other.contains(&id.raw()))
            .count();
        assert!(
            own_hits > other_hits,
            "expected mostly on-topic elements, got {:?}",
            result.elements
        );
    }
}

#[test]
fn mtts_and_mttd_agree_with_celf_quality_on_the_pipeline() {
    let (_pipeline, model, docs) = build_pipeline_and_model();
    let engine = build_engine(&model, &docs);
    let q = KsirQuery::new(4, QueryVector::uniform(2).unwrap()).unwrap();
    let celf = engine.query(&q, Algorithm::Celf).unwrap();
    let mtts = engine.query(&q, Algorithm::Mtts).unwrap();
    let mttd = engine.query(&q, Algorithm::Mttd).unwrap();
    assert!(celf.score > 0.0);
    // The paper reports ≥95% (MTTS) and ≥99% (MTTD) of CELF's quality.
    assert!(
        mtts.score >= 0.90 * celf.score,
        "MTTS {} vs CELF {}",
        mtts.score,
        celf.score
    );
    assert!(
        mttd.score >= 0.95 * celf.score,
        "MTTD {} vs CELF {}",
        mttd.score,
        celf.score
    );
}

#[test]
fn refreshing_the_topic_model_keeps_the_engine_usable() {
    // The "future work" extension: swap in a re-trained topic model and keep
    // answering queries (the engine itself is parameterised by φ, so a new
    // engine over the refreshed oracle picks up where the old one left off).
    let (_pipeline, mut model, docs) = build_pipeline_and_model();
    let retrained = LdaTrainer::new(2)
        .unwrap()
        .with_alpha(1.0)
        .with_iterations(100)
        .with_seed(99)
        .train(&docs, model.vocab_size())
        .unwrap();
    model.refresh(retrained).unwrap();
    let engine = build_engine(&model, &docs);
    let q = KsirQuery::new(2, QueryVector::uniform(2).unwrap()).unwrap();
    let r = engine.query(&q, Algorithm::Mttd).unwrap();
    assert_eq!(r.len(), 2);
    assert!(r.score > 0.0);
    assert!(r.elements.iter().all(|id| *id >= ElementId(1)));
}
