//! Figure 14 — ranked-list maintenance: average update time per arriving
//! element as a function of the number of topics z and of the window length T.
//!
//! Run with `cargo run --release -p ksir-bench --bin exp_fig14 [--scale 1.0]`.

use ksir_bench::{replay_with_queries, scale_from_args, ProcessingConfig, Table};
use ksir_datagen::{DatasetProfile, StreamGenerator};

fn main() {
    let scale = scale_from_args();
    let zs = [50usize, 100, 150, 200, 250];
    let hours = [6u64, 12, 18, 24, 30];

    let mut z_table = Table::new(
        "Figure 14 (left) — update time per element (ms) vs z",
        &["z", "aminer", "reddit", "twitter"],
    );
    for &z in &zs {
        let mut row = vec![z.to_string()];
        for profile in DatasetProfile::all() {
            let profile = profile.scaled(scale).with_topics(z);
            let stream = StreamGenerator::new(profile, 53)
                .expect("profile is valid")
                .generate()
                .expect("stream generation succeeds");
            let config = ProcessingConfig {
                num_queries: 1,
                algorithms: vec![],
                ..ProcessingConfig::for_stream(&stream)
            };
            let report = replay_with_queries(&stream, &config).expect("replay succeeds");
            row.push(format!("{:.4}", report.mean_update_millis_per_element()));
        }
        z_table.add_row(row);
    }
    z_table.print();

    let mut t_table = Table::new(
        "Figure 14 (right) — update time per element (ms) vs T",
        &["T (hours)", "aminer", "reddit", "twitter"],
    );
    for &h in &hours {
        let mut row = vec![h.to_string()];
        for profile in DatasetProfile::all() {
            let profile = profile.scaled(scale).with_topics(50);
            let stream = StreamGenerator::new(profile, 53)
                .expect("profile is valid")
                .generate()
                .expect("stream generation succeeds");
            let config = ProcessingConfig {
                window_len: h * 60,
                num_queries: 1,
                algorithms: vec![],
                ..ProcessingConfig::for_stream(&stream)
            };
            let report = replay_with_queries(&stream, &config).expect("replay succeeds");
            row.push(format!("{:.4}", report.mean_update_millis_per_element()));
        }
        t_table.add_row(row);
    }
    t_table.print();

    println!(
        "Paper's shape: per-element update time grows mildly with z and with T but \
         stays well under a millisecond."
    );
}
