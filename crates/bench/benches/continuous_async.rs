//! Asynchronous (pipelined) vs synchronous standing-query maintenance.
//!
//! Same shared [`MaintenanceScenario`] as `continuous.rs` /
//! `continuous_sharded.rs`, exercising the `ingest_bucket_async` pipeline:
//!
//! * `sync_managed` — the synchronous sharded path (baseline: every
//!   `ingest_bucket` joins on the slowest scheduled shard),
//! * `async_fast_consumer` — the pipeline with a consumer that drains the
//!   delivery queues as fast as it can,
//! * `async_slow_consumer` — the pipeline with a consumer charging 1 ms of
//!   simulated work per delta.
//!
//! The number that matters is the **ingest-return** time of the async runs:
//! it must not grow with the consumer delay, because bounded delivery queues
//! (DropOldest) shed a slow subscriber's backlog instead of back-pressuring
//! the refresh workers.  The CI perf gate (`perf_gate`) enforces exactly
//! that; this bench exists to observe it interactively.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ksir_bench::MaintenanceScenario;
use ksir_continuous::ShardConfig;

const SLOW_CONSUMER_DELAY: Duration = Duration::from_millis(1);

fn bench_async_maintenance(c: &mut Criterion) {
    let scenario = MaintenanceScenario::standard();
    let mut group = c.benchmark_group("continuous_async");
    group.sample_size(10);

    group.bench_function(
        BenchmarkId::new("sync_managed", scenario.stream.len()),
        |b| b.iter(|| scenario.run_managed(ShardConfig::default()).stats),
    );
    group.bench_function(
        BenchmarkId::new("async_fast_consumer", scenario.stream.len()),
        |b| {
            b.iter(|| {
                scenario
                    .run_async(ShardConfig::default(), Duration::ZERO)
                    .ingest_return
            })
        },
    );
    group.bench_function(
        BenchmarkId::new("async_slow_consumer", scenario.stream.len()),
        |b| {
            b.iter(|| {
                scenario
                    .run_async(ShardConfig::default(), SLOW_CONSUMER_DELAY)
                    .ingest_return
            })
        },
    );
    group.finish();
}

/// One-shot report: ingest-return latency with a fast vs slow consumer, and
/// how many deltas each run delivered or shed.
fn report_ingest_latency(c: &mut Criterion) {
    let scenario = MaintenanceScenario::standard();
    let fast = scenario.run_async(ShardConfig::default(), Duration::ZERO);
    let slow = scenario.run_async(ShardConfig::default(), SLOW_CONSUMER_DELAY);
    let ms = |d: Duration| d.as_secs_f64() * 1e3;
    println!(
        "continuous_async/latency: ingest-return fast {:.1} ms (max {:.2} ms) \
         vs slow {:.1} ms (max {:.2} ms) over {} slides",
        ms(fast.ingest_return),
        ms(fast.max_ingest_return),
        ms(slow.ingest_return),
        ms(slow.max_ingest_return),
        fast.stats.slides,
    );
    println!(
        "continuous_async/delivery: fast consumer {} delivered / {} dropped; \
         slow consumer {} delivered / {} dropped",
        fast.delivered, fast.dropped, slow.delivered, slow.dropped,
    );
    let _ = c;
}

criterion_group!(benches, bench_async_maintenance, report_ingest_latency);
criterion_main!(benches);
