//! Query and result types for k-SIR processing.

use ksir_stream::RankedDelta;
use ksir_types::{ElementId, KsirError, QueryVector, Result, TopicId};

/// A k-SIR query `q_t(k, x)`: retrieve at most `k` active elements maximising
/// the representativeness score w.r.t. the query vector `x`.
///
/// The `ε` parameter controls the approximation/efficiency trade-off of the
/// MTTS and MTTD algorithms (and of the SieveStreaming baseline); it is
/// ignored by CELF and Top-k Representative.
#[derive(Debug, Clone, PartialEq)]
pub struct KsirQuery {
    k: usize,
    vector: QueryVector,
    epsilon: f64,
}

impl KsirQuery {
    /// Default `ε` used when none is given (the paper's default setting).
    pub const DEFAULT_EPSILON: f64 = 0.1;

    /// Creates a query with the default `ε = 0.1`.
    pub fn new(k: usize, vector: QueryVector) -> Result<Self> {
        if k == 0 {
            return Err(KsirError::invalid_parameter(
                "k",
                "a k-SIR query must request at least one element",
            ));
        }
        Ok(KsirQuery {
            k,
            vector,
            epsilon: Self::DEFAULT_EPSILON,
        })
    }

    /// Overrides the approximation parameter `ε ∈ (0, 1)`.
    pub fn with_epsilon(mut self, epsilon: f64) -> Result<Self> {
        if !epsilon.is_finite() || epsilon <= 0.0 || epsilon >= 1.0 {
            return Err(KsirError::invalid_parameter(
                "epsilon",
                format!("must be in the open interval (0, 1), got {epsilon}"),
            ));
        }
        self.epsilon = epsilon;
        Ok(self)
    }

    /// The result-size bound `k`.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// The query vector `x`.
    #[inline]
    pub fn vector(&self) -> &QueryVector {
        &self.vector
    }

    /// The approximation parameter `ε`.
    #[inline]
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Returns `true` if `other` runs the *same evaluation plan* as `self`
    /// modulo the result-size bound `k`: identical query vector (bitwise) and
    /// identical `ε`.
    ///
    /// Two plan-compatible queries traverse the same ranked lists with the
    /// same per-topic weights and the same threshold grid/descent schedule,
    /// so a single covering run at the larger `k` retrieves and scores a
    /// superset of what either query alone would — the property subscription
    /// clustering in `ksir-continuous` relies on.  `k` itself must *not* be
    /// shared: the MTTS threshold grid and the MTTD/Top-k admission bars all
    /// depend on it, so per-`k` specialization runs stay exact.
    pub fn plan_compatible(&self, other: &KsirQuery) -> bool {
        self.epsilon.to_bits() == other.epsilon.to_bits()
            && self.vector.num_topics() == other.vector.num_topics()
            && self.vector.support().len() == other.vector.support().len()
            && self
                .vector
                .support()
                .iter()
                .zip(other.vector.support())
                .all(|(&(ta, wa), (tb, wb))| ta == tb && wa.to_bits() == wb.to_bits())
    }

    /// Builds the **covering query** of a cluster of plan-compatible queries:
    /// the same vector and `ε` with `k = max` over the members, so one run of
    /// the covering query reads at least as deep into every ranked list as
    /// any member's own run would.
    ///
    /// Errors if the iterator is empty or any two members are not
    /// [`KsirQuery::plan_compatible`].
    pub fn covering<'a, I>(members: I) -> Result<KsirQuery>
    where
        I: IntoIterator<Item = &'a KsirQuery>,
    {
        let mut members = members.into_iter();
        let Some(first) = members.next() else {
            return Err(KsirError::invalid_parameter(
                "members",
                "a covering query needs at least one member",
            ));
        };
        let mut covering = first.clone();
        for member in members {
            if !covering.plan_compatible(member) {
                return Err(KsirError::invalid_parameter(
                    "members",
                    "covering queries require plan-compatible members \
                     (same vector and epsilon)",
                ));
            }
            covering.k = covering.k.max(member.k);
        }
        Ok(covering)
    }
}

/// The algorithm used to process a k-SIR query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Multi-Topic ThresholdStream (Algorithm 2): `(1/2 − ε)`-approximate,
    /// evaluates each active element at most once.
    Mtts,
    /// Multi-Topic ThresholdDescend (Algorithm 3): `(1 − 1/e − ε)`-approximate,
    /// may re-evaluate buffered elements across rounds.
    Mttd,
    /// CELF lazy greedy (batch baseline): `(1 − 1/e)`-approximate but
    /// evaluates every active element.
    Celf,
    /// SieveStreaming (streaming baseline): `(1/2 − ε)`-approximate,
    /// evaluates every active element.
    SieveStreaming,
    /// Top-k elements by singleton representativeness score (index baseline):
    /// only `1/k`-approximate because word/influence overlaps are ignored.
    TopkRepresentative,
}

impl Algorithm {
    /// All algorithms, in the order used by the experiment harness.
    pub const ALL: [Algorithm; 5] = [
        Algorithm::Celf,
        Algorithm::Mttd,
        Algorithm::Mtts,
        Algorithm::TopkRepresentative,
        Algorithm::SieveStreaming,
    ];

    /// Short display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Mtts => "MTTS",
            Algorithm::Mttd => "MTTD",
            Algorithm::Celf => "CELF",
            Algorithm::SieveStreaming => "SieveStreaming",
            Algorithm::TopkRepresentative => "Top-k Representative",
        }
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// How deep into each support topic's ranked list a query traversal reached.
///
/// For every topic in the query support this records the score of the first
/// tuple the traversal did **not** read — `None` when the list was exhausted.
/// The traversal's behaviour depends only on the tuples at or above these
/// floors: a later index mutation whose touch score (see
/// [`ksir_stream::delta`]) stays strictly below every floor cannot change
/// what the same query would retrieve, evaluate, or return.  This is the
/// invariant the `ksir-continuous` subscription manager uses to skip
/// refreshing standing queries.
///
/// # Example
///
/// ```
/// use ksir_core::QueryFrontier;
/// use ksir_stream::RankedDelta;
/// use ksir_types::TopicId;
///
/// // A traversal that read topic 0 down to score 0.5 and drained topic 1.
/// let frontier = QueryFrontier::new(vec![(TopicId(0), Some(0.5)), (TopicId(1), None)]);
///
/// // A slide whose highest touch on topic 0 stays below the floor is
/// // invisible to the traversal; a touch at or above it is not.
/// let mut below = RankedDelta::new(2);
/// below.record(TopicId(0), 0.3);
/// assert!(!frontier.disturbed_by(&below));
///
/// let mut above = RankedDelta::new(2);
/// above.record(TopicId(0), 0.7);
/// assert!(frontier.disturbed_by(&above));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QueryFrontier {
    /// `(topic, first-unread score)` per support topic; `None` = exhausted.
    pub floors: Vec<(TopicId, Option<f64>)>,
    /// The admission bar of the run that produced this frontier: the smallest
    /// singleton score `δ(e, x)` at which an additional element could still
    /// have entered the result — MTTS's final minimum unfilled threshold,
    /// MTTD's threshold `τ` when the result filled (or its final `τ_min`),
    /// the k-th best singleton score for Top-k Representative.  `None` when
    /// the run gave no such bound (e.g. an empty index).
    ///
    /// The bar is a *per-query* tightening hint on top of the floors: a
    /// candidate whose weighted singleton score cannot reach the bar can
    /// never displace a result member, which lets
    /// `SnapshotPolicy::TruncateAtFloors` prefixes cut above the raw
    /// traversal floors.  It is **not** used for skip decisions — skips rely
    /// on the floors alone.
    pub bar: Option<f64>,
}

impl QueryFrontier {
    /// A frontier with the given per-topic floors and no admission bar.
    pub fn new(floors: Vec<(TopicId, Option<f64>)>) -> Self {
        QueryFrontier { floors, bar: None }
    }

    /// Attaches the admission bar of the run that produced this frontier.
    pub fn with_bar(mut self, bar: f64) -> Self {
        self.bar = Some(bar);
        self
    }
    /// Returns `true` if the given slide delta could have changed the result
    /// of the traversal that produced this frontier: some support topic was
    /// touched at or above its floor (an exhausted list is "touched" by any
    /// mutation at all).
    pub fn disturbed_by(&self, delta: &RankedDelta) -> bool {
        self.floors
            .iter()
            .any(|&(topic, floor)| match (delta.touch(topic), floor) {
                (None, _) => false,
                (Some(_), None) => true,
                (Some(touch), Some(floor)) => touch.high >= floor - ksir_stream::FLOOR_SLACK,
            })
    }
}

/// Per-topic refresh floors aggregated over *many* standing traversals — the
/// shard-level counterpart of [`QueryFrontier`].
///
/// A shard of standing queries must be scheduled for refresh whenever a slide
/// could disturb *any* resident traversal, so for every watched topic the
/// aggregate keeps the **loosest** (minimum) floor across the absorbed
/// frontiers; a topic watched without a floor — an exhausted ranked list, or
/// a subscription whose algorithm reports no frontier at all — is disturbed
/// by any touch.  [`FloorAggregate::disturbed_by`] then answers the shard
/// scheduling question in `O(touched topics)` per slide by iterating the
/// delta's sparse touch slice instead of the watched set.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FloorAggregate {
    /// `topic → Some(floor)` (touches at/above disturb) or `None` (any touch
    /// disturbs).
    floors: std::collections::HashMap<TopicId, Option<f64>>,
}

impl FloorAggregate {
    /// An aggregate watching no topic (disturbed by nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Forgets every watched topic, retaining the allocation.
    pub fn clear(&mut self) {
        self.floors.clear();
    }

    /// Returns `true` if no topic is watched.
    pub fn is_empty(&self) -> bool {
        self.floors.is_empty()
    }

    /// Number of watched topics.
    pub fn watched_topics(&self) -> usize {
        self.floors.len()
    }

    /// The aggregated floor of one topic: `None` if the topic is not watched,
    /// `Some(None)` if any touch disturbs it, `Some(Some(f))` if touches at
    /// or above `f` disturb it.
    pub fn floor(&self, topic: TopicId) -> Option<Option<f64>> {
        self.floors.get(&topic).copied()
    }

    /// Watches `topic` with no floor: any touch of its list disturbs.  Used
    /// for subscriptions whose algorithm carries no frontier (CELF,
    /// SieveStreaming), which must refresh on any support-topic touch.
    pub fn watch_any(&mut self, topic: TopicId) {
        self.floors.insert(topic, None);
    }

    /// Watches `topic` at `floor`, keeping the loosest floor seen so far.
    pub fn watch_at(&mut self, topic: TopicId, floor: f64) {
        match self.floors.entry(topic) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                if let Some(existing) = e.get_mut() {
                    if floor < *existing {
                        *existing = floor;
                    }
                }
                // `None` (any touch disturbs) already dominates every floor.
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(Some(floor));
            }
        }
    }

    /// Folds one traversal's frontier into the aggregate: per support topic,
    /// a finite floor loosens the kept minimum and an exhausted list
    /// downgrades the topic to any-touch-disturbs.
    pub fn absorb(&mut self, frontier: &QueryFrontier) {
        for &(topic, floor) in &frontier.floors {
            match floor {
                Some(f) => self.watch_at(topic, f),
                None => self.watch_any(topic),
            }
        }
    }

    /// Returns `true` if the slide delta touches any watched topic at or
    /// above its aggregated floor — i.e. the slide could have disturbed at
    /// least one of the absorbed traversals.
    pub fn disturbed_by(&self, delta: &RankedDelta) -> bool {
        if self.floors.is_empty() {
            return false;
        }
        delta
            .touches()
            .iter()
            .any(|t| match self.floors.get(&t.topic) {
                None => false,
                Some(None) => true,
                Some(Some(floor)) => t.high >= floor - ksir_stream::FLOOR_SLACK,
            })
    }
}

/// The result of processing one k-SIR query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// Selected elements, in the order they were added to the result set.
    pub elements: Vec<ElementId>,
    /// Representativeness score `f(S, x)` of the result set.
    pub score: f64,
    /// Number of *distinct* active elements whose score or marginal gain was
    /// evaluated (the quantity behind Figure 10 of the paper).
    pub evaluated_elements: usize,
    /// Total number of marginal-gain / singleton-score evaluations of the
    /// submodular function (an element may be evaluated several times).
    pub gain_evaluations: usize,
    /// Algorithm that produced the result.
    pub algorithm: Algorithm,
    /// Ranked-list traversal floors, for the index-based algorithms (MTTS,
    /// MTTD, Top-k Representative); `None` for the exhaustive baselines,
    /// whose results can be invalidated by any index change.
    pub frontier: Option<QueryFrontier>,
}

impl QueryResult {
    /// An empty result (used when no active element is relevant to the query).
    pub fn empty(algorithm: Algorithm) -> Self {
        QueryResult {
            elements: Vec::new(),
            score: 0.0,
            evaluated_elements: 0,
            gain_evaluations: 0,
            algorithm,
            frontier: None,
        }
    }

    /// Number of selected elements.
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// Returns `true` if no element was selected.
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// Returns `true` if the result contains `id`.
    pub fn contains(&self, id: ElementId) -> bool {
        self.elements.contains(&id)
    }

    /// The selected elements as a sorted vector (convenient for comparisons in
    /// tests, where selection order is irrelevant).
    pub fn sorted_elements(&self) -> Vec<ElementId> {
        let mut v = self.elements.clone();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn query_vector() -> QueryVector {
        QueryVector::new(vec![0.5, 0.5]).unwrap()
    }

    #[test]
    fn query_validation() {
        assert!(KsirQuery::new(0, query_vector()).is_err());
        let q = KsirQuery::new(5, query_vector()).unwrap();
        assert_eq!(q.k(), 5);
        assert_eq!(q.epsilon(), KsirQuery::DEFAULT_EPSILON);
        assert!(q.clone().with_epsilon(0.0).is_err());
        assert!(q.clone().with_epsilon(1.0).is_err());
        assert!(q.clone().with_epsilon(f64::NAN).is_err());
        let q = q.with_epsilon(0.3).unwrap();
        assert_eq!(q.epsilon(), 0.3);
    }

    #[test]
    fn covering_query_takes_max_k_over_compatible_members() {
        let a = KsirQuery::new(3, query_vector()).unwrap();
        let b = KsirQuery::new(7, query_vector()).unwrap();
        let c = KsirQuery::new(5, query_vector()).unwrap();
        assert!(a.plan_compatible(&b));
        let covering = KsirQuery::covering([&a, &b, &c]).unwrap();
        assert_eq!(covering.k(), 7);
        assert_eq!(covering.vector(), a.vector());
        assert_eq!(covering.epsilon(), a.epsilon());
        // Empty clusters and incompatible members are rejected.
        assert!(KsirQuery::covering(std::iter::empty::<&KsirQuery>()).is_err());
        let other_vector = KsirQuery::new(3, QueryVector::new(vec![1.0, 0.0]).unwrap()).unwrap();
        assert!(!a.plan_compatible(&other_vector));
        assert!(KsirQuery::covering([&a, &other_vector]).is_err());
        let other_eps = KsirQuery::new(3, query_vector())
            .unwrap()
            .with_epsilon(0.2)
            .unwrap();
        assert!(!a.plan_compatible(&other_eps));
        assert!(KsirQuery::covering([&a, &other_eps]).is_err());
    }

    #[test]
    fn algorithm_names_and_display() {
        assert_eq!(Algorithm::Mtts.name(), "MTTS");
        assert_eq!(Algorithm::Mttd.to_string(), "MTTD");
        assert_eq!(Algorithm::ALL.len(), 5);
    }

    #[test]
    fn frontier_disturbance_rules() {
        let frontier = QueryFrontier::new(vec![(TopicId(0), Some(0.5)), (TopicId(1), None)]);
        // Untouched index: undisturbed.
        let clean = RankedDelta::new(3);
        assert!(!frontier.disturbed_by(&clean));
        // Touch strictly below the floor of a non-exhausted list: invisible.
        let mut below = RankedDelta::new(3);
        below.record(TopicId(0), 0.3);
        assert!(!frontier.disturbed_by(&below));
        // Touch at/above the floor: disturbed.
        let mut at = RankedDelta::new(3);
        at.record(TopicId(0), 0.5);
        assert!(frontier.disturbed_by(&at));
        // Any touch on an exhausted list: disturbed.
        let mut exhausted = RankedDelta::new(3);
        exhausted.record(TopicId(1), 1e-9);
        assert!(frontier.disturbed_by(&exhausted));
        // Touches outside the support are ignored.
        let mut outside = RankedDelta::new(3);
        outside.record(TopicId(2), 10.0);
        assert!(!frontier.disturbed_by(&outside));
    }

    #[test]
    fn floor_aggregate_keeps_loosest_floor_per_topic() {
        let mut agg = FloorAggregate::new();
        assert!(agg.is_empty());
        agg.absorb(&QueryFrontier::new(vec![
            (TopicId(0), Some(0.5)),
            (TopicId(1), Some(0.2)),
        ]));
        agg.absorb(&QueryFrontier::new(vec![
            (TopicId(0), Some(0.3)),
            (TopicId(2), None),
        ]));
        assert_eq!(agg.watched_topics(), 3);
        assert_eq!(agg.floor(TopicId(0)), Some(Some(0.3)), "min floor wins");
        assert_eq!(agg.floor(TopicId(1)), Some(Some(0.2)));
        assert_eq!(agg.floor(TopicId(2)), Some(None), "exhausted = any touch");
        assert_eq!(agg.floor(TopicId(9)), None);
        // A floor can never tighten an any-touch topic back.
        agg.watch_at(TopicId(2), 0.9);
        assert_eq!(agg.floor(TopicId(2)), Some(None));
        agg.clear();
        assert!(agg.is_empty());
    }

    #[test]
    fn floor_aggregate_disturbance_matches_frontier_semantics() {
        let mut agg = FloorAggregate::new();
        agg.watch_at(TopicId(0), 0.5);
        agg.watch_any(TopicId(1));
        // Untouched index: undisturbed.
        assert!(!agg.disturbed_by(&RankedDelta::new(3)));
        // Touch strictly below the aggregated floor: invisible.
        let mut below = RankedDelta::new(3);
        below.record(TopicId(0), 0.3);
        assert!(!agg.disturbed_by(&below));
        // Touch at/above the floor: disturbed.
        let mut at = RankedDelta::new(3);
        at.record(TopicId(0), 0.5);
        assert!(agg.disturbed_by(&at));
        // Any touch on an any-touch topic: disturbed.
        let mut any = RankedDelta::new(3);
        any.record(TopicId(1), 1e-9);
        assert!(agg.disturbed_by(&any));
        // Touches outside the watched set are ignored.
        let mut outside = RankedDelta::new(3);
        outside.record(TopicId(2), 10.0);
        assert!(!agg.disturbed_by(&outside));
    }

    #[test]
    fn result_helpers() {
        let r = QueryResult {
            elements: vec![ElementId(3), ElementId(1)],
            score: 0.65,
            evaluated_elements: 4,
            gain_evaluations: 9,
            algorithm: Algorithm::Mtts,
            frontier: None,
        };
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
        assert!(r.contains(ElementId(1)));
        assert!(!r.contains(ElementId(2)));
        assert_eq!(r.sorted_elements(), vec![ElementId(1), ElementId(3)]);
        let e = QueryResult::empty(Algorithm::Celf);
        assert!(e.is_empty());
        assert_eq!(e.score, 0.0);
    }
}
