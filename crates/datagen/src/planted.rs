//! Planted topic models: ground-truth topic-word distributions used to
//! generate synthetic corpora.
//!
//! Each topic owns a block of "core" words with Zipfian weights and shares a
//! small block of background words with every other topic.  This yields the
//! two properties real topic models trained on social corpora exhibit and
//! that the paper's pruning relies on: word probabilities are heavily skewed,
//! and any document drawn from one or two topics scores near zero on all the
//! others.

use rand::rngs::StdRng;
use rand::Rng;

use ksir_types::{
    DenseTopicWordTable, Document, KsirError, Result, TopicId, TopicVector, TopicWordDistribution,
    WordId,
};

/// Fraction of the vocabulary reserved as background words shared by all
/// topics.
const BACKGROUND_FRACTION: f64 = 0.1;
/// Probability mass each topic puts on the shared background block.
const BACKGROUND_MASS: f64 = 0.15;

/// A ground-truth topic model used for data generation.
#[derive(Debug, Clone)]
pub struct PlantedTopicModel {
    phi: DenseTopicWordTable,
    /// Per-topic cumulative word distribution, for O(log m) sampling.
    cumulative: Vec<Vec<f64>>,
    /// Core (topic-exclusive) words of each topic, most probable first.
    cores: Vec<Vec<WordId>>,
}

impl PlantedTopicModel {
    /// Builds a planted model with `num_topics` topics over `vocab_size`
    /// words, with within-topic word frequencies following a Zipf law with
    /// the given exponent.
    pub fn new(num_topics: usize, vocab_size: usize, zipf_exponent: f64) -> Result<Self> {
        if num_topics == 0 {
            return Err(KsirError::invalid_parameter("num_topics", "must be ≥ 1"));
        }
        if zipf_exponent <= 0.0 || !zipf_exponent.is_finite() {
            return Err(KsirError::invalid_parameter(
                "zipf_exponent",
                "must be a positive finite number",
            ));
        }
        let background_size = ((vocab_size as f64 * BACKGROUND_FRACTION) as usize).max(1);
        let core_pool = vocab_size.saturating_sub(background_size);
        if core_pool < num_topics {
            return Err(KsirError::invalid_parameter(
                "vocab_size",
                format!("vocabulary of {vocab_size} words is too small for {num_topics} topics"),
            ));
        }
        let core_size = core_pool / num_topics;

        // Background words occupy ids [0, background_size); topic t's core
        // occupies the next contiguous block of `core_size` ids.
        let zipf = |rank: usize| 1.0 / ((rank + 1) as f64).powf(zipf_exponent);
        let mut rows = Vec::with_capacity(num_topics);
        let mut cores = Vec::with_capacity(num_topics);
        for t in 0..num_topics {
            let mut row = vec![0.0; vocab_size];
            // Background block.
            let bg_norm: f64 = (0..background_size).map(zipf).sum();
            for (rank, slot) in row.iter_mut().take(background_size).enumerate() {
                *slot = BACKGROUND_MASS * zipf(rank) / bg_norm;
            }
            // Core block.
            let start = background_size + t * core_size;
            let core_norm: f64 = (0..core_size).map(zipf).sum();
            let mut core_words = Vec::with_capacity(core_size);
            for rank in 0..core_size {
                row[start + rank] = (1.0 - BACKGROUND_MASS) * zipf(rank) / core_norm;
                core_words.push(WordId((start + rank) as u32));
            }
            rows.push(row);
            cores.push(core_words);
        }

        let phi = DenseTopicWordTable::from_rows(rows)?;
        let cumulative = (0..num_topics)
            .map(|t| {
                let mut acc = 0.0;
                phi.row(TopicId(t as u32))
                    .iter()
                    .map(|p| {
                        acc += p;
                        acc
                    })
                    .collect()
            })
            .collect();
        Ok(PlantedTopicModel {
            phi,
            cumulative,
            cores,
        })
    }

    /// Number of topics.
    pub fn num_topics(&self) -> usize {
        self.phi.num_topics()
    }

    /// Vocabulary size.
    pub fn vocab_size(&self) -> usize {
        self.phi.vocab_size()
    }

    /// The ground-truth topic-word table (usable directly as the engine's
    /// oracle, or as a reference when training LDA/BTM on the generated
    /// corpus).
    pub fn phi(&self) -> &DenseTopicWordTable {
        &self.phi
    }

    /// The core (topic-exclusive) words of a topic, most probable first.
    pub fn core_words(&self, topic: TopicId) -> &[WordId] {
        &self.cores[topic.index()]
    }

    /// Samples a sparse topic mixture: a single topic with probability
    /// `single_topic_prob`, otherwise a two-topic mixture with a dominant
    /// share between 0.6 and 0.9.
    pub fn sample_mixture(&self, rng: &mut StdRng, single_topic_prob: f64) -> TopicVector {
        let z = self.num_topics();
        let mut values = vec![0.0; z];
        let first = rng.gen_range(0..z);
        if z == 1 || rng.gen_bool(single_topic_prob.clamp(0.0, 1.0)) {
            values[first] = 1.0;
        } else {
            let mut second = rng.gen_range(0..z - 1);
            if second >= first {
                second += 1;
            }
            let dominant = rng.gen_range(0.6..0.9);
            values[first] = dominant;
            values[second] = 1.0 - dominant;
        }
        TopicVector::from_values(values).expect("mixture entries are valid probabilities")
    }

    /// Samples one word from a topic's word distribution.
    pub fn sample_word(&self, rng: &mut StdRng, topic: TopicId) -> WordId {
        let cdf = &self.cumulative[topic.index()];
        let target = rng.gen::<f64>() * cdf.last().copied().unwrap_or(1.0);
        let idx = cdf.partition_point(|&c| c < target);
        WordId(idx.min(self.vocab_size() - 1) as u32)
    }

    /// Samples a document of `len` tokens from a topic mixture.
    pub fn sample_document(&self, rng: &mut StdRng, mixture: &TopicVector, len: usize) -> Document {
        let support = mixture.support();
        let mut doc = Document::new();
        if support.is_empty() {
            return doc;
        }
        for _ in 0..len.max(1) {
            // Pick a topic according to the mixture, then a word from it.
            let mut target = rng.gen::<f64>() * mixture.sum();
            let mut chosen = support[0].0;
            for &(topic, p) in &support {
                if target < p {
                    chosen = topic;
                    break;
                }
                target -= p;
            }
            doc.push(self.sample_word(rng, chosen));
        }
        doc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksir_types::rng::seeded_rng;

    #[test]
    fn construction_validates_inputs() {
        assert!(PlantedTopicModel::new(0, 100, 1.0).is_err());
        assert!(PlantedTopicModel::new(5, 100, 0.0).is_err());
        assert!(PlantedTopicModel::new(200, 100, 1.0).is_err());
        assert!(PlantedTopicModel::new(5, 100, 1.0).is_ok());
    }

    #[test]
    fn rows_are_probability_distributions() {
        let m = PlantedTopicModel::new(4, 120, 1.1).unwrap();
        for t in 0..4u32 {
            let sum: f64 = m.phi().row(TopicId(t)).iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "topic {t} sums to {sum}");
        }
    }

    #[test]
    fn core_words_are_disjoint_and_dominant() {
        let m = PlantedTopicModel::new(3, 90, 1.0).unwrap();
        let cores: Vec<_> = (0..3u32)
            .map(|t| m.core_words(TopicId(t)).to_vec())
            .collect();
        // Disjoint blocks.
        for i in 0..3 {
            for j in (i + 1)..3 {
                assert!(cores[i].iter().all(|w| !cores[j].contains(w)));
            }
        }
        // A topic's top core word is much more likely under it than under any
        // other topic.
        for t in 0..3u32 {
            let w = m.core_words(TopicId(t))[0];
            let own = m.phi().word_prob(TopicId(t), w);
            for other in (0..3u32).filter(|&o| o != t) {
                assert!(own > 10.0 * m.phi().word_prob(TopicId(other), w));
            }
        }
    }

    #[test]
    fn mixtures_are_sparse_and_normalised() {
        let m = PlantedTopicModel::new(10, 200, 1.0).unwrap();
        let mut rng = seeded_rng(7);
        let mut single = 0;
        for _ in 0..200 {
            let mix = m.sample_mixture(&mut rng, 0.7);
            assert!((mix.sum() - 1.0).abs() < 1e-9);
            assert!(mix.support_size() <= 2);
            if mix.support_size() == 1 {
                single += 1;
            }
        }
        // Roughly 70% single-topic.
        assert!(
            single > 100 && single < 190,
            "got {single} single-topic mixtures"
        );
    }

    #[test]
    fn documents_concentrate_on_their_topics() {
        let m = PlantedTopicModel::new(5, 250, 1.0).unwrap();
        let mut rng = seeded_rng(11);
        let mix = TopicVector::from_values(vec![1.0, 0.0, 0.0, 0.0, 0.0]).unwrap();
        let doc = m.sample_document(&mut rng, &mix, 200);
        assert_eq!(doc.len(), 200);
        // The vast majority of tokens come from topic 0's core or background.
        let core0 = m.core_words(TopicId(0));
        let on_topic = doc
            .tokens()
            .iter()
            .filter(|w| core0.contains(w) || w.index() < 25)
            .count();
        assert!(
            on_topic as f64 > 0.95 * 200.0,
            "only {on_topic}/200 on-topic tokens"
        );
    }

    #[test]
    fn sampling_is_deterministic_for_a_seed() {
        let m = PlantedTopicModel::new(4, 100, 1.1).unwrap();
        let mix = m.sample_mixture(&mut seeded_rng(3), 0.5);
        let a = m.sample_document(&mut seeded_rng(5), &mix, 20);
        let b = m.sample_document(&mut seeded_rng(5), &mix, 20);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_mixture_yields_empty_document() {
        let m = PlantedTopicModel::new(2, 60, 1.0).unwrap();
        let mut rng = seeded_rng(1);
        let doc = m.sample_document(&mut rng, &TopicVector::zeros(2), 10);
        assert!(doc.is_empty());
    }
}
