//! Property tests of the reorder buffer's exactness contract
//! (`ksir_continuous::reorder`):
//!
//! 1. **Bounded-displacement equivalence**: for *any* permutation of bucket
//!    arrival in which no bucket is displaced by more than the configured
//!    `reorder_horizon`, feeding the permuted stream through
//!    [`SubscriptionManager::ingest_bucket_reordered`] yields refresh/skip
//!    decisions and maintained results **bit-identical** to in-order replay
//!    through the plain async path — with `late_dropped == 0`.
//! 2. **Drop accounting**: arrivals at or before the released watermark
//!    (beyond the horizon) are shed bucket-for-bucket: the number of shed
//!    buckets equals both [`ManagerStats::late_dropped`] and the
//!    `ingest.late_dropped` registry counter, and the surviving slides are
//!    exactly the in-order stream's.
//!
//! [`ManagerStats::late_dropped`]: ksir_continuous::ManagerStats::late_dropped

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng as _};

use ksir_continuous::{LatePolicy, ManagerStats, ShardConfig, SubscriptionId, SubscriptionManager};
use ksir_core::{Algorithm, EngineConfig, KsirEngine, KsirQuery, ScoringConfig};
use ksir_datagen::{DatasetProfile, QueryWorkloadGenerator, StreamGenerator};
use ksir_stream::WindowConfig;
use ksir_types::{DenseTopicWordTable, SocialElement, Timestamp, TopicVector};

/// One random instance: a planted stream cut into buckets, a workload, and
/// a reorder horizon.
#[derive(Debug, Clone)]
struct Params {
    seed: u64,
    horizon: usize,
    bucket_len: u64,
}

fn params() -> impl Strategy<Value = Params> {
    (any::<u64>(), 1usize..=4, 5u64..=12).prop_map(|(seed, horizon, bucket_len)| Params {
        seed,
        horizon,
        bucket_len,
    })
}

type Stream = Vec<(SocialElement, TopicVector)>;

/// Cuts a planted stream into `(bucket, end)` pairs with the shared
/// [`ksir_stream::for_each_bucket`] convention — the exact slides the plain
/// async path would ingest, and the unit the reorder buffer permutes.
fn cut_buckets(stream: Stream, bucket_len: u64, now: Timestamp) -> Vec<(Stream, Timestamp)> {
    let mut buckets = Vec::new();
    ksir_stream::for_each_bucket(bucket_len, now, stream, |bucket, end| {
        buckets.push((bucket, end));
        Ok(())
    })
    .unwrap();
    buckets
}

/// A permutation of `0..n` in which index `i` lands at most `horizon`
/// positions from home: sort by `i + u(0..=horizon)` with the index as the
/// tiebreaker (a classic bounded-displacement shuffle).
fn bounded_permutation(n: usize, horizon: usize, rng: &mut StdRng) -> Vec<usize> {
    let mut keyed: Vec<(usize, usize)> = (0..n)
        .map(|i| (i + rng.gen_range(0..=horizon), i))
        .collect();
    keyed.sort();
    keyed.into_iter().map(|(_, i)| i).collect()
}

struct Instance {
    buckets: Vec<(Stream, Timestamp)>,
    subs: Vec<(SubscriptionId, KsirQuery, Algorithm)>,
    queries: Vec<(KsirQuery, Algorithm)>,
}

fn build_manager(
    p: &Params,
    config: ShardConfig,
) -> (SubscriptionManager<DenseTopicWordTable>, Instance) {
    let profile = DatasetProfile::twitter().scaled(0.01).with_topics(6);
    let stream = StreamGenerator::new(profile, p.seed)
        .unwrap()
        .generate()
        .unwrap();
    let window = WindowConfig::new(p.bucket_len * 4, p.bucket_len).unwrap();
    let engine: KsirEngine<DenseTopicWordTable> = KsirEngine::new(
        stream.planted.phi().clone(),
        EngineConfig::new(window, ScoringConfig::default()),
    )
    .unwrap();
    let mut mgr = SubscriptionManager::with_shard_config(engine, config);
    let workload = QueryWorkloadGenerator::new(&stream.planted, p.seed ^ 0x5eed)
        .generate(4, stream.end_time())
        .unwrap();
    let algorithms = [Algorithm::Mttd, Algorithm::Mtts];
    let mut subs = Vec::new();
    let mut queries = Vec::new();
    for (i, generated) in workload.into_iter().enumerate() {
        let query = KsirQuery::new(3, generated.vector).unwrap();
        let algorithm = algorithms[i % algorithms.len()];
        let id = mgr.subscribe(query.clone(), algorithm).unwrap();
        subs.push((id, query.clone(), algorithm));
        queries.push((query, algorithm));
    }
    let start = mgr.engine().now();
    let pairs: Stream = stream.iter_pairs().collect();
    let buckets = cut_buckets(pairs, p.bucket_len, start);
    (
        mgr,
        Instance {
            buckets,
            subs,
            queries: queries.clone(),
        },
    )
}

/// Final per-subscription results, sorted for comparison.
fn results(
    mgr: &SubscriptionManager<DenseTopicWordTable>,
    subs: &[(SubscriptionId, KsirQuery, Algorithm)],
) -> Vec<Vec<ksir_types::ElementId>> {
    subs.iter()
        .map(|(id, _, _)| mgr.result(*id).unwrap().sorted_elements())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Property 1: any bounded-displacement permutation is re-sequenced
    /// exactly — decisions and results bit-identical to in-order replay.
    #[test]
    fn bounded_permutation_is_decision_identical_to_in_order(p in params()) {
        // In-order oracle through the plain async path.
        let (mut oracle, inst) = build_manager(&p, ShardConfig::default());
        for (bucket, end) in inst.buckets.clone() {
            oracle.ingest_bucket_async(bucket, end).unwrap().detach();
        }
        oracle.sync();
        let oracle_stats = oracle.stats();
        let oracle_results = results(&oracle, &inst.subs);

        // Permuted replay through the reorder buffer.
        let config = ShardConfig::default().with_reorder_horizon(p.horizon);
        let (mut mgr, inst2) = build_manager(&p, config);
        let mut rng = StdRng::seed_from_u64(p.seed ^ 0x0bad_cafe);
        let order = bounded_permutation(inst2.buckets.len(), p.horizon, &mut rng);
        for &i in &order {
            let (bucket, end) = inst2.buckets[i].clone();
            for ticket in mgr.ingest_bucket_reordered(bucket, end).unwrap() {
                ticket.detach();
            }
        }
        for ticket in mgr.flush_reorder_buffer().unwrap() {
            ticket.detach();
        }
        mgr.sync();

        let stats = mgr.stats();
        prop_assert_eq!(stats.late_dropped, 0, "nothing within the horizon is late");
        prop_assert_eq!(
            ManagerStats { reordered: 0, ..stats },
            ManagerStats { reordered: 0, ..oracle_stats },
            "refresh/skip decisions must be bit-identical to in-order replay"
        );
        prop_assert_eq!(results(&mgr, &inst2.subs), oracle_results);
        // Decision-identity extends to scratch equivalence at the end state.
        for (idx, (id, _, _)) in inst2.subs.iter().enumerate() {
            let (q, a) = &inst2.queries[idx];
            let fresh = mgr.engine().query(q, *a).unwrap();
            prop_assert_eq!(
                mgr.result(*id).unwrap().sorted_elements(),
                fresh.sorted_elements()
            );
        }
    }

    /// Property 2: beyond-horizon arrivals are shed bucket-for-bucket —
    /// exactly the late buckets are charged to `late_dropped` and the
    /// `ingest.late_dropped` counter, and the surviving slides are the
    /// in-order stream's.
    #[test]
    fn beyond_horizon_drops_equal_the_charged_buckets(p in params()) {
        let config = ShardConfig::default()
            .with_reorder_horizon(p.horizon)
            .with_late_policy(LatePolicy::DropLate);
        let (mut mgr, inst) = build_manager(&p, config);
        let mut rng = StdRng::seed_from_u64(p.seed ^ 0x1a7e);

        // Feed in order, but after each release horizon fills, re-offer a
        // random already-released bucket: every such straggler is beyond the
        // horizon by construction and must be shed.
        let mut expected_drops = 0usize;
        for (offered, (bucket, end)) in inst.buckets.clone().into_iter().enumerate() {
            for ticket in mgr.ingest_bucket_reordered(bucket, end).unwrap() {
                ticket.detach();
            }
            if let Some(watermark) = mgr.reorder_released_through() {
                if rng.gen_range(0..3) == 0 {
                    // A duplicate of a bucket at/under the watermark.
                    let late_end = Timestamp(watermark.0);
                    let straggler = inst.buckets[rng.gen_range(0..=offered)].0.clone();
                    let tickets = mgr.ingest_bucket_reordered(straggler, late_end).unwrap();
                    prop_assert!(tickets.is_empty(), "a shed bucket releases nothing");
                    expected_drops += 1;
                }
            }
        }
        for ticket in mgr.flush_reorder_buffer().unwrap() {
            ticket.detach();
        }
        mgr.sync();

        let stats = mgr.stats();
        prop_assert_eq!(
            stats.late_dropped, expected_drops,
            "drops are charged bucket-for-bucket"
        );
        prop_assert_eq!(
            mgr.telemetry().registry().counter("ingest.late_dropped").get(),
            expected_drops as u64,
            "the registry counter mirrors the stat"
        );
        prop_assert_eq!(
            stats.slides,
            inst.buckets.len(),
            "every in-order bucket became a slide; no straggler did"
        );
        // The surviving state is the clean stream's: scratch equivalence.
        for (idx, (id, _, _)) in inst.subs.iter().enumerate() {
            let (q, a) = &inst.queries[idx];
            let fresh = mgr.engine().query(q, *a).unwrap();
            prop_assert_eq!(
                mgr.result(*id).unwrap().sorted_elements(),
                fresh.sorted_elements()
            );
        }
    }
}
