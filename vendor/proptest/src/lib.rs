//! Offline drop-in subset of the [`proptest`](https://crates.io/crates/proptest)
//! property-testing API.
//!
//! The build environment has no crates.io access, so this stub implements the
//! surface the workspace's property tests use: the [`proptest!`] macro with an
//! optional `#![proptest_config(...)]` header, [`prelude::ProptestConfig`],
//! the [`prelude::Strategy`] trait with `prop_map`, strategies for integer
//! ranges / `any::<T>()` / tuples, and the `prop_assume!` / `prop_assert!` /
//! `prop_assert_eq!` macros.
//!
//! Differences from real proptest, by design:
//!
//! * cases are generated from a fixed deterministic seed sequence (no
//!   persistence files, no env-var overrides), so failures reproduce on every
//!   run without extra state;
//! * there is no shrinking — the failing case's inputs are printed instead;
//! * `prop_assume!` rejects the case without counting it towards the total.

use rand::rngs::StdRng;

/// Marker describing why a generated case was rejected by `prop_assume!`.
#[derive(Debug, Clone, Copy)]
pub struct TestCaseRejection;

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::StdRng;
    use rand::Rng;

    /// Generates values of `Self::Value` from a seeded RNG.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy adapter produced by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy for the full value domain of `T` (see [`any`]).
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T> {
        _marker: core::marker::PhantomData<T>,
    }

    /// The strategy generating any value of `T` (`any::<u64>()`, …).
    pub fn any<T>() -> Any<T>
    where
        Any<T>: Strategy<Value = T>,
    {
        Any {
            _marker: core::marker::PhantomData,
        }
    }

    macro_rules! impl_any_int {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen::<u64>() as $t
                }
            }
        )*};
    }

    impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut StdRng) -> bool {
            rng.gen::<bool>()
        }
    }

    impl Strategy for Any<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut StdRng) -> f64 {
            rng.gen::<f64>()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut StdRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
}

/// Runner configuration (subset of proptest's `ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` accepted cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic per-case RNG used by the [`proptest!`] expansion.
pub fn case_rng(case: u64) -> StdRng {
    use rand::SeedableRng;
    StdRng::seed_from_u64(0x5eed_cafe_f00d_0001 ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

pub mod prelude {
    //! Commonly used items, mirroring `proptest::prelude`.
    pub use super::strategy::{any, Strategy};
    pub use super::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Rejects the current case when the condition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseRejection);
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseRejection);
        }
    };
}

/// Asserts a condition inside a property, failing the test on violation.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property, failing the test on violation.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Declares property tests, mirroring proptest's macro for the
/// `fn name(binding in strategy) { body }` form.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); $( $(#[$attr:meta])* fn $name:ident($arg:ident in $strat:expr) $body:block )*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let strategy = $strat;
                let mut accepted: u32 = 0;
                let mut case: u64 = 0;
                // Bound total draws so a property rejecting every case (via
                // prop_assume!) terminates instead of spinning forever.
                let max_draws = (config.cases as u64) * 20 + 64;
                while accepted < config.cases && case < max_draws {
                    let mut rng = $crate::case_rng(case);
                    case += 1;
                    let $arg = $crate::strategy::Strategy::generate(&strategy, &mut rng);
                    // The closure gives `prop_assume!` an early-return scope;
                    // immediate invocation is the point.
                    #[allow(clippy::redundant_closure_call)]
                    let outcome = (|| -> ::core::result::Result<(), $crate::TestCaseRejection> {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    if outcome.is_ok() {
                        accepted += 1;
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Mapped tuple strategies produce values inside the source ranges.
        #[test]
        fn tuple_and_map_strategies_work(v in (1u64..=8, 2usize..5).prop_map(|(a, b)| a as usize + b)) {
            prop_assert!((3..=12).contains(&v));
        }

        #[test]
        fn assume_rejects_without_failing(x in any::<u64>()) {
            prop_assume!(x.is_multiple_of(2));
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn generated_properties_run() {
        tuple_and_map_strategies_work();
        assume_rejects_without_failing();
    }
}
