//! The subscription manager: ingestion plus sharded, delta-driven refresh,
//! with synchronous and asynchronous (pipelined) maintenance APIs.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, RwLockReadGuard};
use std::time::{Duration, Instant};

use ksir_core::{Algorithm, IngestReport, KsirEngine, KsirQuery, QueryResult, SharedEngine};
use ksir_snapshot::{
    EngineSnapshot, SnapshotCounters, SnapshotPolicy, SnapshotSource, SnapshotStats,
};
use ksir_telemetry::{FlightTrigger, Telemetry, TraceEventKind};
use ksir_types::{KsirError, Result, SocialElement, Timestamp, TopicVector, TopicWordDistribution};

use crate::delivery::{delivery_queue, DeliveryConfig, DeliveryReceiver, DeliveryTelemetry};
use crate::fault::FaultPlan;
use crate::overload::{OverloadController, OverloadLevel};
use crate::reorder::{Bucket, ReorderBuffer};
use crate::shard::{
    refresh_one, LaneDecision, PendingEpoch, ShardCell, ShardConfig, ShardKey, ShardSlide,
    ShardStats,
};
use crate::subscription::{
    RefreshReason, ResultDelta, Subscription, SubscriptionId, SubscriptionStats,
};
use crate::worker::{deliver, DeliveryRegistry, EpochTask, Watermark, WorkItem, WorkerPool};

/// Aggregate work counters across all subscriptions and slides.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ManagerStats {
    /// Buckets ingested through the manager.
    pub slides: usize,
    /// Slide-driven subscription refreshes (query re-runs).  Initial
    /// evaluations at subscribe time and forced refreshes are not counted,
    /// so `refreshes + skips` always reconciles with the number of
    /// slide-time classifications (`Σ per-slide subscription count`).
    pub refreshes: usize,
    /// Subscription evaluations skipped because the slide provably could not
    /// have changed the result.
    pub skips: usize,
    /// Buckets that arrived out of order but within
    /// [`ShardConfig::reorder_horizon`] and were re-sequenced by the reorder
    /// buffer ([`SubscriptionManager::ingest_bucket_reordered`]).
    pub reordered: usize,
    /// Buckets that arrived beyond the reorder horizon and were shed under
    /// [`LatePolicy::DropLate`](crate::LatePolicy::DropLate).  Mirrors the
    /// `ingest.late_dropped` registry counter exactly.
    pub late_dropped: usize,
}

/// Cumulative counters of shards that were retired because `unsubscribe`
/// emptied them.  Folded out of the live [`ShardStats`] so that the shard map
/// never iterates dead shards, while
/// `Σ live shard counters + retired == ManagerStats` keeps reconciling.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetiredStats {
    /// Shards removed after their last resident unsubscribed.
    pub shards: usize,
    /// Slide-driven refreshes performed by retired shards while they lived.
    pub refreshes: usize,
    /// The subset of `refreshes` that ran delta-restricted.
    pub delta_refreshes: usize,
    /// Slide-time skips charged by retired shards while they lived.
    pub skips: usize,
    /// Slides that scheduled a now-retired shard.
    pub scheduled_slides: usize,
    /// Slides that skipped a now-retired shard as a whole.
    pub skipped_slides: usize,
    /// Covering/variant evaluations retired shards ran while they lived.
    pub covering_evaluations: usize,
    /// Member refreshes retired shards served by sharing a covering run.
    pub shared_refreshes: usize,
    /// Plan clusters retired shards fast-skipped inside scheduled slides.
    pub skipped_clusters: usize,
}

/// The outcome of one [`SubscriptionManager::ingest_bucket`] call.
#[derive(Debug, Clone, PartialEq)]
pub struct SlideOutcome {
    /// The engine's ingestion report (including the [`WindowDelta`]).
    ///
    /// [`WindowDelta`]: ksir_stream::WindowDelta
    pub report: IngestReport,
    /// Result deltas of the subscriptions whose stored result *changed*,
    /// ordered by subscription id.  Refreshes that merely confirmed the
    /// previous result are counted in [`SlideOutcome::refreshed`] but produce
    /// no entry here.
    pub updates: Vec<ResultDelta>,
    /// Number of subscriptions whose query was re-run this slide.
    pub refreshed: usize,
    /// Number of subscriptions skipped by the delta rules this slide.
    pub skipped: usize,
    /// Shards whose touch filters fired and whose residents were classified.
    pub shards_scheduled: usize,
    /// Shards proven undisturbed as a whole (their residents were all
    /// skipped without classification).
    pub shards_skipped: usize,
}

/// The immediately available part of one
/// [`SubscriptionManager::ingest_bucket_async`] call.
///
/// The index update, the epoch-snapshot capture, and the shard handoff are
/// complete when this is returned; the refreshes themselves run on the
/// worker pool behind the ticket's epoch and stream their [`ResultDelta`]s
/// into the attached delivery queues.  Await them with
/// [`SubscriptionManager::sync`] (all epochs) or watch
/// [`SubscriptionManager::completed_epoch`] pass [`SlideTicket::slide`];
/// consume the deltas at leisure through the [`DeliveryReceiver`]s.
///
/// The ticket is `#[must_use]`: silently dropping it reads like awaiting the
/// slide when nothing of the sort happened.  Call [`SlideTicket::detach`] to
/// document fire-and-forget ingestion explicitly.
#[must_use = "a SlideTicket is the only handle to the slide's epoch — dropping it silently \
              forgets which epoch to await; call `.detach()` for explicit fire-and-forget"]
#[derive(Debug, Clone, PartialEq)]
pub struct SlideTicket {
    /// 1-based slide number (= the epoch); deltas delivered for this slide
    /// carry it in [`Delivery::slide`](crate::delivery::Delivery::slide).
    pub slide: u64,
    /// The engine's ingestion report (including the [`WindowDelta`]).
    ///
    /// [`WindowDelta`]: ksir_stream::WindowDelta
    pub report: IngestReport,
    /// Idle shards whose filters fired and that were handed to the worker
    /// pool with this epoch's snapshot.
    pub shards_scheduled: usize,
    /// Shards still draining earlier epochs: this epoch was appended to
    /// their lanes, and their schedule/skip decision is made in epoch order
    /// by the owning worker once their filters are current.
    pub shards_deferred: usize,
    /// Idle shards proven undisturbed as a whole, skipped inline.
    pub shards_skipped: usize,
    /// Skips charged immediately to residents of inline-skipped shards.
    /// Scheduled and deferred shards' refresh/skip splits are known only
    /// once the epoch completes (see [`SubscriptionManager::stats`] after a
    /// [`SubscriptionManager::sync`]).
    pub skipped: usize,
}

impl SlideTicket {
    /// Consumes the ticket, explicitly *not* awaiting the slide's refresh
    /// work.  The deltas still stream into the delivery queues; the epoch
    /// barrier is whoever calls [`SubscriptionManager::sync`] next.
    pub fn detach(self) {}
}

/// The shared first half of the synchronous ingestion API: the engine's
/// report plus the shard projection (scheduled shards and immediately
/// charged skips).
struct ProjectedSlide {
    report: IngestReport,
    scheduled: Vec<Arc<ShardCell>>,
    skipped: usize,
    shards_skipped: usize,
}

/// Manages standing k-SIR queries over a shared [`KsirEngine`], partitioned
/// into topic-keyed shards refreshed by a pool of long-lived workers.
///
/// Ingest buckets through the manager instead of the engine.  Two maintenance
/// APIs share the same shards, workers, and refresh decisions:
///
/// * [`SubscriptionManager::ingest_bucket`] — synchronous: updates the index,
///   refreshes every scheduled shard, and returns the complete
///   [`SlideOutcome`].  Decision-identical to the serial walk of PR 1.
/// * [`SubscriptionManager::ingest_bucket_async`] — pipelined: updates the
///   index, captures an immutable epoch snapshot
///   ([`ksir_snapshot::EngineSnapshot`]), hands the affected shards their
///   epoch, and returns a [`SlideTicket`] without waiting for any refresh —
///   *including* the previous slide's: refreshes evaluate against their
///   epoch's snapshot, so the next index write never waits for refresh
///   compute (up to [`ShardConfig::pipeline_depth`] epochs overlap).
///   Result changes stream into bounded per-subscriber queues
///   ([`SubscriptionManager::attach_delivery`]);
///   [`SubscriptionManager::sync`] is the barrier that awaits outstanding
///   refresh work, and [`SubscriptionManager::completed_epoch`] the
///   completion watermark.
///
/// See the crate docs for the delta-refresh rules, [`crate::shard`] for the
/// sharding scheme, and [`crate::delivery`] for the queue semantics.
#[derive(Debug)]
pub struct SubscriptionManager<D> {
    engine: SharedEngine<D>,
    config: ShardConfig,
    shards: BTreeMap<ShardKey, Arc<ShardCell>>,
    /// Home shard of every live subscription.
    route_of: BTreeMap<SubscriptionId, ShardKey>,
    deliveries: DeliveryRegistry,
    pool: Option<WorkerPool>,
    /// Outstanding shard-epoch tasks; shared with the worker pool.
    watermark: Arc<Watermark>,
    /// Snapshot-capture work counters (see
    /// [`SubscriptionManager::snapshot_stats`]).
    snapshots: SnapshotCounters,
    /// `topic → number of live subscriptions with it in their support`.
    /// Epoch snapshots capture exactly these topics' ranked lists, so the
    /// writer never pays copy-on-write for lists no standing query can
    /// traverse.
    watched_topics: BTreeMap<ksir_types::TopicId, usize>,
    next_id: u64,
    slides: usize,
    retired: RetiredStats,
    /// Bounded watermark-driven reorder buffer in front of the async ingest
    /// path (see [`SubscriptionManager::ingest_bucket_reordered`]).
    reorder: ReorderBuffer,
    /// Buckets the reorder buffer re-sequenced (arrived out of order, within
    /// the horizon).
    reordered: usize,
    /// Buckets shed beyond the reorder horizon under `DropLate`.
    late_dropped: usize,
    /// Deterministic fault schedule consulted at the snapshot, worker, and
    /// delivery seams; `None` outside chaos runs.
    faults: Option<Arc<FaultPlan>>,
    /// The load-shed ladder, fed the async path's admission wait each slide.
    overload: OverloadController,
    /// The unified observability bundle (metrics registry + trace ring);
    /// shared with the shards, workers, and delivery queues.
    telemetry: Arc<Telemetry>,
}

impl<D: TopicWordDistribution> SubscriptionManager<D> {
    /// Wraps an engine (empty or pre-loaded) for standing-query serving with
    /// the default [`ShardConfig`].
    pub fn new(engine: KsirEngine<D>) -> Self {
        Self::with_shard_config(engine, ShardConfig::default())
    }

    /// Wraps an engine with an explicit sharding configuration.
    pub fn with_shard_config(engine: KsirEngine<D>, config: ShardConfig) -> Self {
        let telemetry = Arc::new(Telemetry::new(config.telemetry));
        SubscriptionManager {
            engine: SharedEngine::new(engine),
            config,
            shards: BTreeMap::new(),
            route_of: BTreeMap::new(),
            deliveries: DeliveryRegistry::default(),
            pool: None,
            watermark: Arc::new(Watermark::default()),
            snapshots: SnapshotCounters::with_registry(telemetry.registry()),
            watched_topics: BTreeMap::new(),
            next_id: 0,
            slides: 0,
            retired: RetiredStats::default(),
            reorder: ReorderBuffer::new(config.reorder_horizon, config.late_policy),
            reordered: 0,
            late_dropped: 0,
            faults: None,
            overload: OverloadController::new(config.overload),
            telemetry,
        }
    }

    /// The sharding configuration in use.
    pub fn shard_config(&self) -> ShardConfig {
        self.config
    }

    /// Read access to the underlying engine (for ad-hoc queries, stats, …).
    ///
    /// The guard holds the engine's read lock; drop it before calling a
    /// mutating manager method.
    pub fn engine(&self) -> RwLockReadGuard<'_, KsirEngine<D>> {
        self.engine.read()
    }

    /// A cloneable handle to the engine for use on other threads (ad-hoc
    /// query serving, dashboards).  Readers never block each other; they
    /// block only while a bucket is being applied to the index.
    pub fn shared_engine(&self) -> SharedEngine<D> {
        self.engine.clone()
    }

    /// Tears the manager down, returning the engine.  Shuts the worker pool
    /// down first (awaiting outstanding refresh work).
    pub fn into_engine(mut self) -> KsirEngine<D> {
        self.sync();
        self.pool = None; // joins the workers, releasing their engine handles
        let SubscriptionManager { engine, .. } = self;
        engine.into_inner()
    }

    /// Number of registered subscriptions.
    pub fn subscription_count(&self) -> usize {
        self.route_of.len()
    }

    /// Number of live (non-empty) shards.  Shards emptied by
    /// [`SubscriptionManager::unsubscribe`] are pruned; their cumulative
    /// counters move to [`SubscriptionManager::retired_stats`].
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard a subscription currently resides in.
    pub fn shard_of(&self, id: SubscriptionId) -> Option<ShardKey> {
        self.route_of.get(&id).copied()
    }

    /// Per-shard work counters, ordered by shard key (topic shards first,
    /// overflow last).
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards.values().map(|s| s.shard().stats()).collect()
    }

    /// Cumulative counters of shards retired by `unsubscribe`.
    pub fn retired_stats(&self) -> RetiredStats {
        self.retired
    }

    /// Snapshot-capture work counters: epochs captured, per-shard snapshot
    /// builds, and the shared/truncated prefix split.  The writer-side
    /// copy-on-write cost lives in the engine's
    /// [`EngineStats`](ksir_core::EngineStats) (`*_cow_clones`).
    pub fn snapshot_stats(&self) -> SnapshotStats {
        self.snapshots.stats()
    }

    /// The manager's observability bundle: the unified metrics registry
    /// (stage latency histograms, registry-backed counter views of every
    /// `*Stats` struct) plus the epoch-scoped trace ring.  Clone the `Arc`
    /// to read it from dashboards or exporters on other threads.
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    /// Folds the manager-level stats into registry gauges, so the exported
    /// schema carries the same numbers as [`SubscriptionManager::stats`],
    /// the engine's [`EngineStats`](ksir_core::EngineStats), and the
    /// watermark — refreshed at every barrier and after every async ingest.
    ///
    /// Deliberately lock-free on the shards: `manager.refreshes` /
    /// `manager.skips` are read back from the `shard.*` registry counters
    /// (bumped in the same statements as the per-shard tallies, and never
    /// reset when a shard retires), so publishing from the pipelined ingest
    /// path cannot block behind a busy shard's in-flight refresh.
    fn publish_gauges(&self) {
        let registry = self.telemetry.registry();
        registry.gauge("manager.slides").set(self.slides as u64);
        registry
            .gauge("manager.refreshes")
            .set(registry.counter("shard.refreshes").get());
        registry
            .gauge("manager.skips")
            .set(registry.counter("shard.skips").get());
        registry
            .gauge("manager.subscriptions")
            .set(self.route_of.len() as u64);
        registry
            .gauge("manager.inflight_epochs")
            .set(self.watermark.inflight_epochs() as u64);
        registry
            .gauge("manager.retired.shards")
            .set(self.retired.shards as u64);
        registry
            .gauge("manager.retired.refreshes")
            .set(self.retired.refreshes as u64);
        registry
            .gauge("manager.retired.skips")
            .set(self.retired.skips as u64);
        // Gauge views of the resilience counters, so one scrape of the gauge
        // family carries the full degraded-mode picture.
        registry
            .gauge("worker.restarts")
            .set(registry.counter("worker.restarts").get());
        registry
            .gauge("shard.quarantined")
            .set(registry.counter("shard.quarantined").get());
        registry
            .gauge("overload.level")
            .set(self.overload.level().as_u64());
        // Freshness: retire every fully-refreshed epoch on the e2e clock,
        // then publish the age of the oldest still-open one — the live
        // watermark-stall signal `/ready` probes alert on.
        let freshness = self.telemetry.freshness();
        freshness.retire_through(self.watermark.completed_through());
        registry
            .gauge("manager.freshness_lag")
            .set(freshness.lag_nanos(self.telemetry.now_nanos()));
        registry.gauge("delivery.queue_depth").set(
            self.deliveries
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .values()
                .map(|sender| sender.len() as u64)
                .sum(),
        );
        let engine = self.engine.read().stats();
        registry
            .gauge("engine.window_cow_clones")
            .set(engine.window_cow_clones as u64);
        registry
            .gauge("engine.topic_vector_cow_clones")
            .set(engine.topic_vector_cow_clones as u64);
        registry
            .gauge("engine.ranked_cow_clones")
            .set(engine.ranked_cow_clones as u64);
        registry
            .gauge("engine.queries_served")
            .set(engine.queries_served as u64);
    }

    /// The completion watermark: the highest epoch `e` such that every slide
    /// `≤ e` has fully refreshed (or been proven skippable).  Counters and
    /// maintained results for those slides are final.
    pub fn completed_epoch(&self) -> u64 {
        self.watermark.completed_through()
    }

    /// Number of epochs whose refresh work is still in flight (bounded by
    /// [`ShardConfig::pipeline_depth`]).
    pub fn inflight_epochs(&self) -> usize {
        self.watermark.inflight_epochs()
    }

    /// Aggregate work counters: the sum of the live shards' counters plus the
    /// retired tally.  After a [`SubscriptionManager::sync`] (or any
    /// synchronous ingest), `refreshes + skips` reconciles with the number of
    /// slide-time classifications performed.
    pub fn stats(&self) -> ManagerStats {
        let mut refreshes = self.retired.refreshes;
        let mut skips = self.retired.skips;
        for stats in self.shard_stats() {
            refreshes += stats.refreshes;
            skips += stats.skips;
        }
        ManagerStats {
            slides: self.slides,
            refreshes,
            skips,
            reordered: self.reordered,
            late_dropped: self.late_dropped,
        }
    }

    /// Awaits every outstanding asynchronous shard refresh — the pipeline's
    /// full barrier.  After `sync()` returns, all deltas of previously
    /// ingested buckets have been pushed into their delivery queues and
    /// every counter is final.  A no-op when nothing is outstanding (or in
    /// pure-sync use).
    pub fn sync(&self) {
        match &self.pool {
            // The pool's barrier self-heals dead worker threads between
            // bounded waits, so a killed worker with queued items cannot
            // wedge the sync.
            Some(pool) => pool.wait_idle(),
            None => self.watermark.wait_all(),
        }
        // Every counter is final here: fold the stats into the registry so
        // an exporter scraped after the barrier sees the settled numbers.
        self.publish_gauges();
    }

    /// Registers a standing query, evaluating it immediately against the
    /// engine's current state and routing it to its home shard (dominant
    /// support topic, or the overflow shard for broad queries).
    ///
    /// Returns the subscription handle; the initial result is available via
    /// [`SubscriptionManager::result`] right away.  Awaits outstanding
    /// asynchronous refreshes first, so the subscription's counters start
    /// exactly at its first slide.
    pub fn subscribe(&mut self, query: KsirQuery, algorithm: Algorithm) -> Result<SubscriptionId> {
        self.sync();
        {
            let engine = self.engine.read();
            if query.vector().num_topics() != engine.num_topics() {
                return Err(KsirError::DimensionMismatch {
                    expected: engine.num_topics(),
                    actual: query.vector().num_topics(),
                });
            }
        }
        let id = SubscriptionId(self.next_id);
        self.next_id += 1;
        let key = self.config.route(&query);
        for (topic, _) in query.vector().support() {
            *self.watched_topics.entry(topic).or_insert(0) += 1;
        }
        let mut sub = Subscription::new(query, algorithm);
        // The initial evaluation is not a slide, so it is deliberately left
        // out of the refresh/skip counters — they must reconcile with
        // `slides x subscriptions`.  It always runs full (there is no prior
        // result to restrict against), warming the singleton memo for the
        // first slide-driven delta refresh.
        let delta_refresh = self.config.delta_refresh;
        refresh_one(
            &*self.engine.read(),
            id,
            &mut sub,
            RefreshReason::Initial,
            None,
            delta_refresh,
        );
        let telemetry = &self.telemetry;
        let shared_plans = self.config.shared_plans;
        self.shards
            .entry(key)
            .or_insert_with(|| {
                Arc::new(ShardCell::new(
                    key,
                    Arc::clone(telemetry),
                    delta_refresh,
                    shared_plans,
                ))
            })
            .shard()
            .insert(id, sub);
        self.route_of.insert(id, key);
        Ok(id)
    }

    /// Removes a subscription.  Returns `true` if it existed.
    ///
    /// A shard emptied by the removal is pruned from the shard map (its
    /// cumulative counters fold into [`SubscriptionManager::retired_stats`]),
    /// so future slides no longer iterate it.  Any attached delivery queue is
    /// closed.
    pub fn unsubscribe(&mut self, id: SubscriptionId) -> bool {
        if !self.route_of.contains_key(&id) {
            return false;
        }
        // Close the queue *before* the barrier: if a Block-policy producer is
        // stalled on a consumer that stopped draining, the close is what
        // unwedges it so the sync below can complete.
        self.close_delivery(id);
        self.sync();
        let Some(key) = self.route_of.remove(&id) else {
            return false;
        };
        let Some(cell) = self.shards.get(&key) else {
            return false;
        };
        let (removed, retire) = {
            let mut shard = cell.shard();
            let removed = shard.remove(id);
            let retire = (removed.is_some() && shard.len() == 0).then(|| shard.stats());
            (removed, retire)
        };
        let removed = match removed {
            Some(sub) => {
                for (topic, _) in sub.query.vector().support() {
                    if let Some(count) = self.watched_topics.get_mut(&topic) {
                        *count -= 1;
                        if *count == 0 {
                            self.watched_topics.remove(&topic);
                        }
                    }
                }
                true
            }
            None => false,
        };
        if let Some(stats) = retire {
            self.retired.shards += 1;
            self.retired.refreshes += stats.refreshes;
            self.retired.delta_refreshes += stats.delta_refreshes;
            self.retired.skips += stats.skips;
            self.retired.scheduled_slides += stats.scheduled_slides;
            self.retired.skipped_slides += stats.skipped_slides;
            self.retired.covering_evaluations += stats.covering_evaluations;
            self.retired.shared_refreshes += stats.shared_refreshes;
            self.retired.skipped_clusters += stats.skipped_clusters;
            self.shards.remove(&key);
        }
        removed
    }

    /// Removes and closes `id`'s delivery sender, if any.  Returns `true` if
    /// one was attached.
    fn close_delivery(&self, id: SubscriptionId) -> bool {
        let sender = self
            .deliveries
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .remove(&id);
        match sender {
            Some(sender) => {
                sender.close();
                true
            }
            None => false,
        }
    }

    /// Attaches a bounded delivery queue to a live subscription, returning
    /// the consumer handle.  From the next slide on, every [`ResultDelta`]
    /// the subscription's refreshes produce — through either ingestion API —
    /// is enqueued under the queue's overflow policy.  Replaces (and closes)
    /// any previously attached queue.  Returns `None` for unknown ids.
    pub fn attach_delivery(
        &mut self,
        id: SubscriptionId,
        config: DeliveryConfig,
    ) -> Option<DeliveryReceiver> {
        if !self.route_of.contains_key(&id) {
            return None;
        }
        // Close any previous queue before the barrier (a stalled Block-policy
        // producer on the old queue must be unwedged for sync to complete),
        // then quiesce so the new queue starts at a slide boundary.
        self.close_delivery(id);
        self.sync();
        let (sender, receiver) = delivery_queue(
            config,
            Some(DeliveryTelemetry::new(Arc::clone(&self.telemetry))),
        );
        self.deliveries
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .insert(id, sender);
        Some(receiver)
    }

    /// Detaches (and closes) a subscription's delivery queue.  Returns `true`
    /// if one was attached.
    pub fn detach_delivery(&mut self, id: SubscriptionId) -> bool {
        // Close first (unwedging any stalled Block-policy producer), then
        // quiesce so no worker still holds the removed sender.
        let detached = self.close_delivery(id);
        self.sync();
        detached
    }

    /// The current maintained result of a subscription.
    pub fn result(&self, id: SubscriptionId) -> Option<QueryResult> {
        self.with_subscription(id, |sub| sub.result.clone())?
    }

    /// The work counters of one subscription.
    pub fn subscription_stats(&self, id: SubscriptionId) -> Option<SubscriptionStats> {
        self.with_subscription(id, |sub| sub.stats)
    }

    fn with_subscription<T>(
        &self,
        id: SubscriptionId,
        f: impl FnOnce(&Subscription) -> T,
    ) -> Option<T> {
        let key = self.route_of.get(&id)?;
        let cell = self.shards.get(key)?;
        let shard = cell.shard();
        shard.get(id).map(f)
    }

    /// Forces a refresh of one subscription, returning the delta if the
    /// result changed.  The delta (if any) is also pushed into the
    /// subscription's delivery queue, stamped with the current slide.
    pub fn refresh(&mut self, id: SubscriptionId) -> Option<ResultDelta> {
        self.sync();
        let key = self.route_of.get(&id)?;
        let cell = self.shards.get(key)?;
        let update = {
            let engine = self.engine.read();
            let mut shard = cell.shard();
            let sub = shard.get_mut(id)?;
            // Forced refreshes run full: the caller sits outside the slide
            // stream, so no delta vouches for the memo's sync point.
            let (update, _mode) = refresh_one(
                &*engine,
                id,
                sub,
                RefreshReason::Forced,
                None,
                self.config.delta_refresh,
            );
            // The forced run replaced this member's frontier outside the
            // cluster's own refresh, so the shared memo's validity guard may
            // be gone — drop it (pure cost; the next covering run starts
            // cold).
            shard.invalidate_plan_cache(id);
            // The stored result (and with it the shard's floors/members) may
            // have changed even when no delta is reported.
            shard.rebuild_filters();
            update
        };
        if let Some(update) = &update {
            deliver(
                &self.deliveries,
                self.slides as u64,
                std::slice::from_ref(update),
                self.faults.as_deref(),
                &self.telemetry,
            );
        }
        update
    }

    /// Installs a deterministic fault schedule (see [`crate::fault`]).
    ///
    /// Quiesces and tears down any running worker pool first, so the next
    /// spawn threads the plan through the worker, snapshot-capture, and
    /// delivery seams.  Install the plan before the ingest run it targets;
    /// coordinates are 1-based slide numbers.
    pub fn inject_faults(&mut self, plan: Arc<FaultPlan>) {
        self.sync();
        self.pool = None; // joins the workers; the next spawn carries the plan
        self.faults = Some(plan);
    }

    /// The installed fault schedule, if any — its `injected()` / `remaining()`
    /// tallies prove which scheduled faults actually fired.
    pub fn fault_plan(&self) -> Option<&Arc<FaultPlan>> {
        self.faults.as_ref()
    }

    /// The current rung of the load-shed ladder ([`OverloadLevel::Normal`]
    /// unless overload control is enabled and pressure stepped it up).
    pub fn overload_level(&self) -> OverloadLevel {
        self.overload.level()
    }

    /// The smoothed admission-wait pressure (µs) driving the ladder.
    pub fn overload_pressure_micros(&self) -> u64 {
        self.overload.pressure_micros()
    }

    /// Number of shards currently quarantined into degraded full-recompute
    /// mode by repeated refresh panics.
    pub fn quarantined_shards(&self) -> usize {
        self.shards
            .values()
            .filter(|cell| cell.shard().is_quarantined())
            .count()
    }

    /// Lifts every shard quarantine (after the underlying fault is fixed),
    /// returning how many were lifted.  Quiesces first so no worker observes
    /// the mode flip mid-epoch; the affected shards resume optimised refresh
    /// from cold memos on their next scheduled slide.
    pub fn lift_quarantines(&mut self) -> usize {
        self.sync();
        let mut lifted = 0;
        for cell in self.shards.values() {
            let mut shard = cell.shard();
            if shard.is_quarantined() {
                shard.lift_quarantine();
                lifted += 1;
            }
        }
        // The live-occupancy gauge comes back down here (the cumulative
        // `shard.quarantined` counter never does) — this is what lets a
        // readiness probe recover after the fault is fixed.
        self.telemetry
            .registry()
            .gauge("shard.quarantine_active")
            .sub(lifted as u64);
        lifted
    }

    /// Buckets currently held by the reorder buffer awaiting their horizon.
    pub fn reorder_buffered(&self) -> usize {
        self.reorder.buffered()
    }

    /// The reorder buffer's released watermark: the highest bucket end
    /// already forwarded to ingestion.  Arrivals at or before it are late
    /// and fall to [`ShardConfig::late_policy`]; `None` until the first
    /// release.
    pub fn reorder_released_through(&self) -> Option<Timestamp> {
        self.reorder.released_through()
    }

    /// Applies a new overload rung: flips every shard's effective modes,
    /// exports the rung, and traces the step.  Mode flips drop the shared
    /// singleton memos (in both directions), so a memo warmed under one mode
    /// never serves another.
    fn apply_overload(&mut self, level: OverloadLevel) {
        for cell in self.shards.values() {
            cell.shard()
                .set_modes(level.shared_plans_enabled(), level.delta_enabled());
        }
        let registry = self.telemetry.registry();
        registry.gauge("overload.level").set(level.as_u64());
        registry.counter("overload.steps").inc();
        self.telemetry.record(
            self.slides as u64,
            None,
            TraceEventKind::OverloadStep {
                level: level.as_u64(),
            },
        );
        // Ladder steps are rare and always postmortem-worthy: snapshot the
        // trace + gauge surface while the pressure that caused them is
        // still visible.
        self.telemetry.trigger_flight(FlightTrigger::OverloadStep {
            epoch: self.slides as u64,
            level: level.as_u64(),
        });
    }

    /// Folds one reorder-buffer outcome into the manager tallies, registry
    /// counters, and trace ring — in the same statements, so the exported
    /// schema can never drift from [`SubscriptionManager::stats`].
    fn account_reorder(
        &mut self,
        reordered: bool,
        dropped: Option<usize>,
        replayed: Option<usize>,
    ) {
        let registry = self.telemetry.registry();
        if reordered {
            self.reordered += 1;
            registry.counter("ingest.reordered").inc();
        }
        if let Some(elements) = dropped {
            self.late_dropped += 1;
            registry.counter("ingest.late_dropped").inc();
            self.telemetry.record(
                self.slides as u64,
                None,
                TraceEventKind::LateBucketDropped {
                    elements: elements as u64,
                },
            );
            let burst = self.config.telemetry.late_drop_burst;
            if burst > 0 && elements as u64 >= burst {
                self.telemetry.trigger_flight(FlightTrigger::LateDropBurst {
                    epoch: self.slides as u64,
                    dropped: elements as u64,
                });
            }
        }
        if let Some(elements) = replayed {
            registry.counter("ingest.late_replayed").inc();
            self.telemetry.record(
                self.slides as u64,
                None,
                TraceEventKind::LateBucketReplayed {
                    elements: elements as u64,
                },
            );
        }
    }
}

impl<D: TopicWordDistribution + Send + Sync + 'static> SubscriptionManager<D> {
    /// The worker pool, spawned on first use and sized by
    /// [`ShardConfig::worker_threads`].
    fn pool(&mut self) -> &WorkerPool {
        if self.pool.is_none() {
            self.pool = Some(WorkerPool::spawn(
                self.config.worker_threads(),
                self.engine.clone(),
                Arc::clone(&self.deliveries),
                Arc::clone(&self.watermark),
                Arc::clone(&self.telemetry),
                self.faults.clone(),
            ));
        }
        self.pool.as_ref().expect("just spawned")
    }

    /// Captures the engine's post-write state as this epoch's immutable
    /// snapshot — `O(topics)` `Arc` clones; the next index write
    /// copy-on-writes around it.  Bounded to the topics live subscriptions
    /// watch: lists nothing can traverse are not captured and therefore
    /// never pay copy-on-write.
    fn capture_epoch(&self, epoch: u64) -> Arc<dyn SnapshotSource> {
        // Injection seam: a scheduled DelaySnapshot stalls the capture,
        // widening the ingest/refresh race window without changing any
        // decision.
        if let Some(ms) = self
            .faults
            .as_ref()
            .and_then(|plan| plan.take_snapshot_delay(epoch))
        {
            self.telemetry.trigger_flight(FlightTrigger::FaultInjected {
                epoch,
                kind: "delay_snapshot",
            });
            std::thread::sleep(Duration::from_millis(ms));
        }
        let started = Instant::now();
        let snapshot = Arc::new(EngineSnapshot::capture_watched(
            &self.engine.read(),
            epoch,
            &self.snapshots,
            self.watched_topics.keys().copied(),
        ));
        self.telemetry
            .registry()
            .histogram("snapshot.capture")
            .record(started.elapsed());
        self.telemetry.record(
            epoch,
            None,
            TraceEventKind::SnapshotCaptured {
                topics: self.watched_topics.len() as u64,
            },
        );
        snapshot
    }

    /// The synchronous first half: quiesces the pipeline, applies the bucket
    /// to the index, and projects the slide delta onto every shard's touch
    /// filters.  (The pipelined path has its own projection that defers
    /// busy shards instead of quiescing.)
    fn ingest_and_project(
        &mut self,
        bucket: Vec<(SocialElement, TopicVector)>,
        bucket_end: Timestamp,
    ) -> Result<ProjectedSlide> {
        self.sync();
        let write_started = Instant::now();
        let report = self.engine.write().ingest_bucket(bucket, bucket_end)?;
        self.telemetry
            .registry()
            .histogram("ingest.index_write")
            .record(write_started.elapsed());
        self.slides += 1;
        let slide_no = self.slides as u64;
        self.watermark.note_epoch(slide_no);
        // Stamp the epoch on the freshness clock in the same breath as the
        // ingest trace event: every later `delivery.e2e` sample and the
        // `manager.freshness_lag` gauge measure from this instant.
        self.telemetry
            .freshness()
            .stamp(slide_no, self.telemetry.now_nanos());
        self.telemetry.record(
            slide_no,
            None,
            TraceEventKind::SlideIngested {
                elements: report.inserted as u64,
            },
        );

        let mut scheduled: Vec<Arc<ShardCell>> = Vec::new();
        let mut skipped = 0usize;
        let mut shards_skipped = 0usize;
        for cell in self.shards.values() {
            let mut shard = cell.shard();
            if shard.is_touched_by(&report.delta) {
                scheduled.push(Arc::clone(cell));
            } else if shard.len() > 0 {
                shards_skipped += 1;
                skipped += shard.skip_all(slide_no);
            }
        }
        Ok(ProjectedSlide {
            report,
            scheduled,
            skipped,
            shards_skipped,
        })
    }

    /// Ingests one bucket through the engine, then refreshes exactly the
    /// shards — and within them the subscriptions — the slide could have
    /// affected, returning the complete [`SlideOutcome`].
    ///
    /// Decision-identical to the serial walk: the same subscriptions refresh
    /// or skip, with the same counters, as under PR 1.  Scheduled shards
    /// refresh on the worker pool when the configuration allows more than
    /// one thread; result deltas additionally stream into any attached
    /// delivery queues.
    pub fn ingest_bucket(
        &mut self,
        bucket: Vec<(SocialElement, TopicVector)>,
        bucket_end: Timestamp,
    ) -> Result<SlideOutcome> {
        let ProjectedSlide {
            report,
            scheduled,
            mut skipped,
            shards_skipped,
        } = self.ingest_and_project(bucket, bucket_end)?;
        let shards_scheduled = scheduled.len();
        let slide_no = self.slides as u64;

        let threads = self.config.threads_for(shards_scheduled);
        let mut slides: Vec<ShardSlide> = Vec::with_capacity(shards_scheduled);
        if threads <= 1 || shards_scheduled <= 1 {
            // Refresh on the caller's thread; deliveries still flow.
            let engine = self.engine.read();
            for cell in &scheduled {
                let slide = cell
                    .shard()
                    .refresh_scheduled(&*engine, &report.delta, slide_no);
                slides.push(slide);
            }
            drop(engine);
            for slide in &slides {
                deliver(
                    &self.deliveries,
                    slide_no,
                    &slide.updates,
                    self.faults.as_deref(),
                    &self.telemetry,
                );
            }
        } else {
            let delta = Arc::new(report.delta.clone());
            let collector = Arc::new(Mutex::new(Vec::with_capacity(shards_scheduled)));
            let items = scheduled
                .into_iter()
                .map(|shard| WorkItem::Live {
                    epoch: slide_no,
                    shard,
                    delta: Arc::clone(&delta),
                    collector: Arc::clone(&collector),
                })
                .collect();
            self.watermark.add(slide_no, shards_scheduled);
            let pool = self.pool();
            pool.dispatch(items);
            pool.wait_idle();
            slides = std::mem::take(&mut *collector.lock().unwrap_or_else(|p| p.into_inner()));
        }

        let mut updates = Vec::new();
        let mut refreshed = 0usize;
        for slide in slides {
            refreshed += slide.refreshed;
            skipped += slide.skipped;
            updates.extend(slide.updates);
        }
        // Shards complete out of order under parallel refresh; present the
        // deltas deterministically.
        updates.sort_by_key(|u| u.subscription);

        Ok(SlideOutcome {
            report,
            updates,
            refreshed,
            skipped,
            shards_scheduled,
            shards_skipped,
        })
    }

    /// Ingests one bucket and **returns before any refresh runs — including
    /// the previous slide's**: the index is updated, an immutable epoch
    /// snapshot is captured, idle undisturbed shards are skipped inline, and
    /// every other shard is handed this epoch through its lane.  Refresh
    /// workers evaluate against the epoch's snapshot rather than an engine
    /// read guard, so the next index write proceeds while refreshes drain
    /// (pipelined epochs; admission is bounded by
    /// [`ShardConfig::pipeline_depth`]).  Result deltas stream into the
    /// attached delivery queues as each shard finishes; ingestion latency is
    /// therefore independent of refresh compute, subscriber count, and
    /// drain speed.
    ///
    /// Decision-identity with the synchronous path is per shard: each shard
    /// processes its epochs strictly in order, so its filters are exactly
    /// what the serial walk would have seen at every epoch, and the frozen
    /// snapshot *is* that epoch's engine state.  Use
    /// [`SubscriptionManager::sync`] to await all outstanding epochs, or
    /// [`SubscriptionManager::completed_epoch`] to watch the watermark.
    pub fn ingest_bucket_async(
        &mut self,
        bucket: Vec<(SocialElement, TopicVector)>,
        bucket_end: Timestamp,
    ) -> Result<SlideTicket> {
        // Pipeline admission: bound in-flight epochs (and with them the
        // snapshots the writer must copy-on-write around).
        let depth = self.config.pipeline_depth.max(1);
        let admission_started = Instant::now();
        match &self.pool {
            // The pool's admission wait self-heals dead workers, so a killed
            // worker with queued epochs cannot wedge ingestion.
            Some(pool) => pool.wait_admission(depth),
            None => self.watermark.wait_inflight_below(depth),
        }
        let admission_wait = admission_started.elapsed();
        self.telemetry
            .registry()
            .histogram("ingest.admission_wait")
            .record(admission_wait);
        // The admission wait is the pipeline's backpressure signal: feed it
        // to the load-shed ladder and apply any step before this slide's
        // snapshot is captured, so the new rung governs this epoch.
        if let Some(level) = self.overload.observe(admission_wait) {
            self.apply_overload(level);
        }
        let policy = if self.overload.level().truncate_snapshots() {
            SnapshotPolicy::TruncateAtFloors
        } else {
            self.config.snapshot_policy
        };
        let write_started = Instant::now();
        let report = self.engine.write().ingest_bucket(bucket, bucket_end)?;
        self.telemetry
            .registry()
            .histogram("ingest.index_write")
            .record(write_started.elapsed());
        self.slides += 1;
        let slide_no = self.slides as u64;
        self.watermark.note_epoch(slide_no);
        // Stamp the epoch on the freshness clock in the same breath as the
        // ingest trace event: every later `delivery.e2e` sample and the
        // `manager.freshness_lag` gauge measure from this instant.
        self.telemetry
            .freshness()
            .stamp(slide_no, self.telemetry.now_nanos());
        self.telemetry.record(
            slide_no,
            None,
            TraceEventKind::SlideIngested {
                elements: report.inserted as u64,
            },
        );

        let mut delta: Option<Arc<ksir_stream::WindowDelta>> = None;
        let mut snapshot: Option<Arc<dyn SnapshotSource>> = None;
        let mut handoffs: Vec<WorkItem> = Vec::new();
        let mut shards_scheduled = 0usize;
        let mut shards_deferred = 0usize;
        let mut shards_skipped = 0usize;
        let mut skipped = 0usize;
        let project_started = Instant::now();
        for cell in self.shards.values() {
            let decision = cell.project_epoch(slide_no, &report.delta, || {
                // Only enqueued epochs register a task, clone the delta, and
                // pin the snapshot — quiet slides pay for none of it.  The
                // task is built *first*: should the snapshot capture below
                // panic, the registration completes during unwind and the
                // watermark still advances past this epoch.
                PendingEpoch {
                    epoch: slide_no,
                    task: EpochTask::register(&self.watermark, slide_no),
                    delta: delta
                        .get_or_insert_with(|| Arc::new(report.delta.clone()))
                        .clone(),
                    snapshot: snapshot
                        .get_or_insert_with(|| self.capture_epoch(slide_no))
                        .clone(),
                    policy,
                }
            });
            match decision {
                LaneDecision::Deferred => shards_deferred += 1,
                LaneDecision::Scheduled => {
                    handoffs.push(WorkItem::Pipelined {
                        shard: Arc::clone(cell),
                    });
                    shards_scheduled += 1;
                }
                LaneDecision::Skipped(n) => {
                    shards_skipped += 1;
                    skipped += n;
                }
                LaneDecision::Empty => {}
            }
        }
        self.telemetry
            .registry()
            .histogram("ingest.project")
            .record(project_started.elapsed());
        if !handoffs.is_empty() {
            self.pool().dispatch(handoffs);
        }
        self.publish_gauges();
        Ok(SlideTicket {
            slide: slide_no,
            report,
            shards_scheduled,
            shards_deferred,
            shards_skipped,
            skipped,
        })
    }

    /// Ingests a bucket through the bounded reorder buffer in front of the
    /// pipelined path, tolerating out-of-order arrival within
    /// [`ShardConfig::reorder_horizon`].
    ///
    /// The buffer holds up to `reorder_horizon` buckets sorted by their end
    /// timestamps and releases the oldest once the bound is exceeded, so any
    /// bucket displaced by at most `reorder_horizon` positions is re-sequenced
    /// exactly — released buckets flow through
    /// [`SubscriptionManager::ingest_bucket_async`] in timestamp order and
    /// yield decisions bit-identical to in-order replay.  A bucket arriving
    /// *beyond* the horizon (its end is at or before the released watermark)
    /// is handled per [`ShardConfig::late_policy`]: shed and charged to
    /// [`ManagerStats::late_dropped`] / the `ingest.late_dropped` counter, or
    /// folded into the next release under
    /// [`LatePolicy::ForceReplay`](crate::LatePolicy::ForceReplay).
    ///
    /// Returns the tickets of the slides this arrival released (often none —
    /// the bucket is merely buffered).  Call
    /// [`SubscriptionManager::flush_reorder_buffer`] at end of stream to
    /// release the tail.
    pub fn ingest_bucket_reordered(
        &mut self,
        bucket: Vec<(SocialElement, TopicVector)>,
        bucket_end: Timestamp,
    ) -> Result<Vec<SlideTicket>> {
        let outcome = self.reorder.offer(bucket, bucket_end);
        self.account_reorder(outcome.reordered, outcome.dropped, outcome.replayed);
        self.ingest_released(outcome.released)
    }

    /// Drains the reorder buffer, ingesting every held bucket in timestamp
    /// order — the end-of-stream companion to
    /// [`SubscriptionManager::ingest_bucket_reordered`].  Any stashed
    /// `ForceReplay` elements are emitted at the released watermark.
    pub fn flush_reorder_buffer(&mut self) -> Result<Vec<SlideTicket>> {
        let released = self.reorder.flush();
        self.ingest_released(released)
    }

    fn ingest_released(&mut self, released: Vec<Bucket>) -> Result<Vec<SlideTicket>> {
        let mut tickets = Vec::with_capacity(released.len());
        for (bucket, end) in released {
            tickets.push(self.ingest_bucket_async(bucket, end)?);
        }
        Ok(tickets)
    }

    /// Convenience wrapper mirroring [`KsirEngine::ingest_stream`]: cuts a
    /// timestamp-ordered stream into buckets of the configured length `L`
    /// (via the shared [`ksir_stream::for_each_bucket`] convention),
    /// ingesting each through [`SubscriptionManager::ingest_bucket`].
    /// Returns the per-slide outcomes.
    pub fn ingest_stream<I>(&mut self, stream: I) -> Result<Vec<SlideOutcome>>
    where
        I: IntoIterator<Item = (SocialElement, TopicVector)>,
    {
        let bucket_len = self.engine.read().config().window.bucket_len();
        let now = self.engine.read().now();
        let mut outcomes = Vec::new();
        ksir_stream::for_each_bucket(bucket_len, now, stream, |bucket, end| {
            outcomes.push(self.ingest_bucket(bucket, end)?);
            Ok(())
        })?;
        Ok(outcomes)
    }

    /// Asynchronous counterpart of [`SubscriptionManager::ingest_stream`]:
    /// every bucket goes through [`SubscriptionManager::ingest_bucket_async`].
    /// Returns the per-slide tickets; call [`SubscriptionManager::sync`] to
    /// await the last slide's refresh work.
    pub fn ingest_stream_async<I>(&mut self, stream: I) -> Result<Vec<SlideTicket>>
    where
        I: IntoIterator<Item = (SocialElement, TopicVector)>,
    {
        let bucket_len = self.engine.read().config().window.bucket_len();
        let now = self.engine.read().now();
        let mut tickets = Vec::new();
        ksir_stream::for_each_bucket(bucket_len, now, stream, |bucket, end| {
            tickets.push(self.ingest_bucket_async(bucket, end)?);
            Ok(())
        })?;
        Ok(tickets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksir_core::fixtures::paper_example;
    use ksir_types::{QueryVector, TopicId};

    fn query(k: usize, weights: &[f64]) -> KsirQuery {
        KsirQuery::new(k, QueryVector::new(weights.to_vec()).unwrap()).unwrap()
    }

    #[test]
    fn subscribe_validates_dimensions() {
        let ex = paper_example();
        let mut mgr = SubscriptionManager::new(ex.empty_engine());
        assert!(matches!(
            mgr.subscribe(query(2, &[1.0, 1.0, 1.0]), Algorithm::Mttd),
            Err(KsirError::DimensionMismatch { .. })
        ));
        assert_eq!(mgr.subscription_count(), 0);
        assert_eq!(mgr.shard_count(), 0);
    }

    #[test]
    fn subscribe_evaluates_immediately_and_unsubscribe_removes() {
        let ex = paper_example();
        let mut mgr = SubscriptionManager::new(ex.build_engine());
        let id = mgr
            .subscribe(query(2, &[0.5, 0.5]), Algorithm::Mttd)
            .unwrap();
        let result = mgr.result(id).expect("evaluated at subscribe time");
        assert_eq!(result.len(), 2);
        assert!(result.score > 0.6);
        assert!(mgr.unsubscribe(id));
        assert!(!mgr.unsubscribe(id));
        assert!(mgr.result(id).is_none());
        assert!(mgr.shard_of(id).is_none());
    }

    #[test]
    fn unsubscribe_prunes_emptied_shards_into_retired_tally() {
        let ex = paper_example();
        let mut mgr = SubscriptionManager::new(ex.empty_engine());
        let narrow = mgr
            .subscribe(query(1, &[1.0, 0.0]), Algorithm::Mtts)
            .unwrap();
        let other = mgr
            .subscribe(query(1, &[0.0, 1.0]), Algorithm::Mttd)
            .unwrap();
        assert_eq!(mgr.shard_count(), 2);
        for (element, tv) in ex.stream().into_iter().take(4) {
            let end = element.ts;
            mgr.ingest_bucket(vec![(element, tv)], end).unwrap();
        }
        let stats_before = mgr.stats();
        assert!(mgr.unsubscribe(narrow));
        // The emptied shard is gone from the live map…
        assert_eq!(mgr.shard_count(), 1);
        assert_eq!(mgr.shard_stats().len(), 1);
        assert_eq!(mgr.shard_stats()[0].key, ShardKey::Topic(TopicId(1)));
        // …but its counters survive in the retired tally, so the aggregate
        // stats are unchanged by the removal.
        let retired = mgr.retired_stats();
        assert_eq!(retired.shards, 1);
        assert!(retired.refreshes + retired.skips > 0);
        assert_eq!(mgr.stats(), stats_before);
        // Future slides no longer charge the dead shard.
        let remaining_slides = ex.stream().len() - 4;
        for (element, tv) in ex.stream().into_iter().skip(4) {
            let end = element.ts;
            mgr.ingest_bucket(vec![(element, tv)], end).unwrap();
        }
        let stats = mgr.stats();
        assert_eq!(
            stats.refreshes + stats.skips,
            stats_before.refreshes + stats_before.skips + remaining_slides,
            "only the surviving subscription is classified after the prune"
        );
        assert!(mgr.unsubscribe(other));
        assert_eq!(mgr.shard_count(), 0);
        assert_eq!(mgr.retired_stats().shards, 2);
    }

    #[test]
    fn subscriptions_route_to_dominant_topic_shards() {
        let ex = paper_example();
        let mut mgr = SubscriptionManager::new(ex.build_engine());
        let narrow0 = mgr
            .subscribe(query(1, &[1.0, 0.0]), Algorithm::Mtts)
            .unwrap();
        let narrow1 = mgr
            .subscribe(query(1, &[0.2, 0.8]), Algorithm::Mttd)
            .unwrap();
        assert_eq!(mgr.shard_of(narrow0), Some(ShardKey::Topic(TopicId(0))));
        assert_eq!(mgr.shard_of(narrow1), Some(ShardKey::Topic(TopicId(1))));
        assert_eq!(mgr.shard_count(), 2);
        let stats = mgr.shard_stats();
        assert_eq!(stats.len(), 2);
        assert!(stats.iter().all(|s| s.subscriptions == 1));
    }

    #[test]
    fn maintained_result_tracks_the_stream() {
        let ex = paper_example();
        let mut mgr = SubscriptionManager::new(ex.empty_engine());
        let id = mgr
            .subscribe(query(2, &[0.5, 0.5]), Algorithm::Mttd)
            .unwrap();
        // Before any data the result is empty.
        assert!(mgr.result(id).unwrap().is_empty());
        for (element, tv) in ex.stream() {
            let end = element.ts;
            mgr.ingest_bucket(vec![(element, tv)], end).unwrap();
        }
        // At t = 8 the maintained result must match the ad-hoc answer.
        let fresh = mgr
            .engine()
            .query(&query(2, &[0.5, 0.5]), Algorithm::Mttd)
            .unwrap();
        let maintained = mgr.result(id).unwrap();
        assert_eq!(maintained.sorted_elements(), fresh.sorted_elements());
        assert!((maintained.score - fresh.score).abs() < 1e-9);
        let stats = mgr.stats();
        assert_eq!(stats.slides, 8);
        assert!(stats.refreshes >= 1);
    }

    #[test]
    fn disjoint_topic_subscription_is_skipped_with_its_shard() {
        // A subscription whose support is topic 1 only must be skipped when
        // a slide touches only topic 0 — and its whole shard with it.
        let ex = paper_example();
        let mut mgr = SubscriptionManager::new(ex.empty_engine());
        // e3 is almost pure topic 0; subscribe to pure topic 1 and ingest an
        // element with support {topic 0} only.
        let id = mgr
            .subscribe(query(1, &[0.0, 1.0]), Algorithm::Mtts)
            .unwrap();
        let e3 = ex.element(3).clone();
        let tv3 = ksir_types::TopicVector::from_values(vec![1.0, 0.0]).unwrap();
        let outcome = mgr.ingest_bucket(vec![(e3, tv3)], Timestamp(3)).unwrap();
        assert_eq!(outcome.skipped, 1);
        assert_eq!(outcome.refreshed, 0);
        assert_eq!(outcome.shards_scheduled, 0);
        assert_eq!(outcome.shards_skipped, 1);
        assert_eq!(mgr.subscription_stats(id).unwrap().skips, 1);
        let shard = &mgr.shard_stats()[0];
        assert_eq!(shard.key, ShardKey::Topic(TopicId(1)));
        assert_eq!(shard.skips, 1);
        assert_eq!(shard.skipped_slides, 1);
        assert_eq!(shard.scheduled_slides, 0);
    }

    #[test]
    fn forced_refresh_reports_forced_reason_only_on_change() {
        let ex = paper_example();
        let mut mgr = SubscriptionManager::new(ex.build_engine());
        let id = mgr
            .subscribe(query(2, &[0.5, 0.5]), Algorithm::Mttd)
            .unwrap();
        // Nothing changed since subscribe: a forced refresh confirms the
        // result and reports no delta.
        assert!(mgr.refresh(id).is_none());
        assert!(mgr.refresh(SubscriptionId(999)).is_none());
    }

    #[test]
    fn ingest_stream_cuts_buckets_and_maintains() {
        let ex = paper_example();
        let mut mgr = SubscriptionManager::new(ex.empty_engine());
        let id = mgr
            .subscribe(query(2, &[0.5, 0.5]), Algorithm::Mtts)
            .unwrap();
        let outcomes = mgr.ingest_stream(ex.stream()).unwrap();
        assert_eq!(outcomes.len(), 8, "bucket length is 1");
        let fresh = mgr
            .engine()
            .query(&query(2, &[0.5, 0.5]), Algorithm::Mtts)
            .unwrap();
        assert_eq!(
            mgr.result(id).unwrap().sorted_elements(),
            fresh.sorted_elements()
        );
    }

    #[test]
    fn counters_reconcile_across_shards() {
        let ex = paper_example();
        let mut mgr = SubscriptionManager::new(ex.empty_engine());
        for weights in [[1.0, 0.0], [0.0, 1.0], [0.5, 0.5], [0.8, 0.2], [0.3, 0.7]] {
            mgr.subscribe(query(2, &weights), Algorithm::Mttd).unwrap();
        }
        mgr.ingest_stream(ex.stream()).unwrap();
        let stats = mgr.stats();
        assert_eq!(
            stats.refreshes + stats.skips,
            stats.slides * mgr.subscription_count(),
            "manager counters must reconcile"
        );
        let (shard_refreshes, shard_skips) = mgr
            .shard_stats()
            .iter()
            .fold((0, 0), |(r, s), st| (r + st.refreshes, s + st.skips));
        let retired = mgr.retired_stats();
        assert_eq!(shard_refreshes + retired.refreshes, stats.refreshes);
        assert_eq!(shard_skips + retired.skips, stats.skips);
    }

    #[test]
    fn async_ingest_returns_before_refresh_and_sync_settles() {
        let ex = paper_example();
        let mut mgr = SubscriptionManager::new(ex.empty_engine());
        let id = mgr
            .subscribe(query(2, &[0.5, 0.5]), Algorithm::Mttd)
            .unwrap();
        let rx = mgr
            .attach_delivery(id, DeliveryConfig::default())
            .expect("live subscription");
        let tickets = mgr.ingest_stream_async(ex.stream()).unwrap();
        assert_eq!(tickets.len(), 8);
        assert_eq!(tickets.last().unwrap().slide, 8);
        mgr.sync();
        // Maintained result equals scratch after the barrier.
        let fresh = mgr
            .engine()
            .query(&query(2, &[0.5, 0.5]), Algorithm::Mttd)
            .unwrap();
        assert_eq!(
            mgr.result(id).unwrap().sorted_elements(),
            fresh.sorted_elements()
        );
        // Every delivered delta belongs to a real slide, in order.
        let deliveries = rx.drain();
        assert!(!deliveries.is_empty());
        assert!(deliveries.windows(2).all(|w| w[0].slide <= w[1].slide));
        assert_eq!(rx.dropped(), 0);
        // Counters reconcile after sync.
        let stats = mgr.stats();
        assert_eq!(stats.refreshes + stats.skips, stats.slides);
    }

    #[test]
    fn detach_delivery_closes_the_queue() {
        let ex = paper_example();
        let mut mgr = SubscriptionManager::new(ex.build_engine());
        let id = mgr
            .subscribe(query(2, &[0.5, 0.5]), Algorithm::Mttd)
            .unwrap();
        assert!(mgr
            .attach_delivery(SubscriptionId(99), DeliveryConfig::default())
            .is_none());
        let rx = mgr.attach_delivery(id, DeliveryConfig::default()).unwrap();
        assert!(!rx.is_closed());
        assert!(mgr.detach_delivery(id));
        assert!(!mgr.detach_delivery(id));
        assert!(rx.is_closed());
    }

    #[test]
    fn unsubscribe_unwedges_a_stalled_block_queue() {
        // A Block-policy queue whose consumer never drains stalls the
        // producing worker; unsubscribe must close the queue *before* its
        // sync barrier, or this test hangs instead of completing.
        let ex = paper_example();
        let mut mgr = SubscriptionManager::new(ex.empty_engine());
        let id = mgr
            .subscribe(query(2, &[0.5, 0.5]), Algorithm::Mttd)
            .unwrap();
        let rx = mgr
            .attach_delivery(
                id,
                crate::delivery::DeliveryConfig::default()
                    .with_capacity(1)
                    .with_policy(crate::delivery::OverflowPolicy::Block),
            )
            .unwrap();
        // Two slides that each change the result: the first delta fills the
        // queue, the second leaves a worker blocked in send().
        for (element, tv) in ex.stream().into_iter().take(2) {
            let end = element.ts;
            mgr.ingest_bucket_async(vec![(element, tv)], end)
                .unwrap()
                .detach();
        }
        assert!(mgr.unsubscribe(id), "must complete despite the stall");
        assert!(rx.is_closed());
        assert!(rx.len() <= 1);
    }

    #[test]
    fn into_engine_shuts_the_pool_down() {
        let ex = paper_example();
        let mut mgr = SubscriptionManager::new(ex.empty_engine());
        mgr.subscribe(query(2, &[0.5, 0.5]), Algorithm::Mttd)
            .unwrap();
        mgr.ingest_stream_async(ex.stream()).unwrap();
        let engine = mgr.into_engine();
        assert!(engine.active_count() > 0);
    }
}
