//! Query-processing algorithms for k-SIR queries.
//!
//! * [`mtts`] — Multi-Topic ThresholdStream (Algorithm 2), `(1/2 − ε)`-approx.
//! * [`mttd`] — Multi-Topic ThresholdDescend (Algorithm 3), `(1 − 1/e − ε)`-approx.
//! * [`celf`] — CELF lazy greedy, the batch baseline, `(1 − 1/e)`-approx.
//! * [`sieve`] — SieveStreaming, the streaming baseline, `(1/2 − ε)`-approx.
//! * [`topk`] — Top-k Representative, the index baseline, `1/k`-approx.
//!
//! All algorithms operate on the same two ingredients the engine hands them:
//! the per-topic ranked lists (for the index-based methods) and a
//! [`crate::evaluator::QueryEvaluator`] for singleton scores and marginal
//! gains.

pub(crate) mod celf;
pub(crate) mod mttd;
pub(crate) mod mtts;
pub(crate) mod sieve;
pub(crate) mod topk;
mod traversal;

use ksir_types::ElementId;

pub(crate) use traversal::SupportCursors;

use crate::evaluator::{QueryEvaluator, SingletonCache};

/// Singleton score `δ(e, x)` through the optional memo: a hit replays the
/// remembered value with no scoring pass, a miss evaluates and remembers.
///
/// The cache can only ever hold values a scoring pass produced for the same
/// window state (see [`SingletonCache`]), so the retrieval order, admission
/// decisions and final scores of a cached run are identical to an uncached
/// one — only `gain_evaluations` shrinks.
pub(crate) fn singleton_score<D: ksir_types::TopicWordDistribution>(
    evaluator: &QueryEvaluator<'_, D>,
    cache: &mut Option<&mut SingletonCache>,
    id: ElementId,
) -> f64 {
    match cache {
        Some(memo) => {
            let score = if let Some(score) = memo.get(id) {
                memo.note_hit();
                score
            } else {
                memo.note_miss();
                let score = evaluator.delta(id);
                memo.remember(id, score);
                score
            };
            memo.consult(id);
            score
        }
        None => evaluator.delta(id),
    }
}

/// A `(score, element)` pair with a total order (descending by score in a
/// max-heap, ties broken by element id for determinism).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct ScoredElement {
    pub score: f64,
    pub id: ElementId,
}

impl Eq for ScoredElement {}

impl PartialOrd for ScoredElement {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ScoredElement {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.score
            .total_cmp(&other.score)
            .then_with(|| other.id.cmp(&self.id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BinaryHeap;

    #[test]
    fn scored_element_orders_by_score_then_id() {
        let mut heap = BinaryHeap::new();
        heap.push(ScoredElement {
            score: 0.2,
            id: ElementId(1),
        });
        heap.push(ScoredElement {
            score: 0.9,
            id: ElementId(2),
        });
        heap.push(ScoredElement {
            score: 0.9,
            id: ElementId(1),
        });
        assert_eq!(heap.pop().unwrap().id, ElementId(1));
        assert_eq!(heap.pop().unwrap().id, ElementId(2));
        assert_eq!(heap.pop().unwrap().id, ElementId(1));
    }
}
