//! Standing-query maintenance scenario shared by the `continuous*` benches
//! and the CI perf gate (`perf_gate`).
//!
//! The workload the `ksir-continuous` subsystem exists for: a Twitter-shaped
//! stream replayed bucket by bucket while a panel of standing queries must be
//! kept current.  Three maintenance strategies are measured over the *same*
//! pre-generated stream from a fresh engine each run, so timing differences
//! are exactly the maintenance saving:
//!
//! * [`MaintenanceScenario::run_recompute`] — the naive baseline: re-run
//!   every query after every bucket, no delta rules at all.
//! * [`MaintenanceScenario::run_managed`] with
//!   [`ShardConfig::unsharded`](ksir_continuous::ShardConfig::unsharded) —
//!   PR-1's serial delta refresh: one shard, one thread, per-subscription
//!   skip rules.
//! * [`MaintenanceScenario::run_managed`] with the default config — the
//!   sharded path: topic-keyed shards scheduled by projected touch filters,
//!   refreshed on the long-lived worker pool.
//!
//! [`MaintenanceScenario::run_async`] additionally covers the asynchronous
//! pipeline: `pipeline_depth = 1` is the quiesce-before-write barrier,
//! depth ≥ 2 the snapshot-backed pipelined mode whose ingest-to-ingest
//! interval the CI perf gate tracks.

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ksir_continuous::{
    DeliveryConfig, ManagerStats, OverflowPolicy, ShardConfig, ShardStats, SnapshotStats,
    SubscriptionManager,
};
use ksir_core::{
    Algorithm, EngineConfig, KsirEngine, KsirQuery, QuerySource, ScoringConfig, SingletonCache,
};
use ksir_datagen::{DatasetProfile, GeneratedStream, StreamGenerator};
use ksir_obs::{ObsConfig, ObsServer};
use ksir_stream::WindowConfig;
use ksir_types::{DenseTopicWordTable, QueryVector};

/// A pre-generated stream plus the standing-query panel to maintain over it.
#[derive(Debug)]
pub struct MaintenanceScenario {
    /// The element stream, replayed identically by every strategy.
    pub stream: GeneratedStream,
    /// The standing queries and their algorithms.
    pub queries: Vec<(KsirQuery, Algorithm)>,
    window: WindowConfig,
    scoring: ScoringConfig,
}

/// Timing and work counters of one maintenance run.
#[derive(Debug, Clone)]
pub struct MaintenanceRun {
    /// Wall-clock time for the full replay (ingestion + refreshes).
    pub elapsed: Duration,
    /// Slide/refresh/skip counters (recompute runs report all-refresh).
    pub stats: ManagerStats,
    /// Per-shard counters (empty for the recompute baseline).
    pub shard_stats: Vec<ShardStats>,
}

impl MaintenanceRun {
    /// Fraction of slide-time evaluations the delta rules skipped.
    pub fn skip_ratio(&self) -> f64 {
        let total = self.stats.refreshes + self.stats.skips;
        if total == 0 {
            0.0
        } else {
            self.stats.skips as f64 / total as f64
        }
    }

    /// Maintained subscription-slides per second of wall time.
    pub fn throughput(&self) -> f64 {
        let evaluations = self.stats.refreshes + self.stats.skips;
        if self.elapsed.is_zero() {
            0.0
        } else {
            evaluations as f64 / self.elapsed.as_secs_f64()
        }
    }
}

/// Timing and work counters of one asynchronous (pipelined) maintenance run.
#[derive(Debug, Clone)]
pub struct AsyncMaintenanceRun {
    /// Total time spent inside `ingest_bucket_async` — the latency the
    /// ingestion path actually observes, excluding all refresh/delivery work
    /// that runs behind it.
    pub ingest_return: Duration,
    /// Worst single-bucket ingest-return latency.
    pub max_ingest_return: Duration,
    /// Wall time of the ingestion loop alone (first ingest started → last
    /// ingest returned), i.e. `slides ×` the mean **ingest-to-ingest
    /// interval** under refresh load.  Unlike `ingest_return` this includes
    /// the pipeline-admission waits, so it is the number the epoch overlap
    /// actually improves: with `pipeline_depth = 1` every interval contains
    /// the previous slide's full refresh compute, with depth ≥ 2 it does
    /// not.
    pub ingest_span: Duration,
    /// Full wall time of the replay, including the final sync barrier and
    /// the consumer thread's drain.
    pub elapsed: Duration,
    /// Slide/refresh/skip counters after the final sync (decision-identical
    /// to the synchronous paths).
    pub stats: ManagerStats,
    /// Per-shard counters after the final sync.
    pub shard_stats: Vec<ShardStats>,
    /// Snapshot-capture counters after the final sync.
    pub snapshots: SnapshotStats,
    /// Copy-on-write clones the writer paid for live snapshots (window +
    /// topic vectors + ranked lists).
    pub cow_clones: usize,
    /// Deltas the consumer thread drained.
    pub delivered: u64,
    /// Deltas shed by the bounded queues' overflow policy.
    pub dropped: u64,
}

impl AsyncMaintenanceRun {
    /// Fraction of slide-time evaluations the delta rules skipped.
    pub fn skip_ratio(&self) -> f64 {
        let total = self.stats.refreshes + self.stats.skips;
        if total == 0 {
            0.0
        } else {
            self.stats.skips as f64 / total as f64
        }
    }

    /// Mean ingest-to-ingest interval under refresh load.
    pub fn ingest_interval(&self) -> Duration {
        if self.stats.slides == 0 {
            Duration::ZERO
        } else {
            self.ingest_span / self.stats.slides as u32
        }
    }
}

/// Timing and work counters of one refresh-cost probe
/// ([`MaintenanceScenario::run_refresh_probe`]): pure query-evaluation time,
/// with ingestion excluded.
#[derive(Debug, Clone)]
pub struct RefreshProbe {
    /// Time spent inside the query evaluations only.
    pub query_time: Duration,
    /// Query evaluations performed (`slides × subscriptions`).
    pub refreshes: usize,
    /// Total scoring passes across all evaluations — deterministic, so the
    /// structural saving of memoisation can be asserted exactly, independent
    /// of timer noise.
    pub gain_evaluations: usize,
}

impl RefreshProbe {
    /// Mean evaluation cost per refresh.
    pub fn per_refresh(&self) -> Duration {
        if self.refreshes == 0 {
            Duration::ZERO
        } else {
            self.query_time / self.refreshes as u32
        }
    }

    /// Mean scoring passes per refresh — the deterministic cost measure the
    /// CI refresh gate compares, immune to host timer noise.
    pub fn passes_per_refresh(&self) -> f64 {
        if self.refreshes == 0 {
            0.0
        } else {
            self.gain_evaluations as f64 / self.refreshes as f64
        }
    }
}

/// Work counters of one shared-plans probe run
/// ([`MaintenanceScenario::run_shared_probe`]): the same managed replay as
/// [`MaintenanceScenario::run_managed`], with the scoring-pass total and the
/// cluster counters the `per_subscription` CI gate compares between the
/// clustered (`shared_plans = true`) and per-subscription paths.
#[derive(Debug, Clone)]
pub struct SharedPlansRun {
    /// Wall-clock time for the full replay (ingestion + refreshes).
    pub elapsed: Duration,
    /// Slide/refresh/skip counters — pinned identical between the
    /// `shared_plans` on and off runs.
    pub stats: ManagerStats,
    /// Per-shard counters; the cluster totals
    /// ([`ShardStats::covering_evaluations`] /
    /// [`ShardStats::shared_refreshes`]) live here.
    pub shard_stats: Vec<ShardStats>,
    /// Total scoring passes across every refresh (the
    /// `refresh.gain_evaluations` telemetry counter) — deterministic, so the
    /// structural saving of plan sharing can be asserted exactly,
    /// independent of timer noise.
    pub gain_evaluations: u64,
    /// Standing queries maintained over the replay.
    pub subscriptions: usize,
}

impl SharedPlansRun {
    /// Covering traversals performed across all shards (0 with
    /// `shared_plans` off).
    pub fn covering_evaluations(&self) -> usize {
        self.shard_stats
            .iter()
            .map(|s| s.covering_evaluations)
            .sum()
    }

    /// Refreshes served from a same-`k` covering run without their own
    /// traversal (0 with `shared_plans` off).
    pub fn shared_refreshes(&self) -> usize {
        self.shard_stats.iter().map(|s| s.shared_refreshes).sum()
    }

    /// Mean scoring passes per maintained subscription over the whole
    /// replay — the deterministic measure the `per_subscription` CI gate
    /// compares.  Both runs replay the same slides, so normalising by the
    /// population alone preserves the clustered/unclustered ratio.
    pub fn passes_per_subscription(&self) -> f64 {
        if self.subscriptions == 0 {
            0.0
        } else {
            self.gain_evaluations as f64 / self.subscriptions as f64
        }
    }
}

impl MaintenanceScenario {
    /// The standard workload: a ~10k-element / 50-topic Twitter-shaped
    /// stream, a 6-hour window with 15-minute buckets, and 16 narrow
    /// standing queries (1–2 support topics each — users follow a handful of
    /// topics, not all fifty), alternating MTTD and MTTS.
    pub fn standard() -> Self {
        Self::sized(1.67, 16)
    }

    /// A scaled-down variant for smoke tests.
    pub fn smoke() -> Self {
        Self::sized(0.1, 8)
    }

    /// The shared-plans workload at full scale: 100 000 standing queries
    /// over a small stream — the population, not the stream, is the load.
    /// See [`MaintenanceScenario::zipf_population`].
    pub fn shared_standard() -> Self {
        Self::zipf_population(100_000)
    }

    /// A scaled-down shared-plans population for smoke runs and unit tests.
    pub fn shared_smoke() -> Self {
        Self::zipf_population(2_000)
    }

    /// A population of `num_subscriptions` standing queries drawn from a
    /// fixed pool of 48 **plan templates** (query vector + algorithm) with
    /// Zipf(1) popularity — the subscriber-heavy regime shared evaluation
    /// plans exist for: many users follow the same trending topic mixes and
    /// differ only in how many representatives they ask for (`k` cycles
    /// through 2/4/6/8 by registration order).
    ///
    /// Templates use only the index-traversal algorithms (MTTS, MTTD,
    /// top-k representative): the whole-window baselines would make the
    /// unclustered control run quadratic in the population, and they carry
    /// no singleton memo to share anyway.  Sampling uses a fixed-seed LCG,
    /// so the population — and with it every scoring-pass count — is
    /// deterministic across runs and hosts.
    pub fn zipf_population(num_subscriptions: usize) -> Self {
        const TEMPLATES: usize = 48;
        let profile = DatasetProfile::twitter().scaled(0.05).with_topics(50);
        let stream = StreamGenerator::new(profile, 4242)
            .unwrap()
            .generate()
            .unwrap();
        let num_topics = stream.planted.num_topics();
        let templates: Vec<(QueryVector, Algorithm)> = (0..TEMPLATES)
            .map(|t| {
                let mut weights = vec![0.0; num_topics];
                // Distinct 2-topic mixes: the `t / 25` nudge keeps the
                // second topic from colliding when `2t` wraps mod 50.
                weights[(2 * t) % num_topics] = 0.7;
                weights[(2 * t + 7 + t / 25) % num_topics] = 0.3;
                let algorithm = match t % 3 {
                    0 => Algorithm::Mtts,
                    1 => Algorithm::Mttd,
                    _ => Algorithm::TopkRepresentative,
                };
                (QueryVector::new(weights).unwrap(), algorithm)
            })
            .collect();
        // Zipf(1) popularity over template ranks: cumulative weights once,
        // then one LCG draw + binary search per subscription.
        let mut cumulative = Vec::with_capacity(TEMPLATES);
        let mut total = 0.0;
        for rank in 0..TEMPLATES {
            total += 1.0 / (rank + 1) as f64;
            cumulative.push(total);
        }
        let mut state: u64 = 0x243F_6A88_85A3_08D3;
        let queries = (0..num_subscriptions)
            .map(|i| {
                state = state
                    .wrapping_mul(6_364_136_223_846_793_005)
                    .wrapping_add(1_442_695_040_888_963_407);
                let u = (state >> 11) as f64 / (1u64 << 53) as f64 * total;
                let rank = cumulative.partition_point(|c| *c < u).min(TEMPLATES - 1);
                let (vector, algorithm) = &templates[rank];
                let query = KsirQuery::new(2 + 2 * (i % 4), vector.clone()).unwrap();
                (query, *algorithm)
            })
            .collect();
        MaintenanceScenario {
            stream,
            queries,
            window: WindowConfig::new(6 * 60, 15).unwrap(),
            scoring: ScoringConfig::new(0.5, 1.0).unwrap(),
        }
    }

    fn sized(scale: f64, num_subscriptions: usize) -> Self {
        let profile = DatasetProfile::twitter().scaled(scale).with_topics(50);
        let stream = StreamGenerator::new(profile, 4242)
            .unwrap()
            .generate()
            .unwrap();
        let num_topics = stream.planted.num_topics();
        let queries = (0..num_subscriptions)
            .map(|i| {
                let mut weights = vec![0.0; num_topics];
                weights[(3 * i) % num_topics] = 0.8;
                weights[(3 * i + 1) % num_topics] = 0.2;
                let query = KsirQuery::new(10, QueryVector::new(weights).unwrap()).unwrap();
                let algorithm = if i % 2 == 0 {
                    Algorithm::Mttd
                } else {
                    Algorithm::Mtts
                };
                (query, algorithm)
            })
            .collect();
        MaintenanceScenario {
            stream,
            queries,
            window: WindowConfig::new(6 * 60, 15).unwrap(),
            scoring: ScoringConfig::new(0.5, 1.0).unwrap(),
        }
    }

    /// A fresh, empty engine over the scenario's planted topic model.
    pub fn engine(&self) -> KsirEngine<DenseTopicWordTable> {
        KsirEngine::new(
            self.stream.planted.phi().clone(),
            EngineConfig::new(self.window, self.scoring),
        )
        .unwrap()
    }

    /// Replays the stream through a [`SubscriptionManager`] under `config`.
    pub fn run_managed(&self, config: ShardConfig) -> MaintenanceRun {
        let started = Instant::now();
        let mut mgr = SubscriptionManager::with_shard_config(self.engine(), config);
        for (query, algorithm) in &self.queries {
            mgr.subscribe(query.clone(), *algorithm).unwrap();
        }
        let outcomes = mgr.ingest_stream(self.stream.iter_pairs()).unwrap();
        std::hint::black_box(outcomes.len());
        MaintenanceRun {
            elapsed: started.elapsed(),
            stats: mgr.stats(),
            shard_stats: mgr.shard_stats(),
        }
    }

    /// Replays the stream through a [`SubscriptionManager`] with the
    /// clustered evaluation path toggled by `shared_plans`, and additionally
    /// reads the `refresh.gain_evaluations` telemetry counter — the
    /// deterministic scoring-pass total the `per_subscription` CI gate
    /// divides by the population.  Decisions must be identical either way
    /// (pinned by the `shared_plans` property tests and re-asserted by the
    /// gate); only the cost differs.
    pub fn run_shared_probe(&self, shared_plans: bool) -> SharedPlansRun {
        let started = Instant::now();
        let mut mgr = SubscriptionManager::with_shard_config(
            self.engine(),
            ShardConfig::default().with_shared_plans(shared_plans),
        );
        for (query, algorithm) in &self.queries {
            mgr.subscribe(query.clone(), *algorithm).unwrap();
        }
        let outcomes = mgr.ingest_stream(self.stream.iter_pairs()).unwrap();
        std::hint::black_box(outcomes.len());
        let gain_evaluations = mgr
            .telemetry()
            .registry()
            .counter("refresh.gain_evaluations")
            .get();
        SharedPlansRun {
            elapsed: started.elapsed(),
            stats: mgr.stats(),
            shard_stats: mgr.shard_stats(),
            gain_evaluations,
            subscriptions: self.queries.len(),
        }
    }

    /// Replays the stream through the **asynchronous** pipeline
    /// ([`SubscriptionManager::ingest_bucket_async`]): every subscription
    /// gets a bounded delivery queue, a dedicated consumer thread drains all
    /// of them spending `consumer_delay` of simulated work per delta, and
    /// each bucket's **ingest-return latency** — the time until
    /// `ingest_bucket_async` hands control back — is measured separately
    /// from the run's total wall time.
    ///
    /// The slow-subscriber mode (`consumer_delay > 0`) is the scenario the
    /// pipeline exists for: under the `DropOldest` overflow policy the
    /// consumer sheds its own backlog instead of back-pressuring the
    /// workers, so ingest-return latency must be independent of the delay —
    /// which is exactly what the CI perf gate checks.
    pub fn run_async(&self, config: ShardConfig, consumer_delay: Duration) -> AsyncMaintenanceRun {
        self.run_async_impl(config, consumer_delay, false)
    }

    /// [`MaintenanceScenario::run_async`] (fast consumer) with a live
    /// `ksir-obs` introspection server attached to the manager's telemetry
    /// and a scraper thread polling `GET /metrics` / `GET /metrics.json`
    /// (alternating, 100 Hz) over real TCP for the whole replay — the `obs`
    /// CI gate's measured side.  The scrape cadence is still three orders
    /// of magnitude hotter than any real Prometheus interval, so the gate
    /// bounds a worst case: rendering the registry must not contend with
    /// the ingest hot path.
    pub fn run_obs_probe(&self, config: ShardConfig) -> AsyncMaintenanceRun {
        self.run_async_impl(config, Duration::ZERO, true)
    }

    fn run_async_impl(
        &self,
        config: ShardConfig,
        consumer_delay: Duration,
        observed: bool,
    ) -> AsyncMaintenanceRun {
        let started = Instant::now();
        let mut mgr = SubscriptionManager::with_shard_config(self.engine(), config);
        let mut receivers = Vec::new();
        for (query, algorithm) in &self.queries {
            let id = mgr.subscribe(query.clone(), *algorithm).unwrap();
            let rx = mgr
                .attach_delivery(
                    id,
                    DeliveryConfig::default()
                        .with_capacity(64)
                        .with_policy(OverflowPolicy::DropOldest),
                )
                .expect("subscription just registered");
            receivers.push(rx);
        }

        // The consumer: drains every queue, charging `consumer_delay` per
        // delta; parks briefly on idle passes so it does not busy-steal CPU
        // from the refresh workers.
        let stop = Arc::new(AtomicBool::new(false));
        let consumer = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut delivered = 0u64;
                loop {
                    let mut drained_any = false;
                    for rx in &receivers {
                        while rx.try_recv().is_some() {
                            delivered += 1;
                            drained_any = true;
                            if !consumer_delay.is_zero() {
                                std::thread::sleep(consumer_delay);
                            }
                        }
                    }
                    if !drained_any {
                        if stop.load(Ordering::Acquire) {
                            break;
                        }
                        std::thread::sleep(Duration::from_micros(100));
                    }
                }
                (delivered, receivers)
            })
        };

        // The obs probe: server + scraper live for the whole timed replay.
        let obs = observed.then(|| {
            let server = ObsServer::spawn(Arc::clone(mgr.telemetry()), ObsConfig::default())
                .expect("bind obs server on an ephemeral port");
            let addr = server.local_addr();
            let stop = Arc::new(AtomicBool::new(false));
            let scraper = {
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut scrapes = 0u64;
                    // 100 Hz, alternating the two renderings — three orders
                    // of magnitude hotter than a real Prometheus interval,
                    // but one render at a time: the gate bounds scrape
                    // *contention*, not a render-saturated core.
                    for round in 0u64.. {
                        if stop.load(Ordering::Acquire) {
                            break;
                        }
                        let path = if round % 2 == 0 {
                            "/metrics"
                        } else {
                            "/metrics.json"
                        };
                        if http_scrape(addr, path).is_ok() {
                            scrapes += 1;
                        }
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    scrapes
                })
            };
            (server, stop, scraper)
        });

        let mut ingest_return = Duration::ZERO;
        let mut max_ingest_return = Duration::ZERO;
        let bucket_len = self.window.bucket_len();
        let start_ts = mgr.engine().now();
        let loop_started = Instant::now();
        ksir_stream::for_each_bucket(
            bucket_len,
            start_ts,
            self.stream.iter_pairs(),
            |bucket, end| {
                let t0 = Instant::now();
                mgr.ingest_bucket_async(bucket, end)?.detach();
                let dt = t0.elapsed();
                ingest_return += dt;
                max_ingest_return = max_ingest_return.max(dt);
                Ok(())
            },
        )
        .unwrap();
        let ingest_span = loop_started.elapsed();
        mgr.sync();
        if let Some((server, obs_stop, scraper)) = obs {
            obs_stop.store(true, Ordering::Release);
            let scrapes = scraper.join().expect("scraper thread panicked");
            assert!(scrapes > 0, "obs probe never completed a scrape");
            server.shutdown();
        }
        stop.store(true, Ordering::Release);
        let (delivered, receivers) = consumer.join().expect("consumer thread panicked");
        let dropped = receivers.iter().map(|rx| rx.dropped()).sum();
        let engine_stats = mgr.engine().stats();
        let cow_clones = engine_stats.window_cow_clones
            + engine_stats.topic_vector_cow_clones
            + engine_stats.ranked_cow_clones;

        AsyncMaintenanceRun {
            ingest_return,
            max_ingest_return,
            ingest_span,
            elapsed: started.elapsed(),
            stats: mgr.stats(),
            shard_stats: mgr.shard_stats(),
            snapshots: mgr.snapshot_stats(),
            cow_clones,
            delivered,
            dropped,
        }
    }

    /// Replays the clean in-order stream through the ingest front ends the
    /// `reorder` CI gate compares: with `horizon == 0`, straight through
    /// [`SubscriptionManager::ingest_bucket_async`] (no reorder buffer —
    /// the baseline); with `horizon > 0`, through
    /// [`SubscriptionManager::ingest_bucket_reordered`] under that horizon,
    /// so every bucket is staged in the buffer before release.  On an
    /// in-order stream the buffer is pure overhead — it re-sequences
    /// nothing and sheds nothing (asserted by the gate via
    /// [`ManagerStats`]) — so the elapsed difference is exactly the cost of
    /// carrying the resilience front end on a healthy stream.
    pub fn run_reorder_probe(&self, horizon: usize) -> MaintenanceRun {
        let started = Instant::now();
        let config = ShardConfig::default().with_reorder_horizon(horizon);
        let mut mgr = SubscriptionManager::with_shard_config(self.engine(), config);
        for (query, algorithm) in &self.queries {
            mgr.subscribe(query.clone(), *algorithm).unwrap();
        }
        let bucket_len = self.window.bucket_len();
        let start_ts = mgr.engine().now();
        ksir_stream::for_each_bucket(
            bucket_len,
            start_ts,
            self.stream.iter_pairs(),
            |bucket, end| {
                if horizon > 0 {
                    for ticket in mgr.ingest_bucket_reordered(bucket, end)? {
                        ticket.detach();
                    }
                } else {
                    mgr.ingest_bucket_async(bucket, end)?.detach();
                }
                Ok(())
            },
        )
        .unwrap();
        for ticket in mgr.flush_reorder_buffer().unwrap() {
            ticket.detach();
        }
        mgr.sync();
        MaintenanceRun {
            elapsed: started.elapsed(),
            stats: mgr.stats(),
            shard_stats: mgr.shard_stats(),
        }
    }

    /// Replays the stream on a bare engine, re-running **every** standing
    /// query after **every** bucket, and times only the query evaluations —
    /// ingestion and slide maintenance are excluded from `query_time`.
    ///
    /// With `delta_restricted` the index-based queries run through
    /// [`QuerySource::query_delta`] against retained singleton caches primed
    /// from each slide's delta (the evaluation a `refresh.mode = delta`
    /// refresh performs); without it every query runs from scratch (a
    /// `refresh.mode = full` refresh).  Decisions are identical either way
    /// (pinned by the core property tests), so the timing difference is
    /// exactly the memoisation saving per disturbed subscription — the
    /// number the CI `refresh` perf gate tracks.
    pub fn run_refresh_probe(&self, delta_restricted: bool) -> RefreshProbe {
        let mut engine = self.engine();
        let bucket_len = self.window.bucket_len();
        // One retained cache per memoised subscription, as the manager keeps
        // them; the frontier-less baselines would carry none.
        let mut caches: Vec<Option<SingletonCache>> = self
            .queries
            .iter()
            .map(|(_, algorithm)| match algorithm {
                Algorithm::Mtts | Algorithm::Mttd | Algorithm::TopkRepresentative => {
                    Some(SingletonCache::new())
                }
                Algorithm::Celf | Algorithm::SieveStreaming => None,
            })
            .collect();
        let mut query_time = Duration::ZERO;
        let mut refreshes = 0usize;
        let mut gain_evaluations = 0usize;
        ksir_stream::for_each_bucket(
            bucket_len,
            engine.now(),
            self.stream.iter_pairs(),
            |bucket, end| {
                let report = engine.ingest_bucket(bucket, end)?;
                let t0 = Instant::now();
                for ((query, algorithm), cache) in self.queries.iter().zip(&mut caches) {
                    let result = match (delta_restricted, cache) {
                        (true, Some(cache)) => {
                            engine.query_delta(query, *algorithm, &report.delta, cache)?
                        }
                        _ => engine.query(query, *algorithm)?,
                    };
                    refreshes += 1;
                    gain_evaluations += result.gain_evaluations;
                    std::hint::black_box(result.len());
                }
                query_time += t0.elapsed();
                Ok(())
            },
        )
        .unwrap();
        RefreshProbe {
            query_time,
            refreshes,
            gain_evaluations,
        }
    }

    /// Replays the stream re-running every query after every bucket — the
    /// baseline with no delta rules.
    pub fn run_recompute(&self) -> MaintenanceRun {
        let started = Instant::now();
        let mut engine = self.engine();
        let bucket_len = engine.config().window.bucket_len();
        let mut slides = 0usize;
        let mut total_results = 0usize;
        ksir_stream::for_each_bucket(
            bucket_len,
            engine.now(),
            self.stream.iter_pairs(),
            |bucket, end| {
                engine.ingest_bucket(bucket, end)?;
                slides += 1;
                for (query, algorithm) in &self.queries {
                    total_results += engine.query(query, *algorithm)?.len();
                }
                Ok(())
            },
        )
        .unwrap();
        std::hint::black_box(total_results);
        MaintenanceRun {
            elapsed: started.elapsed(),
            stats: ManagerStats {
                slides,
                refreshes: slides * self.queries.len(),
                skips: 0,
                ..Default::default()
            },
            shard_stats: Vec::new(),
        }
    }
}

/// One blocking scrape over a fresh connection; returns the byte count so
/// the scraper can prove the body arrived.
fn http_scrape(addr: SocketAddr, path: &str) -> std::io::Result<usize> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    write!(stream, "GET {path} HTTP/1.1\r\nHost: obs\r\n\r\n")?;
    let mut body = String::new();
    stream.read_to_string(&mut body)?;
    Ok(body.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_scenario_strategies_agree_on_work_accounting() {
        let scenario = MaintenanceScenario::smoke();
        let recompute = scenario.run_recompute();
        let serial = scenario.run_managed(ShardConfig::unsharded());
        let sharded = scenario.run_managed(ShardConfig::default());
        assert_eq!(recompute.stats.slides, serial.stats.slides);
        assert_eq!(serial.stats, sharded.stats, "identical refresh decisions");
        assert_eq!(
            serial.stats.refreshes + serial.stats.skips,
            serial.stats.slides * scenario.queries.len()
        );
        assert!(recompute.skip_ratio() == 0.0);
        assert!(sharded.skip_ratio() >= 0.0);
        assert!(sharded.throughput() > 0.0);
        assert!(!sharded.shard_stats.is_empty());
        assert!(recompute.shard_stats.is_empty());
    }

    #[test]
    fn shared_probe_is_decision_identical_and_saves_scoring_passes() {
        let scenario = MaintenanceScenario::zipf_population(600);
        let clustered = scenario.run_shared_probe(true);
        let baseline = scenario.run_shared_probe(false);
        assert_eq!(
            clustered.stats, baseline.stats,
            "plan clustering must change no refresh decision"
        );
        assert_eq!(clustered.subscriptions, 600);
        assert_eq!(clustered.subscriptions, baseline.subscriptions);
        assert!(clustered.covering_evaluations() > 0);
        assert!(clustered.shared_refreshes() > 0, "templates must overlap");
        assert_eq!(baseline.covering_evaluations(), 0);
        assert_eq!(baseline.shared_refreshes(), 0);
        // The point of the clustered path: strictly fewer scoring passes
        // for identical decisions.  The full 5× margin is asserted by the
        // CI gate on the 100k population; at this size the overlap is
        // thinner, so pin a conservative 2×.
        assert!(
            clustered.passes_per_subscription() * 2.0 <= baseline.passes_per_subscription(),
            "clustered {} vs baseline {} passes/subscription",
            clustered.passes_per_subscription(),
            baseline.passes_per_subscription(),
        );
    }

    #[test]
    fn ratio_helpers_are_zero_not_nan_on_empty_runs() {
        // Regression pins: every ratio over a zero-decision run must be
        // exactly 0.0, never NaN (a NaN here poisons downstream JSON and
        // dashboard math silently).
        let empty = MaintenanceRun {
            elapsed: Duration::ZERO,
            stats: ManagerStats::default(),
            shard_stats: Vec::new(),
        };
        assert_eq!(empty.skip_ratio(), 0.0);
        assert_eq!(empty.throughput(), 0.0);
        let probe = RefreshProbe {
            query_time: Duration::ZERO,
            refreshes: 0,
            gain_evaluations: 0,
        };
        assert_eq!(probe.per_refresh(), Duration::ZERO);
        assert_eq!(probe.passes_per_refresh(), 0.0);
        let shared = SharedPlansRun {
            elapsed: Duration::ZERO,
            stats: ManagerStats::default(),
            shard_stats: Vec::new(),
            gain_evaluations: 0,
            subscriptions: 0,
        };
        assert_eq!(shared.passes_per_subscription(), 0.0);
        assert_eq!(shared.covering_evaluations(), 0);
    }

    #[test]
    fn async_run_makes_identical_decisions_and_accounts_for_every_delta() {
        let scenario = MaintenanceScenario::smoke();
        let serial = scenario.run_managed(ShardConfig::unsharded());
        let fast = scenario.run_async(ShardConfig::default(), Duration::ZERO);
        let slow = scenario.run_async(ShardConfig::default(), Duration::from_micros(500));
        let barrier = scenario.run_async(
            ShardConfig::default().with_pipeline_depth(1),
            Duration::ZERO,
        );
        assert_eq!(serial.stats, fast.stats, "async path changes no decision");
        assert_eq!(
            serial.stats, slow.stats,
            "slow consumer changes no decision"
        );
        assert_eq!(
            serial.stats, barrier.stats,
            "pipeline depth changes no decision"
        );
        assert!(fast.ingest_return <= fast.elapsed);
        assert!(fast.max_ingest_return <= fast.ingest_return);
        assert!(fast.ingest_return <= fast.ingest_span);
        assert!(fast.ingest_interval() > Duration::ZERO);
        assert!(fast.delivered > 0, "result changes must be delivered");
        // The pipelined runs evaluate on snapshots (scheduled epochs capture
        // one image each).
        assert!(fast.snapshots.epochs_captured > 0);
        assert!(fast.snapshots.shard_snapshots >= fast.snapshots.epochs_captured);
        // A fast consumer over ample time sheds little; either way every
        // delta is accounted for as delivered or dropped.
        assert!(fast.delivered + fast.dropped == slow.delivered + slow.dropped);
        assert!(!fast.shard_stats.is_empty());
    }

    #[test]
    fn obs_probe_scrapes_without_changing_decisions() {
        let scenario = MaintenanceScenario::smoke();
        let serial = scenario.run_managed(ShardConfig::unsharded());
        let observed = scenario.run_obs_probe(ShardConfig::default());
        assert_eq!(
            serial.stats, observed.stats,
            "a live scraper must not change any refresh decision"
        );
        assert!(observed.delivered > 0);
        assert!(observed.ingest_interval() > Duration::ZERO);
    }
}
