//! Deterministic randomness helpers.
//!
//! Every stochastic component in the workspace (topic-model training, data
//! generation, query workload sampling) takes an explicit seed and routes all
//! randomness through [`seeded_rng`], so experiments are reproducible
//! bit-for-bit across runs and machines.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Creates a [`StdRng`] from a 64-bit seed.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derives a child seed from a parent seed and a stream label.
///
/// This lets a single experiment seed fan out into independent streams
/// (e.g. "vocabulary", "timestamps", "references") without the streams being
/// correlated and without threading many seeds through APIs.
pub fn derive_seed(parent: u64, label: &str) -> u64 {
    // FNV-1a over the label, mixed with the parent seed.  Not cryptographic —
    // just a stable, dependency-free way to decorrelate streams.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ parent.rotate_left(17);
    for b in label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h ^ parent
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = seeded_rng(42);
        let mut b = seeded_rng(42);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = seeded_rng(1);
        let mut b = seeded_rng(2);
        let va: Vec<u64> = (0..4).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..4).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn derive_seed_is_stable_and_label_sensitive() {
        assert_eq!(derive_seed(7, "vocab"), derive_seed(7, "vocab"));
        assert_ne!(derive_seed(7, "vocab"), derive_seed(7, "refs"));
        assert_ne!(derive_seed(7, "vocab"), derive_seed(8, "vocab"));
    }
}
