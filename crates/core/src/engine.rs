//! The k-SIR query engine: active window + per-topic ranked lists
//! (Algorithm 1) + query processing (Algorithms 2 and 3 and the baselines).
//!
//! The engine mirrors Figure 4 of the paper: the stream is ingested in
//! buckets; each bucket insert updates the active window, the reverse
//! references and the per-topic ranked lists; ad-hoc k-SIR queries are then
//! answered from the ranked lists without touching the raw stream.

use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use ksir_stream::{ActiveWindow, RankedLists, WindowDelta};
use ksir_types::{
    ElementId, KsirError, QueryVector, Result, SocialElement, Timestamp, TopicId, TopicVector,
    TopicWordDistribution,
};

use crate::config::{ArchiveRetention, EngineConfig};
use crate::evaluator::QueryEvaluator;
use crate::query::{Algorithm, KsirQuery, QueryResult};
use crate::scorer::Scorer;
use crate::view::{self, QuerySource};

/// Counters describing the work an engine has performed so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Elements ingested over the engine's lifetime.
    pub elements_ingested: usize,
    /// Buckets ingested.
    pub buckets_ingested: usize,
    /// Elements that expired out of the active window.
    pub elements_expired: usize,
    /// Ranked-list tuple recomputations (inserts and adjustments).
    pub tuple_updates: usize,
    /// Window mutations that deep-cloned the active window because an epoch
    /// snapshot was still reading it (copy-on-write; zero without snapshots).
    pub window_cow_clones: usize,
    /// Topic-vector-map mutations that deep-cloned the map for the same
    /// reason.
    pub topic_vector_cow_clones: usize,
    /// Ranked-list mutations that deep-cloned a list for the same reason.
    /// Maintained by the lists themselves and filled in by
    /// [`KsirEngine::stats`] at read time — the engine's stored stats field
    /// keeps this at zero, so never read it off internal state directly.
    pub ranked_cow_clones: usize,
    /// Ad-hoc queries served through [`KsirEngine::query`] (all algorithms).
    /// Like `ranked_cow_clones`, filled in at read time from an atomic
    /// counter — `query` takes `&self` and may run from many refresh workers
    /// at once.
    pub queries_served: usize,
}

/// Summary of one [`KsirEngine::ingest_bucket`] call.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IngestReport {
    /// Elements inserted from the bucket.
    pub inserted: usize,
    /// Elements discarded because they are no longer active.
    pub expired: usize,
    /// Previously ingested elements whose ranked-list tuples were refreshed
    /// (referenced parents and elements whose influence sets shrank).
    pub refreshed: usize,
    /// Previously expired elements brought back into the active set because a
    /// bucket element references them.
    pub resurrected: usize,
    /// Everything the slide changed — element churn plus per-topic
    /// ranked-list touch depths — for incremental consumers such as the
    /// standing-query manager in `ksir-continuous`.
    pub delta: WindowDelta,
}

/// The k-SIR engine over a fixed topic-word distribution.
///
/// `D` is any [`TopicWordDistribution`] — a hand-specified table, a trained
/// LDA/BTM model from `ksir-topics`, or an `Arc` of either.  Per-element topic
/// distributions are supplied alongside the elements at ingest time (the
/// paper treats topic inference as an orthogonal, standard step).
#[derive(Debug)]
pub struct KsirEngine<D> {
    /// `Arc`-held so epoch snapshots can share it without cloning the table.
    phi: Arc<D>,
    config: EngineConfig,
    /// `Arc`-held with copy-on-write mutation: an epoch snapshot clones the
    /// handle in `O(1)`, and the next mutating slide pays a deep clone only
    /// if such a snapshot is still alive (counted in
    /// [`EngineStats::window_cow_clones`]).
    window: Arc<ActiveWindow>,
    ranked: RankedLists,
    /// Same copy-on-write scheme as the window.
    topic_vectors: Arc<HashMap<ElementId, TopicVector>>,
    /// Every ingested element (subject to the retention policy), kept so that
    /// references from new arrivals can bring expired parents back into the
    /// active set, as required by the paper's definition of `A_t`.
    archive: HashMap<ElementId, (SocialElement, TopicVector)>,
    stats: EngineStats,
    /// Queries served; atomic because [`KsirEngine::query`] takes `&self`.
    queries: AtomicUsize,
}

impl<D: TopicWordDistribution> KsirEngine<D> {
    /// Creates an engine over a topic-word distribution.
    pub fn new(phi: D, config: EngineConfig) -> Result<Self> {
        config.validate()?;
        let num_topics = phi.num_topics();
        if num_topics == 0 {
            return Err(KsirError::invalid_parameter(
                "phi",
                "the topic model must have at least one topic",
            ));
        }
        Ok(KsirEngine {
            phi: Arc::new(phi),
            window: Arc::new(ActiveWindow::new(config.window)),
            ranked: RankedLists::new(num_topics),
            topic_vectors: Arc::new(HashMap::new()),
            archive: HashMap::new(),
            stats: EngineStats::default(),
            queries: AtomicUsize::new(0),
            config,
        })
    }

    /// Mutable access to the active window, deep-cloning it first iff an
    /// epoch snapshot still shares it (copy-on-write).
    fn window_mut(&mut self) -> &mut ActiveWindow {
        if Arc::strong_count(&self.window) > 1 {
            self.stats.window_cow_clones += 1;
        }
        Arc::make_mut(&mut self.window)
    }

    /// Mutable access to the topic-vector map, same copy-on-write scheme as
    /// [`KsirEngine::window_mut`].
    fn topic_vectors_mut(&mut self) -> &mut HashMap<ElementId, TopicVector> {
        if Arc::strong_count(&self.topic_vectors) > 1 {
            self.stats.topic_vector_cow_clones += 1;
        }
        Arc::make_mut(&mut self.topic_vectors)
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Number of topics `z` of the underlying topic model.
    pub fn num_topics(&self) -> usize {
        self.phi.num_topics()
    }

    /// The topic-word distribution in use.
    pub fn phi(&self) -> &D {
        self.phi.as_ref()
    }

    /// A shared handle to the topic-word distribution (immutable for the
    /// engine's lifetime) — `O(1)`, for epoch snapshots.
    pub fn shared_phi(&self) -> Arc<D> {
        Arc::clone(&self.phi)
    }

    /// An `O(1)` immutable image of the active window at this instant.  The
    /// engine's next mutating slide copy-on-writes around it, so the image
    /// stays frozen at the epoch it was taken.
    pub fn shared_window(&self) -> Arc<ActiveWindow> {
        Arc::clone(&self.window)
    }

    /// An `O(1)` immutable image of the per-element topic vectors, frozen
    /// like [`KsirEngine::shared_window`].
    pub fn shared_topic_vectors(&self) -> Arc<HashMap<ElementId, TopicVector>> {
        Arc::clone(&self.topic_vectors)
    }

    /// Current logical time (end of the last ingested bucket).
    pub fn now(&self) -> Timestamp {
        self.window.now()
    }

    /// Number of active elements `n_t`.
    pub fn active_count(&self) -> usize {
        self.window.len()
    }

    /// Returns `true` if `id` is currently active.
    pub fn is_active(&self, id: ElementId) -> bool {
        self.window.contains(id)
    }

    /// The active element for `id`, if any.
    pub fn element(&self, id: ElementId) -> Option<&SocialElement> {
        self.window.get(id)
    }

    /// The (possibly sparsified) topic distribution of an active element.
    pub fn topic_vector(&self, id: ElementId) -> Option<&TopicVector> {
        self.topic_vectors.get(&id)
    }

    /// The full per-element topic-vector map.
    pub fn topic_vectors(&self) -> &HashMap<ElementId, TopicVector> {
        self.topic_vectors.as_ref()
    }

    /// Ids of all active elements, sorted for reproducibility.
    pub fn active_ids(&self) -> Vec<ElementId> {
        let mut ids: Vec<ElementId> = self.window.ids().collect();
        ids.sort_unstable();
        ids
    }

    /// The active window (elements, reverse references, window bounds).
    pub fn window(&self) -> &ActiveWindow {
        self.window.as_ref()
    }

    /// The per-topic ranked lists.
    pub fn ranked_lists(&self) -> &RankedLists {
        &self.ranked
    }

    /// Number of elements currently held in the archive.
    pub fn archived_count(&self) -> usize {
        self.archive.len()
    }

    /// Work counters.  The copy-on-write clone counts are live (they include
    /// every clone snapshot capture has forced so far).
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            ranked_cow_clones: self.ranked.cow_clones(),
            queries_served: self.queries.load(Ordering::Relaxed),
            ..self.stats
        }
    }

    /// A [`Scorer`] over the engine's current state, implementing the §3.2
    /// formulas directly.
    pub fn scorer(&self) -> Scorer<'_, D> {
        Scorer::new(
            self.phi.as_ref(),
            self.config.scoring,
            self.window.as_ref(),
            self.topic_vectors.as_ref(),
        )
    }

    /// Ingests one bucket of elements posted no later than `bucket_end` and
    /// advances the window to `bucket_end` (Algorithm 1).
    ///
    /// Elements must carry their topic distributions; the engine sparsifies
    /// them according to [`EngineConfig`] before storing.  Returns a summary
    /// of the maintenance work performed.
    pub fn ingest_bucket(
        &mut self,
        bucket: Vec<(SocialElement, TopicVector)>,
        bucket_end: Timestamp,
    ) -> Result<IngestReport> {
        if bucket_end < self.window.now() {
            return Err(KsirError::TimestampRegression {
                last: self.window.now(),
                offending: bucket_end,
            });
        }
        for (element, tv) in &bucket {
            if tv.num_topics() != self.num_topics() {
                return Err(KsirError::DimensionMismatch {
                    expected: self.num_topics(),
                    actual: tv.num_topics(),
                });
            }
            if element.ts > bucket_end {
                return Err(KsirError::invalid_parameter(
                    "bucket",
                    format!(
                        "element {} is timestamped {} after the bucket end {}",
                        element.id, element.ts, bucket_end
                    ),
                ));
            }
        }

        // Start the slide's touch log from a clean slate so the report's
        // delta only covers this bucket.
        let slide_from = self.window.now();
        self.ranked.clear_delta();

        // Parents whose influence sets will shrink once the window slides.
        let mut touched: BTreeSet<ElementId> = self
            .window
            .parents_losing_children(bucket_end)
            .into_iter()
            .collect();

        let mut new_ids = Vec::with_capacity(bucket.len());
        let mut resurrected = Vec::new();
        for (element, tv) in bucket {
            let id = element.id;
            // A_t includes every element referenced by a window element, so a
            // reference to an already-expired parent brings it back from the
            // archive before the child is inserted.
            for &parent in &element.refs {
                if !self.window.contains(parent) {
                    if let Some((archived, archived_tv)) = self.archive.get(&parent).cloned() {
                        self.window_mut().insert(archived)?;
                        self.topic_vectors_mut().insert(parent, archived_tv);
                        touched.insert(parent);
                        resurrected.push(parent);
                    }
                }
            }
            let sparsified = self.sparsify(tv);
            if self.config.archive != ArchiveRetention::Disabled {
                self.archive
                    .insert(id, (element.clone(), sparsified.clone()));
            }
            let parents = self.window_mut().insert(element)?;
            touched.extend(parents);
            self.topic_vectors_mut().insert(id, sparsified);
            new_ids.push(id);
        }

        let expired = self.window_mut().advance_to(bucket_end)?;
        for id in &expired {
            self.ranked.remove_everywhere(*id);
            self.topic_vectors_mut().remove(id);
            touched.remove(id);
        }
        self.prune_archive(bucket_end);

        let mut refreshed = Vec::new();
        for &id in new_ids.iter().chain(touched.iter()) {
            if self.window.contains(id) {
                self.refresh_tuples(id);
                if !new_ids.contains(&id) {
                    refreshed.push(id);
                }
            }
        }

        self.stats.elements_ingested += new_ids.len();
        self.stats.buckets_ingested += 1;
        self.stats.elements_expired += expired.len();

        Ok(IngestReport {
            inserted: new_ids.len(),
            expired: expired.len(),
            refreshed: refreshed.len(),
            resurrected: resurrected.len(),
            delta: WindowDelta {
                from: slide_from,
                to: bucket_end,
                activated: new_ids,
                expired,
                resurrected,
                refreshed,
                ranked: self.ranked.take_delta(),
            },
        })
    }

    /// Drops archived elements that fell outside the retention horizon.
    fn prune_archive(&mut self, now: Timestamp) {
        if let ArchiveRetention::Ticks(ticks) = self.config.archive {
            let cutoff = now.saturating_sub(ticks);
            self.archive.retain(|_, (element, _)| element.ts >= cutoff);
        }
    }

    /// Convenience wrapper: ingests a whole timestamp-ordered stream, cutting
    /// it into buckets of the configured length `L` and returning the number
    /// of buckets processed.
    pub fn ingest_stream<I>(&mut self, stream: I) -> Result<usize>
    where
        I: IntoIterator<Item = (SocialElement, TopicVector)>,
    {
        let bucket_len = self.config.window.bucket_len();
        ksir_stream::for_each_bucket(bucket_len, self.window.now(), stream, |bucket, end| {
            self.ingest_bucket(bucket, end).map(|_| ())
        })
    }

    /// Truncates and renormalises a topic distribution according to the
    /// engine's sparsification settings.
    fn sparsify(&self, tv: TopicVector) -> TopicVector {
        let min_prob = self.config.min_topic_prob;
        let max_topics = self.config.max_topics_per_element;
        if min_prob <= 0.0 && max_topics.is_none() {
            return tv;
        }
        let mut entries: Vec<(TopicId, f64)> = tv
            .support()
            .into_iter()
            .filter(|(_, p)| *p >= min_prob)
            .collect();
        if entries.is_empty() {
            // Every entry fell below the floor; keep the dominant topic so the
            // element does not silently vanish from the index.
            if let Some(top) = tv.dominant_topic() {
                entries.push((top, tv.value(top)));
            } else {
                return tv; // all-zero vector: nothing to keep
            }
        }
        if let Some(n) = max_topics {
            entries.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
            entries.truncate(n);
        }
        let mut out = TopicVector::zeros(tv.num_topics());
        for (topic, p) in entries {
            out.set(topic, p);
        }
        out.normalize();
        out
    }

    /// Recomputes the ranked-list tuples `⟨δ_i(e), t_e⟩` of one active element
    /// for every topic in its support.
    fn refresh_tuples(&mut self, id: ElementId) {
        let Some(tv) = self.topic_vectors.get(&id) else {
            return;
        };
        let Some(last_referenced) = self.window.last_referenced(id) else {
            return;
        };
        let scorer = Scorer::new(
            self.phi.as_ref(),
            self.config.scoring,
            self.window.as_ref(),
            self.topic_vectors.as_ref(),
        );
        let tuples: Vec<(TopicId, f64)> = tv
            .support()
            .into_iter()
            .map(|(topic, _)| (topic, scorer.topicwise_element(topic, id)))
            .collect();
        for (topic, score) in tuples {
            self.ranked.upsert(topic, id, score, last_referenced);
            self.stats.tuple_updates += 1;
        }
    }

    fn check_query(&self, query: &KsirQuery) -> Result<()> {
        if query.vector().num_topics() != self.num_topics() {
            return Err(KsirError::DimensionMismatch {
                expected: self.num_topics(),
                actual: query.vector().num_topics(),
            });
        }
        Ok(())
    }

    fn evaluator<'a>(&'a self, vector: &QueryVector) -> QueryEvaluator<'a, D> {
        QueryEvaluator::new(
            self.scorer(),
            self.window.as_ref(),
            self.topic_vectors.as_ref(),
            vector,
        )
    }

    /// Processes a k-SIR query with the chosen algorithm.
    ///
    /// Delegates to [`view::run_query`] over the live ranked lists — the
    /// same dispatcher the snapshot-backed refresh path uses, so the two can
    /// never diverge algorithmically.
    pub fn query(&self, query: &KsirQuery, algorithm: Algorithm) -> Result<QueryResult> {
        self.queries.fetch_add(1, Ordering::Relaxed);
        view::run_query(
            &self.ranked,
            self.window.as_ref(),
            self.topic_vectors.as_ref(),
            self.phi.as_ref(),
            self.config.scoring,
            query,
            algorithm,
        )
    }

    /// Processes a query with MTTS (Algorithm 2).
    pub fn query_mtts(&self, query: &KsirQuery) -> Result<QueryResult> {
        self.query(query, Algorithm::Mtts)
    }

    /// Processes a query with MTTD (Algorithm 3).
    pub fn query_mttd(&self, query: &KsirQuery) -> Result<QueryResult> {
        self.query(query, Algorithm::Mttd)
    }

    /// Processes a query with the CELF baseline.
    pub fn query_celf(&self, query: &KsirQuery) -> Result<QueryResult> {
        self.query(query, Algorithm::Celf)
    }

    /// Processes a query with the SieveStreaming baseline.
    pub fn query_sieve_streaming(&self, query: &KsirQuery) -> Result<QueryResult> {
        self.query(query, Algorithm::SieveStreaming)
    }

    /// Processes a query with the Top-k Representative baseline.
    pub fn query_topk_representative(&self, query: &KsirQuery) -> Result<QueryResult> {
        self.query(query, Algorithm::TopkRepresentative)
    }

    /// Exhaustively enumerates all size-`min(k, n_t)` subsets of the active
    /// elements and returns the best one.
    ///
    /// This is exponential in `k` and only intended for tests and very small
    /// worked examples (such as the paper's Table 1); it is the ground truth
    /// the approximation guarantees of the other algorithms are checked
    /// against.
    pub fn exhaustive_optimum(&self, query: &KsirQuery) -> Result<QueryResult> {
        self.check_query(query)?;
        let evaluator = self.evaluator(query.vector());
        let ids = self.active_ids();
        let k = query.k().min(ids.len());
        let mut best: Vec<ElementId> = Vec::new();
        let mut best_score = 0.0;
        let mut current: Vec<ElementId> = Vec::with_capacity(k);
        fn recurse<D: TopicWordDistribution>(
            ids: &[ElementId],
            start: usize,
            k: usize,
            current: &mut Vec<ElementId>,
            evaluator: &QueryEvaluator<'_, D>,
            best: &mut Vec<ElementId>,
            best_score: &mut f64,
        ) {
            if current.len() == k {
                let score = evaluator.score_of(current);
                if score > *best_score {
                    *best_score = score;
                    *best = current.clone();
                }
                return;
            }
            let remaining = k - current.len();
            for i in start..=ids.len().saturating_sub(remaining) {
                current.push(ids[i]);
                recurse(ids, i + 1, k, current, evaluator, best, best_score);
                current.pop();
            }
        }
        if k > 0 {
            recurse(
                &ids,
                0,
                k,
                &mut current,
                &evaluator,
                &mut best,
                &mut best_score,
            );
        }
        Ok(QueryResult {
            elements: best,
            score: best_score,
            evaluated_elements: ids.len(),
            gain_evaluations: evaluator.gain_evaluations(),
            algorithm: Algorithm::Celf,
            frontier: None,
        })
    }
}

impl<D: TopicWordDistribution> QuerySource for KsirEngine<D> {
    fn num_topics(&self) -> usize {
        KsirEngine::num_topics(self)
    }

    fn query(&self, query: &KsirQuery, algorithm: Algorithm) -> Result<QueryResult> {
        KsirEngine::query(self, query, algorithm)
    }

    fn query_delta(
        &self,
        query: &KsirQuery,
        algorithm: Algorithm,
        delta: &ksir_stream::WindowDelta,
        cache: &mut crate::evaluator::SingletonCache,
    ) -> Result<QueryResult> {
        view::prime_singleton_cache(&self.ranked, query, delta, cache);
        self.queries.fetch_add(1, Ordering::Relaxed);
        view::run_query_cached(
            &self.ranked,
            self.window.as_ref(),
            self.topic_vectors.as_ref(),
            self.phi.as_ref(),
            self.config.scoring,
            query,
            algorithm,
            Some(cache),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ScoringConfig;
    use crate::fixtures::paper_example;
    use ksir_stream::WindowConfig;
    use ksir_types::{DenseTopicWordTable, SocialElementBuilder};

    fn tiny_engine() -> KsirEngine<DenseTopicWordTable> {
        let phi = DenseTopicWordTable::from_rows(vec![
            vec![0.5, 0.3, 0.2, 0.0],
            vec![0.0, 0.2, 0.3, 0.5],
        ])
        .unwrap();
        let config = EngineConfig::new(
            WindowConfig::new(4, 1).unwrap(),
            ScoringConfig::new(0.5, 2.0).unwrap(),
        )
        .with_max_topics_per_element(None);
        KsirEngine::new(phi, config).unwrap()
    }

    fn tv(values: &[f64]) -> TopicVector {
        TopicVector::from_values(values.to_vec()).unwrap()
    }

    #[test]
    fn new_rejects_empty_topic_model() {
        let phi = DenseTopicWordTable::uniform(0, 4);
        let config = EngineConfig::new(WindowConfig::new(4, 1).unwrap(), ScoringConfig::default());
        assert!(KsirEngine::new(phi, config).is_err());
    }

    #[test]
    fn ingest_validates_dimensions_and_timestamps() {
        let mut engine = tiny_engine();
        let e = SocialElementBuilder::new(1).at(1).words([0]).build();
        // wrong topic dimensionality
        assert!(matches!(
            engine.ingest_bucket(vec![(e.clone(), tv(&[1.0]))], Timestamp(1)),
            Err(KsirError::DimensionMismatch { .. })
        ));
        // element newer than the bucket end
        assert!(engine
            .ingest_bucket(vec![(e.clone(), tv(&[1.0, 0.0]))], Timestamp(0))
            .is_err());
        // regression of the bucket end
        engine
            .ingest_bucket(vec![(e, tv(&[1.0, 0.0]))], Timestamp(2))
            .unwrap();
        assert!(matches!(
            engine.ingest_bucket(vec![], Timestamp(1)),
            Err(KsirError::TimestampRegression { .. })
        ));
    }

    #[test]
    fn ingest_updates_ranked_lists_and_expiry() {
        let mut engine = tiny_engine();
        let e1 = SocialElementBuilder::new(1).at(1).words([0, 1]).build();
        let e2 = SocialElementBuilder::new(2)
            .at(3)
            .words([2, 3])
            .referencing(1)
            .build();
        let r = engine
            .ingest_bucket(vec![(e1, tv(&[0.9, 0.1]))], Timestamp(1))
            .unwrap();
        assert_eq!(r.inserted, 1);
        assert!(engine
            .ranked_lists()
            .list(TopicId(0))
            .contains(ElementId(1)));
        let before = engine
            .ranked_lists()
            .list(TopicId(0))
            .get(ElementId(1))
            .unwrap()
            .0;
        // e2 references e1 → e1's tuple gains influence mass and is refreshed
        let r = engine
            .ingest_bucket(vec![(e2, tv(&[0.2, 0.8]))], Timestamp(3))
            .unwrap();
        assert_eq!(r.refreshed, 1);
        let after = engine
            .ranked_lists()
            .list(TopicId(0))
            .get(ElementId(1))
            .unwrap()
            .0;
        assert!(after > before, "reference must increase δ_0(e1)");
        // far in the future: everything expires and the index empties
        let r = engine.ingest_bucket(vec![], Timestamp(20)).unwrap();
        assert_eq!(r.expired, 2);
        assert_eq!(engine.active_count(), 0);
        assert_eq!(engine.ranked_lists().total_entries(), 0);
        assert_eq!(engine.stats().elements_expired, 2);
    }

    #[test]
    fn ingest_report_delta_records_churn_and_touch_depths() {
        let mut engine = tiny_engine();
        let e1 = SocialElementBuilder::new(1).at(1).words([0, 1]).build();
        let r = engine
            .ingest_bucket(vec![(e1, tv(&[0.9, 0.1]))], Timestamp(1))
            .unwrap();
        assert_eq!(r.delta.from, Timestamp(0));
        assert_eq!(r.delta.to, Timestamp(1));
        assert_eq!(r.delta.activated, vec![ElementId(1)]);
        assert!(r.delta.expired.is_empty() && r.delta.refreshed.is_empty());
        // e1's tuples were inserted into both of its support topics' lists.
        assert!(r.delta.ranked.touched(TopicId(0)));
        assert!(r.delta.ranked.touched(TopicId(1)));
        let (s0, _) = engine
            .ranked_lists()
            .list(TopicId(0))
            .get(ElementId(1))
            .unwrap();
        assert_eq!(r.delta.ranked.touch(TopicId(0)).unwrap().high, s0);

        // e2 references e1: e1 is refreshed and its topic-0 touch covers the
        // higher (new) score.
        let e2 = SocialElementBuilder::new(2)
            .at(3)
            .words([2, 3])
            .referencing(1)
            .build();
        let r = engine
            .ingest_bucket(vec![(e2, tv(&[0.2, 0.8]))], Timestamp(3))
            .unwrap();
        assert_eq!(r.delta.activated, vec![ElementId(2)]);
        assert_eq!(r.delta.refreshed, vec![ElementId(1)]);
        let (s0_after, _) = engine
            .ranked_lists()
            .list(TopicId(0))
            .get(ElementId(1))
            .unwrap();
        assert!(r.delta.ranked.touch(TopicId(0)).unwrap().high >= s0_after);

        // Expiry shows up in `expired` and touches the lists at the removed
        // scores.
        let r = engine.ingest_bucket(vec![], Timestamp(20)).unwrap();
        assert_eq!(r.delta.expired, vec![ElementId(1), ElementId(2)]);
        assert!(r.delta.lost(ElementId(1)));
        assert!(!r.delta.lost(ElementId(3)));
        assert!(r.delta.ranked.touch(TopicId(0)).unwrap().high >= s0_after);

        // A slide over an empty window changes nothing.
        let r = engine.ingest_bucket(vec![], Timestamp(24)).unwrap();
        assert!(r.delta.is_empty());
    }

    #[test]
    fn expired_parents_are_resurrected_by_new_references() {
        // Mirrors Table 1: e2 (ts = 2) expires at t = 6 under T = 4 but must
        // be active again at t = 7 because e7 references it.
        let mut engine = tiny_engine();
        let e2 = SocialElementBuilder::new(2).at(2).words([0, 1]).build();
        engine
            .ingest_bucket(vec![(e2, tv(&[0.5, 0.5]))], Timestamp(2))
            .unwrap();
        let r = engine.ingest_bucket(vec![], Timestamp(6)).unwrap();
        assert_eq!(r.expired, 1);
        assert!(!engine.is_active(ElementId(2)));
        let e7 = SocialElementBuilder::new(7)
            .at(7)
            .words([2])
            .referencing(2)
            .build();
        let r = engine
            .ingest_bucket(vec![(e7, tv(&[0.5, 0.5]))], Timestamp(7))
            .unwrap();
        assert_eq!(r.resurrected, 1);
        assert!(engine.is_active(ElementId(2)));
        assert!(engine
            .ranked_lists()
            .list(TopicId(0))
            .contains(ElementId(2)));
    }

    #[test]
    fn disabled_archive_ignores_references_to_expired_parents() {
        let phi = DenseTopicWordTable::uniform(2, 4);
        let config = EngineConfig::new(WindowConfig::new(4, 1).unwrap(), ScoringConfig::default())
            .with_archive(crate::config::ArchiveRetention::Disabled);
        let mut engine = KsirEngine::new(phi, config).unwrap();
        let e1 = SocialElementBuilder::new(1).at(1).words([0]).build();
        engine
            .ingest_bucket(vec![(e1, tv(&[1.0, 0.0]))], Timestamp(1))
            .unwrap();
        engine.ingest_bucket(vec![], Timestamp(6)).unwrap();
        let e2 = SocialElementBuilder::new(2)
            .at(7)
            .words([1])
            .referencing(1)
            .build();
        let r = engine
            .ingest_bucket(vec![(e2, tv(&[1.0, 0.0]))], Timestamp(7))
            .unwrap();
        assert_eq!(r.resurrected, 0);
        assert!(!engine.is_active(ElementId(1)));
        assert_eq!(engine.archived_count(), 0);
    }

    #[test]
    fn archive_retention_in_ticks_prunes_old_elements() {
        let phi = DenseTopicWordTable::uniform(2, 4);
        let config = EngineConfig::new(WindowConfig::new(4, 1).unwrap(), ScoringConfig::default())
            .with_archive(crate::config::ArchiveRetention::Ticks(10));
        let mut engine = KsirEngine::new(phi, config).unwrap();
        let e1 = SocialElementBuilder::new(1).at(1).words([0]).build();
        engine
            .ingest_bucket(vec![(e1, tv(&[1.0, 0.0]))], Timestamp(1))
            .unwrap();
        assert_eq!(engine.archived_count(), 1);
        engine.ingest_bucket(vec![], Timestamp(12)).unwrap();
        assert_eq!(engine.archived_count(), 0, "ts=1 < 12-10 cutoff");
    }

    #[test]
    fn stored_tuples_match_direct_scorer() {
        let ex = paper_example();
        let engine = ex.build_engine();
        let scorer = engine.scorer();
        for topic in [TopicId(0), TopicId(1)] {
            for (id, stored, _) in engine.ranked_lists().list(topic).iter() {
                let direct = scorer.topicwise_element(topic, id);
                assert!(
                    (stored - direct).abs() < 1e-9,
                    "stale tuple for {id} on {topic}: stored={stored}, direct={direct}"
                );
            }
        }
    }

    #[test]
    fn sparsification_truncates_and_renormalises() {
        let phi = DenseTopicWordTable::uniform(4, 4);
        let config = EngineConfig::new(WindowConfig::new(4, 1).unwrap(), ScoringConfig::default())
            .with_max_topics_per_element(Some(2))
            .with_min_topic_prob(0.05);
        let mut engine = KsirEngine::new(phi, config).unwrap();
        let e = SocialElementBuilder::new(1).at(1).words([0]).build();
        engine
            .ingest_bucket(vec![(e, tv(&[0.5, 0.3, 0.15, 0.05]))], Timestamp(1))
            .unwrap();
        let stored = engine.topic_vector(ElementId(1)).unwrap();
        assert_eq!(stored.support_size(), 2);
        assert!((stored.sum() - 1.0).abs() < 1e-12);
        assert!(stored.value(TopicId(0)) > stored.value(TopicId(1)));
        assert_eq!(stored.value(TopicId(2)), 0.0);
        // ranked lists only hold tuples for the retained topics
        assert!(engine
            .ranked_lists()
            .list(TopicId(0))
            .contains(ElementId(1)));
        assert!(!engine
            .ranked_lists()
            .list(TopicId(2))
            .contains(ElementId(1)));
    }

    #[test]
    fn ingest_stream_cuts_buckets_of_length_l() {
        let phi = DenseTopicWordTable::uniform(2, 4);
        let config = EngineConfig::new(WindowConfig::new(10, 5).unwrap(), ScoringConfig::default());
        let mut engine = KsirEngine::new(phi, config).unwrap();
        let stream: Vec<_> = (1..=12u64)
            .map(|i| {
                (
                    SocialElementBuilder::new(i).at(i).words([0, 1]).build(),
                    tv(&[0.5, 0.5]),
                )
            })
            .collect();
        let buckets = engine.ingest_stream(stream).unwrap();
        assert!(buckets >= 3);
        assert_eq!(engine.stats().elements_ingested, 12);
        assert!(engine.now() >= Timestamp(12));
    }

    #[test]
    fn query_rejects_dimension_mismatch() {
        let ex = paper_example();
        let engine = ex.build_engine();
        let q = KsirQuery::new(2, QueryVector::new(vec![1.0, 1.0, 1.0]).unwrap()).unwrap();
        assert!(matches!(
            engine.query(&q, Algorithm::Celf),
            Err(KsirError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn exhaustive_optimum_on_paper_example() {
        let ex = paper_example();
        let engine = ex.build_engine();
        let q = KsirQuery::new(2, QueryVector::new(vec![0.5, 0.5]).unwrap()).unwrap();
        let opt = engine.exhaustive_optimum(&q).unwrap();
        assert_eq!(
            opt.sorted_elements(),
            vec![ElementId(1), ElementId(3)],
            "Example 3.4: S* = {{e1, e3}}"
        );
        assert!(
            (opt.score - 0.65).abs() < 0.02,
            "OPT ≈ 0.65, got {}",
            opt.score
        );
    }
}
