//! Top-k keyword query ranked by log-normalised TF-IDF (the "TF-IDF"
//! baseline of §5.2).

use ksir_text::{cosine_sparse, TfIdfModel};
use ksir_types::Document;

use crate::pool::{RankedResult, SearchPool};

/// Keyword search over a pool of elements using log-normalised TF-IDF weights
/// and cosine similarity.
///
/// The IDF statistics are computed over the pool itself (the candidate
/// snapshot at query time), mirroring how the paper evaluates the baseline on
/// the active elements.
#[derive(Debug, Clone, Default)]
pub struct TfIdfSearcher;

impl TfIdfSearcher {
    /// Creates a searcher.
    pub fn new() -> Self {
        TfIdfSearcher
    }

    /// Returns the `k` elements most similar to the keyword query, in
    /// decreasing order of similarity.  Elements with zero similarity are
    /// never returned ("no results found" rather than arbitrary filler —
    /// exactly the behaviour the paper's introduction criticises).
    pub fn search(&self, keywords: &Document, pool: &SearchPool, k: usize) -> Vec<RankedResult> {
        let model = TfIdfModel::from_documents(pool.iter().map(|i| &i.doc));
        let query_vec = model.vectorize(keywords);
        let mut scored: Vec<RankedResult> = pool
            .iter()
            .map(|item| RankedResult {
                id: item.id,
                score: cosine_sparse(&query_vec, &model.vectorize(&item.doc)),
            })
            .filter(|r| r.score > 0.0)
            .collect();
        scored.sort_by(|a, b| b.score.total_cmp(&a.score).then_with(|| a.id.cmp(&b.id)));
        scored.truncate(k);
        scored
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::SearchItem;
    use ksir_types::{ElementId, TopicVector, WordId};

    fn doc(words: &[u32]) -> Document {
        Document::from_tokens(words.iter().map(|&w| WordId(w)))
    }

    fn pool() -> SearchPool {
        // word 0 = "soccer", word 1 = "league", word 2 = "nba", word 3 = "playoffs"
        let items = vec![
            (1, vec![0, 1]),
            (2, vec![0, 0, 1]),
            (3, vec![2, 3]),
            (4, vec![2, 3, 3]),
            (5, vec![1, 3]),
        ];
        items
            .into_iter()
            .map(|(id, ws)| SearchItem {
                id: ElementId(id),
                doc: doc(&ws),
                topic_vector: TopicVector::uniform(2),
                refs: Vec::new(),
                referenced_by: 0,
            })
            .collect()
    }

    #[test]
    fn ranks_keyword_matches_first() {
        let searcher = TfIdfSearcher::new();
        let results = searcher.search(&doc(&[0]), &pool(), 3);
        assert!(!results.is_empty());
        // every result actually contains the keyword
        for r in &results {
            assert!(pool().get(r.id).unwrap().doc.contains(WordId(0)));
        }
        // scores are non-increasing
        assert!(results.windows(2).all(|w| w[0].score >= w[1].score));
    }

    #[test]
    fn no_match_means_no_results() {
        let searcher = TfIdfSearcher::new();
        // word 9 appears nowhere ("soccer" vs a corpus without the term —
        // the syntactic-mismatch problem from the paper's introduction)
        let results = searcher.search(&doc(&[9]), &pool(), 3);
        assert!(results.is_empty());
    }

    #[test]
    fn k_truncates_results() {
        let searcher = TfIdfSearcher::new();
        let results = searcher.search(&doc(&[3]), &pool(), 1);
        assert_eq!(results.len(), 1);
        let results = searcher.search(&doc(&[3]), &pool(), 10);
        assert_eq!(results.len(), 3); // only 3 elements contain word 3
    }

    #[test]
    fn empty_pool_and_empty_query() {
        let searcher = TfIdfSearcher::new();
        assert!(searcher
            .search(&doc(&[0]), &SearchPool::new(), 3)
            .is_empty());
        assert!(searcher.search(&Document::new(), &pool(), 3).is_empty());
    }
}
