//! Index views: the read seam between the query algorithms and whatever
//! holds the ranked lists.
//!
//! The index-based algorithms (MTTS, MTTD, Top-k Representative) consume the
//! per-topic ranked lists exclusively through ordered cursors.  [`RankedView`]
//! abstracts that access so the same algorithm code runs against
//!
//! * the **live** [`RankedLists`] inside a [`KsirEngine`](crate::KsirEngine)
//!   (the ad-hoc query path), and
//! * an **immutable snapshot** of those lists captured at an epoch boundary
//!   (`ksir-snapshot`'s `EngineSnapshot` / `ShardSnapshot`), which is what
//!   lets standing-query refreshes evaluate *behind* the writer while the
//!   next epoch's index update proceeds.
//!
//! [`run_query`] is the algorithm dispatcher over an arbitrary view plus the
//! window-side state a query additionally needs;
//! [`KsirEngine::query`](crate::KsirEngine::query) delegates to it with the
//! live view.  [`QuerySource`] packages the whole
//! thing as an object-safe "something you can run a k-SIR query against",
//! implemented by both the engine and the snapshot types, so consumers like
//! `ksir-continuous` can refresh a subscription without caring which side of
//! the epoch boundary they are reading.

use std::collections::HashMap;

use ksir_stream::{ActiveWindow, RankedListCursor, RankedLists, WindowDelta, FLOOR_SLACK};
use ksir_types::{ElementId, KsirError, Result, TopicId, TopicVector, TopicWordDistribution};

use crate::algorithms;
use crate::config::ScoringConfig;
use crate::evaluator::{QueryEvaluator, SingletonCache};
use crate::query::{Algorithm, KsirQuery, QueryResult};
use crate::scorer::Scorer;

/// One element's stored tuple score in one topic's ranked list, as a view
/// reports it for point lookups (see [`RankedView::stored_score`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StoredScore {
    /// The view cannot answer point lookups cheaply; the caller must fall
    /// back to a scoring pass.
    Unsupported,
    /// The element has no tuple in this topic's list — its per-topic score is
    /// exactly `0.0` (the engine only materialises tuples for topics in the
    /// element's topic-vector support, and the scorer zeroes both score
    /// components outside it).
    Absent,
    /// The stored tuple score.
    Score(f64),
}

/// Ordered read access to per-topic ranked lists — implemented by the live
/// [`RankedLists`] and by epoch snapshots (`ksir-snapshot`).
///
/// # Example
///
/// ```
/// use ksir_core::RankedView;
/// use ksir_stream::RankedLists;
/// use ksir_types::{ElementId, Timestamp, TopicId};
///
/// let mut lists = RankedLists::new(1);
/// lists.upsert(TopicId(0), ElementId(1), 0.9, Timestamp(0));
/// lists.upsert(TopicId(0), ElementId(2), 0.4, Timestamp(0));
///
/// // Full traversal starts at the head ...
/// let mut cursor = RankedView::cursor(&lists, TopicId(0));
/// assert_eq!(cursor.current().map(|(id, _, _)| id), Some(ElementId(1)));
///
/// // ... while a suffix cursor skips everything scoring above the bound —
/// // the shape of a `Touch`-restricted read after a slide.
/// let mut suffix = lists.suffix_cursor(TopicId(0), 0.5);
/// assert_eq!(suffix.current().map(|(id, _, _)| id), Some(ElementId(2)));
/// ```
pub trait RankedView {
    /// Number of topics the view covers.
    fn num_topics(&self) -> usize;

    /// An ordered traversal cursor over one topic's list.  Callers only ask
    /// for topics with `topic.index() < num_topics()`.
    fn cursor(&self, topic: TopicId) -> RankedListCursor<'_>;

    /// An ordered cursor over the *suffix* of one topic's list: every tuple
    /// with score `≤ high + FLOOR_SLACK`, highest first.  With `high` taken
    /// from a slide's [`Touch`](ksir_stream::Touch) entry this is exactly
    /// the part of the list the slide may have rewritten — every tuple the
    /// maintenance pass upserted or removed lies at or below the touch score.
    ///
    /// The default implementation advances a full cursor past the prefix;
    /// views with ordered storage override it with a positioned seek.
    fn suffix_cursor(&self, topic: TopicId, high: f64) -> RankedListCursor<'_> {
        let mut cursor = self.cursor(topic);
        while let Some((_, score, _)) = cursor.current() {
            if score <= high + FLOOR_SLACK {
                break;
            }
            cursor.advance();
        }
        cursor
    }

    /// Point lookup of one element's tuple score in one topic's list, for
    /// views that can answer it without a traversal.  Returning
    /// [`StoredScore::Unsupported`] (the default) makes callers fall back to
    /// a scoring pass, so overriding is purely an optimisation.
    fn stored_score(&self, topic: TopicId, id: ElementId) -> StoredScore {
        let _ = (topic, id);
        StoredScore::Unsupported
    }
}

impl RankedView for RankedLists {
    fn num_topics(&self) -> usize {
        RankedLists::num_topics(self)
    }

    fn cursor(&self, topic: TopicId) -> RankedListCursor<'_> {
        self.list(topic).cursor()
    }

    fn suffix_cursor(&self, topic: TopicId, high: f64) -> RankedListCursor<'_> {
        self.list(topic).suffix_cursor(high)
    }

    fn stored_score(&self, topic: TopicId, id: ElementId) -> StoredScore {
        match self.list(topic).get(id) {
            Some((score, _)) => StoredScore::Score(score),
            None => StoredScore::Absent,
        }
    }
}

/// The output of a cluster's **covering run** — one evaluation of a covering
/// query (see [`KsirQuery::covering`]) made rich enough for a specialization
/// pass to derive per-member results from.
///
/// Beyond the covering query's own [`QueryResult`] (which *is* the exact
/// result of every member sharing the covering `k`), it carries the scored
/// candidate set the run left in its [`SingletonCache`]: every singleton
/// score the traversal evaluated or replayed, at exactly the value a fresh
/// evaluation would produce.  A member with a tighter `k` re-runs its own
/// admission logic with lookups answered from that set, so specialization
/// never re-scores a singleton the covering run already scored.
#[derive(Debug, Clone, PartialEq)]
pub struct CoveringOutcome {
    /// The covering query's result — bit-identical to what any member with
    /// `k` equal to the covering `k` would compute on its own.
    pub result: QueryResult,
    /// Scored candidate set `(element, δ(e, x))`, sorted by element id.
    pub scored: Vec<(ElementId, f64)>,
    /// The covering run's admission bar (see
    /// [`crate::QueryFrontier::bar`]), when its algorithm reports one.
    pub bar: Option<f64>,
}

/// Anything a k-SIR query can be processed against: the live engine or an
/// immutable epoch snapshot.  Object-safe, so pipelined consumers can hold
/// `Arc<dyn QuerySource>` without dragging the topic-model type through
/// their own signatures.
///
/// # Example
///
/// ```
/// use ksir_core::{fixtures::paper_example, Algorithm, KsirQuery, QuerySource};
/// use ksir_types::QueryVector;
///
/// // The engine itself is a `QuerySource`; epoch snapshots are too, so a
/// // refresh loop can hold either behind the same object-safe seam.
/// let engine = paper_example().build_engine();
/// let source: &dyn QuerySource = &engine;
/// let query = KsirQuery::new(2, QueryVector::uniform(source.num_topics()).unwrap()).unwrap();
/// let result = source.query(&query, Algorithm::Mtts).unwrap();
/// assert!(result.len() <= 2);
/// ```
pub trait QuerySource {
    /// Number of topics of the underlying topic model.
    fn num_topics(&self) -> usize;

    /// Processes a k-SIR query with the chosen algorithm.
    fn query(&self, query: &KsirQuery, algorithm: Algorithm) -> Result<QueryResult>;

    /// Delta-restricted refresh of a standing query: brings `cache` up to
    /// date against the slide (see [`prime_singleton_cache`]) and re-runs the
    /// query with singleton scores answered from the memo wherever possible.
    ///
    /// Decisions and scores are identical to [`QuerySource::query`] — only
    /// the number of scoring passes (`gain_evaluations`) differs.  The
    /// default implementation ignores the memo and runs the query from
    /// scratch, so sources that cannot serve tuple lookups stay correct.
    fn query_delta(
        &self,
        query: &KsirQuery,
        algorithm: Algorithm,
        delta: &WindowDelta,
        cache: &mut SingletonCache,
    ) -> Result<QueryResult> {
        let _ = (delta, cache);
        self.query(query, algorithm)
    }

    /// Runs a cluster's covering query and returns an output rich enough to
    /// specialize per-member results from: the covering [`QueryResult`], the
    /// scored candidate set the run left in `cache`, and the run's admission
    /// bar.  See [`CoveringOutcome`].
    ///
    /// Callers evaluating several plan-compatible variants against the same
    /// `cache` should wrap the calls in a
    /// [`SingletonCache::begin_scope`]/[`SingletonCache::end_scope`] pair so
    /// memo retention keeps the union of what every variant consulted.
    fn query_covering(
        &self,
        covering: &KsirQuery,
        algorithm: Algorithm,
        delta: &WindowDelta,
        cache: &mut SingletonCache,
    ) -> Result<CoveringOutcome> {
        let result = self.query_delta(covering, algorithm, delta, cache)?;
        let mut scored: Vec<(ElementId, f64)> = cache.entries().collect();
        scored.sort_unstable_by_key(|&(id, _)| id);
        let bar = result.frontier.as_ref().and_then(|f| f.bar);
        Ok(CoveringOutcome {
            result,
            scored,
            bar,
        })
    }
}

/// Brings a [`SingletonCache`] up to date after one window slide, using only
/// the slide's [`WindowDelta`] and the touched ranked-list state.
///
/// * Expired elements are dropped from the memo.
/// * Changed elements (activated, resurrected, or with refreshed tuples) get
///   their singleton score rebuilt from the stored tuples: the maintenance
///   pass recomputed *every* support-topic tuple of a changed element, so
///   `δ(e, x) = Σ_i x_i · tuple_i(e)` summed in query-support order is
///   bit-identical to a fresh scoring pass.  Every such tuple lies inside
///   the slide's touched suffixes (tuples are logged at `max(old, new)`
///   score), which is what makes this the semi-naive step: only changed
///   data is re-evaluated.
/// * Every other memoised score is still valid — an unchanged element kept
///   its tuples, its words, and its influence set, so its singleton score is
///   untouched by the slide.
///
/// When the view cannot serve point lookups ([`StoredScore::Unsupported`]),
/// the changed element is simply dropped from the memo and the next run
/// re-scores it on demand.
pub fn prime_singleton_cache<V: RankedView + ?Sized>(
    view: &V,
    query: &KsirQuery,
    delta: &WindowDelta,
    cache: &mut SingletonCache,
) {
    for &id in &delta.expired {
        cache.invalidate(id);
    }
    let support = query.vector().support();
    let changed = delta
        .activated
        .iter()
        .chain(&delta.resurrected)
        .chain(&delta.refreshed);
    for &id in changed {
        cache.invalidate(id);
        let mut total = 0.0;
        let mut resolved = true;
        for &(topic, weight) in &support {
            if topic.index() >= view.num_topics() {
                continue;
            }
            match view.stored_score(topic, id) {
                StoredScore::Unsupported => {
                    resolved = false;
                    break;
                }
                StoredScore::Absent => {}
                StoredScore::Score(score) => total += weight * score,
            }
        }
        if resolved {
            cache.prime(id, total);
        }
    }
}

/// Processes one k-SIR query against an arbitrary index view plus the
/// window-side state the evaluator needs.  This is the algorithm dispatcher
/// behind both [`KsirEngine::query`] and the snapshot-backed refresh path.
///
/// [`KsirEngine::query`]: crate::KsirEngine::query
pub fn run_query<V, D>(
    view: &V,
    window: &ActiveWindow,
    topic_vectors: &HashMap<ElementId, TopicVector>,
    phi: &D,
    scoring: ScoringConfig,
    query: &KsirQuery,
    algorithm: Algorithm,
) -> Result<QueryResult>
where
    V: RankedView + ?Sized,
    D: TopicWordDistribution,
{
    run_query_cached(
        view,
        window,
        topic_vectors,
        phi,
        scoring,
        query,
        algorithm,
        None,
    )
}

/// [`run_query`] with an optional singleton-score memo.
///
/// The index-based algorithms (MTTS, MTTD, Top-k Representative) answer
/// singleton-score lookups from `cache` when it is given, populating it on
/// misses; the exhaustive baselines (CELF, SieveStreaming) ignore it, as
/// their per-set marginal gains cannot be memoised across refreshes.  A
/// cached run returns the same elements, score and frontier as an uncached
/// one — only `gain_evaluations` differs.
///
/// After the run, the memo is pruned to exactly the entries the run
/// consulted (see the [`SingletonCache`] *Retention* notes): every consulted
/// element was retrieved at or above the run's final traversal floors, so a
/// slide that later changes it must disturb those floors and trigger a
/// refresh — skipped slides provably cannot stale the surviving memo.
#[allow(clippy::too_many_arguments)]
pub fn run_query_cached<V, D>(
    view: &V,
    window: &ActiveWindow,
    topic_vectors: &HashMap<ElementId, TopicVector>,
    phi: &D,
    scoring: ScoringConfig,
    query: &KsirQuery,
    algorithm: Algorithm,
    cache: Option<&mut SingletonCache>,
) -> Result<QueryResult>
where
    V: RankedView + ?Sized,
    D: TopicWordDistribution,
{
    if query.vector().num_topics() != phi.num_topics() {
        return Err(KsirError::DimensionMismatch {
            expected: phi.num_topics(),
            actual: query.vector().num_topics(),
        });
    }
    let scorer = Scorer::new(phi, scoring, window, topic_vectors);
    let evaluator = QueryEvaluator::new(scorer, window, topic_vectors, query.vector());
    let mut cache = cache;
    if let Some(memo) = cache.as_deref_mut() {
        memo.begin_run();
    }
    let result = match algorithm {
        Algorithm::Mtts => algorithms::mtts::run(view, &evaluator, query, cache.as_deref_mut()),
        Algorithm::Mttd => algorithms::mttd::run(view, &evaluator, query, cache.as_deref_mut()),
        Algorithm::Celf => algorithms::celf::run(window, &evaluator, query),
        Algorithm::SieveStreaming => algorithms::sieve::run(window, &evaluator, query),
        Algorithm::TopkRepresentative => {
            algorithms::topk::run(view, &evaluator, query, cache.as_deref_mut())
        }
    };
    if let Some(memo) = cache {
        memo.end_run();
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::paper_example;
    use ksir_types::QueryVector;

    /// The generic dispatcher over the live view must agree with the
    /// engine's own query path for every algorithm.
    #[test]
    fn run_query_over_live_view_matches_engine_query() {
        let ex = paper_example();
        let engine = ex.build_engine();
        let query = KsirQuery::new(2, QueryVector::new(vec![0.5, 0.5]).unwrap()).unwrap();
        for algorithm in Algorithm::ALL {
            let via_engine = engine.query(&query, algorithm).unwrap();
            let via_view = run_query(
                engine.ranked_lists(),
                engine.window(),
                engine.topic_vectors(),
                engine.phi(),
                engine.config().scoring,
                &query,
                algorithm,
            )
            .unwrap();
            assert_eq!(via_engine, via_view, "{algorithm} diverged");
        }
    }

    #[test]
    fn run_query_rejects_dimension_mismatch() {
        let ex = paper_example();
        let engine = ex.build_engine();
        let query = KsirQuery::new(2, QueryVector::new(vec![1.0, 1.0, 1.0]).unwrap()).unwrap();
        assert!(matches!(
            run_query(
                engine.ranked_lists(),
                engine.window(),
                engine.topic_vectors(),
                engine.phi(),
                engine.config().scoring,
                &query,
                Algorithm::Mtts,
            ),
            Err(KsirError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn engine_implements_query_source() {
        let ex = paper_example();
        let engine = ex.build_engine();
        let source: &dyn QuerySource = &engine;
        assert_eq!(source.num_topics(), 2);
        let query = KsirQuery::new(2, QueryVector::new(vec![0.5, 0.5]).unwrap()).unwrap();
        let via_source = source.query(&query, Algorithm::Mttd).unwrap();
        let direct = engine.query(&query, Algorithm::Mttd).unwrap();
        assert_eq!(via_source, direct);
    }
}
