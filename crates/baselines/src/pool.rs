//! The candidate pool the effectiveness baselines search over.

use ksir_types::{Document, ElementId, TopicVector};

/// One candidate element: its id, bag of words, topic distribution, outgoing
/// references and the number of (in-window) elements referencing it.
#[derive(Debug, Clone)]
pub struct SearchItem {
    /// Element id.
    pub id: ElementId,
    /// Bag-of-words content.
    pub doc: Document,
    /// Topic distribution `p_i(e)`.
    pub topic_vector: TopicVector,
    /// Elements this one references (citations, reply parents, retweets, …).
    pub refs: Vec<ElementId>,
    /// Number of elements referencing this one (retweets, citations, …).
    pub referenced_by: usize,
}

impl SearchItem {
    /// Creates an item with no references in either direction.
    pub fn new(id: ElementId, doc: Document, topic_vector: TopicVector) -> Self {
        SearchItem {
            id,
            doc,
            topic_vector,
            refs: Vec::new(),
            referenced_by: 0,
        }
    }

    /// Sets the outgoing references.
    pub fn with_refs(mut self, refs: Vec<ElementId>) -> Self {
        self.refs = refs;
        self
    }

    /// Sets the incoming-reference count.
    pub fn with_referenced_by(mut self, count: usize) -> Self {
        self.referenced_by = count;
        self
    }
}

/// A snapshot of candidate elements, typically the active window at query
/// time.
#[derive(Debug, Clone, Default)]
pub struct SearchPool {
    items: Vec<SearchItem>,
}

impl SearchPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a pool from items.
    pub fn from_items(items: Vec<SearchItem>) -> Self {
        SearchPool { items }
    }

    /// Adds one candidate.
    pub fn push(&mut self, item: SearchItem) {
        self.items.push(item);
    }

    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Returns `true` if the pool has no candidates.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The candidates.
    pub fn items(&self) -> &[SearchItem] {
        &self.items
    }

    /// Looks up a candidate by element id.
    pub fn get(&self, id: ElementId) -> Option<&SearchItem> {
        self.items.iter().find(|i| i.id == id)
    }

    /// Iterates over the candidates.
    pub fn iter(&self) -> impl Iterator<Item = &SearchItem> + '_ {
        self.items.iter()
    }
}

impl FromIterator<SearchItem> for SearchPool {
    fn from_iter<T: IntoIterator<Item = SearchItem>>(iter: T) -> Self {
        SearchPool {
            items: iter.into_iter().collect(),
        }
    }
}

/// One ranked result returned by a baseline searcher.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankedResult {
    /// Element id.
    pub id: ElementId,
    /// The searcher's own score for the element (scale depends on the
    /// searcher; only the ordering is meaningful across methods).
    pub score: f64,
}

/// Convenience: extracts the element ids of a ranked result list.
pub fn result_ids(results: &[RankedResult]) -> Vec<ElementId> {
    results.iter().map(|r| r.id).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksir_types::WordId;

    fn item(id: u64) -> SearchItem {
        SearchItem {
            id: ElementId(id),
            doc: Document::from_tokens([WordId(1), WordId(2)]),
            topic_vector: TopicVector::uniform(2),
            refs: Vec::new(),
            referenced_by: id as usize,
        }
    }

    #[test]
    fn pool_construction_and_lookup() {
        let pool: SearchPool = (1..=3).map(item).collect();
        assert_eq!(pool.len(), 3);
        assert!(!pool.is_empty());
        assert_eq!(pool.get(ElementId(2)).unwrap().referenced_by, 2);
        assert!(pool.get(ElementId(9)).is_none());
        assert_eq!(pool.iter().count(), 3);
        let mut pool = SearchPool::new();
        assert!(pool.is_empty());
        pool.push(item(7));
        assert_eq!(pool.items()[0].id, ElementId(7));
    }

    #[test]
    fn result_ids_extraction() {
        let results = vec![
            RankedResult {
                id: ElementId(3),
                score: 0.9,
            },
            RankedResult {
                id: ElementId(1),
                score: 0.5,
            },
        ];
        assert_eq!(result_ids(&results), vec![ElementId(3), ElementId(1)]);
    }
}
