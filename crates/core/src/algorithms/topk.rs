//! Top-k Representative — the index baseline.
//!
//! Returns the `k` active elements with the highest *singleton*
//! representativeness scores `δ(e, x)`, retrieved from the ranked lists with
//! a Fagin-style threshold algorithm (stop as soon as the `k`-th best score
//! found so far exceeds the upper bound of any unretrieved element).  Because
//! word and influence overlaps between the selected elements are ignored this
//! is only a `1/k`-approximation for the k-SIR objective, and its quality
//! degrades as `k` grows — exactly the behaviour Figure 11 of the paper
//! reports.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use ksir_types::TopicWordDistribution;

use crate::algorithms::{singleton_score, ScoredElement, SupportCursors};
use crate::evaluator::{QueryEvaluator, SingletonCache};
use crate::query::{Algorithm, KsirQuery, QueryResult};
use crate::view::RankedView;

pub(crate) fn run<D: TopicWordDistribution, V: RankedView + ?Sized>(
    view: &V,
    evaluator: &QueryEvaluator<'_, D>,
    query: &KsirQuery,
    mut cache: Option<&mut SingletonCache>,
) -> QueryResult {
    let k = query.k();
    let mut cursors = SupportCursors::new(view, evaluator.support());
    // Min-heap of the current top-k singleton scores.
    let mut top: BinaryHeap<Reverse<ScoredElement>> = BinaryHeap::new();
    let mut evaluated = 0_usize;

    loop {
        let ub = cursors.upper_bound();
        if top.len() == k {
            let kth = top.peek().expect("heap holds k entries").0.score;
            if ub < kth {
                break;
            }
        }
        let Some(id) = cursors.pop_next() else {
            break;
        };
        let delta = singleton_score(evaluator, &mut cache, id);
        evaluated += 1;
        if delta <= 0.0 {
            continue;
        }
        let entry = ScoredElement { score: delta, id };
        if top.len() < k {
            top.push(Reverse(entry));
        } else if entry > top.peek().expect("heap holds k entries").0 {
            top.pop();
            top.push(Reverse(entry));
        }
    }

    let mut frontier = cursors.frontier();
    // Admission bar: once the heap holds k entries, an element below the
    // k-th best singleton score can never enter the result.
    if top.len() == k {
        frontier.bar = top.peek().map(|Reverse(e)| e.score);
    }
    if top.is_empty() {
        return QueryResult {
            frontier: Some(frontier),
            ..QueryResult::empty(Algorithm::TopkRepresentative)
        };
    }
    let mut selected: Vec<ScoredElement> = top.into_iter().map(|Reverse(e)| e).collect();
    selected.sort_by(|a, b| b.cmp(a));
    let elements: Vec<_> = selected.into_iter().map(|e| e.id).collect();
    // The result is still scored with the full set function so that quality
    // comparisons against the other algorithms are apples-to-apples.
    let score = evaluator.score_of(&elements);
    QueryResult {
        elements,
        score,
        evaluated_elements: evaluated,
        gain_evaluations: evaluator.gain_evaluations(),
        algorithm: Algorithm::TopkRepresentative,
        frontier: Some(frontier),
    }
}
