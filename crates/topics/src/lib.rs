//! # ksir-topics
//!
//! Topic-model substrate for the k-SIR reproduction.
//!
//! The paper trains LDA (via PLDA) on the AMiner and Reddit corpora and the
//! Biterm Topic Model (BTM) on Twitter, then uses the trained model as a
//! *black-box oracle* supplying `p_i(w)` for every word and `p_i(e)` for every
//! element, plus topic inference for keyword queries.  Since the reproduction
//! may not assume an external topic-modelling toolkit, this crate implements
//! both trainers from scratch:
//!
//! * [`lda::LdaTrainer`] — Latent Dirichlet Allocation via collapsed Gibbs
//!   sampling (Griffiths & Steyvers style), suited to longer documents
//!   (AMiner abstracts, Reddit submissions).
//! * [`btm::BtmTrainer`] — the Biterm Topic Model (Yan et al., WWW'13), which
//!   models unordered word co-occurrence pairs and behaves much better on
//!   short texts such as tweets.
//! * [`model::TopicModel`] — the trained artefact: topic-word distributions
//!   `φ` plus deterministic EM "folding-in" inference of topic distributions
//!   for unseen documents and keyword queries.
//! * [`oracle::TopicOracle`] — the black-box interface the rest of the system
//!   consumes, including a [`oracle::FixedOracle`] for hand-specified models
//!   (used to encode the paper's running example, Table 1).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod btm;
pub mod lda;
pub mod model;
pub mod oracle;

pub use btm::BtmTrainer;
pub use lda::LdaTrainer;
pub use model::TopicModel;
pub use oracle::{FixedOracle, TopicOracle};
