//! The black-box topic-model oracle interface.
//!
//! §3.1 of the paper: *"we consider any probabilistic topic model can be used
//! as a black-box oracle to provide `p_i(w)` ∀w ∈ V and `p_i(e)` ∀e ∈ E"*.
//! [`TopicOracle`] is that interface; [`crate::TopicModel`] implements it for
//! trained LDA/BTM models and [`FixedOracle`] implements it for hand-specified
//! distributions (tests, the paper's Table 1 example, and ground-truth planted
//! models from the data generator).

use std::collections::HashMap;

use ksir_types::{
    DenseTopicWordTable, Document, ElementId, KsirError, QueryVector, Result, TopicId, TopicVector,
    TopicWordDistribution, WordId,
};

use crate::model::TopicModel;

/// A black-box topic model: topic-word probabilities plus inference of topic
/// distributions for documents and keyword queries.
pub trait TopicOracle: TopicWordDistribution {
    /// Infers the topic distribution `p_i(e)` of a document.
    fn infer_document(&self, doc: &Document) -> TopicVector;

    /// Infers a query vector from a keyword pseudo-document.
    fn infer_query(&self, keywords: &Document) -> Result<QueryVector>;

    /// Replaces the oracle's parameters with a freshly trained model.
    ///
    /// The paper lists incremental topic-model updates as future work; this
    /// hook lets long-running deployments swap in a re-trained model when
    /// concept drift makes the current one stale.  The default implementation
    /// reports that the oracle does not support refreshing.
    fn refresh(&mut self, _new_model: TopicModel) -> Result<()> {
        Err(KsirError::NotReady(
            "this topic oracle does not support refreshing",
        ))
    }
}

impl TopicOracle for TopicModel {
    fn infer_document(&self, doc: &Document) -> TopicVector {
        TopicModel::infer_document(self, doc)
    }

    fn infer_query(&self, keywords: &Document) -> Result<QueryVector> {
        TopicModel::infer_query(self, keywords)
    }

    fn refresh(&mut self, new_model: TopicModel) -> Result<()> {
        if new_model.num_topics() != self.num_topics() {
            return Err(KsirError::DimensionMismatch {
                expected: self.num_topics(),
                actual: new_model.num_topics(),
            });
        }
        *self = new_model;
        Ok(())
    }
}

/// An oracle with explicitly specified distributions.
///
/// Topic-word probabilities come from a [`DenseTopicWordTable`]; element-topic
/// distributions can be pinned per element id (exactly reproducing worked
/// examples such as Table 1 of the paper), and unseen documents fall back to a
/// deterministic likelihood-weighted estimate from the table.
#[derive(Debug, Clone)]
pub struct FixedOracle {
    phi: DenseTopicWordTable,
    pinned: HashMap<ElementId, TopicVector>,
    fallback: TopicModel,
}

impl FixedOracle {
    /// Creates a fixed oracle from a topic-word table.
    pub fn new(phi: DenseTopicWordTable) -> Result<Self> {
        let fallback = TopicModel::new(phi.clone(), 0.01)?;
        Ok(FixedOracle {
            phi,
            pinned: HashMap::new(),
            fallback,
        })
    }

    /// Pins the topic distribution of a specific element id.
    pub fn pin_element(&mut self, id: ElementId, dist: TopicVector) -> Result<()> {
        if dist.num_topics() != self.phi.num_topics() {
            return Err(KsirError::DimensionMismatch {
                expected: self.phi.num_topics(),
                actual: dist.num_topics(),
            });
        }
        self.pinned.insert(id, dist);
        Ok(())
    }

    /// Returns the pinned distribution of an element, if any.
    pub fn pinned(&self, id: ElementId) -> Option<&TopicVector> {
        self.pinned.get(&id)
    }

    /// Number of pinned elements.
    pub fn pinned_count(&self) -> usize {
        self.pinned.len()
    }
}

impl TopicWordDistribution for FixedOracle {
    fn num_topics(&self) -> usize {
        self.phi.num_topics()
    }

    fn vocab_size(&self) -> usize {
        self.phi.vocab_size()
    }

    fn word_prob(&self, topic: TopicId, word: WordId) -> f64 {
        self.phi.word_prob(topic, word)
    }
}

impl TopicOracle for FixedOracle {
    fn infer_document(&self, doc: &Document) -> TopicVector {
        self.fallback.infer_document(doc)
    }

    fn infer_query(&self, keywords: &Document) -> Result<QueryVector> {
        self.fallback.infer_query(keywords)
    }

    fn refresh(&mut self, new_model: TopicModel) -> Result<()> {
        if new_model.num_topics() != self.num_topics() {
            return Err(KsirError::DimensionMismatch {
                expected: self.num_topics(),
                actual: new_model.num_topics(),
            });
        }
        self.phi = new_model.topic_word_table().clone();
        self.fallback = new_model;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> DenseTopicWordTable {
        DenseTopicWordTable::from_rows(vec![vec![0.6, 0.4, 0.0, 0.0], vec![0.0, 0.0, 0.5, 0.5]])
            .unwrap()
    }

    fn doc(words: &[u32]) -> Document {
        Document::from_tokens(words.iter().map(|&w| WordId(w)))
    }

    #[test]
    fn fixed_oracle_infers_from_table() {
        let o = FixedOracle::new(table()).unwrap();
        let d = o.infer_document(&doc(&[0, 1]));
        assert_eq!(d.dominant_topic(), Some(TopicId(0)));
        let q = o.infer_query(&doc(&[2, 3])).unwrap();
        assert!(q.weight(TopicId(1)) > 0.8);
    }

    #[test]
    fn pinning_overrides_are_stored() {
        let mut o = FixedOracle::new(table()).unwrap();
        let dist = TopicVector::from_values(vec![0.2, 0.8]).unwrap();
        o.pin_element(ElementId(7), dist.clone()).unwrap();
        assert_eq!(o.pinned(ElementId(7)), Some(&dist));
        assert_eq!(o.pinned(ElementId(8)), None);
        assert_eq!(o.pinned_count(), 1);
        // wrong dimensionality rejected
        assert!(o.pin_element(ElementId(9), TopicVector::zeros(3)).is_err());
    }

    #[test]
    fn topic_model_refresh_swaps_parameters() {
        let mut m = TopicModel::new(table(), 0.1).unwrap();
        let new_phi = DenseTopicWordTable::from_rows(vec![
            vec![0.0, 0.0, 0.0, 1.0],
            vec![1.0, 0.0, 0.0, 0.0],
        ])
        .unwrap();
        let new_model = TopicModel::new(new_phi, 0.1).unwrap();
        m.refresh(new_model).unwrap();
        assert_eq!(m.word_prob(TopicId(0), WordId(3)), 1.0);
        // dimension mismatch is rejected
        let bad = TopicModel::new(DenseTopicWordTable::uniform(3, 4), 0.1).unwrap();
        assert!(m.refresh(bad).is_err());
    }

    #[test]
    fn fixed_oracle_refresh() {
        let mut o = FixedOracle::new(table()).unwrap();
        let new_phi = DenseTopicWordTable::from_rows(vec![
            vec![0.0, 0.0, 0.0, 1.0],
            vec![1.0, 0.0, 0.0, 0.0],
        ])
        .unwrap();
        o.refresh(TopicModel::new(new_phi, 0.1).unwrap()).unwrap();
        assert_eq!(o.word_prob(TopicId(0), WordId(3)), 1.0);
        let bad = TopicModel::new(DenseTopicWordTable::uniform(5, 4), 0.1).unwrap();
        assert!(o.refresh(bad).is_err());
    }

    #[test]
    fn oracle_trait_objects_work() {
        let o = FixedOracle::new(table()).unwrap();
        let m = TopicModel::new(table(), 0.1).unwrap();
        let oracles: Vec<Box<dyn TopicOracle>> = vec![Box::new(o), Box::new(m)];
        for oracle in &oracles {
            assert_eq!(oracle.num_topics(), 2);
            assert_eq!(oracle.vocab_size(), 4);
            let d = oracle.infer_document(&doc(&[0]));
            assert_eq!(d.num_topics(), 2);
        }
    }
}
