//! Exporters: one schema, two wire formats.
//!
//! [`MetricsRegistry::render_prometheus`] emits the Prometheus text
//! exposition format (counters, gauges, and cumulative `_bucket`/`_sum`/
//! `_count` histogram series); [`MetricsRegistry::to_json`] emits the same
//! view as a single JSON object with summary quantiles per histogram.  Both
//! are hand-rolled — the workspace takes no serialization dependency — and
//! both sanitize stage names (`ingest.index_write` →
//! `ksir_ingest_index_write`) so the dotted internal names stay valid metric
//! identifiers.

use crate::metrics::MetricsRegistry;

/// Prefix every exported metric carries, namespacing the pipeline's series.
const PREFIX: &str = "ksir_";

/// Static glossary of the pipeline's stage names, rendered as `# HELP`
/// lines.  Names are part of the program (see [`MetricsRegistry`]), so the
/// glossary is a plain match: an unknown name simply renders without a HELP
/// line rather than failing or inventing text.
fn help_for(name: &str) -> Option<&'static str> {
    Some(match name {
        "ingest.admission_wait" => "Time a bucket waited for pipeline admission (depth gate)",
        "ingest.index_write" => "Time spent applying a bucket to the live index",
        "ingest.project" => "Time spent projecting the slide delta onto shard touch filters",
        "ingest.reordered" => "Buckets re-sequenced by the reorder buffer",
        "ingest.late_dropped" => "Beyond-horizon buckets shed under LatePolicy::DropLate",
        "ingest.late_replayed" => "Beyond-horizon buckets folded in under LatePolicy::ForceReplay",
        "snapshot.capture" => "Time spent capturing an epoch's frozen engine image",
        "refresh.shard" => "Time one scheduled shard spent refreshing its residents",
        "refresh.gain_evaluations" => "Total scoring passes across all refreshes",
        "refresh.mode.full" => "Refreshes that ran a full from-scratch evaluation",
        "refresh.mode.delta" => "Refreshes that ran delta-restricted against a retained memo",
        "refresh.mode.skipped" => "Slide-time evaluations the delta rules skipped",
        "refresh.cluster.covering" => "Covering traversals run for plan clusters",
        "refresh.cluster.shared" => "Refreshes served from a same-k covering run",
        "refresh.cluster.skipped" => "Cluster-level skips (whole cluster undisturbed)",
        "worker.item" => "Time one worker spent on one queued shard refresh",
        "worker.panics" => "Refresh attempts that panicked (injected or real)",
        "worker.restarts" => "Worker threads respawned after death",
        "shard.quarantined" => "Shards quarantined after exhausting the retry budget (cumulative)",
        "shard.quarantine_active" => "Shards currently quarantined (live occupancy)",
        "delivery.enqueued" => "Result deltas accepted into delivery queues",
        "delivery.dropped" => "Result deltas shed by an overflow policy",
        "delivery.e2e" => "Ingest-to-delivery freshness of accepted result deltas",
        "delivery.e2e.dropped" => "Ingest-to-shed age of result deltas dropped by overflow policy",
        "delivery.queue_depth" => "Result deltas sitting in delivery queues, summed",
        "manager.slides" => "Slides ingested",
        "manager.refreshes" => "Per-subscription refreshes performed",
        "manager.skips" => "Per-subscription evaluations skipped",
        "manager.subscriptions" => "Standing subscriptions currently registered",
        "manager.inflight_epochs" => "Epochs admitted but not yet fully refreshed",
        "manager.freshness_lag" => "Age in nanoseconds of the oldest epoch not yet fully refreshed",
        "overload.level" => "Current overload-degradation ladder level (0 = normal)",
        "overload.steps" => "Overload ladder transitions taken",
        "trace.events_dropped" => "Trace events shed by the bounded ring",
        "flight.records" => "Flight-recorder postmortem records captured",
        "flight.dropped" => "Flight records shed by the bounded flight ring",
        _ => return None,
    })
}

fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(PREFIX.len() + name.len());
    out.push_str(PREFIX);
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

impl MetricsRegistry {
    /// Renders every registered metric in the Prometheus text exposition
    /// format.  Histograms become cumulative `_bucket{le="..."}` series in
    /// **seconds** (the Prometheus convention for latency), plus `_sum` and
    /// `_count`.
    pub fn render_prometheus(&self) -> String {
        let (counters, gauges, histograms) = self.export_view();
        let mut out = String::new();
        for (name, counter) in counters {
            let id = sanitize(name);
            if let Some(help) = help_for(name) {
                out.push_str(&format!("# HELP {id} {help}\n"));
            }
            out.push_str(&format!("# TYPE {id} counter\n{id} {}\n", counter.get()));
        }
        for (name, gauge) in gauges {
            let id = sanitize(name);
            if let Some(help) = help_for(name) {
                out.push_str(&format!("# HELP {id} {help}\n"));
            }
            out.push_str(&format!("# TYPE {id} gauge\n{id} {}\n", gauge.get()));
        }
        for (name, histogram) in histograms {
            let id = sanitize(name);
            if let Some(help) = help_for(name) {
                out.push_str(&format!("# HELP {id} {help}\n"));
            }
            out.push_str(&format!("# TYPE {id} histogram\n"));
            let mut cumulative = 0;
            for (upper_nanos, count) in histogram.cumulative_buckets() {
                cumulative = count;
                out.push_str(&format!(
                    "{id}_bucket{{le=\"{}\"}} {count}\n",
                    upper_nanos as f64 / 1e9,
                ));
            }
            out.push_str(&format!("{id}_bucket{{le=\"+Inf\"}} {cumulative}\n"));
            out.push_str(&format!("{id}_sum {}\n", histogram.sum().as_secs_f64()));
            out.push_str(&format!("{id}_count {}\n", histogram.count()));
        }
        out
    }

    /// Renders every registered metric as one JSON object:
    /// `{"counters": {...}, "gauges": {...}, "histograms": {name:
    /// {count, sum_ns, mean_ns, p50_ns, p95_ns, p99_ns, max_ns}}}`.
    /// Histogram figures are nanoseconds, matching the trace timestamps.
    pub fn to_json(&self) -> String {
        let (counters, gauges, histograms) = self.export_view();
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (name, counter)) in counters.iter().enumerate() {
            out.push_str(&format!(
                "{}\n    \"{name}\": {}",
                if i == 0 { "" } else { "," },
                counter.get()
            ));
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, (name, gauge)) in gauges.iter().enumerate() {
            out.push_str(&format!(
                "{}\n    \"{name}\": {}",
                if i == 0 { "" } else { "," },
                gauge.get()
            ));
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, (name, h)) in histograms.iter().enumerate() {
            out.push_str(&format!(
                "{}\n    \"{name}\": {{ \"count\": {}, \"sum_ns\": {}, \"mean_ns\": {}, \
                 \"p50_ns\": {}, \"p95_ns\": {}, \"p99_ns\": {}, \"max_ns\": {} }}",
                if i == 0 { "" } else { "," },
                h.count(),
                h.sum().as_nanos(),
                h.mean().as_nanos(),
                h.p50().as_nanos(),
                h.p95().as_nanos(),
                h.p99().as_nanos(),
                h.max().as_nanos(),
            ));
        }
        out.push_str("\n  }\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn prometheus_rendering_is_well_formed() {
        let registry = MetricsRegistry::new();
        registry.counter("delivery.enqueued").add(3);
        registry.gauge("manager.slides").set(12);
        let h = registry.histogram("refresh.shard");
        h.record(Duration::from_micros(5));
        h.record(Duration::from_micros(700));

        let text = registry.render_prometheus();
        assert!(text.contains("# TYPE ksir_delivery_enqueued counter"));
        assert!(text.contains("ksir_delivery_enqueued 3"));
        assert!(text.contains("ksir_manager_slides 12"));
        assert!(text.contains("# TYPE ksir_refresh_shard histogram"));
        assert!(text.contains("ksir_refresh_shard_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("ksir_refresh_shard_count 2"));
        // Bucket series are cumulative: the last finite bucket equals the
        // total count.
        let finite_buckets: Vec<&str> = text
            .lines()
            .filter(|l| l.starts_with("ksir_refresh_shard_bucket{le=") && !l.contains("+Inf"))
            .collect();
        assert_eq!(finite_buckets.len(), 2);
        assert!(finite_buckets[1].ends_with(" 2"));
    }

    #[test]
    fn json_rendering_covers_all_families() {
        let registry = MetricsRegistry::new();
        registry.counter("a.count").inc();
        registry.gauge("b.depth").set(4);
        registry
            .histogram("c.lat")
            .record(Duration::from_nanos(100));

        let json = registry.to_json();
        assert!(json.contains("\"a.count\": 1"));
        assert!(json.contains("\"b.depth\": 4"));
        assert!(json.contains("\"c.lat\": { \"count\": 1"));
        assert!(json.contains("\"sum_ns\": 100"));
        // Keep the output parseable by eye: object per family, no trailing
        // commas.
        assert!(!json.contains(",\n  }"));
    }

    #[test]
    fn empty_registry_renders_empty_families() {
        let registry = MetricsRegistry::new();
        assert_eq!(registry.render_prometheus(), "");
        let json = registry.to_json();
        assert!(json.contains("\"counters\": {\n  }"));
    }

    #[test]
    fn known_stage_names_carry_help_lines() {
        let registry = MetricsRegistry::new();
        registry.counter("delivery.enqueued").inc();
        registry.gauge("manager.freshness_lag").set(7);
        registry
            .histogram("delivery.e2e")
            .record(Duration::from_micros(3));
        registry.counter("made.up.stage").inc();

        let text = registry.render_prometheus();
        assert!(text.contains("# HELP ksir_delivery_enqueued "));
        assert!(text.contains("# HELP ksir_manager_freshness_lag "));
        assert!(text.contains("# HELP ksir_delivery_e2e "));
        // Unknown names still render; they just carry no HELP.
        assert!(text.contains("# TYPE ksir_made_up_stage counter"));
        assert!(!text.contains("# HELP ksir_made_up_stage"));
        // HELP, when present, immediately precedes its TYPE line.
        let lines: Vec<&str> = text.lines().collect();
        for (i, line) in lines.iter().enumerate() {
            if let Some(id) = line.strip_prefix("# HELP ") {
                let id = id.split(' ').next().unwrap();
                assert!(
                    lines[i + 1].starts_with(&format!("# TYPE {id} ")),
                    "HELP for {id} not followed by its TYPE"
                );
            }
        }
    }

    /// Prometheus exposition conformance over a registry exercising every
    /// family: each sample line's metric must have been declared by a
    /// preceding `# TYPE`, `_bucket` series must be cumulative
    /// (monotonically non-decreasing in `le` order), and the `+Inf` bucket
    /// must equal `_count`.
    #[test]
    fn prometheus_exposition_conforms() {
        let registry = MetricsRegistry::new();
        registry.counter("delivery.enqueued").add(9);
        registry.gauge("overload.level").set(2);
        let h = registry.histogram("delivery.e2e");
        for micros in [1u64, 5, 5, 40, 40, 40, 9000] {
            h.record(Duration::from_micros(micros));
        }
        // An empty histogram must still render a well-formed series.
        registry.histogram("refresh.shard");

        let text = registry.render_prometheus();
        let mut declared: Vec<String> = Vec::new();
        let mut bucket_last: std::collections::BTreeMap<String, (f64, u64)> = Default::default();
        let mut inf: std::collections::BTreeMap<String, u64> = Default::default();
        let mut counts: std::collections::BTreeMap<String, u64> = Default::default();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                declared.push(rest.split(' ').next().unwrap().to_string());
                continue;
            }
            if line.starts_with('#') {
                continue;
            }
            let metric = line.split(['{', ' ']).next().unwrap();
            let base = metric
                .strip_suffix("_bucket")
                .or_else(|| metric.strip_suffix("_sum"))
                .or_else(|| metric.strip_suffix("_count"))
                .unwrap_or(metric);
            assert!(
                declared.iter().any(|d| d == base),
                "sample {line:?} precedes its TYPE declaration"
            );
            let value = line.rsplit(' ').next().unwrap();
            if let Some(le) = line.split("le=\"").nth(1).and_then(|s| s.split('"').next()) {
                let count: u64 = value.parse().unwrap();
                if le == "+Inf" {
                    inf.insert(base.to_string(), count);
                } else {
                    let le: f64 = le.parse().unwrap();
                    if let Some((prev_le, prev_count)) = bucket_last.get(base) {
                        assert!(le > *prev_le, "buckets out of le order in {line:?}");
                        assert!(count >= *prev_count, "non-cumulative bucket in {line:?}");
                    }
                    bucket_last.insert(base.to_string(), (le, count));
                }
            } else if let Some(base) = metric.strip_suffix("_count") {
                counts.insert(base.to_string(), value.parse().unwrap());
            } else {
                // Plain counter/gauge sample: must parse as a number.
                value.parse::<f64>().unwrap();
            }
        }
        // +Inf bucket == _count for every histogram, including the empty one.
        assert_eq!(inf.len(), 2);
        assert_eq!(counts.len(), 2);
        for (base, inf_count) in &inf {
            assert_eq!(
                counts.get(base),
                Some(inf_count),
                "+Inf bucket != _count for {base}"
            );
        }
        assert_eq!(inf.get("ksir_delivery_e2e"), Some(&7));
        assert_eq!(inf.get("ksir_refresh_shard"), Some(&0));
    }

    #[test]
    fn empty_histogram_renders_inf_sum_count_only() {
        let registry = MetricsRegistry::new();
        registry.histogram("delivery.e2e");
        let text = registry.render_prometheus();
        assert!(text.contains("# TYPE ksir_delivery_e2e histogram"));
        assert!(text.contains("ksir_delivery_e2e_bucket{le=\"+Inf\"} 0"));
        assert!(text.contains("ksir_delivery_e2e_sum 0"));
        assert!(text.contains("ksir_delivery_e2e_count 0"));
        // No finite buckets for an empty histogram.
        assert!(!text
            .lines()
            .any(|l| l.starts_with("ksir_delivery_e2e_bucket{le=") && !l.contains("+Inf")));
    }
}
