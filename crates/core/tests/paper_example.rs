//! Reproduction of the paper's worked examples (§3 and §4) on the running
//! example of Table 1 / Figures 1–3, 5 and 6.
//!
//! The numbers asserted here are the ones printed in the paper (rounded to
//! two decimals there, so comparisons use a 0.02 tolerance).

use ksir_core::fixtures::paper_example;
use ksir_core::{Algorithm, KsirQuery};
use ksir_types::{ElementId, QueryVector, TopicId};

fn close(actual: f64, expected: f64, tol: f64) -> bool {
    (actual - expected).abs() <= tol
}

fn ids(ns: &[u64]) -> Vec<ElementId> {
    ns.iter().map(|&n| ElementId(n)).collect()
}

/// Example 3.1: the semantic score `R_2({e2, e7})` on topic θ2 is ≈ 0.53.
#[test]
fn example_3_1_semantic_score_of_e2_e7() {
    let ex = paper_example();
    let engine = ex.build_engine();
    let scorer = engine.scorer();
    let r2 = scorer.semantic_set(TopicId(1), &ids(&[2, 7]));
    assert!(
        close(r2, 0.53, 0.02),
        "R_2({{e2,e7}}) = {r2}, paper says 0.53"
    );
    // e7 contributes nothing: every word of e7 is covered better by e2.
    let r2_e2_only = scorer.semantic_set(TopicId(1), &ids(&[2]));
    assert!(close(r2, r2_e2_only, 1e-9));
    // Per-word weights quoted in the example.
    let w4 = ksir_types::WordId(3); // "champion"
    let w9 = ksir_types::WordId(8); // "manutd"
    let w11 = ksir_types::WordId(10); // "pl"
    assert!(close(
        scorer.word_weight_of(TopicId(1), ElementId(2), w4),
        0.18,
        0.01
    ));
    assert!(close(
        scorer.word_weight_of(TopicId(1), ElementId(2), w9),
        0.15,
        0.01
    ));
    assert!(close(
        scorer.word_weight_of(TopicId(1), ElementId(2), w11),
        0.20,
        0.01
    ));
    assert!(close(
        scorer.word_weight_of(TopicId(1), ElementId(7), w4),
        0.17,
        0.01
    ));
    assert!(close(
        scorer.word_weight_of(TopicId(1), ElementId(7), w11),
        0.19,
        0.01
    ));
}

/// Example 3.2: the influence score `I_{2,8}({e2, e3})` on θ2 at t = 8 is ≈ 0.93.
#[test]
fn example_3_2_influence_score_of_e2_e3() {
    let ex = paper_example();
    let engine = ex.build_engine();
    let scorer = engine.scorer();
    let i2 = scorer.influence_set(TopicId(1), &ids(&[2, 3]));
    assert!(
        close(i2, 0.93, 0.02),
        "I_2,8({{e2,e3}}) = {i2}, paper says 0.93"
    );
    // The singleton propagation probabilities quoted in the example.
    assert!(close(
        scorer.influence_element(TopicId(1), ElementId(3)),
        0.03 + 0.054,
        0.02
    ));
    // e3's influence on θ2 is low even though it is referenced a lot.
    assert!(scorer.influence_element(TopicId(1), ElementId(3)) < 0.1);
    assert!(scorer.influence_element(TopicId(0), ElementId(3)) > 0.5);
}

/// The active set at t = 8 contains everything except e4 (Example 3.4).
#[test]
fn active_set_at_time_8_drops_only_e4() {
    let ex = paper_example();
    let engine = ex.build_engine();
    assert_eq!(engine.active_count(), 7);
    for n in [1u64, 2, 3, 5, 6, 7, 8] {
        assert!(engine.is_active(ElementId(n)), "e{n} must be active at t=8");
    }
    assert!(!engine.is_active(ElementId(4)));
}

/// Figure 5 / 6: the ranked-list tuples `⟨δ_i(e), t_e⟩` at time 8.
#[test]
fn ranked_list_scores_match_figure_5() {
    let ex = paper_example();
    let engine = ex.build_engine();
    let expected_rl1 = [
        (3u64, 0.65),
        (6, 0.48),
        (8, 0.17),
        (2, 0.10),
        (7, 0.06),
        (1, 0.06),
        (5, 0.05),
    ];
    let expected_rl2 = [
        (1u64, 0.56),
        (2, 0.48),
        (5, 0.27),
        (7, 0.18),
        (8, 0.16),
        (6, 0.13),
        (3, 0.03),
    ];
    for (topic, expected) in [(TopicId(0), &expected_rl1), (TopicId(1), &expected_rl2)] {
        let list = engine.ranked_lists().list(topic);
        assert_eq!(list.len(), 7, "each list holds the 7 active elements");
        for &(n, score) in expected.iter() {
            let (stored, _) = list.get(ElementId(n)).expect("element present in list");
            assert!(
                close(stored, score, 0.02),
                "δ_{}(e{}) = {}, figure says {}",
                topic.raw() + 1,
                n,
                stored,
                score
            );
        }
    }
    // The heads of the lists are e3 and e1 as drawn in Figure 5.
    assert_eq!(
        engine.ranked_lists().list(TopicId(0)).first().unwrap().0,
        ElementId(3)
    );
    assert_eq!(
        engine.ranked_lists().list(TopicId(1)).first().unwrap().0,
        ElementId(1)
    );
}

/// Figure 5: the last-referenced timestamps `t_e` stored in the tuples.
#[test]
fn ranked_list_timestamps_match_figure_5() {
    let ex = paper_example();
    let engine = ex.build_engine();
    let expected = [(1u64, 5u64), (2, 8), (3, 8), (5, 5), (6, 8), (7, 7), (8, 8)];
    let list = engine.ranked_lists().list(TopicId(0));
    for (n, te) in expected {
        let (_, ts) = list.get(ElementId(n)).unwrap();
        assert_eq!(ts.raw(), te, "t_e of e{n}");
    }
}

/// Example 3.4, first query: `q_8(2, (0.5, 0.5))` → S* = {e1, e3}, OPT ≈ 0.65.
#[test]
fn example_3_4_balanced_query() {
    let ex = paper_example();
    let engine = ex.build_engine();
    let q = KsirQuery::new(2, QueryVector::new(vec![0.5, 0.5]).unwrap()).unwrap();
    let opt = engine.exhaustive_optimum(&q).unwrap();
    assert_eq!(opt.sorted_elements(), ids(&[1, 3]));
    assert!(close(opt.score, 0.65, 0.02), "OPT = {}", opt.score);
}

/// Example 3.4, second query: `q_8(2, (0.1, 0.9))` → S* = {e1, e2}, OPT ≈ 0.94.
#[test]
fn example_3_4_soccer_leaning_query() {
    let ex = paper_example();
    let engine = ex.build_engine();
    let q = KsirQuery::new(2, QueryVector::new(vec![0.1, 0.9]).unwrap()).unwrap();
    let opt = engine.exhaustive_optimum(&q).unwrap();
    assert_eq!(opt.sorted_elements(), ids(&[1, 2]));
    assert!(close(opt.score, 0.94, 0.02), "OPT = {}", opt.score);
    // e3 is excluded because it is mostly about θ1.
    assert!(!opt.contains(ElementId(3)));
}

/// Example 4.1: MTTS with ε = 0.3 answers `q_8(2, (0.5, 0.5))` with {e1, e3}
/// while evaluating only a handful of elements.
#[test]
fn example_4_1_mtts_returns_e1_e3() {
    let ex = paper_example();
    let engine = ex.build_engine();
    let q = KsirQuery::new(2, QueryVector::new(vec![0.5, 0.5]).unwrap())
        .unwrap()
        .with_epsilon(0.3)
        .unwrap();
    let r = engine.query(&q, Algorithm::Mtts).unwrap();
    assert_eq!(r.sorted_elements(), ids(&[1, 3]));
    assert!(close(r.score, 0.65, 0.02));
    assert_eq!(r.algorithm, Algorithm::Mtts);
    // The example evaluates e3, e1, e6 and e2 before terminating — strictly
    // fewer than the 7 active elements.
    assert!(
        r.evaluated_elements <= 5,
        "evaluated {}",
        r.evaluated_elements
    );
    assert!(r.evaluated_elements >= 2);
}

/// Example 4.3: MTTD with ε = 0.3 also returns {e1, e3}.
#[test]
fn example_4_3_mttd_returns_e1_e3() {
    let ex = paper_example();
    let engine = ex.build_engine();
    let q = KsirQuery::new(2, QueryVector::new(vec![0.5, 0.5]).unwrap())
        .unwrap()
        .with_epsilon(0.3)
        .unwrap();
    let r = engine.query(&q, Algorithm::Mttd).unwrap();
    assert_eq!(r.sorted_elements(), ids(&[1, 3]));
    assert!(close(r.score, 0.65, 0.02));
    assert_eq!(r.algorithm, Algorithm::Mttd);
    // The example buffers e3, e1, e6, e2 — strictly fewer than all 7.
    assert!(r.evaluated_elements <= 5);
}

/// All five processing algorithms respect their approximation guarantees on
/// both queries of Example 3.4 (and the result-set scores they report are
/// consistent with recomputation from scratch).
#[test]
fn all_algorithms_meet_their_guarantees_on_the_example() {
    let ex = paper_example();
    let engine = ex.build_engine();
    let scorer = engine.scorer();
    for weights in [vec![0.5, 0.5], vec![0.1, 0.9], vec![0.9, 0.1]] {
        let vector = QueryVector::new(weights.clone()).unwrap();
        let q = KsirQuery::new(2, vector.clone()).unwrap();
        let opt = engine.exhaustive_optimum(&q).unwrap().score;
        for (alg, ratio) in [
            (Algorithm::Celf, 1.0 - 1.0 / std::f64::consts::E),
            (
                Algorithm::Mttd,
                1.0 - 1.0 / std::f64::consts::E - q.epsilon(),
            ),
            (Algorithm::Mtts, 0.5 - q.epsilon()),
            (Algorithm::SieveStreaming, 0.5 - q.epsilon()),
            (Algorithm::TopkRepresentative, 1.0 / q.k() as f64),
        ] {
            let r = engine.query(&q, alg).unwrap();
            assert!(
                r.score + 1e-9 >= ratio * opt,
                "{alg} scored {} < {ratio}·OPT = {} for weights {weights:?}",
                r.score,
                ratio * opt
            );
            assert!(r.len() <= q.k());
            // Reported score must equal the score recomputed from scratch.
            let recomputed = scorer.set_score(&vector, &r.elements);
            assert!(
                close(r.score, recomputed, 1e-9),
                "{alg} reported {} but the set scores {}",
                r.score,
                recomputed
            );
        }
    }
}

/// MTTS and MTTD prune evaluations while CELF and SieveStreaming touch every
/// active element.
#[test]
fn index_based_algorithms_evaluate_fewer_elements() {
    let ex = paper_example();
    let engine = ex.build_engine();
    let q = KsirQuery::new(2, QueryVector::new(vec![0.5, 0.5]).unwrap())
        .unwrap()
        .with_epsilon(0.3)
        .unwrap();
    let celf = engine.query(&q, Algorithm::Celf).unwrap();
    let sieve = engine.query(&q, Algorithm::SieveStreaming).unwrap();
    let mtts = engine.query(&q, Algorithm::Mtts).unwrap();
    let mttd = engine.query(&q, Algorithm::Mttd).unwrap();
    assert_eq!(celf.evaluated_elements, engine.active_count());
    assert_eq!(sieve.evaluated_elements, engine.active_count());
    assert!(mtts.evaluated_elements < engine.active_count());
    assert!(mttd.evaluated_elements < engine.active_count());
}

/// A query on a single topic returns elements from that topic only.
#[test]
fn single_topic_queries_stay_on_topic() {
    let ex = paper_example();
    let engine = ex.build_engine();
    // Pure basketball query (θ1): e3 must be in the result, e1 must not.
    let q = KsirQuery::new(2, QueryVector::single_topic(2, TopicId(0)).unwrap()).unwrap();
    let r = engine.query(&q, Algorithm::Mttd).unwrap();
    assert!(r.contains(ElementId(3)));
    assert!(!r.contains(ElementId(1)));
    // Pure soccer query (θ2): e1 in, e3 out.
    let q = KsirQuery::new(2, QueryVector::single_topic(2, TopicId(1)).unwrap()).unwrap();
    let r = engine.query(&q, Algorithm::Mttd).unwrap();
    assert!(r.contains(ElementId(1)));
    assert!(!r.contains(ElementId(3)));
}

/// Larger k than relevant elements: the result is bounded by the number of
/// active elements and never contains duplicates.
#[test]
fn oversized_k_is_handled() {
    let ex = paper_example();
    let engine = ex.build_engine();
    let q = KsirQuery::new(20, QueryVector::new(vec![0.5, 0.5]).unwrap()).unwrap();
    for alg in Algorithm::ALL {
        let r = engine.query(&q, alg).unwrap();
        assert!(r.len() <= 7, "{alg} returned {} elements", r.len());
        let mut sorted = r.sorted_elements();
        sorted.dedup();
        assert_eq!(sorted.len(), r.len(), "{alg} returned duplicates");
    }
}

/// Results are deterministic: repeating the same query yields the same set.
#[test]
fn queries_are_deterministic() {
    let ex = paper_example();
    let engine = ex.build_engine();
    let q = KsirQuery::new(3, QueryVector::new(vec![0.4, 0.6]).unwrap()).unwrap();
    for alg in Algorithm::ALL {
        let a = engine.query(&q, alg).unwrap();
        let b = engine.query(&q, alg).unwrap();
        assert_eq!(a, b, "{alg} is not deterministic");
    }
}
