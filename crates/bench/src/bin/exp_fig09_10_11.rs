//! Figures 9, 10 and 11 — effect of the result size k: query time of all five
//! processing methods, the ratio of elements evaluated by MTTS/MTTD, and the
//! representativeness scores, for k ∈ {5, 10, 15, 20, 25}.
//!
//! Run with `cargo run --release -p ksir-bench --bin exp_fig09_10_11 [--scale 1.0]`.

use ksir_bench::{replay_with_queries, scale_from_args, ProcessingConfig, Table};
use ksir_core::Algorithm;
use ksir_datagen::{DatasetProfile, StreamGenerator};

fn main() {
    let scale = scale_from_args();
    let ks = [5usize, 10, 15, 20, 25];

    for profile in DatasetProfile::all() {
        let profile = profile.scaled(scale).with_topics(50);
        let stream = StreamGenerator::new(profile.clone(), 23)
            .expect("profile is valid")
            .generate()
            .expect("stream generation succeeds");

        let mut time_table = Table::new(
            format!("Figure 9 ({}) — query time (ms) vs k", profile.name),
            &["k", "CELF", "MTTD", "MTTS", "Top-k Rep", "SieveStreaming"],
        );
        let mut ratio_table = Table::new(
            format!(
                "Figure 10 ({}) — ratio of evaluated elements vs k",
                profile.name
            ),
            &["k", "MTTD", "MTTS"],
        );
        let mut score_table = Table::new(
            format!("Figure 11 ({}) — score vs k", profile.name),
            &["k", "CELF", "MTTD", "MTTS", "Top-k Rep", "SieveStreaming"],
        );

        for &k in &ks {
            let config = ProcessingConfig {
                k,
                num_queries: 10,
                ..ProcessingConfig::for_stream(&stream)
            };
            let report = replay_with_queries(&stream, &config).expect("replay succeeds");
            let order = [
                Algorithm::Celf,
                Algorithm::Mttd,
                Algorithm::Mtts,
                Algorithm::TopkRepresentative,
                Algorithm::SieveStreaming,
            ];
            let mut time_row = vec![k.to_string()];
            let mut score_row = vec![k.to_string()];
            for alg in order {
                time_row.push(format!("{:.3}", report.mean_query_millis(alg)));
                score_row.push(format!("{:.4}", report.mean_score(alg)));
            }
            time_table.add_row(time_row);
            score_table.add_row(score_row);
            ratio_table.add_row(vec![
                k.to_string(),
                format!(
                    "{:.2}%",
                    100.0 * report.mean_evaluated_ratio(Algorithm::Mttd)
                ),
                format!(
                    "{:.2}%",
                    100.0 * report.mean_evaluated_ratio(Algorithm::Mtts)
                ),
            ]);
        }
        time_table.print();
        ratio_table.print();
        score_table.print();
    }
    println!(
        "Paper's shape: MTTS/MTTD are at least an order of magnitude faster than \
         CELF and SieveStreaming (Fig. 9); their evaluated-element ratios grow \
         roughly linearly with k and stay small, with MTTD above MTTS (Fig. 10); \
         MTTD ≈ CELF and MTTS ≥ 95% of CELF while Top-k Representative is worst \
         and degrades with k (Fig. 11)."
    );
}
