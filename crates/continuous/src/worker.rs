//! Long-lived shard-refresh workers fed by a channel.
//!
//! PR 2 fanned each slide's scheduled shards out over a fresh
//! `std::thread::scope`, which meant `ingest_bucket` could not return before
//! the slowest shard finished.  This module replaces that with a fixed pool
//! of workers that live as long as the
//! [`SubscriptionManager`](crate::SubscriptionManager): the ingestion path
//! enqueues one [`WorkItem`] per scheduled shard and is free to return
//! immediately; workers pull items off the shared channel, take a read guard
//! on the [`SharedEngine`], refresh the shard, and stream the resulting
//! [`ResultDelta`](crate::ResultDelta)s into the attached per-subscriber
//! delivery queues.
//!
//! ## The epoch barrier
//!
//! Refresh decisions are only decision-identical to the serial walk if every
//! worker observes the engine state of the slide its work item was scheduled
//! for.  The pool therefore tracks outstanding items in a [`Gate`]; the
//! manager calls [`WorkerPool::wait_idle`] (its `sync()` barrier) before
//! every index mutation, so at most one slide's work is ever in flight and a
//! worker can never read a newer window than its `WindowDelta` describes.
//! Slow *subscribers* never extend that window: delivery queues are bounded
//! and non-blocking under the default overflow policy, so the barrier waits
//! only on refresh compute, not on consumers.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use ksir_core::SharedEngine;
use ksir_stream::WindowDelta;
use ksir_types::TopicWordDistribution;

use crate::delivery::DeliverySender;
use crate::shard::{Shard, ShardSlide};
use crate::subscription::SubscriptionId;

/// Shared map from live subscription to its delivery-queue producer.
pub(crate) type DeliveryRegistry =
    Arc<Mutex<std::collections::BTreeMap<SubscriptionId, DeliverySender>>>;

/// Pushes a slide's result deltas into the attached delivery queues.  Used by
/// the workers and by the manager's inline (single-threaded) refresh path, so
/// subscribers see the same stream regardless of which path ran.
pub(crate) fn deliver(
    registry: &DeliveryRegistry,
    slide: u64,
    updates: &[crate::subscription::ResultDelta],
) {
    if updates.is_empty() {
        return;
    }
    // Clone the senders out and release the registry lock before sending: a
    // Block-policy queue may stall its producer, and that stall must never
    // extend to other subscriptions' deliveries (or to the manager methods
    // that take the registry lock).
    let senders: Vec<_> = {
        let registry = registry.lock().unwrap_or_else(|p| p.into_inner());
        updates
            .iter()
            .map(|update| registry.get(&update.subscription).cloned())
            .collect()
    };
    for (update, sender) in updates.iter().zip(senders) {
        if let Some(sender) = sender {
            sender.send(slide, update.clone());
        }
    }
}

/// One scheduled shard refresh: the shard, the slide delta that scheduled it,
/// and (for the synchronous API) a collector the resulting [`ShardSlide`] is
/// pushed into.
pub(crate) struct WorkItem {
    pub(crate) slide: u64,
    pub(crate) shard: Arc<Mutex<Shard>>,
    pub(crate) delta: Arc<WindowDelta>,
    pub(crate) collector: Option<Arc<Mutex<Vec<ShardSlide>>>>,
}

/// Counts outstanding work items; `wait_idle` is the sync()/drain() barrier.
#[derive(Debug, Default)]
struct Gate {
    pending: Mutex<usize>,
    idle: Condvar,
}

impl Gate {
    fn add(&self, n: usize) {
        *self.pending.lock().unwrap_or_else(|p| p.into_inner()) += n;
    }

    fn complete_one(&self) {
        let mut pending = self.pending.lock().unwrap_or_else(|p| p.into_inner());
        *pending -= 1;
        if *pending == 0 {
            self.idle.notify_all();
        }
    }

    fn wait_idle(&self) {
        let mut pending = self.pending.lock().unwrap_or_else(|p| p.into_inner());
        while *pending > 0 {
            pending = self.idle.wait(pending).unwrap_or_else(|p| p.into_inner());
        }
    }
}

/// Decrements the gate even if the refresh panics, so a poisoned shard can
/// never deadlock the ingestion path on `wait_idle`.
struct CompletionGuard<'a>(&'a Gate);

impl Drop for CompletionGuard<'_> {
    fn drop(&mut self) {
        self.0.complete_one();
    }
}

/// The fixed pool of long-lived refresh workers.
///
/// Not generic over the topic model: the engine handle is moved into the
/// worker closures at spawn time, which keeps the pool embeddable in any
/// manager without dragging `D` through the channel types.
pub(crate) struct WorkerPool {
    tx: Option<Sender<WorkItem>>,
    gate: Arc<Gate>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.handles.len())
            .finish()
    }
}

impl WorkerPool {
    /// Spawns `threads` workers over a shared engine handle and delivery
    /// registry.
    pub(crate) fn spawn<D>(
        threads: usize,
        engine: SharedEngine<D>,
        registry: DeliveryRegistry,
    ) -> Self
    where
        D: TopicWordDistribution + Send + Sync + 'static,
    {
        let (tx, rx) = channel::<WorkItem>();
        let rx = Arc::new(Mutex::new(rx));
        let gate = Arc::new(Gate::default());
        let handles = (0..threads.max(1))
            .map(|_| {
                let rx = Arc::clone(&rx);
                let gate = Arc::clone(&gate);
                let engine = engine.clone();
                let registry = Arc::clone(&registry);
                std::thread::spawn(move || worker_loop(&rx, &gate, &engine, &registry))
            })
            .collect();
        WorkerPool {
            tx: Some(tx),
            gate,
            handles,
        }
    }

    /// Enqueues one slide's scheduled shards.  Returns immediately; the
    /// items run on the workers.
    pub(crate) fn dispatch(&self, items: Vec<WorkItem>) {
        if items.is_empty() {
            return;
        }
        self.gate.add(items.len());
        let tx = self.tx.as_ref().expect("pool not shut down");
        for item in items {
            tx.send(item).expect("worker channel closed");
        }
    }

    /// Blocks until every dispatched item has completed — the pipeline's
    /// sync()/drain() barrier.
    pub(crate) fn wait_idle(&self) {
        self.gate.wait_idle();
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the channel ends every worker's recv loop; join so shard
        // and engine handles are released before the manager is torn down.
        self.tx.take();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop<D: TopicWordDistribution>(
    rx: &Mutex<Receiver<WorkItem>>,
    gate: &Gate,
    engine: &SharedEngine<D>,
    registry: &DeliveryRegistry,
) {
    loop {
        // Hold the receiver lock only while pulling the next item, never
        // while refreshing, so idle workers queue on the channel rather than
        // behind a busy one.
        let item = match rx.lock().unwrap_or_else(|p| p.into_inner()).recv() {
            Ok(item) => item,
            Err(_) => return, // channel closed: pool shut down
        };
        let _complete = CompletionGuard(gate);
        let slide = {
            let engine = engine.read();
            let mut shard = item.shard.lock().unwrap_or_else(|p| p.into_inner());
            shard.refresh_scheduled(&engine, &item.delta)
        };
        deliver(registry, item.slide, &slide.updates);
        if let Some(collector) = &item.collector {
            collector
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .push(slide);
        }
    }
}
