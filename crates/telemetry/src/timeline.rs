//! Per-epoch reconstruction of the trace ring: what each slide decided,
//! what it cost, and which stage bounded it.
//!
//! The [`EpochTimeline`] folds a [`TraceLog`](crate::TraceLog) snapshot into
//! one [`EpochRecord`] per epoch.  Because every event payload carries the
//! same counts the stats structs accumulate, the timeline's totals reconcile
//! **exactly** with `ManagerStats` / `ShardStats` / `SnapshotStats` — unless
//! the ring overflowed, which [`EpochTimeline::truncated_events`] reports so
//! a consumer never mistakes a suffix for the whole stream.

use std::collections::BTreeMap;

use crate::trace::{TraceEvent, TraceEventKind};

/// Everything the trace recorded about one epoch (slide).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EpochRecord {
    /// The 1-based slide number.
    pub epoch: u64,
    /// When the index write landed (`slide_ingested`), if the event is in
    /// the ring.
    pub ingested_at_nanos: Option<u64>,
    /// Elements the slide's bucket inserted.
    pub elements: u64,
    /// Epoch snapshots captured for this slide (0 or 1 in practice).
    pub snapshots_captured: u64,
    /// Ranked lists the snapshot covered.
    pub snapshot_topics: u64,
    /// Shards whose filters fired and whose residents were classified.
    pub shards_scheduled: u64,
    /// Shards that received this epoch on a busy lane (decision deferred to
    /// the owning worker).
    pub shards_deferred: u64,
    /// Shards proven undisturbed as a whole.
    pub shards_skipped: u64,
    /// Skips charged to residents of undisturbed shards.
    pub residents_skipped: u64,
    /// Classification loops started on scheduled shards.
    pub refreshes_started: u64,
    /// Classification loops finished.
    pub refreshes_finished: u64,
    /// Residents whose query was re-run.
    pub refreshed: u64,
    /// Residents individually classified as skippable.
    pub classified_skips: u64,
    /// Result deltas produced.
    pub updates: u64,
    /// Deltas accepted into delivery queues.
    pub delivered: u64,
    /// Deltas shed by overflow policies.
    pub dropped: u64,
    /// Buckets shed for arriving beyond the reorder horizon.
    pub late_buckets_dropped: u64,
    /// Elements those shed buckets carried.
    pub late_elements_dropped: u64,
    /// Elements force-replayed into a later bucket.
    pub late_elements_replayed: u64,
    /// Refresh panics caught at the worker isolation boundary.
    pub worker_panics: u64,
    /// Dead workers replaced at dispatch.
    pub worker_respawns: u64,
    /// Shards quarantined into degraded mode.
    pub shards_quarantined: u64,
    /// Residents charged a skip because their quarantined epoch was shed.
    pub shed_residents: u64,
    /// Overload-ladder steps recorded in this epoch.
    pub overload_steps: u64,
    /// Timestamp of the epoch's first event.
    pub first_at_nanos: u64,
    /// Timestamp of the epoch's last event.
    pub last_at_nanos: u64,
}

impl EpochRecord {
    /// All evaluations the delta rules saved this epoch: shard-level plus
    /// per-resident skips (the quantity `ManagerStats::skips` accumulates).
    pub fn total_skips(&self) -> u64 {
        self.residents_skipped + self.classified_skips
    }

    /// First event → last event.
    pub fn span_nanos(&self) -> u64 {
        self.last_at_nanos.saturating_sub(self.first_at_nanos)
    }

    /// Index write → last refresh/delivery event: how long the epoch's work
    /// outlived its ingest (the pipeline's per-epoch drain).
    pub fn drain_nanos(&self) -> u64 {
        match self.ingested_at_nanos {
            Some(ingested) => self.last_at_nanos.saturating_sub(ingested),
            None => self.span_nanos(),
        }
    }

    fn absorb(&mut self, event: &TraceEvent) {
        if self.first_at_nanos == 0 || event.at_nanos < self.first_at_nanos {
            self.first_at_nanos = event.at_nanos;
        }
        self.last_at_nanos = self.last_at_nanos.max(event.at_nanos);
        match event.kind {
            TraceEventKind::SlideIngested { elements } => {
                self.ingested_at_nanos = Some(event.at_nanos);
                self.elements += elements;
            }
            TraceEventKind::SnapshotCaptured { topics } => {
                self.snapshots_captured += 1;
                self.snapshot_topics += topics;
            }
            TraceEventKind::ShardScheduled => self.shards_scheduled += 1,
            TraceEventKind::ShardDeferred => self.shards_deferred += 1,
            TraceEventKind::ShardSkipped { residents } => {
                self.shards_skipped += 1;
                self.residents_skipped += residents;
            }
            TraceEventKind::RefreshStarted => self.refreshes_started += 1,
            TraceEventKind::RefreshFinished {
                refreshed,
                skipped,
                updates,
            } => {
                self.refreshes_finished += 1;
                self.refreshed += refreshed;
                self.classified_skips += skipped;
                self.updates += updates;
            }
            TraceEventKind::DeltaDelivered { .. } => self.delivered += 1,
            TraceEventKind::DeltaDropped { .. } => self.dropped += 1,
            TraceEventKind::LateBucketDropped { elements } => {
                self.late_buckets_dropped += 1;
                self.late_elements_dropped += elements;
            }
            TraceEventKind::LateBucketReplayed { elements } => {
                self.late_elements_replayed += elements;
            }
            TraceEventKind::WorkerPanicked => self.worker_panics += 1,
            TraceEventKind::WorkerRespawned => self.worker_respawns += 1,
            TraceEventKind::ShardQuarantined { .. } => self.shards_quarantined += 1,
            TraceEventKind::EpochShed { residents } => self.shed_residents += residents,
            TraceEventKind::OverloadStep { .. } => self.overload_steps += 1,
        }
    }
}

/// The reconstructed per-epoch history of a pipelined run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EpochTimeline {
    /// One record per epoch seen in the trace, in epoch order.
    pub epochs: Vec<EpochRecord>,
    /// Events the ring shed before this reconstruction.  Non-zero means the
    /// earliest epochs here may be partial and totals will undercount.
    pub truncated_events: u64,
}

impl EpochTimeline {
    /// Folds a trace snapshot (see
    /// [`TraceLog::snapshot`](crate::TraceLog::snapshot)) into per-epoch
    /// records.  Events with `epoch == 0` (outside any slide) are ignored.
    pub fn reconstruct(events: &[TraceEvent], truncated_events: u64) -> Self {
        let mut by_epoch: BTreeMap<u64, EpochRecord> = BTreeMap::new();
        for event in events {
            if event.epoch == 0 {
                continue;
            }
            let record = by_epoch.entry(event.epoch).or_default();
            record.epoch = event.epoch;
            record.absorb(event);
        }
        EpochTimeline {
            epochs: by_epoch.into_values().collect(),
            truncated_events,
        }
    }

    /// The record of one epoch, if traced.
    pub fn epoch(&self, epoch: u64) -> Option<&EpochRecord> {
        self.epochs
            .binary_search_by_key(&epoch, |r| r.epoch)
            .ok()
            .map(|i| &self.epochs[i])
    }

    /// Total queries re-run across all epochs (reconciles with
    /// `ManagerStats::refreshes`).
    pub fn total_refreshes(&self) -> u64 {
        self.epochs.iter().map(|r| r.refreshed).sum()
    }

    /// Total evaluations skipped (reconciles with `ManagerStats::skips`).
    pub fn total_skips(&self) -> u64 {
        self.epochs.iter().map(|r| r.total_skips()).sum()
    }

    /// Total scheduled shard-slides (reconciles with the sum of
    /// `ShardStats::scheduled_slides`).
    pub fn total_shards_scheduled(&self) -> u64 {
        self.epochs.iter().map(|r| r.shards_scheduled).sum()
    }

    /// Total undisturbed shard-slides (reconciles with the sum of
    /// `ShardStats::skipped_slides`).
    pub fn total_shards_skipped(&self) -> u64 {
        self.epochs.iter().map(|r| r.shards_skipped).sum()
    }

    /// Total epoch snapshots captured (reconciles with
    /// `SnapshotStats::epochs_captured`).
    pub fn total_snapshots(&self) -> u64 {
        self.epochs.iter().map(|r| r.snapshots_captured).sum()
    }

    /// Total deltas accepted into delivery queues.
    pub fn total_delivered(&self) -> u64 {
        self.epochs.iter().map(|r| r.delivered).sum()
    }

    /// Total deltas shed by overflow policies.
    pub fn total_dropped(&self) -> u64 {
        self.epochs.iter().map(|r| r.dropped).sum()
    }

    /// The epoch whose work outlived its ingest the longest — where
    /// `pipeline_depth` stalls come from: while this epoch drains, admission
    /// of `epoch + depth` waits.
    pub fn slowest_drain(&self) -> Option<&EpochRecord> {
        self.epochs.iter().max_by_key(|r| r.drain_nanos())
    }

    /// Machine-readable dump: one object per epoch plus the truncation
    /// marker, consumable by the same tooling that reads the registry JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"truncated_events\": ");
        out.push_str(&self.truncated_events.to_string());
        out.push_str(",\n  \"epochs\": [\n");
        for (i, r) in self.epochs.iter().enumerate() {
            out.push_str(&format!(
                "    {{ \"epoch\": {}, \"elements\": {}, \"snapshots\": {}, \
                 \"shards_scheduled\": {}, \"shards_deferred\": {}, \"shards_skipped\": {}, \
                 \"refreshed\": {}, \"skips\": {}, \"updates\": {}, \
                 \"delivered\": {}, \"dropped\": {}, \"drain_ns\": {} }}{}\n",
                r.epoch,
                r.elements,
                r.snapshots_captured,
                r.shards_scheduled,
                r.shards_deferred,
                r.shards_skipped,
                r.refreshed,
                r.total_skips(),
                r.updates,
                r.delivered,
                r.dropped,
                r.drain_nanos(),
                if i + 1 == self.epochs.len() { "" } else { "," },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::ShardLabel;

    fn ev(at: u64, epoch: u64, kind: TraceEventKind) -> TraceEvent {
        TraceEvent {
            at_nanos: at,
            epoch,
            shard: Some(ShardLabel::Topic(0)),
            kind,
        }
    }

    #[test]
    fn reconstruction_groups_and_sums_per_epoch() {
        let events = vec![
            ev(10, 1, TraceEventKind::SlideIngested { elements: 5 }),
            ev(12, 1, TraceEventKind::SnapshotCaptured { topics: 3 }),
            ev(14, 1, TraceEventKind::ShardScheduled),
            ev(15, 1, TraceEventKind::RefreshStarted),
            // Epoch 2 ingests while epoch 1 still drains (pipelining).
            ev(20, 2, TraceEventKind::SlideIngested { elements: 4 }),
            ev(22, 2, TraceEventKind::ShardSkipped { residents: 3 }),
            ev(
                30,
                1,
                TraceEventKind::RefreshFinished {
                    refreshed: 2,
                    skipped: 1,
                    updates: 2,
                },
            ),
            ev(31, 1, TraceEventKind::DeltaDelivered { subscription: 7 }),
            ev(32, 1, TraceEventKind::DeltaDropped { subscription: 9 }),
            // Events outside a slide are ignored.
            ev(33, 0, TraceEventKind::ShardDeferred),
        ];
        let timeline = EpochTimeline::reconstruct(&events, 0);
        assert_eq!(timeline.epochs.len(), 2);

        let e1 = timeline.epoch(1).unwrap();
        assert_eq!(e1.ingested_at_nanos, Some(10));
        assert_eq!(e1.elements, 5);
        assert_eq!(e1.snapshots_captured, 1);
        assert_eq!(e1.snapshot_topics, 3);
        assert_eq!(e1.shards_scheduled, 1);
        assert_eq!((e1.refreshed, e1.classified_skips, e1.updates), (2, 1, 2));
        assert_eq!((e1.delivered, e1.dropped), (1, 1));
        assert_eq!(e1.drain_nanos(), 22, "ingest at 10, last event at 32");

        let e2 = timeline.epoch(2).unwrap();
        assert_eq!(e2.shards_skipped, 1);
        assert_eq!(e2.residents_skipped, 3);
        assert_eq!(e2.total_skips(), 3);

        assert_eq!(timeline.total_refreshes(), 2);
        assert_eq!(timeline.total_skips(), 4);
        assert_eq!(timeline.total_shards_scheduled(), 1);
        assert_eq!(timeline.total_shards_skipped(), 1);
        assert_eq!(timeline.total_snapshots(), 1);
        assert_eq!(timeline.slowest_drain().unwrap().epoch, 1);
        assert!(timeline.epoch(3).is_none());
        let json = timeline.to_json();
        assert!(json.contains("\"epoch\": 1"));
        assert!(json.contains("\"truncated_events\": 0"));
    }
}
