//! # ksir-types
//!
//! Core data model shared by every crate in the `ksir` workspace.
//!
//! The k-SIR paper (Wang, Li, Tan — EDBT 2019) models a *social stream* as a
//! sequence of *social elements* `⟨ts, doc, ref⟩`: a timestamp, a bag-of-words
//! document drawn from a vocabulary, and a set of references to earlier
//! elements (retweets, citations, comment parents, …).  Queries and elements
//! are both projected into a `z`-dimensional *topic space*; a query is a
//! normalised preference vector over topics.
//!
//! This crate defines those primitives:
//!
//! * strongly-typed identifiers ([`ElementId`], [`WordId`], [`TopicId`]) and
//!   [`Timestamp`]s,
//! * [`Document`] — a bag of words with frequencies,
//! * [`SocialElement`] — the stream item,
//! * [`TopicVector`] / [`QueryVector`] — distributions over topics,
//! * [`Vocabulary`] — the word ⇄ id mapping,
//! * [`KsirError`] — the shared error type, and
//! * small deterministic-randomness helpers used by tests and generators.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod element;
pub mod error;
pub mod ids;
pub mod rng;
pub mod topic_model;
pub mod vector;
pub mod vocab;

pub use element::{Document, SocialElement, SocialElementBuilder};
pub use error::{KsirError, Result};
pub use ids::{ElementId, Timestamp, TopicId, WordId};
pub use topic_model::{DenseTopicWordTable, TopicWordDistribution};
pub use vector::{QueryVector, TopicVector};
pub use vocab::Vocabulary;
