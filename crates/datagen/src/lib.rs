//! # ksir-datagen
//!
//! Synthetic social-stream generation calibrated to the shape of the paper's
//! datasets (Table 3).
//!
//! The paper evaluates on AMiner (academic papers + citations), Reddit
//! (submissions + comments) and Twitter (tweets + hashtag propagation).  The
//! raw datasets are not redistributable, so this crate generates streams with
//! the *same structural properties the algorithms are sensitive to*:
//!
//! * Zipfian word frequencies over a planted topic model, so per-element
//!   scores are skewed (only a few elements score highly for any query) and
//!   each element is concentrated on one or two topics — the two properties
//!   §4 of the paper exploits for pruning;
//! * per-dataset average document lengths and reference counts matching
//!   Table 3;
//! * reference (citation / reply / retweet) graphs with preferential
//!   attachment and recency bias, so influence is concentrated on a few
//!   trending elements, as in real social streams;
//! * a Poisson-like arrival process over a configurable time span, so sliding
//!   windows of different lengths contain realistically varying numbers of
//!   active elements.
//!
//! Everything is seeded and deterministic: the same profile + seed always
//! produces the same stream, the same queries, and therefore bit-identical
//! experiment results.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod planted;
pub mod profile;
pub mod queries;
pub mod stream;

pub use planted::PlantedTopicModel;
pub use profile::DatasetProfile;
pub use queries::{GeneratedQuery, QueryWorkloadGenerator};
pub use stream::{GeneratedStream, StreamGenerator};
