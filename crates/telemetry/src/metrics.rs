//! The unified metrics registry: atomic counters and gauges plus
//! log-bucketed latency histograms, keyed by static stage names.
//!
//! Registration (the first `counter("x")` for a given name) takes a write
//! lock on the name map; every *use* after that is a plain atomic op on an
//! `Arc` handle the instrumented code holds on to, so the hot paths are
//! lock-free.  Names are `&'static str` by design: the set of stages is part
//! of the program, not of the data, which keeps the registry allocation-free
//! after warm-up and makes the exported schema stable across runs.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Duration;

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n` to the count.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one to the count.
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins instantaneous value (queue depths, watermark positions,
/// folded stats views).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Overwrites the value.
    pub fn set(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Adds `n` to the value.  Together with [`Gauge::sub`] this makes a
    /// gauge usable as a live occupancy count (active quarantines, in-flight
    /// work) that concurrent writers move without a read-modify-write race.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n` from the value, saturating at zero: a release racing a
    /// stale reader must never wrap the gauge to `u64::MAX`.
    pub fn sub(&self, n: u64) {
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
                Some(cur.saturating_sub(n))
            });
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of log₂ buckets: bucket `i` counts samples in `[2^(i-1), 2^i)`
/// nanoseconds (bucket 0 is `0..1` ns), so the top bucket starts at
/// `2^46` ns ≈ 19.5 h — far beyond any stage this registry times.
const BUCKETS: usize = 48;

/// A lock-free latency histogram with logarithmic (power-of-two nanosecond)
/// buckets.
///
/// Quantiles are read out as the **upper bound** of the bucket the rank
/// falls in (clamped to the observed maximum), i.e. conservative to within
/// a factor of two — plenty for "which stage bounds the slide interval"
/// questions, at the cost of one `fetch_add` per sample.
pub struct Histogram {
    counts: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_nanos: AtomicU64,
    max_nanos: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum_nanos: AtomicU64::new(0),
            max_nanos: AtomicU64::new(0),
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("p50", &self.p50())
            .field("p99", &self.p99())
            .field("max", &self.max())
            .finish()
    }
}

fn bucket_of(nanos: u64) -> usize {
    ((64 - nanos.leading_zeros()) as usize).min(BUCKETS - 1)
}

fn bucket_upper_bound(index: usize) -> u64 {
    if index == 0 {
        1
    } else {
        1u64 << index
    }
}

impl Histogram {
    /// Records one duration sample.
    pub fn record(&self, sample: Duration) {
        let nanos = sample.as_nanos().min(u64::MAX as u128) as u64;
        self.counts[bucket_of(nanos)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // `fetch_add` would wrap silently once the running sum crosses
        // u64::MAX (~584 years of nanoseconds, but only ~multi-hour at high
        // sample rates of large values); saturate instead so `sum`/`mean`
        // degrade to a pinned ceiling rather than a nonsense small number.
        let _ = self
            .sum_nanos
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
                Some(cur.saturating_add(nanos))
            });
        self.max_nanos.fetch_max(nanos, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> Duration {
        Duration::from_nanos(self.sum_nanos.load(Ordering::Relaxed))
    }

    /// Mean sample (zero when empty).
    pub fn mean(&self) -> Duration {
        match self
            .sum_nanos
            .load(Ordering::Relaxed)
            .checked_div(self.count())
        {
            Some(mean) => Duration::from_nanos(mean),
            None => Duration::ZERO,
        }
    }

    /// Largest sample seen.
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max_nanos.load(Ordering::Relaxed))
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as the upper bound of its bucket,
    /// clamped to the observed maximum.  Zero when empty.
    pub fn quantile(&self, q: f64) -> Duration {
        let total = self.count();
        if total == 0 {
            return Duration::ZERO;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (index, bucket) in self.counts.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                let bound = bucket_upper_bound(index);
                return Duration::from_nanos(bound.min(self.max_nanos.load(Ordering::Relaxed)));
            }
        }
        self.max()
    }

    /// Median latency.
    pub fn p50(&self) -> Duration {
        self.quantile(0.50)
    }

    /// 95th-percentile latency.
    pub fn p95(&self) -> Duration {
        self.quantile(0.95)
    }

    /// 99th-percentile latency.
    pub fn p99(&self) -> Duration {
        self.quantile(0.99)
    }

    /// Non-empty buckets as `(upper_bound_nanos, cumulative_count)` pairs,
    /// for the Prometheus exporter.
    pub(crate) fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cumulative = 0u64;
        for (index, bucket) in self.counts.iter().enumerate() {
            let count = bucket.load(Ordering::Relaxed);
            if count > 0 {
                cumulative += count;
                out.push((bucket_upper_bound(index), cumulative));
            }
        }
        out
    }
}

#[derive(Debug, Default)]
struct Families {
    counters: BTreeMap<&'static str, Arc<Counter>>,
    gauges: BTreeMap<&'static str, Arc<Gauge>>,
    histograms: BTreeMap<&'static str, Arc<Histogram>>,
}

/// One metric family as the exporters consume it: name-sorted handles.
pub(crate) type Named<T> = Vec<(&'static str, Arc<T>)>;

/// The registry: one namespace of counters, gauges and histograms shared by
/// every layer of the pipeline (engine, snapshots, shards, workers,
/// delivery), exported through one schema
/// ([`render_prometheus`](MetricsRegistry::render_prometheus) /
/// [`to_json`](MetricsRegistry::to_json)).
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    families: RwLock<Families>,
}

macro_rules! get_or_register {
    ($self:ident, $family:ident, $name:ident) => {{
        if let Some(found) = $self
            .families
            .read()
            .unwrap_or_else(|p| p.into_inner())
            .$family
            .get($name)
        {
            return Arc::clone(found);
        }
        let mut families = $self.families.write().unwrap_or_else(|p| p.into_inner());
        Arc::clone(families.$family.entry($name).or_default())
    }};
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter registered under `name`, created on first use.  Hold the
    /// returned handle where the increment happens; re-looking it up per
    /// event works but pays the read lock.
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        get_or_register!(self, counters, name)
    }

    /// The gauge registered under `name`, created on first use.
    pub fn gauge(&self, name: &'static str) -> Arc<Gauge> {
        get_or_register!(self, gauges, name)
    }

    /// The histogram registered under `name`, created on first use.
    pub fn histogram(&self, name: &'static str) -> Arc<Histogram> {
        get_or_register!(self, histograms, name)
    }

    /// Point-in-time copy of every registered handle, for the exporters.
    pub(crate) fn export_view(&self) -> (Named<Counter>, Named<Gauge>, Named<Histogram>) {
        let families = self.families.read().unwrap_or_else(|p| p.into_inner());
        (
            families
                .counters
                .iter()
                .map(|(&k, v)| (k, Arc::clone(v)))
                .collect(),
            families
                .gauges
                .iter()
                .map(|(&k, v)| (k, Arc::clone(v)))
                .collect(),
            families
                .histograms
                .iter()
                .map(|(&k, v)| (k, Arc::clone(v)))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_accumulate() {
        let registry = MetricsRegistry::new();
        let c = registry.counter("stage.events");
        c.inc();
        c.add(4);
        // The same name resolves to the same underlying counter.
        assert_eq!(registry.counter("stage.events").get(), 5);
        let g = registry.gauge("stage.depth");
        g.set(3);
        g.set(7);
        assert_eq!(registry.gauge("stage.depth").get(), 7);
    }

    #[test]
    fn histogram_quantiles_bracket_the_samples() {
        let h = Histogram::default();
        assert_eq!(h.quantile(0.5), Duration::ZERO);
        for micros in [10u64, 20, 30, 40, 1000] {
            h.record(Duration::from_micros(micros));
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.max(), Duration::from_micros(1000));
        // p50 falls in the bucket holding 10–20 µs samples; the reported
        // upper bound must bracket the true median within a factor of two.
        let p50 = h.p50();
        assert!(p50 >= Duration::from_micros(16) && p50 <= Duration::from_micros(64));
        // The tail quantiles land on the 1 ms outlier's bucket, clamped to
        // the observed max.
        assert_eq!(h.p99(), Duration::from_micros(1000));
        assert!(h.mean() >= Duration::from_micros(220));
        assert!(h.sum() == Duration::from_micros(1100));
    }

    #[test]
    fn histogram_sum_saturates_instead_of_wrapping() {
        let h = Histogram::default();
        let huge = Duration::from_nanos(u64::MAX);
        h.record(huge);
        h.record(huge);
        // Two u64::MAX samples would wrap `sum_nanos` to u64::MAX - 1 under
        // fetch_add; saturation pins it at the ceiling.
        assert_eq!(h.sum(), Duration::from_nanos(u64::MAX));
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), huge);
        // Further samples keep the sum pinned rather than restarting it.
        h.record(Duration::from_secs(1));
        assert_eq!(h.sum(), Duration::from_nanos(u64::MAX));
    }

    #[test]
    fn gauge_add_sub_saturates_at_zero() {
        let g = Gauge::default();
        g.add(3);
        g.sub(1);
        assert_eq!(g.get(), 2);
        g.sub(10);
        assert_eq!(g.get(), 0, "sub must saturate, never wrap");
    }

    #[test]
    fn histogram_handles_extreme_samples() {
        let h = Histogram::default();
        h.record(Duration::ZERO);
        h.record(Duration::from_secs(100_000)); // beyond the top bucket start
        assert_eq!(h.count(), 2);
        assert_eq!(h.p99(), Duration::from_secs(100_000));
        assert!(h.p50() <= Duration::from_nanos(1));
    }

    #[test]
    fn concurrent_recording_is_consistent() {
        let registry = Arc::new(MetricsRegistry::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let registry = Arc::clone(&registry);
                std::thread::spawn(move || {
                    let c = registry.counter("par.count");
                    let h = registry.histogram("par.lat");
                    for i in 0..1000 {
                        c.inc();
                        h.record(Duration::from_nanos(i));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(registry.counter("par.count").get(), 4000);
        assert_eq!(registry.histogram("par.lat").count(), 4000);
    }
}
