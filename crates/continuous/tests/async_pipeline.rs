//! Equivalence of the asynchronous pipeline with the synchronous API, and
//! subscription-lifecycle accounting under both.
//!
//! The pipeline's contract: for any scenario, the multiset of
//! [`ResultDelta`]s drained from the per-subscriber delivery queues equals —
//! slide for slide — the `updates` the synchronous [`SlideOutcome`] API
//! reports for the same stream, and the work counters still reconcile to
//! `slides × live subscriptions`.  Mid-stream subscribe/unsubscribe must
//! charge a subscription only for the slides it was actually alive for.
//!
//! [`ResultDelta`]: ksir_continuous::ResultDelta
//! [`SlideOutcome`]: ksir_continuous::SlideOutcome

use std::collections::BTreeMap;

use ksir_continuous::{
    DeliveryConfig, OverflowPolicy, ResultDelta, ShardConfig, SubscriptionId, SubscriptionManager,
};
use ksir_core::{Algorithm, EngineConfig, KsirEngine, KsirQuery, ScoringConfig};
use ksir_datagen::{DatasetProfile, GeneratedStream, QueryWorkloadGenerator, StreamGenerator};
use ksir_stream::WindowConfig;
use ksir_types::{DenseTopicWordTable, QueryVector};

/// Builds a planted-stream manager with a mixed workload under `config`
/// (same construction as the sharding tests, so subscription ids line up
/// across managers built with the same seed).
fn planted_manager(
    seed: u64,
    config: ShardConfig,
) -> (
    SubscriptionManager<DenseTopicWordTable>,
    Vec<(SubscriptionId, KsirQuery, Algorithm)>,
    GeneratedStream,
) {
    let profile = DatasetProfile::twitter().scaled(0.02).with_topics(12);
    let stream = StreamGenerator::new(profile, seed)
        .unwrap()
        .generate()
        .unwrap();
    let window = WindowConfig::new(120, 15).unwrap();
    let engine: KsirEngine<DenseTopicWordTable> = KsirEngine::new(
        stream.planted.phi().clone(),
        EngineConfig::new(window, ScoringConfig::default()),
    )
    .unwrap();
    let mut mgr = SubscriptionManager::with_shard_config(engine, config);

    let workload = QueryWorkloadGenerator::new(&stream.planted, seed ^ 0x5eed)
        .generate(4, stream.end_time())
        .unwrap();
    let algorithms = [
        Algorithm::Mtts,
        Algorithm::Mttd,
        Algorithm::TopkRepresentative,
        Algorithm::Celf,
    ];
    let mut subs = Vec::new();
    for (i, generated) in workload.into_iter().enumerate() {
        let mut narrow = vec![0.0; 12];
        narrow[(3 * i) % 12] = 0.8;
        narrow[(3 * i + 1) % 12] = 0.2;
        for vector in [QueryVector::new(narrow).unwrap(), generated.vector] {
            let q = KsirQuery::new(4, vector).unwrap();
            let algorithm = algorithms[subs.len() % algorithms.len()];
            let id = mgr.subscribe(q.clone(), algorithm).unwrap();
            subs.push((id, q, algorithm));
        }
    }
    (mgr, subs, stream)
}

/// The deltas drained from the per-subscriber queues equal the synchronous
/// path's `SlideOutcome.updates` slide for slide, for serial and forced-
/// multi-thread pools alike.
#[test]
fn drained_deltas_equal_sync_outcomes_slide_for_slide() {
    for (seed, config) in [
        (7u64, ShardConfig::serial()),
        (7u64, ShardConfig::default().with_threads(Some(4))),
        (21u64, ShardConfig::default().with_threads(Some(4))),
    ] {
        // Synchronous reference run.
        let (mut sync_mgr, sync_subs, stream) = planted_manager(seed, config);
        let outcomes = sync_mgr.ingest_stream(stream.iter_pairs()).unwrap();

        // Pipelined run over the same stream and workload.
        let (mut async_mgr, async_subs, _) = planted_manager(seed, config);
        assert_eq!(
            sync_subs.iter().map(|s| s.0).collect::<Vec<_>>(),
            async_subs.iter().map(|s| s.0).collect::<Vec<_>>(),
            "same construction order ⇒ same ids"
        );
        let receivers: Vec<_> = async_subs
            .iter()
            .map(|(id, _, _)| {
                (
                    *id,
                    async_mgr
                        .attach_delivery(*id, DeliveryConfig::default().with_capacity(1 << 16))
                        .expect("live subscription"),
                )
            })
            .collect();
        let tickets = async_mgr.ingest_stream_async(stream.iter_pairs()).unwrap();
        assert_eq!(tickets.len(), outcomes.len(), "same bucket cutting");
        async_mgr.sync();

        // Group every drained delta by the slide that produced it.
        let mut by_slide: BTreeMap<u64, Vec<ResultDelta>> = BTreeMap::new();
        for (_, rx) in &receivers {
            assert_eq!(rx.dropped(), 0, "capacity was ample");
            for delivery in rx.drain() {
                by_slide
                    .entry(delivery.slide)
                    .or_default()
                    .push(delivery.delta);
            }
        }
        for deltas in by_slide.values_mut() {
            deltas.sort_by_key(|d| d.subscription);
        }

        for (i, outcome) in outcomes.iter().enumerate() {
            let slide = (i + 1) as u64;
            let drained = by_slide.remove(&slide).unwrap_or_default();
            assert_eq!(
                drained, outcome.updates,
                "seed={seed} {config:?}: slide {slide} deltas diverge"
            );
        }
        assert!(
            by_slide.is_empty(),
            "async path delivered deltas for unknown slides: {:?}",
            by_slide.keys().collect::<Vec<_>>()
        );

        // Aggregate counters agree too.
        assert_eq!(sync_mgr.stats(), async_mgr.stats());
        for (id, _, _) in &sync_subs {
            assert_eq!(
                sync_mgr.subscription_stats(*id),
                async_mgr.subscription_stats(*id),
                "seed={seed}: per-subscription counters diverge for {id}"
            );
        }
    }
}

/// Subscribing and unsubscribing mid-stream charges a subscription exactly
/// the slides it was alive for — `refreshes + skips` per subscription equals
/// its live-slide count, and the manager total is the sum over lifetimes.
#[test]
fn mid_stream_lifecycle_charges_only_live_slides() {
    let (mut mgr, subs, stream) = planted_manager(63, ShardConfig::default().with_threads(Some(2)));
    let early = subs[0].0;
    let query = subs[1].1.clone();

    // Replay bucket by bucket through the async API so the lifecycle calls
    // exercise the quiesce barrier, not just the synchronous path.
    let bucket_len = 15;
    let mut pending = Vec::new();
    let mut bucket_end = bucket_len;
    let mut slides = 0usize;
    let mut late = None;
    let mut early_final = None;
    let mut early_lifetime = 0usize;
    let mut late_born_after = 0usize;

    let flush = |mgr: &mut SubscriptionManager<DenseTopicWordTable>,
                 pending: &mut Vec<_>,
                 end: u64,
                 slides: &mut usize| {
        mgr.ingest_bucket_async(std::mem::take(pending), ksir_types::Timestamp(end))
            .unwrap()
            .detach();
        *slides += 1;
    };

    for (element, tv) in stream.iter_pairs() {
        while element.ts.raw() > bucket_end {
            flush(&mut mgr, &mut pending, bucket_end, &mut slides);
            bucket_end += bucket_len;
            if slides == 3 {
                // Unsubscribe one original resident: its counters freeze at
                // 3 live slides.
                mgr.sync();
                let stats = mgr.subscription_stats(early).unwrap();
                early_lifetime = stats.refreshes + stats.skips;
                assert_eq!(early_lifetime, 3, "alive for exactly 3 slides");
                early_final = Some(stats);
                assert!(mgr.unsubscribe(early));
            }
            if slides == 5 {
                // A fresh subscription joins mid-stream.
                late = Some(mgr.subscribe(query.clone(), Algorithm::Mttd).unwrap());
                late_born_after = slides;
            }
        }
        pending.push((element, tv));
    }
    flush(&mut mgr, &mut pending, bucket_end, &mut slides);
    mgr.sync();

    assert!(slides > 6, "stream too short for the lifecycle schedule");
    let late = late.expect("late subscription registered");
    let late_stats = mgr.subscription_stats(late).unwrap();
    assert_eq!(
        late_stats.refreshes + late_stats.skips,
        slides - late_born_after,
        "late subscription charged only for slides after it joined"
    );
    for (id, _, _) in subs.iter().skip(1) {
        let stats = mgr.subscription_stats(*id).unwrap();
        assert_eq!(
            stats.refreshes + stats.skips,
            slides,
            "{id} lived the whole stream"
        );
    }

    // Manager totals are the sum over lifetimes: the early subscription's
    // frozen counters (folded into the retired tally when its shard emptied,
    // or still live in a shared shard) plus everyone else's.
    let stats = mgr.stats();
    let expected = early_lifetime + (subs.len() - 1) * slides + (slides - late_born_after);
    assert_eq!(
        stats.refreshes + stats.skips,
        expected,
        "manager counters must equal the sum of per-subscription lifetimes \
         (early={early_final:?})"
    );
    assert_eq!(stats.slides, slides);
}

/// A subscriber that never drains its bounded queue loses only its own
/// oldest deltas (counted, not silently) and never stalls ingestion; the
/// drained suffix plus the dropped count accounts for every result change.
#[test]
fn slow_consumer_sheds_deltas_without_losing_account() {
    let (mut mgr, subs, stream) = planted_manager(7, ShardConfig::default().with_threads(Some(2)));
    let victim = subs[0].0;
    let rx = mgr
        .attach_delivery(
            victim,
            DeliveryConfig::default()
                .with_capacity(2)
                .with_policy(OverflowPolicy::DropOldest),
        )
        .unwrap();
    mgr.ingest_stream_async(stream.iter_pairs()).unwrap();
    mgr.sync();

    let changes = mgr.subscription_stats(victim).unwrap().result_changes;
    let drained = rx.drain();
    assert!(drained.len() <= 2, "bounded queue holds at most capacity");
    assert_eq!(
        drained.len() as u64 + rx.dropped(),
        changes as u64,
        "every result change was either delivered or counted as dropped"
    );
    // The freshest deltas survive under DropOldest.
    if let Some(last) = drained.last() {
        assert!(drained.iter().all(|d| d.slide <= last.slide));
    }
}

/// Unsubscribing closes the delivery queue; the drained history up to the
/// removal is still available to the consumer.
#[test]
fn unsubscribe_closes_the_delivery_queue() {
    let (mut mgr, subs, stream) = planted_manager(21, ShardConfig::serial());
    let id = subs[0].0;
    let rx = mgr.attach_delivery(id, DeliveryConfig::default()).unwrap();
    mgr.ingest_stream_async(stream.iter_pairs()).unwrap();
    mgr.sync();
    assert!(!rx.is_closed());
    assert!(mgr.unsubscribe(id));
    assert!(rx.is_closed(), "removal closes the producer side");
    let drained = rx.drain();
    let _ = drained;
}
