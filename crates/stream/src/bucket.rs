//! Grouping an ordered element stream into fixed-length buckets.

use ksir_types::{KsirError, Result, SocialElement, Timestamp};

use crate::window::WindowConfig;

/// Groups a timestamp-ordered stream of elements into buckets of length `L`.
///
/// The k-SIR architecture (Figure 4) updates the active window and the ranked
/// lists once per bucket, at the discrete times `L, 2L, 3L, …`.  The
/// bucketizer enforces the ordering contract of the stream: feeding an element
/// older than an already-emitted bucket is an error.
#[derive(Debug)]
pub struct Bucketizer {
    config: WindowConfig,
    current_end: Timestamp,
    pending: Vec<SocialElement>,
    emitted_through: Option<Timestamp>,
}

/// One bucket of elements: everything posted in `(end - L, end]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Bucket {
    /// Bucket end time (a multiple of the bucket length `L`).
    pub end: Timestamp,
    /// Elements in the bucket, in arrival order.
    pub elements: Vec<SocialElement>,
}

impl Bucketizer {
    /// Creates a bucketizer for the given window configuration.
    pub fn new(config: WindowConfig) -> Self {
        Bucketizer {
            config,
            current_end: Timestamp(config.bucket_len()),
            pending: Vec::new(),
            emitted_through: None,
        }
    }

    /// The end time of the bucket currently being filled.
    pub fn current_bucket_end(&self) -> Timestamp {
        self.current_end
    }

    /// Feeds one element, returning every bucket that became complete.
    ///
    /// A bucket with end time `b` is complete as soon as an element with
    /// `ts > b` arrives; empty buckets are emitted too so the window always
    /// advances at a steady cadence even through silent periods.
    pub fn push(&mut self, element: SocialElement) -> Result<Vec<Bucket>> {
        if let Some(done) = self.emitted_through {
            if element.ts <= done {
                return Err(KsirError::TimestampRegression {
                    last: done,
                    offending: element.ts,
                });
            }
        }
        let mut completed = Vec::new();
        while element.ts > self.current_end {
            completed.push(self.roll());
        }
        self.pending.push(element);
        Ok(completed)
    }

    /// Flushes the bucket currently being filled (used at end of stream).
    pub fn flush(&mut self) -> Option<Bucket> {
        if self.pending.is_empty() {
            return None;
        }
        Some(self.roll())
    }

    fn roll(&mut self) -> Bucket {
        let bucket = Bucket {
            end: self.current_end,
            elements: std::mem::take(&mut self.pending),
        };
        self.emitted_through = Some(self.current_end);
        self.current_end = Timestamp(self.current_end.raw() + self.config.bucket_len());
        bucket
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksir_types::{Document, ElementId};

    fn elem(id: u64, ts: u64) -> SocialElement {
        SocialElement::original(ElementId(id), Timestamp(ts), Document::new())
    }

    #[test]
    fn elements_accumulate_until_bucket_boundary() {
        let cfg = WindowConfig::new(20, 5).unwrap();
        let mut b = Bucketizer::new(cfg);
        assert!(b.push(elem(1, 1)).unwrap().is_empty());
        assert!(b.push(elem(2, 4)).unwrap().is_empty());
        assert!(b.push(elem(3, 5)).unwrap().is_empty());
        // ts = 6 closes the first bucket (end = 5)
        let done = b.push(elem(4, 6)).unwrap();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].end, Timestamp(5));
        assert_eq!(done[0].elements.len(), 3);
    }

    #[test]
    fn silent_periods_emit_empty_buckets() {
        let cfg = WindowConfig::new(20, 5).unwrap();
        let mut b = Bucketizer::new(cfg);
        b.push(elem(1, 2)).unwrap();
        let done = b.push(elem(2, 18)).unwrap();
        // buckets ending at 5, 10, 15 all complete; 5 has one element
        assert_eq!(done.len(), 3);
        assert_eq!(done[0].elements.len(), 1);
        assert!(done[1].elements.is_empty());
        assert!(done[2].elements.is_empty());
        assert_eq!(b.current_bucket_end(), Timestamp(20));
    }

    #[test]
    fn flush_returns_partial_bucket() {
        let cfg = WindowConfig::new(20, 5).unwrap();
        let mut b = Bucketizer::new(cfg);
        assert!(b.flush().is_none());
        b.push(elem(1, 3)).unwrap();
        let last = b.flush().unwrap();
        assert_eq!(last.end, Timestamp(5));
        assert_eq!(last.elements.len(), 1);
        assert!(b.flush().is_none());
    }

    #[test]
    fn regression_into_emitted_bucket_is_rejected() {
        let cfg = WindowConfig::new(20, 5).unwrap();
        let mut b = Bucketizer::new(cfg);
        b.push(elem(1, 3)).unwrap();
        b.push(elem(2, 9)).unwrap(); // emits bucket ending at 5
        let err = b.push(elem(3, 4)).unwrap_err();
        assert!(matches!(err, KsirError::TimestampRegression { .. }));
        // but anything newer than the emitted boundary is fine, even if it is
        // older than the previous element (same-bucket disorder is allowed)
        assert!(b.push(elem(4, 8)).is_ok());
    }
}
