//! Live dashboard: many standing k-SIR queries maintained incrementally.
//!
//! A production deployment does not re-run queries on demand — it holds
//! *subscriptions* (one per dashboard panel, per user, per alerting rule)
//! whose results must stay current as the window slides.  This example
//! registers a panel of standing queries with very different topic interests
//! over a Twitter-shaped stream, replays the stream through the
//! `SubscriptionManager`, and prints each panel's result only when it
//! actually changes — together with how much evaluation work the
//! delta-refresh rules saved compared to recomputing every panel on every
//! slide.
//!
//! Run with `cargo run --release --example live_dashboard`.

use ksir::continuous::SubscriptionManager;
use ksir::datagen::{DatasetProfile, StreamGenerator};
use ksir::{
    Algorithm, EngineConfig, KsirEngine, KsirQuery, QueryVector, ScoringConfig, WindowConfig,
};

fn main() -> Result<(), ksir::KsirError> {
    let profile = DatasetProfile::twitter().scaled(0.25).with_topics(20);
    let stream = StreamGenerator::new(profile, 77)?.generate()?;
    println!(
        "Streaming {} posts over {:.1} hours into a live dashboard…\n",
        stream.len(),
        stream.end_time().raw() as f64 / 60.0,
    );

    let config = EngineConfig::new(
        WindowConfig::new(6 * 60, 15)?,
        ScoringConfig::new(0.5, 1.0)?,
    );
    let engine = KsirEngine::new(stream.planted.phi().clone(), config)?;
    let num_topics = engine.num_topics();
    let mut dashboard = SubscriptionManager::new(engine);

    // One panel per pair of adjacent topics: narrow interests, mixed between
    // the two index-based algorithms.
    let mut panels = Vec::new();
    for i in 0..10 {
        let mut weights = vec![0.0; num_topics];
        weights[(2 * i) % num_topics] = 0.7;
        weights[(2 * i + 1) % num_topics] = 0.3;
        let query = KsirQuery::new(4, QueryVector::new(weights)?)?;
        let algorithm = if i % 2 == 0 {
            Algorithm::Mttd
        } else {
            Algorithm::Mtts
        };
        let id = dashboard.subscribe(query, algorithm)?;
        panels.push(id);
    }
    println!(
        "Registered {} standing queries.\n",
        dashboard.subscription_count()
    );

    for outcome in dashboard.ingest_stream(stream.iter_pairs())? {
        let t = outcome.report.delta.to;
        for update in &outcome.updates {
            println!(
                "[t={:>5}] {}: score {:.3} -> {:.3}  +{:?} -{:?}  ({:?})",
                t.raw(),
                update.subscription,
                update.score_before,
                update.score_after,
                update.added.iter().map(|e| e.raw()).collect::<Vec<_>>(),
                update.removed.iter().map(|e| e.raw()).collect::<Vec<_>>(),
                update.reason,
            );
        }
    }

    let stats = dashboard.stats();
    let evaluations = stats.slides * panels.len();
    println!(
        "\n{} slides × {} panels = {} potential evaluations; \
         {} refreshes, {} skipped by the delta rules ({:.1}% saved).",
        stats.slides,
        panels.len(),
        evaluations,
        stats.refreshes,
        stats.skips,
        100.0 * stats.skips as f64 / evaluations.max(1) as f64,
    );

    // How the panels spread over topic shards and what each shard skipped.
    println!("\nPer-shard skip rates:");
    for shard in dashboard.shard_stats() {
        println!(
            "  {}: {} panels, scheduled {}/{} slides, {} refreshes / {} skips ({:.1}% skipped)",
            shard.key,
            shard.subscriptions,
            shard.scheduled_slides,
            shard.scheduled_slides + shard.skipped_slides,
            shard.refreshes,
            shard.skips,
            100.0 * shard.skip_rate(),
        );
    }

    // Final state of every panel.
    println!("\nFinal dashboard:");
    for &id in &panels {
        let result = dashboard.result(id).expect("panel evaluated");
        println!(
            "  {}: {:?} (score {:.3})",
            id,
            result.elements.iter().map(|e| e.raw()).collect::<Vec<_>>(),
            result.score,
        );
    }
    Ok(())
}
