//! Standing-query maintenance scenario shared by the `continuous*` benches
//! and the CI perf gate (`perf_gate`).
//!
//! The workload the `ksir-continuous` subsystem exists for: a Twitter-shaped
//! stream replayed bucket by bucket while a panel of standing queries must be
//! kept current.  Three maintenance strategies are measured over the *same*
//! pre-generated stream from a fresh engine each run, so timing differences
//! are exactly the maintenance saving:
//!
//! * [`MaintenanceScenario::run_recompute`] — the naive baseline: re-run
//!   every query after every bucket, no delta rules at all.
//! * [`MaintenanceScenario::run_managed`] with
//!   [`ShardConfig::unsharded`](ksir_continuous::ShardConfig::unsharded) —
//!   PR-1's serial delta refresh: one shard, one thread, per-subscription
//!   skip rules.
//! * [`MaintenanceScenario::run_managed`] with the default config — the
//!   sharded path: topic-keyed shards scheduled by projected touch filters,
//!   refreshed on scoped worker threads.

use std::time::{Duration, Instant};

use ksir_continuous::{ManagerStats, ShardConfig, ShardStats, SubscriptionManager};
use ksir_core::{Algorithm, EngineConfig, KsirEngine, KsirQuery, ScoringConfig};
use ksir_datagen::{DatasetProfile, GeneratedStream, StreamGenerator};
use ksir_stream::WindowConfig;
use ksir_types::{DenseTopicWordTable, QueryVector};

/// A pre-generated stream plus the standing-query panel to maintain over it.
#[derive(Debug)]
pub struct MaintenanceScenario {
    /// The element stream, replayed identically by every strategy.
    pub stream: GeneratedStream,
    /// The standing queries and their algorithms.
    pub queries: Vec<(KsirQuery, Algorithm)>,
    window: WindowConfig,
    scoring: ScoringConfig,
}

/// Timing and work counters of one maintenance run.
#[derive(Debug, Clone)]
pub struct MaintenanceRun {
    /// Wall-clock time for the full replay (ingestion + refreshes).
    pub elapsed: Duration,
    /// Slide/refresh/skip counters (recompute runs report all-refresh).
    pub stats: ManagerStats,
    /// Per-shard counters (empty for the recompute baseline).
    pub shard_stats: Vec<ShardStats>,
}

impl MaintenanceRun {
    /// Fraction of slide-time evaluations the delta rules skipped.
    pub fn skip_ratio(&self) -> f64 {
        let total = self.stats.refreshes + self.stats.skips;
        if total == 0 {
            0.0
        } else {
            self.stats.skips as f64 / total as f64
        }
    }

    /// Maintained subscription-slides per second of wall time.
    pub fn throughput(&self) -> f64 {
        let evaluations = self.stats.refreshes + self.stats.skips;
        if self.elapsed.is_zero() {
            0.0
        } else {
            evaluations as f64 / self.elapsed.as_secs_f64()
        }
    }
}

impl MaintenanceScenario {
    /// The standard workload: a ~10k-element / 50-topic Twitter-shaped
    /// stream, a 6-hour window with 15-minute buckets, and 16 narrow
    /// standing queries (1–2 support topics each — users follow a handful of
    /// topics, not all fifty), alternating MTTD and MTTS.
    pub fn standard() -> Self {
        Self::sized(1.67, 16)
    }

    /// A scaled-down variant for smoke tests.
    pub fn smoke() -> Self {
        Self::sized(0.1, 8)
    }

    fn sized(scale: f64, num_subscriptions: usize) -> Self {
        let profile = DatasetProfile::twitter().scaled(scale).with_topics(50);
        let stream = StreamGenerator::new(profile, 4242)
            .unwrap()
            .generate()
            .unwrap();
        let num_topics = stream.planted.num_topics();
        let queries = (0..num_subscriptions)
            .map(|i| {
                let mut weights = vec![0.0; num_topics];
                weights[(3 * i) % num_topics] = 0.8;
                weights[(3 * i + 1) % num_topics] = 0.2;
                let query = KsirQuery::new(10, QueryVector::new(weights).unwrap()).unwrap();
                let algorithm = if i % 2 == 0 {
                    Algorithm::Mttd
                } else {
                    Algorithm::Mtts
                };
                (query, algorithm)
            })
            .collect();
        MaintenanceScenario {
            stream,
            queries,
            window: WindowConfig::new(6 * 60, 15).unwrap(),
            scoring: ScoringConfig::new(0.5, 1.0).unwrap(),
        }
    }

    /// A fresh, empty engine over the scenario's planted topic model.
    pub fn engine(&self) -> KsirEngine<DenseTopicWordTable> {
        KsirEngine::new(
            self.stream.planted.phi().clone(),
            EngineConfig::new(self.window, self.scoring),
        )
        .unwrap()
    }

    /// Replays the stream through a [`SubscriptionManager`] under `config`.
    pub fn run_managed(&self, config: ShardConfig) -> MaintenanceRun {
        let started = Instant::now();
        let mut mgr = SubscriptionManager::with_shard_config(self.engine(), config);
        for (query, algorithm) in &self.queries {
            mgr.subscribe(query.clone(), *algorithm).unwrap();
        }
        let outcomes = mgr.ingest_stream(self.stream.iter_pairs()).unwrap();
        std::hint::black_box(outcomes.len());
        MaintenanceRun {
            elapsed: started.elapsed(),
            stats: mgr.stats(),
            shard_stats: mgr.shard_stats(),
        }
    }

    /// Replays the stream re-running every query after every bucket — the
    /// baseline with no delta rules.
    pub fn run_recompute(&self) -> MaintenanceRun {
        let started = Instant::now();
        let mut engine = self.engine();
        let bucket_len = engine.config().window.bucket_len();
        let mut slides = 0usize;
        let mut total_results = 0usize;
        ksir_stream::for_each_bucket(
            bucket_len,
            engine.now(),
            self.stream.iter_pairs(),
            |bucket, end| {
                engine.ingest_bucket(bucket, end)?;
                slides += 1;
                for (query, algorithm) in &self.queries {
                    total_results += engine.query(query, *algorithm)?.len();
                }
                Ok(())
            },
        )
        .unwrap();
        std::hint::black_box(total_results);
        MaintenanceRun {
            elapsed: started.elapsed(),
            stats: ManagerStats {
                slides,
                refreshes: slides * self.queries.len(),
                skips: 0,
            },
            shard_stats: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_scenario_strategies_agree_on_work_accounting() {
        let scenario = MaintenanceScenario::smoke();
        let recompute = scenario.run_recompute();
        let serial = scenario.run_managed(ShardConfig::unsharded());
        let sharded = scenario.run_managed(ShardConfig::default());
        assert_eq!(recompute.stats.slides, serial.stats.slides);
        assert_eq!(serial.stats, sharded.stats, "identical refresh decisions");
        assert_eq!(
            serial.stats.refreshes + serial.stats.skips,
            serial.stats.slides * scenario.queries.len()
        );
        assert!(recompute.skip_ratio() == 0.0);
        assert!(sharded.skip_ratio() >= 0.0);
        assert!(sharded.throughput() > 0.0);
        assert!(!sharded.shard_stats.is_empty());
        assert!(recompute.shard_stats.is_empty());
    }
}
