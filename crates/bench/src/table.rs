//! Minimal plain-text table rendering for experiment output.

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and a header row.
    pub fn new<S: Into<String>>(title: S, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (cells are converted to strings by the caller).
    pub fn add_row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let cols = self
            .header
            .len()
            .max(self.rows.iter().map(|r| r.len()).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, cell) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(cell.chars().count());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let render_row = |cells: &[String]| {
            let mut line = String::from("| ");
            for (i, width) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                line.push_str(&format!("{cell:<width$} | "));
            }
            line.trim_end().to_string()
        };
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        out.push_str(&render_row(&self.header));
        out.push('\n');
        let total: usize = widths.iter().map(|w| w + 3).sum::<usize>() + 1;
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// Formats a `std::time::Duration` as fractional milliseconds.
pub fn fmt_millis(d: std::time::Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e3)
}

/// Formats a ratio as a percentage with two decimals.
pub fn fmt_percent(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("Demo", &["method", "time (ms)"]);
        t.add_row(vec!["CELF".into(), "123.456".into()]);
        t.add_row(vec!["MTTD".into(), "1.2".into()]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("| method | time (ms) |"));
        assert!(s.contains("| CELF   | 123.456   |"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_millis(std::time::Duration::from_micros(1500)), "1.500");
        assert_eq!(fmt_percent(0.1234), "12.34%");
    }
}
