//! Ordered traversal of the per-topic ranked lists for one query.
//!
//! MTTS, MTTD and Top-k Representative all consume active elements "in
//! decreasing order of their scores w.r.t. the query vector": they keep one
//! cursor per topic in the query support, repeatedly take the cursor whose
//! head contributes the largest `x_i · δ_i(e)`, and track the upper bound
//! `UB(x) = Σ_i x_i · δ_i(e^{(i)})` on the score of any not-yet-retrieved
//! element.  Once an element has been retrieved from one list, its tuples in
//! the other lists are treated as visited so it is never retrieved twice.

use std::collections::HashSet;

use ksir_stream::RankedListCursor;
use ksir_types::{ElementId, TopicId};

use crate::query::QueryFrontier;
use crate::view::RankedView;

/// Cursors over the ranked lists of the query's support topics.
pub(crate) struct SupportCursors<'a> {
    cursors: Vec<(TopicId, f64, RankedListCursor<'a>)>,
    visited: HashSet<ElementId>,
}

impl<'a> SupportCursors<'a> {
    /// Opens a cursor on every support topic's ranked list — live or
    /// snapshot, whatever the view serves.
    pub fn new<V: RankedView + ?Sized>(view: &'a V, support: &[(TopicId, f64)]) -> Self {
        let cursors = support
            .iter()
            .filter(|(topic, _)| topic.index() < view.num_topics())
            .map(|&(topic, weight)| (topic, weight, view.cursor(topic)))
            .collect();
        SupportCursors {
            cursors,
            visited: HashSet::new(),
        }
    }

    /// The traversal frontier: per support topic, the score of the first
    /// tuple this traversal has *not* read (`None` once the list is
    /// exhausted).  Captured at termination it is exactly the
    /// [`QueryFrontier`](crate::query::QueryFrontier) invalidation floor.
    pub fn frontier(&mut self) -> QueryFrontier {
        let floors = self
            .cursors
            .iter_mut()
            .map(|(topic, _, cursor)| (*topic, cursor.current().map(|(_, score, _)| score)))
            .collect();
        QueryFrontier::new(floors)
    }

    /// The upper bound `UB(x)` on the score of any unretrieved element:
    /// the weighted sum of the current head scores (exhausted lists
    /// contribute zero).
    pub fn upper_bound(&mut self) -> f64 {
        self.cursors
            .iter_mut()
            .map(|(_, w, c)| c.current().map(|(_, s, _)| *w * s).unwrap_or(0.0))
            .sum()
    }

    /// Returns `true` once every cursor is exhausted.
    pub fn exhausted(&mut self) -> bool {
        self.cursors
            .iter_mut()
            .all(|(_, _, c)| c.current().is_none())
    }

    /// Number of distinct elements retrieved so far.
    pub fn retrieved(&self) -> usize {
        self.visited.len()
    }

    /// Retrieves the next unvisited element in decreasing order of
    /// `x_i · δ_i(e)`, advancing the cursor it came from.
    pub fn pop_next(&mut self) -> Option<ElementId> {
        loop {
            let mut best: Option<(usize, f64)> = None;
            for (idx, (_, weight, cursor)) in self.cursors.iter_mut().enumerate() {
                if let Some((_, score, _)) = cursor.current() {
                    let value = *weight * score;
                    let better = match best {
                        None => true,
                        Some((_, b)) => value > b,
                    };
                    if better {
                        best = Some((idx, value));
                    }
                }
            }
            let (idx, _) = best?;
            let (id, _, _) = self.cursors[idx]
                .2
                .current()
                .expect("cursor selected as argmax has a current element");
            self.cursors[idx].2.advance();
            if self.visited.insert(id) {
                return Some(id);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksir_stream::RankedLists;
    use ksir_types::Timestamp;

    fn lists() -> RankedLists {
        let mut rls = RankedLists::new(2);
        // topic 0: e3 (0.65) > e6 (0.48) > e8 (0.17)
        rls.upsert(TopicId(0), ElementId(3), 0.65, Timestamp(8));
        rls.upsert(TopicId(0), ElementId(6), 0.48, Timestamp(8));
        rls.upsert(TopicId(0), ElementId(8), 0.17, Timestamp(8));
        // topic 1: e1 (0.56) > e6 (0.30)
        rls.upsert(TopicId(1), ElementId(1), 0.56, Timestamp(5));
        rls.upsert(TopicId(1), ElementId(6), 0.30, Timestamp(8));
        rls
    }

    #[test]
    fn retrieval_order_follows_weighted_scores() {
        let rls = lists();
        let support = [(TopicId(0), 0.5), (TopicId(1), 0.5)];
        let mut cursors = SupportCursors::new(&rls, &support);
        assert!((cursors.upper_bound() - (0.5 * 0.65 + 0.5 * 0.56)).abs() < 1e-12);
        // 0.5·0.65 = 0.325 beats 0.5·0.56 = 0.28 → e3 first
        assert_eq!(cursors.pop_next(), Some(ElementId(1 + 2)));
        // then e1 (0.28) beats e6 (0.24)
        assert_eq!(cursors.pop_next(), Some(ElementId(1)));
        // e6 appears in both lists but is retrieved only once
        assert_eq!(cursors.pop_next(), Some(ElementId(6)));
        assert_eq!(cursors.pop_next(), Some(ElementId(8)));
        assert_eq!(cursors.pop_next(), None);
        assert!(cursors.exhausted());
        assert_eq!(cursors.retrieved(), 4);
        assert_eq!(cursors.upper_bound(), 0.0);
    }

    #[test]
    fn skewed_weights_change_the_order() {
        let rls = lists();
        let support = [(TopicId(0), 0.1), (TopicId(1), 0.9)];
        let mut cursors = SupportCursors::new(&rls, &support);
        // 0.9·0.56 = 0.504 beats 0.1·0.65 = 0.065 → e1 first
        assert_eq!(cursors.pop_next(), Some(ElementId(1)));
        assert_eq!(cursors.pop_next(), Some(ElementId(6)));
    }

    #[test]
    fn frontier_reports_first_unread_scores() {
        let rls = lists();
        let support = [(TopicId(0), 0.5), (TopicId(1), 0.5)];
        let mut cursors = SupportCursors::new(&rls, &support);
        // Before any pop, the frontier sits on the list heads.
        let f = cursors.frontier();
        assert_eq!(
            f.floors,
            vec![(TopicId(0), Some(0.65)), (TopicId(1), Some(0.56))]
        );
        // e3 (topic 0 head) is popped; topic 0's frontier descends to e6.
        cursors.pop_next();
        let f = cursors.frontier();
        assert_eq!(
            f.floors,
            vec![(TopicId(0), Some(0.48)), (TopicId(1), Some(0.56))]
        );
        // Exhausting everything leaves no floors.
        while cursors.pop_next().is_some() {}
        let f = cursors.frontier();
        assert_eq!(f.floors, vec![(TopicId(0), None), (TopicId(1), None)]);
    }

    #[test]
    fn empty_lists_are_immediately_exhausted() {
        let rls = RankedLists::new(3);
        let support = [(TopicId(0), 1.0)];
        let mut cursors = SupportCursors::new(&rls, &support);
        assert_eq!(cursors.upper_bound(), 0.0);
        assert!(cursors.exhausted());
        assert_eq!(cursors.pop_next(), None);
    }

    #[test]
    fn out_of_range_topics_are_ignored() {
        let rls = lists();
        let support = [(TopicId(5), 1.0)];
        let mut cursors = SupportCursors::new(&rls, &support);
        assert_eq!(cursors.pop_next(), None);
    }
}
