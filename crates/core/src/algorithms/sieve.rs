//! SieveStreaming — single-pass streaming submodular maximisation
//! (streaming baseline).
//!
//! Badanidiyuru et al.'s algorithm: a geometric grid of guesses `v = (1+ε)^j`
//! for the optimum is maintained from the largest singleton value seen so
//! far; each guess owns a candidate set that admits an element when its
//! marginal gain is at least `(v/2 − f(S_v)) / (k − |S_v|)`.  The best
//! candidate is a `(1/2 − ε)`-approximation.  Unlike MTTS it has no index to
//! lean on, so it evaluates every active element for every query.

use std::collections::BTreeMap;

use ksir_stream::ActiveWindow;
use ksir_types::{ElementId, TopicWordDistribution};

use crate::evaluator::{CandidateState, QueryEvaluator};
use crate::query::{Algorithm, KsirQuery, QueryResult};

pub(crate) fn run<D: TopicWordDistribution>(
    window: &ActiveWindow,
    evaluator: &QueryEvaluator<'_, D>,
    query: &KsirQuery,
) -> QueryResult {
    let k = query.k();
    let base = 1.0 + query.epsilon();
    let mut ids: Vec<ElementId> = window.ids().collect();
    ids.sort_unstable();
    let evaluated = ids.len();

    let mut max_singleton = 0.0_f64;
    let mut candidates: BTreeMap<i64, CandidateState> = BTreeMap::new();

    for id in ids {
        let delta = evaluator.delta(id);
        if delta <= 0.0 {
            continue;
        }
        if delta > max_singleton {
            max_singleton = delta;
            let lo = (max_singleton.ln() / base.ln()).ceil() as i64;
            let hi = ((2.0 * k as f64 * max_singleton).ln() / base.ln()).floor() as i64;
            candidates.retain(|&j, _| j >= lo && j <= hi);
            for j in lo..=hi {
                candidates
                    .entry(j)
                    .or_insert_with(|| evaluator.new_candidate());
            }
        }
        for (&j, state) in candidates.iter_mut() {
            if state.len() >= k {
                continue;
            }
            let v = base.powf(j as f64);
            let needed = (v / 2.0 - state.score()) / (k - state.len()) as f64;
            let gain = evaluator.marginal_gain(state, id);
            if gain >= needed {
                evaluator.insert(state, id);
            }
        }
    }

    let best = candidates
        .into_values()
        .max_by(|a, b| a.score().total_cmp(&b.score()));
    match best {
        Some(state) if !state.is_empty() => QueryResult {
            elements: state.members().to_vec(),
            score: state.score(),
            evaluated_elements: evaluated,
            gain_evaluations: evaluator.gain_evaluations(),
            algorithm: Algorithm::SieveStreaming,
            frontier: None,
        },
        _ => QueryResult::empty(Algorithm::SieveStreaming),
    }
}
