//! The paper's running example (Table 1, Figures 1–3, 5 and 6) as a reusable
//! fixture.
//!
//! The fixture encodes the eight exemplar tweets, the two-topic topic model
//! over the sixteen-word vocabulary, the per-element topic distributions, and
//! the reference structure exactly as printed in the paper, so that unit
//! tests, integration tests and the quickstart example can all reproduce the
//! worked examples (`R_2({e2, e7}) ≈ 0.53`, `I_{2,8}({e2, e3}) ≈ 0.93`,
//! `q_8(2, (0.5, 0.5)) → {e1, e3}` with `OPT ≈ 0.65`, …).

use ksir_stream::WindowConfig;
use ksir_types::{
    DenseTopicWordTable, ElementId, SocialElement, SocialElementBuilder, Timestamp, TopicVector,
    Vocabulary,
};

use crate::config::{EngineConfig, ScoringConfig};
use crate::engine::KsirEngine;

/// The words of Table 1(b)/(c) in id order (`w1` → id 0, …, `w16` → id 15).
pub const PAPER_WORDS: [&str; 16] = [
    "asroma",
    "assist",
    "cavs",
    "champion",
    "defeat",
    "final",
    "lebron",
    "lfc",
    "manutd",
    "nbaplayoffs",
    "pl",
    "point",
    "raptors",
    "realmadrid",
    "schedule",
    "ucl",
];

/// The paper's running example: topic model, vocabulary, elements and their
/// topic distributions.
#[derive(Debug, Clone)]
pub struct PaperExample {
    /// The sixteen-word vocabulary of Table 1(b)/(c).
    pub vocabulary: Vocabulary,
    /// The two-topic topic-word table (`θ1` ≈ basketball, `θ2` ≈ soccer).
    pub phi: DenseTopicWordTable,
    /// The eight elements `e1, …, e8` (element ids 1–8, timestamps 1–8).
    pub elements: Vec<SocialElement>,
    /// Topic distributions `p_i(e)` of the elements, parallel to `elements`.
    pub topic_vectors: Vec<TopicVector>,
}

/// Builds the paper's running example.
pub fn paper_example() -> PaperExample {
    let vocabulary = Vocabulary::from_words(PAPER_WORDS);

    // Table 1(b)/(c): p_i(w) per topic, indexed w1..w16.
    let theta1 = vec![
        0.0, 0.06, 0.09, 0.1, 0.05, 0.11, 0.12, 0.0, 0.0, 0.11, 0.0, 0.15, 0.08, 0.0, 0.13, 0.0,
    ];
    let theta2 = vec![
        0.03, 0.04, 0.0, 0.09, 0.04, 0.12, 0.0, 0.06, 0.07, 0.0, 0.11, 0.14, 0.0, 0.07, 0.12, 0.11,
    ];
    let phi = DenseTopicWordTable::from_rows(vec![theta1, theta2])
        .expect("paper topic-word table is well-formed");

    // Table 1(a): words (1-based in the paper → 0-based ids), topic
    // distributions and references of each element.
    struct Row {
        id: u64,
        words: &'static [u32],
        theta: [f64; 2],
        refs: &'static [u64],
    }
    let rows = [
        Row {
            id: 1,
            words: &[1, 6, 8, 14, 16],
            theta: [0.2, 0.8],
            refs: &[],
        },
        Row {
            id: 2,
            words: &[4, 9, 11],
            theta: [0.26, 0.74],
            refs: &[],
        },
        Row {
            id: 3,
            words: &[3, 5, 10, 13],
            theta: [0.89, 0.11],
            refs: &[],
        },
        Row {
            id: 4,
            words: &[7, 10],
            theta: [1.0, 0.0],
            refs: &[3],
        },
        Row {
            id: 5,
            words: &[6, 8, 16],
            theta: [0.29, 0.71],
            refs: &[1],
        },
        Row {
            id: 6,
            words: &[2, 7, 10, 12],
            theta: [0.7, 0.3],
            refs: &[3],
        },
        Row {
            id: 7,
            words: &[4, 11],
            theta: [0.33, 0.67],
            refs: &[2],
        },
        Row {
            id: 8,
            words: &[10, 11, 15],
            theta: [0.51, 0.49],
            refs: &[2, 3, 6],
        },
    ];

    let mut elements = Vec::with_capacity(rows.len());
    let mut topic_vectors = Vec::with_capacity(rows.len());
    for row in &rows {
        let mut builder = SocialElementBuilder::new(row.id).at(row.id);
        // Paper word ids are 1-based; our ids are 0-based.
        builder = builder.words(row.words.iter().map(|w| w - 1));
        for &r in row.refs {
            builder = builder.referencing(r);
        }
        elements.push(builder.build());
        topic_vectors.push(
            TopicVector::from_values(row.theta.to_vec()).expect("paper topic vectors are valid"),
        );
    }

    PaperExample {
        vocabulary,
        phi,
        elements,
        topic_vectors,
    }
}

impl PaperExample {
    /// The scoring configuration used in the paper's examples
    /// (`λ = 0.5`, `η = 2`).
    pub fn scoring_config() -> ScoringConfig {
        ScoringConfig::new(0.5, 2.0).expect("paper scoring parameters are valid")
    }

    /// The window configuration used in the paper's examples
    /// (`T = 4`, one element per bucket).
    pub fn window_config() -> WindowConfig {
        WindowConfig::new(4, 1).expect("paper window parameters are valid")
    }

    /// The engine configuration used in the paper's examples (no topic
    /// sparsification — the hand-specified vectors are already sparse).
    pub fn engine_config() -> EngineConfig {
        EngineConfig::new(Self::window_config(), Self::scoring_config())
            .with_max_topics_per_element(None)
    }

    /// The element `e<n>` of Table 1 (`n` is the paper's 1-based index).
    pub fn element(&self, n: u64) -> &SocialElement {
        self.elements
            .iter()
            .find(|e| e.id == ElementId(n))
            .expect("paper element ids run from 1 to 8")
    }

    /// The topic vector of element `e<n>`.
    pub fn topic_vector(&self, n: u64) -> &TopicVector {
        let idx = self
            .elements
            .iter()
            .position(|e| e.id == ElementId(n))
            .expect("paper element ids run from 1 to 8");
        &self.topic_vectors[idx]
    }

    /// Builds a [`KsirEngine`] over the paper's topic model with nothing
    /// ingested yet (time 0) — the starting point for replaying the example
    /// stream bucket by bucket.
    pub fn empty_engine(&self) -> KsirEngine<DenseTopicWordTable> {
        KsirEngine::new(self.phi.clone(), Self::engine_config())
            .expect("paper engine configuration is valid")
    }

    /// The example's eight `(element, topic vector)` pairs in timestamp
    /// order, cloned for ingestion.
    pub fn stream(&self) -> Vec<(SocialElement, TopicVector)> {
        self.elements
            .iter()
            .cloned()
            .zip(self.topic_vectors.iter().cloned())
            .collect()
    }

    /// Builds a [`KsirEngine`] over the paper's topic model and ingests the
    /// whole eight-element stream, leaving the engine at time `t = 8` (the
    /// moment all the worked examples are evaluated at).
    pub fn build_engine(&self) -> KsirEngine<DenseTopicWordTable> {
        let mut engine = self.empty_engine();
        for (element, tv) in self.stream() {
            let end = element.ts;
            engine
                .ingest_bucket(vec![(element, tv)], end)
                .expect("paper stream is well-formed");
        }
        debug_assert_eq!(engine.now(), Timestamp(8));
        engine
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_matches_table_1() {
        let ex = paper_example();
        assert_eq!(ex.vocabulary.len(), 16);
        assert_eq!(ex.elements.len(), 8);
        assert_eq!(ex.element(1).doc.distinct_words(), 5);
        assert_eq!(ex.element(8).refs.len(), 3);
        assert!(ex.element(8).references(ElementId(6)));
        assert_eq!(ex.topic_vector(3).value(ksir_types::TopicId(0)), 0.89);
        // every topic vector sums to 1
        for tv in &ex.topic_vectors {
            assert!((tv.sum() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn engine_builds_and_reaches_time_8() {
        let ex = paper_example();
        let engine = ex.build_engine();
        assert_eq!(engine.now(), Timestamp(8));
        // e4 expired (Example 3.4): 7 active elements remain.
        assert_eq!(engine.active_count(), 7);
        assert!(!engine.is_active(ElementId(4)));
    }
}
