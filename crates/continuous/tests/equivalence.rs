//! Equivalence of delta-maintained subscription results with from-scratch
//! queries.
//!
//! The contract of `SubscriptionManager` is that after every slide, each
//! subscription's stored result is exactly what `KsirEngine::query` would
//! return for the same query, algorithm, and engine state — whether the
//! slide refreshed the subscription or the delta rules proved a skip safe.
//! These tests check the contract on the paper's Table 1 example and on
//! randomly planted streams, and additionally pin the expiry-triggered
//! recompute path.

use ksir_continuous::{RefreshReason, SubscriptionId, SubscriptionManager};
use ksir_core::fixtures::paper_example;
use ksir_core::{Algorithm, EngineConfig, KsirEngine, KsirQuery, ScoringConfig};
use ksir_datagen::{DatasetProfile, QueryWorkloadGenerator, StreamGenerator};
use ksir_stream::WindowConfig;
use ksir_types::{DenseTopicWordTable, ElementId, QueryVector, Timestamp};

fn assert_equivalent<D: ksir_types::TopicWordDistribution>(
    mgr: &SubscriptionManager<D>,
    subs: &[(SubscriptionId, KsirQuery, Algorithm)],
    context: &str,
) {
    for (id, query, algorithm) in subs {
        let fresh = mgr.engine().query(query, *algorithm).unwrap();
        let maintained = mgr.result(*id).unwrap_or_else(|| {
            panic!("{context}: {id} has no maintained result");
        });
        assert_eq!(
            maintained.sorted_elements(),
            fresh.sorted_elements(),
            "{context}: {id} ({algorithm}) maintained elements diverge from scratch"
        );
        assert!(
            (maintained.score - fresh.score).abs() < 1e-9,
            "{context}: {id} ({algorithm}) maintained score {} != scratch {}",
            maintained.score,
            fresh.score
        );
    }
}

/// On the paper's Table 1 stream, results maintained slide-by-slide equal
/// ad-hoc queries at every one of the eight timestamps, for every algorithm.
#[test]
fn paper_example_results_match_scratch_at_every_slide() {
    let ex = paper_example();
    let mut mgr = SubscriptionManager::new(ex.empty_engine());
    let queries = [
        (2, vec![0.5, 0.5]),
        (2, vec![1.0, 0.0]),
        (3, vec![0.2, 0.8]),
    ];
    let algorithms = [
        Algorithm::Mtts,
        Algorithm::Mttd,
        Algorithm::Celf,
        Algorithm::SieveStreaming,
        Algorithm::TopkRepresentative,
    ];
    let mut subs = Vec::new();
    for (k, weights) in &queries {
        for &algorithm in &algorithms {
            let query = KsirQuery::new(*k, QueryVector::new(weights.clone()).unwrap()).unwrap();
            let id = mgr.subscribe(query.clone(), algorithm).unwrap();
            subs.push((id, query, algorithm));
        }
    }

    for (element, tv) in ex.stream() {
        let end = element.ts;
        mgr.ingest_bucket(vec![(element, tv)], end).unwrap();
        assert_equivalent(&mgr, &subs, &format!("paper t={end}"));
    }

    // Example 3.4: the 0.5/0.5 MTTD subscription converged on {e1, e3}.
    let mttd = subs
        .iter()
        .find(|(_, q, a)| {
            *a == Algorithm::Mttd && q.k() == 2 && q.vector().weight(ksir_types::TopicId(0)) == 0.5
        })
        .unwrap();
    let result = mgr.result(mttd.0).unwrap();
    assert!(result.score > 0.6, "OPT ≈ 0.65 in the paper");
}

/// Random planted streams: after every slide, every subscription (random
/// query vectors, mixed algorithms) matches a from-scratch query, and the
/// delta rules actually skip work.
#[test]
fn planted_stream_results_match_scratch_after_every_slide() {
    for seed in [7u64, 21, 63] {
        let profile = DatasetProfile::twitter().scaled(0.02).with_topics(12);
        let stream = StreamGenerator::new(profile, seed)
            .unwrap()
            .generate()
            .unwrap();
        assert!(stream.len() > 50, "stream too small to be meaningful");

        let window = WindowConfig::new(240, 30).unwrap();
        let config = EngineConfig::new(window, ScoringConfig::default());
        let engine: KsirEngine<DenseTopicWordTable> =
            KsirEngine::new(stream.planted.phi().clone(), config).unwrap();
        let mut mgr = SubscriptionManager::new(engine);

        let workload = QueryWorkloadGenerator::new(&stream.planted, seed ^ 0xabcd)
            .generate(6, stream.end_time())
            .unwrap();
        // Cover the frontier-less algorithms (CELF, SieveStreaming) too:
        // their skip rule is the any-support-topic-touch fallback, which
        // must also be equivalence-safe on random streams.
        let algorithms = [
            Algorithm::Mtts,
            Algorithm::Mttd,
            Algorithm::TopkRepresentative,
            Algorithm::Celf,
            Algorithm::SieveStreaming,
        ];
        let mut subs = Vec::new();
        for (i, generated) in workload.into_iter().enumerate() {
            let query = KsirQuery::new(5, generated.vector).unwrap();
            let algorithm = algorithms[i % algorithms.len()];
            let id = mgr.subscribe(query.clone(), algorithm).unwrap();
            subs.push((id, query, algorithm));
        }

        for outcome in mgr.ingest_stream(stream.iter_pairs()).unwrap() {
            assert_eq!(
                outcome.refreshed + outcome.skipped,
                subs.len(),
                "every subscription is classified each slide"
            );
        }
        assert_equivalent(&mgr, &subs, &format!("planted seed={seed}"));

        let stats = mgr.stats();
        assert!(stats.slides > 3, "stream should span several buckets");
    }
}

/// Replaying slide-by-slide (instead of only checking at the end) on a
/// smaller planted stream, so skips are exercised mid-stream too.
#[test]
fn planted_stream_equivalence_holds_mid_stream() {
    // ~100 ticks of stream; T = 40, L = 10 gives ~10 slides with real expiry.
    let profile = DatasetProfile::reddit().scaled(0.01).with_topics(8);
    let stream = StreamGenerator::new(profile, 5)
        .unwrap()
        .generate()
        .unwrap();

    let window = WindowConfig::new(40, 10).unwrap();
    let config = EngineConfig::new(window, ScoringConfig::default());
    let engine: KsirEngine<DenseTopicWordTable> =
        KsirEngine::new(stream.planted.phi().clone(), config).unwrap();
    let mut mgr = SubscriptionManager::new(engine);

    let workload = QueryWorkloadGenerator::new(&stream.planted, 99)
        .generate(4, stream.end_time())
        .unwrap();
    let mut subs = Vec::new();
    for (i, generated) in workload.into_iter().enumerate() {
        let algorithm = if i % 2 == 0 {
            Algorithm::Mttd
        } else {
            Algorithm::Mtts
        };
        let query = KsirQuery::new(3, generated.vector).unwrap();
        let id = mgr.subscribe(query.clone(), algorithm).unwrap();
        subs.push((id, query, algorithm));
    }

    // Shared bucket cutting, asserting equivalence after each slide.
    let start = mgr.engine().now();
    let slides = ksir_stream::for_each_bucket(10, start, stream.iter_pairs(), |bucket, end| {
        mgr.ingest_bucket(bucket, end)?;
        assert_equivalent(&mgr, &subs, &format!("mid-stream t={end}"));
        Ok(())
    })
    .unwrap();
    assert!(slides >= 5, "expected several slides, got {slides}");

    // The delta rules must have skipped at least some evaluations overall —
    // otherwise standing queries degenerate to recompute-per-slide.
    let total_skips: usize = subs
        .iter()
        .filter_map(|(id, _, _)| mgr.subscription_stats(*id))
        .map(|s| s.skips)
        .sum();
    assert!(total_skips > 0, "no slide skipped any subscription");
}

/// Regression: when a stored result member expires out of the window, the
/// subscription is recomputed (not carried over), drops the dead element,
/// and matches a from-scratch query.
#[test]
fn expiry_of_a_result_member_triggers_recompute() {
    let ex = paper_example();
    // T = 4, L = 1 (paper config).  Subscribe over the full example engine
    // state at t = 8, where e3 is in the 0.5/0.5 MTTD result.
    let mut mgr = SubscriptionManager::new(ex.build_engine());
    let query = KsirQuery::new(2, QueryVector::new(vec![0.5, 0.5]).unwrap()).unwrap();
    let subs: Vec<(SubscriptionId, KsirQuery, Algorithm)> = [Algorithm::Mttd, Algorithm::Celf]
        .into_iter()
        .map(|algorithm| {
            let id = mgr.subscribe(query.clone(), algorithm).unwrap();
            (id, query.clone(), algorithm)
        })
        .collect();
    let initial: Vec<ElementId> = mgr.result(subs[0].0).unwrap().sorted_elements();
    assert_eq!(initial, vec![ElementId(1), ElementId(3)], "Example 3.4");

    // Advance far enough that the whole window drains: every stored member
    // expires, so both subscriptions must recompute down to empty results.
    let outcome = mgr.ingest_bucket(vec![], Timestamp(20)).unwrap();
    assert!(outcome.report.expired > 0);
    assert_eq!(outcome.refreshed, 2, "both subscriptions must refresh");
    for update in &outcome.updates {
        assert_eq!(update.reason, RefreshReason::MemberExpired);
        assert!(update.added.is_empty());
        assert!(!update.removed.is_empty());
        assert_eq!(update.score_after, 0.0);
    }
    assert_equivalent(&mgr, &subs, "after full expiry");
    assert!(mgr.result(subs[0].0).unwrap().is_empty());

    // Partial expiry: rebuild at t = 8, then slide one tick so e1 (posted
    // t=1, last referenced t=5 by e5) drops out at t = 10 while e3 stays
    // (referenced by e8 at t=8).  The subscription must shed exactly the
    // expired member and re-match scratch.
    let ex = paper_example();
    let mut mgr = SubscriptionManager::new(ex.build_engine());
    let id = mgr.subscribe(query.clone(), Algorithm::Mttd).unwrap();
    let before = mgr.result(id).unwrap().sorted_elements();
    assert!(before.contains(&ElementId(1)));
    let outcome = mgr.ingest_bucket(vec![], Timestamp(10)).unwrap();
    assert!(
        outcome.report.delta.lost(ElementId(1)),
        "e1 expires at t=10"
    );
    let update = outcome
        .updates
        .iter()
        .find(|u| u.subscription == id)
        .expect("expiry of a member must surface a delta");
    assert_eq!(update.reason, RefreshReason::MemberExpired);
    assert!(update.removed.contains(&ElementId(1)));
    assert_equivalent(&mgr, &[(id, query, Algorithm::Mttd)], "after e1 expiry");
    assert!(!mgr.result(id).unwrap().contains(ElementId(1)));
}

/// Subscriptions registered mid-stream start serving from their first slide.
#[test]
fn mid_stream_subscription_catches_up() {
    let ex = paper_example();
    let mut mgr = SubscriptionManager::new(ex.empty_engine());
    let stream = ex.stream();
    let query = KsirQuery::new(2, QueryVector::new(vec![0.5, 0.5]).unwrap()).unwrap();

    let mut late_sub = None;
    for (i, (element, tv)) in stream.into_iter().enumerate() {
        let end = element.ts;
        if i == 4 {
            // Register after t = 4: evaluated immediately against t = 4 state.
            let id = mgr.subscribe(query.clone(), Algorithm::Mtts).unwrap();
            let fresh = mgr.engine().query(&query, Algorithm::Mtts).unwrap();
            assert_eq!(
                mgr.result(id).unwrap().sorted_elements(),
                fresh.sorted_elements()
            );
            late_sub = Some(id);
        }
        mgr.ingest_bucket(vec![(element, tv)], end).unwrap();
    }
    let id = late_sub.unwrap();
    assert_equivalent(&mgr, &[(id, query, Algorithm::Mtts)], "late subscription");
}
