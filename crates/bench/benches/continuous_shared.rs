//! Shared evaluation plans vs per-subscription refresh.
//!
//! The subscriber-heavy regime: [`MaintenanceScenario::shared_smoke`] draws a
//! Zipf-popular population of standing queries from a small pool of plan
//! templates (identical vector/ε/algorithm, differing only in `k`), so most
//! subscriptions are plan-compatible with many others.  The two timed
//! configurations are the same replay with `ShardConfig::shared_plans` on
//! (each disturbed cluster pays one covering traversal per distinct member
//! `k`) and off (every disturbed member pays its own traversal).  Decisions
//! are pinned identical (`crates/continuous/tests/shared_plans.rs` and the
//! `per_subscription` CI gate), so the timing gap is pure plan sharing.
//!
//! The full-scale population (100k subscriptions,
//! [`MaintenanceScenario::shared_standard`]) runs in the CI perf gate; this
//! bench keeps the smoke size so `--test` mode stays cheap.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ksir_bench::MaintenanceScenario;

fn bench_shared_plans(c: &mut Criterion) {
    let scenario = MaintenanceScenario::shared_smoke();
    let mut group = c.benchmark_group("continuous_shared");
    group.sample_size(10);

    for (name, shared_plans) in [("clustered", true), ("per_subscription", false)] {
        group.bench_function(BenchmarkId::new(name, scenario.queries.len()), |b| {
            b.iter(|| scenario.run_shared_probe(shared_plans).stats)
        });
    }
    group.finish();
}

/// One-shot sharing report: how much evaluation the covering runs absorbed.
fn report_sharing(c: &mut Criterion) {
    let scenario = MaintenanceScenario::shared_smoke();
    let clustered = scenario.run_shared_probe(true);
    let baseline = scenario.run_shared_probe(false);
    assert_eq!(
        clustered.stats, baseline.stats,
        "plan clustering must change no refresh decision"
    );
    println!(
        "continuous_shared/sharing: {} subscriptions; {} covering runs served {} shared \
         refreshes; {:.2} passes/subscription clustered vs {:.2} per-subscription",
        clustered.subscriptions,
        clustered.covering_evaluations(),
        clustered.shared_refreshes(),
        clustered.passes_per_subscription(),
        baseline.passes_per_subscription(),
    );
    let _ = c;
}

criterion_group!(benches, bench_shared_plans, report_sharing);
criterion_main!(benches);
