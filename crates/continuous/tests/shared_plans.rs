//! Shared-evaluation-plan equivalence at the manager level.
//!
//! [`ShardConfig::shared_plans`] switches scheduled shards from one query
//! evaluation per disturbed subscription to one **covering** evaluation per
//! disturbed plan cluster and distinct `k`, specialized per member.  The
//! contract is the same as the delta-refresh toggle's: **cost only**.  Slide
//! for slide, both paths classify the same subscriptions, emit the same
//! result deltas, and converge on the same maintained results; only the
//! `refresh.cluster.*` counters — covering evaluations actually run, member
//! refreshes served by sharing — move.

use ksir_continuous::{ShardConfig, SnapshotPolicy, SubscriptionId, SubscriptionManager};
use ksir_core::{Algorithm, EngineConfig, KsirEngine, KsirQuery, ScoringConfig};
use ksir_datagen::{DatasetProfile, GeneratedStream, StreamGenerator};
use ksir_stream::WindowConfig;
use ksir_types::{DenseTopicWordTable, QueryVector};

const TOPICS: usize = 12;

/// A clustering-heavy workload: `groups` plan groups of `per_group`
/// subscriptions each.  Members of one group share a query vector and an
/// algorithm but differ in `k`, so each group lands in one plan cluster with
/// several variants; distinct groups use distinct vectors (and cycle through
/// every algorithm, including the cache-less baselines).
fn workload(groups: usize, per_group: usize) -> Vec<(KsirQuery, Algorithm)> {
    let algorithms = [
        Algorithm::Mtts,
        Algorithm::Mttd,
        Algorithm::TopkRepresentative,
        Algorithm::Celf,
        Algorithm::SieveStreaming,
    ];
    let mut subs = Vec::new();
    for g in 0..groups {
        let mut weights = vec![0.0; TOPICS];
        weights[(2 * g) % TOPICS] = 0.7;
        weights[(2 * g + 3) % TOPICS] = 0.3;
        let vector = QueryVector::new(weights).unwrap();
        let algorithm = algorithms[g % algorithms.len()];
        for m in 0..per_group {
            // k ∈ {2, 4, 6, ...} with repeats, so clusters hold both
            // same-k sharers and cross-k specialization variants.
            let k = 2 + 2 * (m % 3);
            subs.push((KsirQuery::new(k, vector.clone()).unwrap(), algorithm));
        }
    }
    subs
}

/// Builds a planted-stream manager under `config` and registers `subs`.
/// Same seed ⇒ identical engines and subscription ids across configs.
fn planted_manager(
    seed: u64,
    config: ShardConfig,
    subs: &[(KsirQuery, Algorithm)],
) -> (
    SubscriptionManager<ksir_types::DenseTopicWordTable>,
    Vec<SubscriptionId>,
    GeneratedStream,
) {
    let profile = DatasetProfile::twitter().scaled(0.02).with_topics(TOPICS);
    let stream = StreamGenerator::new(profile, seed)
        .unwrap()
        .generate()
        .unwrap();
    let window = WindowConfig::new(120, 15).unwrap();
    let engine: KsirEngine<DenseTopicWordTable> = KsirEngine::new(
        stream.planted.phi().clone(),
        EngineConfig::new(window, ScoringConfig::default()),
    )
    .unwrap();
    let mut mgr = SubscriptionManager::with_shard_config(engine, config);
    let ids = subs
        .iter()
        .map(|(query, algorithm)| mgr.subscribe(query.clone(), *algorithm).unwrap())
        .collect();
    (mgr, ids, stream)
}

/// Sums one `ShardStats` field over live shards.
fn shard_sum(
    mgr: &SubscriptionManager<DenseTopicWordTable>,
    field: impl Fn(&ksir_continuous::ShardStats) -> usize,
) -> usize {
    mgr.shard_stats().iter().map(field).sum()
}

/// The tentpole contract, end to end: a shared-plans manager and a
/// per-subscription manager fed the same stream make identical decisions on
/// every slide and end on identical results — only the clustered manager's
/// covering/shared counters move, and it provably runs fewer evaluations.
#[test]
fn shared_plans_match_per_subscription_walk_slide_for_slide() {
    for seed in [11u64, 29] {
        let subs = workload(6, 4);
        let (mut clustered, ids, stream) =
            planted_manager(seed, ShardConfig::default().with_shared_plans(true), &subs);
        let (mut oracle, oracle_ids, _) =
            planted_manager(seed, ShardConfig::default().with_shared_plans(false), &subs);
        assert_eq!(ids, oracle_ids);

        let clustered_outcomes = clustered.ingest_stream(stream.iter_pairs()).unwrap();
        let oracle_outcomes = oracle.ingest_stream(stream.iter_pairs()).unwrap();
        assert_eq!(clustered_outcomes.len(), oracle_outcomes.len());
        for (slide, (shared, solo)) in clustered_outcomes.iter().zip(&oracle_outcomes).enumerate() {
            assert_eq!(shared.report, solo.report, "slide {slide}: engine diverged");
            assert_eq!(
                shared.refreshed, solo.refreshed,
                "slide {slide}: refresh decisions diverged"
            );
            assert_eq!(
                shared.skipped, solo.skipped,
                "slide {slide}: skip decisions diverged"
            );
            assert_eq!(
                shared.updates.len(),
                solo.updates.len(),
                "slide {slide}: different number of result changes"
            );
            for (su, ou) in shared.updates.iter().zip(&solo.updates) {
                assert_eq!(su.subscription, ou.subscription, "slide {slide}");
                assert_eq!(su.reason, ou.reason, "slide {slide}: {}", su.subscription);
                assert_eq!(su.added, ou.added, "slide {slide}: {}", su.subscription);
                assert_eq!(su.removed, ou.removed, "slide {slide}: {}", su.subscription);
                // Shared memo lookups replay earlier scoring passes bit for
                // bit; any residue is float noise, not algorithmic drift.
                assert!(
                    (su.score_after - ou.score_after).abs() <= 1e-12,
                    "slide {slide}: {} score {} vs {}",
                    su.subscription,
                    su.score_after,
                    ou.score_after
                );
            }
        }

        // Final maintained results agree with each other, with scratch, and
        // the per-subscription stats are identical member for member.
        for (id, (query, algorithm)) in ids.iter().zip(&subs) {
            let shared = clustered.result(*id).unwrap();
            let solo = oracle.result(*id).unwrap();
            assert_eq!(shared.sorted_elements(), solo.sorted_elements());
            let fresh = clustered.engine().query(query, *algorithm).unwrap();
            assert_eq!(shared.sorted_elements(), fresh.sorted_elements());
            assert_eq!(
                clustered.subscription_stats(*id).unwrap(),
                oracle.subscription_stats(*id).unwrap(),
                "{id}: per-subscription work counters diverged"
            );
        }

        // Decision-side stats agree in aggregate too...
        assert_eq!(clustered.stats(), oracle.stats());
        // ...while the cost side shows actual sharing: the clustered manager
        // served refreshes from covering runs, and ran strictly fewer
        // evaluations than it performed refreshes.
        let covering = shard_sum(&clustered, |s| s.covering_evaluations);
        let shared = shard_sum(&clustered, |s| s.shared_refreshes);
        let refreshes = clustered.stats().refreshes;
        assert!(covering > 0, "seed {seed}: no covering run ever happened");
        assert!(shared > 0, "seed {seed}: no refresh was served by sharing");
        assert_eq!(
            covering + shared,
            refreshes,
            "every refresh is either its own evaluation or shared"
        );
        assert!(
            covering < refreshes,
            "seed {seed}: clustering ran as many evaluations as refreshes"
        );
        assert_eq!(shard_sum(&oracle, |s| s.covering_evaluations), 0);
        assert_eq!(shard_sum(&oracle, |s| s.shared_refreshes), 0);
        assert_eq!(shard_sum(&oracle, |s| s.clusters), 0);

        // And the scoring-pass counter shows the point of it all: fewer
        // singleton/gain evaluations for identical decisions.
        let clustered_passes = clustered
            .telemetry()
            .registry()
            .counter("refresh.gain_evaluations")
            .get();
        let oracle_passes = oracle
            .telemetry()
            .registry()
            .counter("refresh.gain_evaluations")
            .get();
        assert!(
            clustered_passes < oracle_passes,
            "seed {seed}: clustering did not reduce scoring passes \
             ({clustered_passes} vs {oracle_passes})"
        );
    }
}

/// The `refresh.cluster.*` registry counters reconcile exactly with the
/// stats structs (the no-drift rule): registry == Σ live shards + retired.
#[test]
fn cluster_counters_reconcile_with_stats() {
    let subs = workload(5, 4);
    let (mut mgr, ids, stream) = planted_manager(29, ShardConfig::default(), &subs);
    let pairs: Vec<_> = stream.iter_pairs().collect();
    let half = pairs.len() / 2;
    mgr.ingest_stream(pairs[..half].iter().cloned()).unwrap();
    // Retire a few members mid-stream so the retired tally participates.
    for id in &ids[..6] {
        assert!(mgr.unsubscribe(*id));
    }
    mgr.ingest_stream(pairs[half..].iter().cloned()).unwrap();

    let retired = mgr.retired_stats();
    let telemetry = mgr.telemetry();
    let registry = telemetry.registry();
    assert_eq!(
        registry.counter("refresh.cluster.covering").get(),
        (shard_sum(&mgr, |s| s.covering_evaluations) + retired.covering_evaluations) as u64,
        "covering counter drifted from stats"
    );
    assert_eq!(
        registry.counter("refresh.cluster.shared").get(),
        (shard_sum(&mgr, |s| s.shared_refreshes) + retired.shared_refreshes) as u64,
        "shared counter drifted from stats"
    );
    assert_eq!(
        registry.counter("refresh.cluster.skipped").get(),
        (shard_sum(&mgr, |s| s.skipped_clusters) + retired.skipped_clusters) as u64,
        "skipped-cluster counter drifted from stats"
    );
    // The decision-side accounting invariant is untouched by clustering.
    let stats = mgr.stats();
    assert_eq!(
        registry.counter("shard.refreshes").get(),
        stats.refreshes as u64
    );
    assert_eq!(registry.counter("shard.skips").get(), stats.skips as u64);
}

/// Mid-stream churn re-clusters without disturbing the survivors: new
/// members join existing clusters (merge), departures shrink or retire them
/// (split/retire), a forced refresh invalidates the shared memo — and
/// through all of it the surviving members' decisions and results stay
/// pinned to the per-subscription walk performing the identical churn.
#[test]
fn churn_reclusters_without_changing_surviving_decisions() {
    let initial = workload(4, 3);
    let late = workload(6, 2); // first 4 groups merge into existing clusters
    let run = |shared_plans: bool| {
        let (mut mgr, ids, stream) = planted_manager(
            47,
            ShardConfig::default().with_shared_plans(shared_plans),
            &initial,
        );
        let pairs: Vec<_> = stream.iter_pairs().collect();
        let third = pairs.len() / 3;
        let mut outcomes = mgr.ingest_stream(pairs[..third].iter().cloned()).unwrap();
        // Churn: drop one member of each of the first three clusters (split),
        // retire the fourth cluster outright, then register the late
        // workload (its first four groups merge into surviving clusters).
        let removed = [ids[0], ids[3], ids[6], ids[9], ids[10], ids[11]];
        for id in removed {
            assert!(mgr.unsubscribe(id));
        }
        let mut ids: Vec<SubscriptionId> =
            ids.into_iter().filter(|id| !removed.contains(id)).collect();
        for (query, algorithm) in &late {
            ids.push(mgr.subscribe(query.clone(), *algorithm).unwrap());
        }
        // A forced refresh outside the slide stream (drops the shared memo).
        let forced = ids[1];
        mgr.refresh(forced);
        outcomes.extend(mgr.ingest_stream(pairs[third..].iter().cloned()).unwrap());
        (mgr, ids, outcomes)
    };

    let (clustered, ids, clustered_outcomes) = run(true);
    let (oracle, oracle_ids, oracle_outcomes) = run(false);
    assert_eq!(ids, oracle_ids);
    assert_eq!(clustered_outcomes.len(), oracle_outcomes.len());
    for (slide, (shared, solo)) in clustered_outcomes.iter().zip(&oracle_outcomes).enumerate() {
        assert_eq!(
            shared.refreshed, solo.refreshed,
            "slide {slide}: refresh decisions diverged under churn"
        );
        assert_eq!(shared.skipped, solo.skipped, "slide {slide}");
        assert_eq!(shared.updates, solo.updates, "slide {slide}");
    }
    for id in &ids {
        assert_eq!(
            clustered.result(*id).unwrap().sorted_elements(),
            oracle.result(*id).unwrap().sorted_elements(),
            "{id}: maintained result diverged under churn"
        );
        assert_eq!(
            clustered.subscription_stats(*id),
            oracle.subscription_stats(*id),
            "{id}: work counters diverged under churn"
        );
    }
    // The retired tally still reconciles the global accounting:
    // live + retired refreshes/skips == slide-time classifications.
    for mgr in [&clustered, &oracle] {
        let stats = mgr.stats();
        let retired = mgr.retired_stats();
        assert!(retired.shards > 0, "the emptied cluster retired its shard");
        assert_eq!(
            shard_sum(mgr, |s| s.refreshes) + retired.refreshes,
            stats.refreshes
        );
        assert_eq!(shard_sum(mgr, |s| s.skips) + retired.skips, stats.skips);
    }
    assert_eq!(clustered.stats(), oracle.stats());
}

/// Shared plans compose with the pipelined ingestion path and
/// floor-truncated per-shard snapshots: the per-cluster covering floors feed
/// `TruncateAtFloors` captures, and the maintained results and work
/// accounting still match the synchronous per-subscription walk.
#[test]
fn shared_plans_compose_with_pipelined_truncated_snapshots() {
    // 4 per group so clusters hold same-k sharers (k = 2,4,6,2), not just
    // cross-k variants — both sharing modes must survive the pipeline.
    let subs = workload(6, 4);
    let config = ShardConfig::default()
        .with_pipeline_depth(2)
        .with_snapshot_policy(SnapshotPolicy::TruncateAtFloors);
    let (mut pipelined, ids, stream) = planted_manager(61, config, &subs);
    let (mut oracle, oracle_ids, _) = planted_manager(
        61,
        ShardConfig::default()
            .with_snapshot_policy(SnapshotPolicy::TruncateAtFloors)
            .with_shared_plans(false),
        &subs,
    );
    assert_eq!(ids, oracle_ids);

    let tickets = pipelined.ingest_stream_async(stream.iter_pairs()).unwrap();
    pipelined.sync();
    assert_eq!(pipelined.completed_epoch(), tickets.len() as u64);
    oracle.ingest_stream(stream.iter_pairs()).unwrap();

    assert_eq!(
        pipelined.stats(),
        oracle.stats(),
        "pipelined clustered decisions diverged from the synchronous walk"
    );
    for id in &ids {
        assert_eq!(
            pipelined.result(*id).unwrap().sorted_elements(),
            oracle.result(*id).unwrap().sorted_elements(),
            "{id}: maintained result diverged"
        );
    }
    assert!(
        shard_sum(&pipelined, |s| s.covering_evaluations) > 0,
        "the pipelined path never ran a covering evaluation"
    );
    assert!(
        shard_sum(&pipelined, |s| s.shared_refreshes) > 0,
        "the pipelined path never shared a refresh"
    );
}
