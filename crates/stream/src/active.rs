//! The active window `A_t`: sliding-window elements plus referenced parents.
//!
//! §3.1: *"The set of active elements `A_t` at time `t` includes not only the
//! elements in `W_t` but also the elements referred to by any element in
//! `W_t`."*  §4 (Algorithm 1): *"the elements that are never referred to by
//! any element after time `t − T + 1` are discarded from the active window."*
//!
//! [`ActiveWindow`] implements exactly that retention rule and additionally
//! maintains the reverse-reference index `I_t(e)` — for each active element,
//! the window elements that reference it — which the influence score needs.

use std::collections::HashMap;
use std::sync::Arc;

use ksir_types::{ElementId, KsirError, Result, SocialElement, Timestamp};

use crate::window::WindowConfig;

/// Per-element bookkeeping inside the active window.
#[derive(Debug, Clone)]
struct ActiveEntry {
    /// `Arc`-held so cloning the window (the engine's copy-on-write epoch
    /// snapshots) shares the immutable element payloads — documents and
    /// reference lists — instead of deep-copying them.
    element: Arc<SocialElement>,
    /// The latest time this element was posted or referenced — the `t_e`
    /// column of the ranked-list tuples in Algorithm 1.
    last_referenced: Timestamp,
    /// Window elements referencing this one, as `(child timestamp, child id)`.
    /// Pruned lazily when the window advances.
    children: Vec<(Timestamp, ElementId)>,
}

/// The set of active elements at the current time, with reference tracking.
///
/// `Clone` exists for the engine's copy-on-write epoch snapshots: the engine
/// holds the window behind an `Arc` and deep-clones it only when a snapshot
/// is still reading the previous epoch's image.
#[derive(Debug, Clone)]
pub struct ActiveWindow {
    config: WindowConfig,
    now: Timestamp,
    entries: HashMap<ElementId, ActiveEntry>,
}

impl ActiveWindow {
    /// Creates an empty active window at time 0.
    pub fn new(config: WindowConfig) -> Self {
        ActiveWindow {
            config,
            now: Timestamp::ZERO,
            entries: HashMap::new(),
        }
    }

    /// The window configuration.
    pub fn config(&self) -> WindowConfig {
        self.config
    }

    /// The current logical time (end of the last ingested bucket).
    pub fn now(&self) -> Timestamp {
        self.now
    }

    /// First timestamp still inside the sliding window.
    pub fn window_start(&self) -> Timestamp {
        self.config.window_start(self.now)
    }

    /// Number of active elements `n_t = |A_t|`.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no elements are active.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns `true` if `id` is currently active.
    pub fn contains(&self, id: ElementId) -> bool {
        self.entries.contains_key(&id)
    }

    /// Returns the element for `id`, if active.
    pub fn get(&self, id: ElementId) -> Option<&SocialElement> {
        self.entries.get(&id).map(|e| e.element.as_ref())
    }

    /// The time `id` was last posted or referenced (`t_e` in Algorithm 1).
    pub fn last_referenced(&self, id: ElementId) -> Option<Timestamp> {
        self.entries.get(&id).map(|e| e.last_referenced)
    }

    /// Returns `true` if the element itself was posted inside the current
    /// window (i.e. it belongs to `W_t`, not merely to `A_t`).
    pub fn is_in_window(&self, id: ElementId) -> bool {
        self.entries
            .get(&id)
            .map(|e| self.config.in_window(e.element.ts, self.now))
            .unwrap_or(false)
    }

    /// Iterates over all active elements in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = &SocialElement> + '_ {
        self.entries.values().map(|e| e.element.as_ref())
    }

    /// Iterates over the ids of all active elements.
    pub fn ids(&self) -> impl Iterator<Item = ElementId> + '_ {
        self.entries.keys().copied()
    }

    /// The set `I_t(e)`: ids of window elements that reference `id`,
    /// restricted to the current window.
    pub fn influenced_by(&self, id: ElementId) -> Vec<ElementId> {
        let start = self.window_start();
        match self.entries.get(&id) {
            Some(entry) => entry
                .children
                .iter()
                .filter(|(ts, _)| *ts >= start)
                .map(|(_, c)| *c)
                .collect(),
            None => Vec::new(),
        }
    }

    /// Number of window elements referencing `id` (`|I_t(e)|`).
    pub fn influence_count(&self, id: ElementId) -> usize {
        let start = self.window_start();
        self.entries
            .get(&id)
            .map(|e| e.children.iter().filter(|(ts, _)| *ts >= start).count())
            .unwrap_or(0)
    }

    /// Inserts one element, wiring up reverse references to any active parent.
    ///
    /// References to elements that are not (or no longer) active are ignored:
    /// an element that has already been discarded cannot be resurrected, which
    /// matches the paper's window semantics where only references *observed
    /// within the window* matter.
    ///
    /// Returns the ids of parents whose reverse-reference set changed — these
    /// are exactly the elements whose topic-wise scores must be recomputed in
    /// Algorithm 1 (lines 8–11).
    pub fn insert(&mut self, element: SocialElement) -> Result<Vec<ElementId>> {
        if self.entries.contains_key(&element.id) {
            return Err(KsirError::invalid_parameter(
                "element",
                format!("duplicate element id {}", element.id),
            ));
        }
        let mut touched_parents = Vec::new();
        for &parent in &element.refs {
            if let Some(p) = self.entries.get_mut(&parent) {
                p.children.push((element.ts, element.id));
                if element.ts > p.last_referenced {
                    p.last_referenced = element.ts;
                }
                touched_parents.push(parent);
            }
        }
        let entry = ActiveEntry {
            last_referenced: element.ts,
            children: Vec::new(),
            element: Arc::new(element),
        };
        self.entries.insert(entry.element.id, entry);
        Ok(touched_parents)
    }

    /// Elements that would lose at least one reverse reference if the window
    /// advanced to `new_now`, i.e. parents with a child posted before
    /// `window_start(new_now)`.
    ///
    /// The stored influence scores `I_{i,t}(e)` of exactly these elements
    /// become stale when the window slides, so the engine recomputes their
    /// ranked-list tuples after calling [`ActiveWindow::advance_to`].
    pub fn parents_losing_children(&self, new_now: Timestamp) -> Vec<ElementId> {
        let new_start = self.config.window_start(new_now);
        let mut out: Vec<ElementId> = self
            .entries
            .iter()
            .filter(|(_, entry)| entry.children.iter().any(|(ts, _)| *ts < new_start))
            .map(|(&id, _)| id)
            .collect();
        out.sort_unstable();
        out
    }

    /// Advances the window to `now`, discarding elements that are no longer
    /// active and pruning expired reverse references.
    ///
    /// Returns the ids of discarded elements so callers (the engine's ranked
    /// lists, topic-vector caches, …) can drop their own state for them.
    pub fn advance_to(&mut self, now: Timestamp) -> Result<Vec<ElementId>> {
        if now < self.now {
            return Err(KsirError::TimestampRegression {
                last: self.now,
                offending: now,
            });
        }
        self.now = now;
        let start = self.config.window_start(now);
        let mut expired = Vec::new();
        for (&id, entry) in &self.entries {
            if entry.last_referenced < start {
                expired.push(id);
            }
        }
        for id in &expired {
            self.entries.remove(id);
        }
        // Prune reverse references that fell out of the window so influence
        // counts stay correct without filtering on every read.
        for entry in self.entries.values_mut() {
            entry.children.retain(|(ts, _)| *ts >= start);
        }
        expired.sort_unstable();
        Ok(expired)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksir_types::{Document, SocialElementBuilder};

    fn elem(id: u64, ts: u64, refs: &[u64]) -> SocialElement {
        let mut b = SocialElementBuilder::new(id).at(ts);
        for &r in refs {
            b = b.referencing(r);
        }
        b.build()
    }

    fn window(t: u64, l: u64) -> ActiveWindow {
        ActiveWindow::new(WindowConfig::new(t, l).unwrap())
    }

    #[test]
    fn insert_and_lookup() {
        let mut w = window(4, 1);
        w.insert(elem(1, 1, &[])).unwrap();
        assert!(w.contains(ElementId(1)));
        assert_eq!(w.len(), 1);
        assert!(!w.is_empty());
        assert_eq!(w.get(ElementId(1)).unwrap().ts, Timestamp(1));
        assert_eq!(w.last_referenced(ElementId(1)), Some(Timestamp(1)));
        assert!(w.get(ElementId(2)).is_none());
    }

    #[test]
    fn duplicate_insert_is_rejected() {
        let mut w = window(4, 1);
        w.insert(elem(1, 1, &[])).unwrap();
        assert!(w.insert(elem(1, 2, &[])).is_err());
    }

    #[test]
    fn references_bump_last_referenced_and_children() {
        let mut w = window(4, 1);
        w.insert(elem(1, 1, &[])).unwrap();
        let touched = w.insert(elem(2, 3, &[1])).unwrap();
        assert_eq!(touched, vec![ElementId(1)]);
        w.advance_to(Timestamp(3)).unwrap();
        assert_eq!(w.last_referenced(ElementId(1)), Some(Timestamp(3)));
        assert_eq!(w.influenced_by(ElementId(1)), vec![ElementId(2)]);
        assert_eq!(w.influence_count(ElementId(1)), 1);
        assert_eq!(w.influence_count(ElementId(2)), 0);
    }

    #[test]
    fn reference_to_unknown_parent_is_ignored() {
        let mut w = window(4, 1);
        let touched = w.insert(elem(2, 3, &[99])).unwrap();
        assert!(touched.is_empty());
        assert_eq!(w.influence_count(ElementId(99)), 0);
    }

    #[test]
    fn paper_example_active_set_at_time_8() {
        // Table 1 of the paper with T = 4: at time 8 the window is [5, 8];
        // e4 expires (posted at 4, never referenced), while e1, e2, e3 stay
        // active because e5, e7, e8 / e6, e8 reference them.
        let mut w = window(4, 1);
        w.insert(elem(1, 1, &[])).unwrap();
        w.insert(elem(2, 2, &[])).unwrap();
        w.insert(elem(3, 3, &[])).unwrap();
        w.insert(elem(4, 4, &[3])).unwrap();
        w.insert(elem(5, 5, &[1])).unwrap();
        w.insert(elem(6, 6, &[3])).unwrap();
        w.insert(elem(7, 7, &[2])).unwrap();
        w.insert(elem(8, 8, &[2, 3, 6])).unwrap();
        let expired = w.advance_to(Timestamp(8)).unwrap();
        assert_eq!(expired, vec![ElementId(4)]);
        assert_eq!(w.len(), 7);
        for id in [1u64, 2, 3, 5, 6, 7, 8] {
            assert!(w.contains(ElementId(id)), "e{id} should be active");
        }
        // I_8(e3) = {e6, e8}: e4 expired, so it no longer counts.
        let mut inf = w.influenced_by(ElementId(3));
        inf.sort_unstable();
        assert_eq!(inf, vec![ElementId(6), ElementId(8)]);
        // e1 and e2 are outside W_8 but still active (referenced).
        assert!(!w.is_in_window(ElementId(1)));
        assert!(w.is_in_window(ElementId(5)));
    }

    #[test]
    fn expiry_removes_unreferenced_elements() {
        let mut w = window(3, 1);
        w.insert(elem(1, 1, &[])).unwrap();
        w.insert(elem(2, 2, &[])).unwrap();
        w.advance_to(Timestamp(2)).unwrap();
        assert_eq!(w.len(), 2);
        let expired = w.advance_to(Timestamp(4)).unwrap();
        assert_eq!(expired, vec![ElementId(1)]);
        let expired = w.advance_to(Timestamp(10)).unwrap();
        assert_eq!(expired, vec![ElementId(2)]);
        assert!(w.is_empty());
    }

    #[test]
    fn references_keep_parents_alive_beyond_their_window() {
        let mut w = window(3, 1);
        w.insert(elem(1, 1, &[])).unwrap();
        w.insert(elem(2, 3, &[1])).unwrap();
        // at t=5 the window is [3,5]: e1 itself is outside but referenced by e2 (ts=3)
        let expired = w.advance_to(Timestamp(5)).unwrap();
        assert!(expired.is_empty());
        assert!(w.contains(ElementId(1)));
        // at t=6 the window is [4,6]: e2's reference is now outside too → both go
        let expired = w.advance_to(Timestamp(6)).unwrap();
        assert_eq!(expired, vec![ElementId(1), ElementId(2)]);
    }

    #[test]
    fn influence_set_respects_window_boundary() {
        let mut w = window(3, 1);
        w.insert(elem(1, 1, &[])).unwrap();
        w.insert(elem(2, 2, &[1])).unwrap();
        w.insert(elem(3, 4, &[1])).unwrap();
        w.advance_to(Timestamp(4)).unwrap();
        // window is [2,4]: both children in window
        assert_eq!(w.influence_count(ElementId(1)), 2);
        w.advance_to(Timestamp(5)).unwrap();
        // window is [3,5]: e2 fell out, only e3 counts
        assert_eq!(w.influenced_by(ElementId(1)), vec![ElementId(3)]);
    }

    #[test]
    fn parents_losing_children_detects_stale_influence() {
        let mut w = window(3, 1);
        w.insert(elem(1, 1, &[])).unwrap();
        w.insert(elem(2, 2, &[1])).unwrap();
        w.insert(elem(3, 4, &[1])).unwrap();
        w.advance_to(Timestamp(4)).unwrap();
        // window is [2,4]: both children of e1 are inside, nothing stale yet
        assert!(w.parents_losing_children(Timestamp(4)).is_empty());
        // advancing to 5 moves the window to [3,5]: e2 (ts=2) falls out, so
        // e1's influence set shrinks.
        assert_eq!(w.parents_losing_children(Timestamp(5)), vec![ElementId(1)]);
        w.advance_to(Timestamp(5)).unwrap();
        assert!(w.parents_losing_children(Timestamp(5)).is_empty());
    }

    #[test]
    fn time_regression_is_rejected() {
        let mut w = window(4, 1);
        w.advance_to(Timestamp(5)).unwrap();
        assert!(matches!(
            w.advance_to(Timestamp(4)),
            Err(KsirError::TimestampRegression { .. })
        ));
    }

    #[test]
    fn iteration_yields_all_active_elements() {
        let mut w = window(10, 1);
        for i in 1..=5u64 {
            w.insert(SocialElement::original(
                ElementId(i),
                Timestamp(i),
                Document::new(),
            ))
            .unwrap();
        }
        w.advance_to(Timestamp(5)).unwrap();
        let mut ids: Vec<u64> = w.ids().map(|i| i.raw()).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 2, 3, 4, 5]);
        assert_eq!(w.iter().count(), 5);
    }
}
