//! Shared error type for the `ksir` workspace.

use std::fmt;

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, KsirError>;

/// Errors raised by the k-SIR library.
///
/// The library is intentionally strict about its numeric preconditions
/// (probability vectors must be finite and non-negative, window lengths must
/// be positive, …) because silently clamping bad inputs would invalidate the
/// approximation guarantees of the query algorithms.
#[derive(Debug, Clone, PartialEq)]
pub enum KsirError {
    /// A parameter was outside its documented domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of the violation.
        message: String,
    },
    /// A vector had the wrong dimensionality for the topic model in use.
    DimensionMismatch {
        /// Dimensionality the operation expected.
        expected: usize,
        /// Dimensionality that was provided.
        actual: usize,
    },
    /// A referenced element is unknown to the component that needed it.
    UnknownElement(crate::ElementId),
    /// A word id was outside the vocabulary.
    UnknownWord(crate::WordId),
    /// A topic id was outside the topic model.
    UnknownTopic(crate::TopicId),
    /// The stream violated the monotone-timestamp contract.
    TimestampRegression {
        /// Timestamp of the last accepted element/bucket.
        last: crate::Timestamp,
        /// Offending timestamp.
        offending: crate::Timestamp,
    },
    /// A model or index was used before it was trained / populated.
    NotReady(&'static str),
}

impl fmt::Display for KsirError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KsirError::InvalidParameter { name, message } => {
                write!(f, "invalid parameter `{name}`: {message}")
            }
            KsirError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
            KsirError::UnknownElement(id) => write!(f, "unknown element {id}"),
            KsirError::UnknownWord(id) => write!(f, "unknown word {id}"),
            KsirError::UnknownTopic(id) => write!(f, "unknown topic {id}"),
            KsirError::TimestampRegression { last, offending } => write!(
                f,
                "timestamp regression: got {offending} after having accepted {last}"
            ),
            KsirError::NotReady(what) => write!(f, "component not ready: {what}"),
        }
    }
}

impl std::error::Error for KsirError {}

impl KsirError {
    /// Builds an [`KsirError::InvalidParameter`] with a formatted message.
    pub fn invalid_parameter(name: &'static str, message: impl Into<String>) -> Self {
        KsirError::InvalidParameter {
            name,
            message: message.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ElementId, Timestamp, TopicId, WordId};

    #[test]
    fn display_messages_are_informative() {
        let e = KsirError::invalid_parameter("lambda", "must be in [0, 1]");
        assert!(e.to_string().contains("lambda"));
        assert!(e.to_string().contains("[0, 1]"));

        let e = KsirError::DimensionMismatch {
            expected: 50,
            actual: 10,
        };
        assert!(e.to_string().contains("50"));
        assert!(e.to_string().contains("10"));

        assert!(KsirError::UnknownElement(ElementId(9))
            .to_string()
            .contains("e9"));
        assert!(KsirError::UnknownWord(WordId(3)).to_string().contains("w3"));
        assert!(KsirError::UnknownTopic(TopicId(1))
            .to_string()
            .contains("θ1"));
        assert!(KsirError::NotReady("topic model")
            .to_string()
            .contains("topic model"));

        let e = KsirError::TimestampRegression {
            last: Timestamp(10),
            offending: Timestamp(4),
        };
        assert!(e.to_string().contains("t=10"));
        assert!(e.to_string().contains("t=4"));
    }

    #[test]
    fn error_implements_std_error() {
        fn assert_error<E: std::error::Error>(_: &E) {}
        assert_error(&KsirError::NotReady("x"));
    }
}
